//! Criterion micro-benchmarks for the datatype layer: flattening,
//! cursor streaming, skip-ahead, wire encoding — the operations whose
//! costs §5.3 trades off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexio_types::{flatten, Datatype, FileView, FlatType, MemLayout};
use std::hint::black_box;
use std::sync::Arc;

fn bench_flatten(c: &mut Criterion) {
    let mut g = c.benchmark_group("flatten");
    for n in [16u64, 256, 4096] {
        let vector = Datatype::hvector(n, 1, 192, Datatype::bytes(64));
        g.bench_with_input(BenchmarkId::new("enumerated", n), &vector, |b, dt| {
            b.iter(|| flatten(black_box(dt)))
        });
    }
    let succinct = Datatype::resized(0, 192, Datatype::bytes(64));
    g.bench_function("succinct", |b| b.iter(|| flatten(black_box(&succinct))));
    let nested = Datatype::vector(
        64,
        2,
        5,
        Datatype::structure(vec![
            (0, 1, Datatype::bytes(8)),
            (16, 2, Datatype::bytes(4)),
        ]),
    );
    g.bench_function("nested", |b| b.iter(|| flatten(black_box(&nested))));
    g.finish();
}

fn bench_cursor(c: &mut Criterion) {
    let mut g = c.benchmark_group("cursor");
    // Succinct: 1 pair/tile; enumerated: 4096 pairs in one tile.
    let succinct = Arc::new(flatten(&Datatype::resized(0, 192, Datatype::bytes(64))));
    let enumerated = Arc::new(flatten(&Datatype::hvector(4096, 1, 192, Datatype::bytes(64))));
    let vs = FileView::new(0, succinct, 1).unwrap();
    let ve = FileView::new(0, enumerated, 1).unwrap();
    g.bench_function("skip_succinct", |b| {
        b.iter(|| {
            let mut cur = vs.cursor(0);
            for k in 1..64u64 {
                cur.advance_to_file(black_box(k * 12_288));
            }
            cur.evaluated()
        })
    });
    g.bench_function("skip_enumerated", |b| {
        b.iter(|| {
            let mut cur = ve.cursor(0);
            for k in 1..64u64 {
                cur.advance_to_file(black_box(k * 12_288));
            }
            cur.evaluated()
        })
    });
    g.bench_function("stream_pieces", |b| {
        b.iter(|| {
            let mut cur = vs.cursor(0);
            let mut total = 0u64;
            for _ in 0..1000 {
                total += cur.take(black_box(64)).len;
            }
            total
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let ft = flatten(&Datatype::hvector(4096, 1, 192, Datatype::bytes(64)));
    g.bench_function("encode_4096", |b| b.iter(|| black_box(&ft).to_wire()));
    let wire = ft.to_wire();
    g.bench_function("decode_4096", |b| b.iter(|| FlatType::from_wire(black_box(&wire))));
    g.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("memlayout");
    let dt = Datatype::resized(0, 192, Datatype::bytes(64));
    let m = MemLayout::new(Arc::new(flatten(&dt)), 1024);
    let buf = vec![7u8; m.span() as usize];
    let mut out = vec![0u8; (64 * 1024) as usize];
    g.bench_function("gather_64k", |b| {
        b.iter(|| {
            m.gather(black_box(&buf), 0, black_box(&mut out));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_flatten, bench_cursor, bench_wire, bench_gather);
criterion_main!(benches);
