//! Criterion wall-clock benchmarks of complete collective operations
//! (engine machinery + simulator): useful for tracking regressions in the
//! engines themselves, independent of the virtual-time model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexio_core::{Engine, Hints, MpiFile};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;

fn collective_write(engine: Engine, style: TypeStyle) {
    let spec = HpioSpec {
        region_size: 64,
        region_count: 128,
        region_spacing: 64,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs: 4,
    };
    let pfs = Pfs::new(PfsConfig {
        locking: false,
        client_cache: false,
        cost: PfsCostModel::free(),
        ..PfsConfig::default()
    });
    run(spec.nprocs, CostModel::free(), move |rank| {
        let hints = Hints { engine, cb_nodes: Some(2), ..Hints::default() };
        let mut f = MpiFile::open(rank, &pfs, "bench", hints).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), style);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        f.close();
    });
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("collective_write");
    g.sample_size(20);
    for (name, engine, style) in [
        ("flexible_succinct", Engine::Flexible, TypeStyle::Succinct),
        ("flexible_enumerated", Engine::Flexible, TypeStyle::Enumerated),
        ("romio", Engine::Romio, TypeStyle::Enumerated),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &(engine, style), |b, &(e, s)| {
            b.iter(|| collective_write(e, s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
