//! # flexio-bench — harness utilities for regenerating the paper's figures
//!
//! Each `src/bin/fig*.rs` binary reproduces one figure of the evaluation
//! section; `ablation_*.rs` binaries cover the design-choice studies
//! DESIGN.md calls out. Binaries print CSV (one row per point) plus a
//! human-readable table, and take `--paper` for full paper scale or the
//! default reduced scale that finishes in seconds.
//!
//! Bandwidth is aggregate useful bytes divided by the **virtual** time of
//! the slowest rank — the same metric the paper plots. Runs repeat
//! `best_of` times and keep the fastest (the paper reports best-of-5 on a
//! shared file system).

#![warn(missing_docs)]

use flexio_core::{Engine, Hints, MpiFile};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::Pfs;
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;
use std::sync::Arc;

/// Number of repetitions to take the best of (paper: 5; default here: 3).
pub const BEST_OF: usize = 3;

/// Convert (bytes, virtual ns) into MB/s.
pub fn mbps(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return f64::INFINITY;
    }
    bytes as f64 / (ns as f64 / 1e9) / 1e6
}

/// Parse command-line flags shared by all harnesses.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Full paper scale (64 procs, 4096 regions, 1 GiB files)?
    pub paper: bool,
    /// Repetitions to take the best of.
    pub best_of: usize,
    /// Process-count override (`--nprocs N`). `None` = the scale's
    /// default (64 at paper scale). The event-loop runtime makes worlds
    /// far past 64 ranks practical; every harness honours this flag.
    pub nprocs: Option<usize>,
}

impl Scale {
    /// Read from `std::env::args`: `--paper`, `--repeat N` (with
    /// `--best-of N` accepted as a synonym), and `--nprocs N`. Defaults
    /// to best-of-3 per DESIGN.md.
    pub fn from_args() -> Scale {
        Self::from_arg_list(&std::env::args().collect::<Vec<_>>())
    }

    fn from_arg_list(args: &[String]) -> Scale {
        let paper = args.iter().any(|a| a == "--paper");
        let best_of = args
            .iter()
            .position(|a| a == "--repeat" || a == "--best-of")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(BEST_OF);
        let nprocs = args
            .iter()
            .position(|a| a == "--nprocs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0);
        Scale { paper, best_of, nprocs }
    }

    /// The process count to run at: the `--nprocs` override if given,
    /// else the harness's default for this scale.
    pub fn nprocs_or(&self, default: usize) -> usize {
        self.nprocs.unwrap_or(default)
    }

    /// The standard header line every figure binary prints, recording the
    /// exact scale and repetition count a results file was generated with.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "scale: {} | best-of: {}",
            if self.paper { "paper" } else { "default" },
            self.best_of
        );
        if let Some(n) = self.nprocs {
            s.push_str(&format!(" | nprocs: {n}"));
        }
        s
    }
}

/// Engines selected by the shared `--engine {romio,flexible,both}` flag
/// (default `both` — the pipeline runs on shared machinery now, so the
/// ablations compare engines at equal depth by default), labelled for
/// CSV rows and table series.
pub fn engines_from_args() -> Vec<(&'static str, Engine)> {
    engines_from_arg_list(&std::env::args().collect::<Vec<_>>())
}

fn engines_from_arg_list(args: &[String]) -> Vec<(&'static str, Engine)> {
    let choice =
        args.iter().position(|a| a == "--engine").and_then(|i| args.get(i + 1)).map(String::as_str);
    match choice {
        Some("romio") => vec![("romio", Engine::Romio)],
        Some("flexible") => vec![("flexible", Engine::Flexible)],
        None | Some("both") => vec![("romio", Engine::Romio), ("flexible", Engine::Flexible)],
        Some(other) => panic!("--engine must be romio, flexible, or both, got {other:?}"),
    }
}

/// Run one HPIO collective write and return the slowest rank's elapsed
/// virtual ns (the collective-write time only, excluding open/close).
pub fn hpio_collective_write_ns(
    pfs: &Arc<Pfs>,
    spec: HpioSpec,
    style: TypeStyle,
    hints: &Hints,
    path: &str,
) -> u64 {
    hpio_collective_write_sample(pfs, spec, style, hints, path).0
}

/// [`hpio_collective_write_ns`] plus the staging-copy ledger: returns
/// `(slowest rank's elapsed ns, sum of Stats::bytes_copied over ranks)`.
/// The ledger counts the engine data-path copies the zero-copy run
/// sheds; it is deterministic for a given workload and hint set.
pub fn hpio_collective_write_sample(
    pfs: &Arc<Pfs>,
    spec: HpioSpec,
    style: TypeStyle,
    hints: &Hints,
    path: &str,
) -> (u64, u64) {
    let pfs = Arc::clone(pfs);
    let path = path.to_string();
    let hints = hints.clone();
    let out = run(spec.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, &path, hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), style);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        rank.barrier();
        let t0 = rank.now();
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        let elapsed = rank.now() - t0;
        f.close().unwrap();
        (rank.allreduce_max(elapsed), rank.stats().bytes_copied)
    });
    (out[0].0, out.iter().map(|(_, c)| c).sum())
}

/// Best-of-N wrapper: fresh file system per repetition (fresh OST clocks).
pub fn best_of_ns(n: usize, mut f: impl FnMut() -> u64) -> u64 {
    (0..n.max(1)).map(|_| f()).min().unwrap()
}

/// Render one figure panel as an aligned text table: rows = x values,
/// columns = series.
pub fn print_table(title: &str, xlabel: &str, xs: &[String], series: &[(String, Vec<f64>)]) {
    println!("\n## {title}");
    print!("{:>12}", xlabel);
    for (name, _) in series {
        print!("{name:>14}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>12}");
        for (_, vals) in series {
            print!("{:>14.2}", vals[i]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_math() {
        assert_eq!(mbps(1_000_000, 1_000_000_000), 1.0);
        assert_eq!(mbps(2_000_000, 500_000_000), 4.0);
        assert!(mbps(1, 0).is_infinite());
    }

    #[test]
    fn best_of_takes_min() {
        let mut vals = vec![5u64, 3, 4].into_iter();
        assert_eq!(best_of_ns(3, || vals.next().unwrap()), 3);
    }

    #[test]
    fn scale_defaults() {
        let s = Scale { paper: false, best_of: BEST_OF, nprocs: None };
        assert_eq!(s.best_of, 3);
        assert_eq!(s.nprocs_or(64), 64);
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn engine_flag_selects_engines() {
        let both = [("romio", Engine::Romio), ("flexible", Engine::Flexible)];
        assert_eq!(engines_from_arg_list(&args(&["bin"])), both);
        assert_eq!(engines_from_arg_list(&args(&["bin", "--engine", "both"])), both);
        assert_eq!(
            engines_from_arg_list(&args(&["bin", "--engine", "romio"])),
            [("romio", Engine::Romio)]
        );
        assert_eq!(
            engines_from_arg_list(&args(&["bin", "--engine", "flexible"])),
            [("flexible", Engine::Flexible)]
        );
    }

    #[test]
    fn scale_parses_repeat_and_best_of() {
        let s = Scale::from_arg_list(&args(&["bin"]));
        assert!(!s.paper);
        assert_eq!(s.best_of, BEST_OF);
        let s = Scale::from_arg_list(&args(&["bin", "--paper", "--repeat", "7"]));
        assert!(s.paper);
        assert_eq!(s.best_of, 7);
        let s = Scale::from_arg_list(&args(&["bin", "--best-of", "1"]));
        assert_eq!(s.best_of, 1);
        // Malformed counts fall back to the default rather than panicking.
        let s = Scale::from_arg_list(&args(&["bin", "--repeat", "lots"]));
        assert_eq!(s.best_of, BEST_OF);
        assert_eq!(s.describe(), "scale: default | best-of: 3");
    }

    #[test]
    fn scale_parses_nprocs_override() {
        let s = Scale::from_arg_list(&args(&["bin"]));
        assert_eq!(s.nprocs, None);
        let s = Scale::from_arg_list(&args(&["bin", "--paper", "--nprocs", "1024"]));
        assert_eq!(s.nprocs, Some(1024));
        assert_eq!(s.nprocs_or(64), 1024);
        assert_eq!(s.describe(), "scale: paper | best-of: 3 | nprocs: 1024");
        // Malformed or zero counts fall back to the harness default.
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--nprocs", "many"])).nprocs, None);
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--nprocs", "0"])).nprocs, None);
    }
}
