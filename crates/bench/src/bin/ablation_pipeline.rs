//! Ablation A5 — pipelined buffer cycles (§4 double buffering).
//!
//! Serial vs pipelined flexible engine on the E1 HPIO write workload:
//! same bytes, same exchange work, but the pipelined engine overlaps the
//! exchange for cycle i+1 with the file I/O of cycle i. Reports the
//! slowest rank's collective-write time, the summed hidden time, and
//! verifies the two engines leave byte-identical file images.
//!
//! Paper scale (`--paper`): 64 procs, 4096 regions, aggregators {8, 32}.
//! Default scale: 16 procs, 1024 regions, aggregators {4, 8}.

use flexio_bench::{mbps, print_table, Scale};
use flexio_core::{Hints, MpiFile, PipelineDepth};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;
use std::sync::Arc;

/// One collective write; returns (slowest rank ns, total hidden ns, image).
fn run_once(spec: HpioSpec, hints: &Hints, path: &str) -> (u64, u64, Vec<u8>) {
    let pfs = Pfs::new(PfsConfig::default());
    let inner = Arc::clone(&pfs);
    let path_owned = path.to_string();
    let hints = hints.clone();
    let out = run(spec.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &inner, &path_owned, hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        rank.barrier();
        let t0 = rank.now();
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        let elapsed = rank.now() - t0;
        f.close().unwrap();
        (rank.allreduce_max(elapsed), rank.stats().overlap_saved_ns)
    });
    let slowest = out[0].0;
    let hidden: u64 = out.iter().map(|(_, h)| h).sum();
    let h = pfs.open(path, usize::MAX - 1);
    let mut image = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut image).unwrap();
    (slowest, hidden, image)
}

fn main() {
    let scale = Scale::from_args();
    let (nprocs, regions, agg_counts): (usize, u64, Vec<usize>) = if scale.paper {
        (64, 4096, vec![8, 32])
    } else {
        (16, 1024, vec![4, 8])
    };
    let spec = HpioSpec {
        region_size: 512,
        region_count: regions,
        region_spacing: 128,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs,
    };

    println!("# Ablation A5 — pipelined buffer cycles (§4 double buffering)");
    println!("# {}", scale.describe());
    println!("# E1 workload: {nprocs} procs, {regions} regions of 512 B, spacing 128 B");
    println!("# columns: aggs,engine,ns,mbps,hidden_ns");
    let mut serial_bw = Vec::new();
    let mut pipe_bw = Vec::new();
    for &aggs in &agg_counts {
        // A small collective buffer forces many buffer cycles per call —
        // the regime double buffering targets (one cycle has nothing to
        // overlap with).
        // Pinned to depth 2: this ablation isolates the original §4
        // double-buffering win; ablation_depth studies deeper pipelines.
        let hints = |double_buffer| Hints {
            cb_nodes: Some(aggs),
            cb_buffer_size: 256 << 10,
            double_buffer,
            pipeline_depth: PipelineDepth::Fixed(2),
            ..Hints::default()
        };
        let best = |db: bool, path: &str| {
            let mut first: Option<(u64, u64, Vec<u8>)> = None;
            for _ in 0..scale.best_of {
                let (ns, hidden, image) = run_once(spec, &hints(db), path);
                first = Some(match first.take() {
                    None => (ns, hidden, image),
                    Some(b) => {
                        assert_eq!(b.2, image, "repetitions diverge");
                        if ns < b.0 { (ns, hidden, image) } else { b }
                    }
                });
            }
            first.unwrap()
        };
        let (ns_s, hid_s, img_s) = best(false, "a5_serial");
        let (ns_p, hid_p, img_p) = best(true, "a5_pipelined");
        assert_eq!(img_s, img_p, "serial and pipelined file images diverge at {aggs} aggs");
        for (name, ns, hid, bws) in [
            ("serial", ns_s, hid_s, &mut serial_bw),
            ("pipelined", ns_p, hid_p, &mut pipe_bw),
        ] {
            let bw = mbps(spec.aggregate_bytes(), ns);
            println!("{aggs},{name},{ns},{bw:.2},{hid}");
            bws.push(bw);
        }
    }
    let xs: Vec<String> = agg_counts.iter().map(|a| a.to_string()).collect();
    print_table(
        "serial vs pipelined — I/O bandwidth (MB/s)",
        "aggs",
        &xs,
        &[("serial".to_string(), serial_bw), ("pipelined".to_string(), pipe_bw)],
    );
    println!("\nfile images byte-identical across engines at every aggregator count");
}
