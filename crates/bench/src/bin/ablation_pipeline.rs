//! Ablation A5 — pipelined buffer cycles (§4 double buffering).
//!
//! Serial vs pipelined buffer cycles on the E1 HPIO write workload, for
//! BOTH engines at equal depth — the cycles run on the shared pipeline
//! core now, so `flexio_double_buffer` means the same thing under the
//! flexible engine and the ROMIO baseline: same bytes, same exchange
//! work, but the pipelined run overlaps the exchange for cycle i+1 with
//! the file I/O of cycle i. Reports the slowest rank's collective-write
//! time, the summed hidden time, and verifies every engine × mode
//! combination leaves a byte-identical file image.
//!
//! `--engine {romio,flexible,both}` selects the engines (default both).
//! Paper scale (`--paper`): 64 procs, 4096 regions, aggregators {8, 32}.
//! Default scale: 16 procs, 1024 regions, aggregators {4, 8}.

use flexio_bench::{engines_from_args, mbps, print_table, Scale};
use flexio_core::{Engine, Hints, MpiFile, PipelineDepth};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;
use std::sync::Arc;

/// One collective write; returns (slowest rank ns, total hidden ns, image).
fn run_once(spec: HpioSpec, hints: &Hints, path: &str) -> (u64, u64, Vec<u8>) {
    let pfs = Pfs::new(PfsConfig::default());
    let inner = Arc::clone(&pfs);
    let path_owned = path.to_string();
    let hints = hints.clone();
    let out = run(spec.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &inner, &path_owned, hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        rank.barrier();
        let t0 = rank.now();
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        let elapsed = rank.now() - t0;
        f.close().unwrap();
        (rank.allreduce_max(elapsed), rank.stats().overlap_saved_ns)
    });
    let slowest = out[0].0;
    let hidden: u64 = out.iter().map(|(_, h)| h).sum();
    let h = pfs.open(path, usize::MAX - 1);
    let mut image = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut image).unwrap();
    (slowest, hidden, image)
}

fn main() {
    let scale = Scale::from_args();
    let engines = engines_from_args();
    let (nprocs, regions, agg_counts): (usize, u64, Vec<usize>) = if scale.paper {
        (64, 4096, vec![8, 32])
    } else {
        (16, 1024, vec![4, 8])
    };
    let (nprocs, agg_counts) = match scale.nprocs {
        Some(n) => (n, vec![(n / 8).max(1), (n / 2).max(1)]),
        None => (nprocs, agg_counts),
    };
    let spec = HpioSpec {
        region_size: 512,
        region_count: regions,
        region_spacing: 128,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs,
    };

    println!("# Ablation A5 — pipelined buffer cycles (§4 double buffering)");
    println!("# {}", scale.describe());
    println!("# E1 workload: {nprocs} procs, {regions} regions of 512 B, spacing 128 B");
    println!("# columns: aggs,engine,mode,ns,mbps,hidden_ns");
    let mut series: Vec<(String, Vec<f64>)> = engines
        .iter()
        .flat_map(|(e, _)| {
            [(format!("{e} serial"), Vec::new()), (format!("{e} pipelined"), Vec::new())]
        })
        .collect();
    for &aggs in &agg_counts {
        // A small collective buffer forces many buffer cycles per call —
        // the regime double buffering targets (one cycle has nothing to
        // overlap with).
        // Pinned to depth 2: this ablation isolates the original §4
        // double-buffering win; ablation_depth studies deeper pipelines.
        let hints = |engine: Engine, double_buffer: bool| Hints {
            engine,
            cb_nodes: Some(aggs),
            cb_buffer_size: 256 << 10,
            double_buffer,
            pipeline_depth: PipelineDepth::Fixed(2),
            ..Hints::default()
        };
        let best = |engine: Engine, db: bool, path: &str| {
            let mut first: Option<(u64, u64, Vec<u8>)> = None;
            for _ in 0..scale.best_of {
                let (ns, hidden, image) = run_once(spec, &hints(engine, db), path);
                first = Some(match first.take() {
                    None => (ns, hidden, image),
                    Some(b) => {
                        assert_eq!(b.2, image, "repetitions diverge");
                        if ns < b.0 { (ns, hidden, image) } else { b }
                    }
                });
            }
            first.unwrap()
        };
        let mut baseline: Option<Vec<u8>> = None;
        let mut col = 0;
        for &(ename, engine) in &engines {
            let (ns_s, hid_s, img_s) = best(engine, false, "a5_serial");
            let (ns_p, hid_p, img_p) = best(engine, true, "a5_pipelined");
            for (mode, ns, hid, img) in
                [("serial", ns_s, hid_s, &img_s), ("pipelined", ns_p, hid_p, &img_p)]
            {
                match &baseline {
                    None => baseline = Some(img.clone()),
                    Some(b) => assert_eq!(
                        b, img,
                        "file images diverge at {ename} {mode}, {aggs} aggs"
                    ),
                }
                let bw = mbps(spec.aggregate_bytes(), ns);
                println!("{aggs},{ename},{mode},{ns},{bw:.2},{hid}");
                series[col].1.push(bw);
                col += 1;
            }
            assert!(
                ns_p <= ns_s,
                "{ename}: pipelined ({ns_p} ns) slower than serial ({ns_s} ns) at {aggs} aggs"
            );
        }
    }
    let xs: Vec<String> = agg_counts.iter().map(|a| a.to_string()).collect();
    print_table("serial vs pipelined — I/O bandwidth (MB/s)", "aggs", &xs, &series);
    println!("\nfile images byte-identical across engines and modes at every aggregator count");
    println!("pipelined never slower than serial for any engine");
}
