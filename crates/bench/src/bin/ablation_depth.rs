//! Ablation A6 — pipeline depth (adaptive vs fixed).
//!
//! The shared buffer-cycle pipeline on the E1 HPIO write workload at
//! depths 1 (serial), 2 (classic double buffering), 4, and auto
//! (per-cycle adaptation from the measured I/O:exchange ratio), for both
//! engines — depth hints drive the same `CycleDriver` core under the
//! flexible engine and the ROMIO baseline, so the sweep compares engines
//! at equal depth. Reports the slowest rank's collective-write time, the
//! I/O and derivation time hidden, the deepest pipeline any rank
//! reached, and the PFS-side peak of outstanding nonblocking ops — and
//! verifies every engine × depth combination leaves a byte-identical
//! file image.
//!
//! `--engine {romio,flexible,both}` selects the engines (default both).
//! Paper scale (`--paper`): 64 procs, 4096 regions, aggregators {8, 32}.
//! Default scale: 16 procs, 1024 regions, aggregators {4, 8}.

use flexio_bench::{engines_from_args, mbps, print_table, Scale};
use flexio_core::{Engine, Hints, MpiFile, PipelineDepth};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;
use std::sync::Arc;

struct Sample {
    ns: u64,
    hidden: u64,
    derive_hidden: u64,
    depth_used: u64,
    nb_peak: u64,
    copied: u64,
    image: Vec<u8>,
}

/// One collective write at the given depth.
fn run_once(spec: HpioSpec, hints: &Hints, path: &str) -> Sample {
    let pfs = Pfs::new(PfsConfig::default());
    let inner = Arc::clone(&pfs);
    let path_owned = path.to_string();
    let hints = hints.clone();
    let out = run(spec.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &inner, &path_owned, hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        rank.barrier();
        let t0 = rank.now();
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        let elapsed = rank.now() - t0;
        f.close().unwrap();
        let s = rank.stats();
        (
            rank.allreduce_max(elapsed),
            s.overlap_saved_ns,
            s.derive_overlap_saved_ns,
            rank.allreduce_max(s.pipeline_depth_used),
            s.bytes_copied,
        )
    });
    let h = pfs.open(path, usize::MAX - 1);
    let mut image = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut image).unwrap();
    Sample {
        ns: out[0].0,
        hidden: out.iter().map(|(_, h, _, _, _)| h).sum(),
        derive_hidden: out.iter().map(|(_, _, d, _, _)| d).sum(),
        depth_used: out[0].3,
        nb_peak: pfs.stats().nb_inflight_peak,
        copied: out.iter().map(|(_, _, _, _, c)| c).sum(),
        image,
    }
}

fn main() {
    let scale = Scale::from_args();
    let engines = engines_from_args();
    let (nprocs, regions, agg_counts): (usize, u64, Vec<usize>) = if scale.paper {
        (64, 4096, vec![8, 32])
    } else {
        (16, 1024, vec![4, 8])
    };
    let (nprocs, agg_counts) = match scale.nprocs {
        Some(n) => (n, vec![(n / 8).max(1), (n / 2).max(1)]),
        None => (nprocs, agg_counts),
    };
    let spec = HpioSpec {
        region_size: 512,
        region_count: regions,
        region_spacing: 128,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs,
    };
    let depths: [(&str, PipelineDepth); 4] = [
        ("depth-1", PipelineDepth::Fixed(1)),
        ("depth-2", PipelineDepth::Fixed(2)),
        ("depth-4", PipelineDepth::Fixed(4)),
        ("auto", PipelineDepth::Auto),
    ];
    // ROMIO's sieve RMW read blocks inside issue; `flexio_sieve_prefetch`
    // hoists it one cycle ahead, so only ROMIO gets the `+pf` variants
    // (the flexible engine has no dependent pre-read to hoist).
    let variants = |engine: Engine| -> Vec<(String, PipelineDepth, bool)> {
        let mut v: Vec<(String, PipelineDepth, bool)> =
            depths.iter().map(|(n, d)| (n.to_string(), *d, false)).collect();
        if engine == Engine::Romio {
            for (n, d) in depths.iter().skip(1) {
                v.push((format!("{n}+pf"), *d, true));
            }
        }
        v
    };

    println!("# Ablation A6 — pipeline depth (adaptive vs fixed)");
    println!("# {}", scale.describe());
    println!("# E1 workload: {nprocs} procs, {regions} regions of 512 B, spacing 128 B");
    println!(
        "# columns: aggs,engine,depth,ns,mbps,hidden_ns,derive_hidden_ns,depth_used,nb_inflight_peak,bytes_copied"
    );
    let mut series: Vec<(String, Vec<f64>)> = engines
        .iter()
        .flat_map(|(e, eng)| {
            variants(*eng).into_iter().map(move |(d, _, _)| (format!("{e} {d}"), Vec::new()))
        })
        .collect();
    for &aggs in &agg_counts {
        // Small collective buffer -> many cycles per call: the regime
        // where pipeline depth matters at all.
        let hints = |engine: Engine, depth, prefetch: bool| Hints {
            engine,
            cb_nodes: Some(aggs),
            cb_buffer_size: 256 << 10,
            pipeline_depth: depth,
            sieve_prefetch: prefetch,
            ..Hints::default()
        };
        let best = |engine: Engine, depth: PipelineDepth, prefetch: bool, path: &str| {
            let mut first: Option<Sample> = None;
            for _ in 0..scale.best_of {
                let s = run_once(spec, &hints(engine, depth, prefetch), path);
                first = Some(match first.take() {
                    None => s,
                    Some(b) => {
                        assert_eq!(b.image, s.image, "repetitions diverge");
                        if s.ns < b.ns { s } else { b }
                    }
                });
            }
            first.unwrap()
        };
        let mut baseline: Option<Vec<u8>> = None;
        let mut col = 0;
        for &(ename, engine) in &engines {
            let mut auto_bw = 0.0;
            let mut fixed2_bw = 0.0;
            for (name, depth, prefetch) in variants(engine) {
                let s = best(engine, depth, prefetch, &format!("a6_{ename}_{name}"));
                match &baseline {
                    None => baseline = Some(s.image.clone()),
                    Some(b) => assert_eq!(
                        *b, s.image,
                        "file images diverge at {ename} {name}, {aggs} aggs"
                    ),
                }
                let bw = mbps(spec.aggregate_bytes(), s.ns);
                println!(
                    "{aggs},{ename},{name},{},{bw:.2},{},{},{},{},{}",
                    s.ns, s.hidden, s.derive_hidden, s.depth_used, s.nb_peak, s.copied
                );
                series[col].1.push(bw);
                col += 1;
                match name.as_str() {
                    "auto" => auto_bw = bw,
                    "depth-2" => fixed2_bw = bw,
                    _ => {}
                }
            }
            // Only the flexible engine keeps auto competitive with fixed-2:
            // ROMIO's read-modify-write pass blocks inside issue, so extra
            // depth hides less there and auto's deeper pipeline can trail
            // fixed-2 by a hair. A 3 % tolerance absorbs service-order
            // noise at the shared OSTs (virtual clocks are schedule-order
            // sensitive; see DESIGN.md) — the two depths are within noise
            // of each other at every aggregator count, and a strict >=
            // between two noisy clocks flips sign run to run.
            if engine == Engine::Flexible {
                assert!(
                    auto_bw >= 0.97 * fixed2_bw,
                    "{ename}: auto depth ({auto_bw:.2} MB/s) more than 3 % behind fixed \
                     depth 2 ({fixed2_bw:.2} MB/s) at {aggs} aggs"
                );
            }
        }
    }
    let xs: Vec<String> = agg_counts.iter().map(|a| a.to_string()).collect();
    print_table("pipeline depth — I/O bandwidth (MB/s)", "aggs", &xs, &series);
    println!("\nfile images byte-identical across engines and depths at every aggregator count");
    println!("auto depth within 3 % of fixed depth 2 throughput for the flexible engine at every aggregator count");
}
