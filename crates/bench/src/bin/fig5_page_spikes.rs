//! Fig. 5's page-alignment spikes, isolated: "the regularly spaced spikes
//! are a result of I/O aligning nicely with the 4 KB page size on the file
//! system." Sweeps naive-I/O region sizes at fine granularity around the
//! page-size multiples; at exact multiples the unaligned write edges (and
//! their read-modify-write page reads) disappear and bandwidth jumps.

use flexio_bench::{best_of_ns, hpio_collective_write_ns, mbps, Scale};
use flexio_core::Hints;
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_io::IoMethod;
use flexio_pfs::{Pfs, PfsConfig};

fn main() {
    let scale = Scale::from_args();
    let nprocs = scale.nprocs_or(if scale.paper { 64 } else { 8 });
    let extent = 64 << 10; // large extent: naive is the right method here
    let page = 4096u64;
    println!("# Fig. 5 page-alignment spikes — naive I/O, {nprocs} procs, {page} B pages");
    println!("# {}", scale.describe());
    println!("# columns: region_size,mbps,rmw_page_reads");
    // Fine sweep around 1x and 2x the page size.
    let mut sizes: Vec<u64> = Vec::new();
    for base in [page, 2 * page] {
        for d in [-512i64, -256, -128, 0, 128, 256, 512] {
            sizes.push((base as i64 + d) as u64);
        }
    }
    let mut spikes = Vec::new();
    for rs in sizes {
        let spec = HpioSpec {
            region_size: rs,
            region_count: 64,
            region_spacing: extent - rs,
            mem_noncontig: false,
            file_noncontig: true,
            nprocs,
        };
        let hints = Hints {
            cb_nodes: Some((nprocs / 2).max(1)),
            io_method: IoMethod::Naive,
            ..Hints::default()
        };
        let mut rmw = 0;
        let ns = best_of_ns(scale.best_of, || {
            let pfs = Pfs::new(PfsConfig::default());
            // Pre-size so unaligned edges hit existing data (real RMW).
            let h = pfs.open("spike", usize::MAX - 1);
            let total_span = extent * 64 * nprocs as u64;
            let chunk = vec![0xAAu8; 4 << 20];
            let mut off = 0u64;
            while off < total_span {
                let n = chunk.len().min((total_span - off) as usize);
                h.write(0, off, &chunk[..n]).unwrap();
                off += n as u64;
            }
            let t = hpio_collective_write_ns(&pfs, spec, TypeStyle::Succinct, &hints, "spike");
            rmw = pfs.stats().rmw_page_reads;
            t
        });
        let bw = mbps(spec.aggregate_bytes(), ns);
        println!("{rs},{bw:.2},{rmw}");
        spikes.push((rs, bw, rmw));
    }
    // Sanity summary: aligned sizes must beat their unaligned neighbours.
    for base in [page, 2 * page] {
        let at = spikes.iter().find(|(r, _, _)| *r == base).unwrap();
        let near = spikes.iter().find(|(r, _, _)| *r == base + 128).unwrap();
        println!(
            "# {base} B: {:.1} MB/s, {} RMW reads  vs  {} B: {:.1} MB/s, {} RMW reads -> spike {}",
            at.1,
            at.2,
            base + 128,
            near.1,
            near.2,
            if at.1 > near.1 && at.2 < near.2 { "CONFIRMED" } else { "not visible" }
        );
    }
}
