//! Read-direction study: the paper's evaluation only measures collective
//! writes; this harness sweeps the same HPIO patterns through collective
//! *reads* (two-phase reversed: aggregators read their realms once,
//! scatter to clients) for both engines.

use flexio_bench::{best_of_ns, mbps, print_table, Scale};
use flexio_core::{Engine, Hints, MpiFile};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;
use std::sync::Arc;

fn read_ns(pfs: &Arc<Pfs>, spec: HpioSpec, style: TypeStyle, hints: &Hints) -> u64 {
    let pfs = Arc::clone(pfs);
    let hints = hints.clone();
    let out = run(spec.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, "r", hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), style);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let mut buf = vec![0u8; spec.buffer_span() as usize];
        rank.barrier();
        let t0 = rank.now();
        f.read_all(&mut buf, &spec.mem_type(), spec.mem_count()).unwrap();
        let elapsed = rank.now() - t0;
        // Verify what we read against the stamps.
        let want = spec.make_buffer(rank.rank());
        for i in 0..spec.region_count {
            for b in 0..spec.region_size {
                let pos = if spec.mem_noncontig { i * spec.unit() + b } else { i * spec.region_size + b };
                assert_eq!(buf[pos as usize], want[pos as usize], "read verify failed");
            }
        }
        f.close().unwrap();
        rank.allreduce_max(elapsed)
    });
    out[0]
}

fn main() {
    let scale = Scale::from_args();
    let (default_procs, regions) = if scale.paper { (64, 4096) } else { (16, 1024) };
    let nprocs = scale.nprocs_or(default_procs);
    let aggs = (nprocs / 2).max(1);
    let region_sizes = [16u64, 64, 256, 1024, 4096];
    let methods: [(&str, Engine, TypeStyle); 3] = [
        ("new+struct", Engine::Flexible, TypeStyle::Succinct),
        ("new+vect", Engine::Flexible, TypeStyle::Enumerated),
        ("old+vec", Engine::Romio, TypeStyle::Enumerated),
    ];

    println!("# Collective READ — HPIO non-contig mem & file, {nprocs} procs, {aggs} aggs");
    println!("# {}", scale.describe());
    println!("# columns: region_size,method,mbps");
    let mut series: Vec<(String, Vec<f64>)> =
        methods.iter().map(|(n, _, _)| (n.to_string(), Vec::new())).collect();
    for &rs in &region_sizes {
        let spec = HpioSpec {
            region_size: rs,
            region_count: regions,
            region_spacing: 128,
            mem_noncontig: true,
            file_noncontig: true,
            nprocs,
        };
        for (mi, (name, engine, style)) in methods.iter().enumerate() {
            let hints = Hints { engine: *engine, cb_nodes: Some(aggs), ..Hints::default() };
            let ns = best_of_ns(scale.best_of, || {
                let pfs = Pfs::new(PfsConfig::default());
                // Populate the file with a fast collective write first.
                {
                    let pfs = Arc::clone(&pfs);
                    let h2 = Hints { cb_nodes: Some(aggs), ..Hints::default() };
                    run(spec.nprocs, CostModel::free(), move |rank| {
                        let mut f = MpiFile::open(rank, &pfs, "r", h2.clone()).unwrap();
                        let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
                        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
                        let buf = spec.make_buffer(rank.rank());
                        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
                        f.close().unwrap();
                    });
                }
                read_ns(&pfs, spec, *style, &hints)
            });
            let bw = mbps(spec.aggregate_bytes(), ns);
            println!("{rs},{name},{bw:.2}");
            series[mi].1.push(bw);
        }
    }
    let xs: Vec<String> = region_sizes.iter().map(|r| r.to_string()).collect();
    print_table("Collective read bandwidth (MB/s)", "region B", &xs, &series);
}
