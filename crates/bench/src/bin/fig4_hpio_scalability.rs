//! Figure 4: HPIO, non-contiguous in memory and file, collective write
//! bandwidth vs region size, one panel per aggregator count, three
//! methods: `new+struct`, `new+vect`, `old+vec`.
//!
//! Paper scale (`--paper`): 64 procs, 4096 regions/client, 128 B spacing,
//! region size 8 B – 4 KiB, aggregators ∈ {8, 16, 24, 32}.
//! Default scale: 16 procs, 1024 regions, aggregators ∈ {2, 4, 6, 8} —
//! same shape, seconds of wall time.

use flexio_bench::{hpio_collective_write_sample, mbps, print_table, Scale};
use flexio_core::{Engine, Hints};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};

fn main() {
    let scale = Scale::from_args();
    let (default_procs, regions): (usize, u64) =
        if scale.paper { (64, 4096) } else { (16, 1024) };
    let nprocs = scale.nprocs_or(default_procs);
    // Aggregator counts keep the paper's fractions of the process count
    // (1/8, 1/4, 3/8, 1/2) so `--nprocs 1024` sweeps the same shape.
    let agg_counts: Vec<usize> = [nprocs / 8, nprocs / 4, 3 * nprocs / 8, nprocs / 2]
        .iter()
        .map(|&a| a.max(1))
        .collect();
    // `--sizes 64,1024` restricts the region-size sweep — the >64-rank
    // addendum rows use this to keep large-world runs to representative
    // points instead of the full ten-size panel.
    let args: Vec<String> = std::env::args().collect();
    let region_sizes: Vec<u64> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|s| s.parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]);
    let methods: [(&str, Engine, TypeStyle); 3] = [
        ("new+struct", Engine::Flexible, TypeStyle::Succinct),
        ("new+vect", Engine::Flexible, TypeStyle::Enumerated),
        ("old+vec", Engine::Romio, TypeStyle::Enumerated),
    ];

    println!("# Fig. 4 — HPIO: {nprocs} procs non-contig in memory and non-contig in file");
    println!("# {}", scale.describe());
    println!("# columns: aggs,region_size_bytes,method,mbps,bytes_copied");
    for &aggs in &agg_counts {
        let mut series: Vec<(String, Vec<f64>)> =
            methods.iter().map(|(n, _, _)| (n.to_string(), Vec::new())).collect();
        // Staging-copy ledger (sum over ranks, one representative region
        // size per method): deterministic, so one repetition suffices.
        let mut ledgers: Vec<(String, u64)> = Vec::new();
        for &rs in &region_sizes {
            let spec = HpioSpec {
                region_size: rs,
                region_count: regions,
                region_spacing: 128,
                mem_noncontig: true,
                file_noncontig: true,
                nprocs,
            };
            for (mi, (name, engine, style)) in methods.iter().enumerate() {
                let hints = Hints { engine: *engine, cb_nodes: Some(aggs), ..Hints::default() };
                let (mut ns, mut copied) = (u64::MAX, 0u64);
                for _ in 0..scale.best_of.max(1) {
                    let pfs = Pfs::new(PfsConfig::default());
                    let (t, c) = hpio_collective_write_sample(&pfs, spec, *style, &hints, "fig4");
                    ns = ns.min(t);
                    copied = c;
                }
                let bw = mbps(spec.aggregate_bytes(), ns);
                println!("{aggs},{rs},{name},{bw:.2},{copied}");
                series[mi].1.push(bw);
                if rs == *region_sizes.last().unwrap() {
                    ledgers.push((name.to_string(), copied));
                }
            }
        }
        let xs: Vec<String> = region_sizes.iter().map(|r| r.to_string()).collect();
        print_table(
            &format!("{aggs} aggs — I/O bandwidth (MB/s)"),
            "region B",
            &xs,
            &series,
        );
        print!("staging-copy ledger at {} B regions:", region_sizes.last().unwrap());
        for (name, copied) in &ledgers {
            print!("  {name}={copied}");
        }
        println!(" (bytes_copied, summed over ranks; flexio_zero_copy default on)");
    }
}
