//! Figure 4: HPIO, non-contiguous in memory and file, collective write
//! bandwidth vs region size, one panel per aggregator count, three
//! methods: `new+struct`, `new+vect`, `old+vec`.
//!
//! Paper scale (`--paper`): 64 procs, 4096 regions/client, 128 B spacing,
//! region size 8 B – 4 KiB, aggregators ∈ {8, 16, 24, 32}.
//! Default scale: 16 procs, 1024 regions, aggregators ∈ {2, 4, 6, 8} —
//! same shape, seconds of wall time.

use flexio_bench::{best_of_ns, hpio_collective_write_ns, mbps, print_table, Scale};
use flexio_core::{Engine, Hints};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};

fn main() {
    let scale = Scale::from_args();
    let (nprocs, regions, agg_counts): (usize, u64, Vec<usize>) = if scale.paper {
        (64, 4096, vec![8, 16, 24, 32])
    } else {
        (16, 1024, vec![2, 4, 6, 8])
    };
    let region_sizes: Vec<u64> = vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let methods: [(&str, Engine, TypeStyle); 3] = [
        ("new+struct", Engine::Flexible, TypeStyle::Succinct),
        ("new+vect", Engine::Flexible, TypeStyle::Enumerated),
        ("old+vec", Engine::Romio, TypeStyle::Enumerated),
    ];

    println!("# Fig. 4 — HPIO: {nprocs} procs non-contig in memory and non-contig in file");
    println!("# {}", scale.describe());
    println!("# columns: aggs,region_size_bytes,method,mbps");
    for &aggs in &agg_counts {
        let mut series: Vec<(String, Vec<f64>)> =
            methods.iter().map(|(n, _, _)| (n.to_string(), Vec::new())).collect();
        for &rs in &region_sizes {
            let spec = HpioSpec {
                region_size: rs,
                region_count: regions,
                region_spacing: 128,
                mem_noncontig: true,
                file_noncontig: true,
                nprocs,
            };
            for (mi, (name, engine, style)) in methods.iter().enumerate() {
                let hints = Hints { engine: *engine, cb_nodes: Some(aggs), ..Hints::default() };
                let ns = best_of_ns(scale.best_of, || {
                    let pfs = Pfs::new(PfsConfig::default());
                    hpio_collective_write_ns(&pfs, spec, *style, &hints, "fig4")
                });
                let bw = mbps(spec.aggregate_bytes(), ns);
                println!("{aggs},{rs},{name},{bw:.2}");
                series[mi].1.push(bw);
            }
        }
        let xs: Vec<String> = region_sizes.iter().map(|r| r.to_string()).collect();
        print_table(
            &format!("{aggs} aggs — I/O bandwidth (MB/s)"),
            "region B",
            &xs,
            &series,
        );
    }
}
