//! Ablation: the exchange-schedule cache on the steady-state checkpoint
//! pattern — persistent file realms, one fixed block-cyclic view, 32 time
//! steps each overwriting the checkpoint region with fresh data.
//!
//! Call 1 derives the schedule (identically with the cache on or off);
//! calls 2..N replay it on a hit, skipping metadata parsing, realm walks
//! and stream intersection. The harness reports per-step offset/length
//! pairs processed and per-step virtual wall-clock for both settings, and
//! verifies the final file images are byte-identical.
//!
//! Paper-shaped scale (`--paper`): 64 clients, 32 aggregators, 2 MiB
//! stripes, 100 × 32 B elements per point, 2048 points per rank. Default
//! scale shrinks clients and points so the run finishes in seconds.

use flexio_bench::{print_table, Scale};
use flexio_core::{Hints, MpiFile};
use flexio_io::IoMethod;
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel, XorShift64Star};
use flexio_types::Datatype;
use std::sync::Arc;

const STEPS: u64 = 32;

#[derive(Clone, Copy)]
struct Ckpt {
    nprocs: usize,
    /// Bytes of one rank's slice inside a point (elems_per_point * 32).
    slice: u64,
    /// Block-cyclic points per rank in the checkpoint region.
    points: u64,
    stripe: u64,
}

impl Ckpt {
    fn bytes_per_rank(&self) -> u64 {
        self.slice * self.points
    }
    fn data(&self, rank: usize, step: u64) -> Vec<u8> {
        let mut rng = XorShift64Star::new(((rank as u64) << 32) | (step + 1));
        let mut buf = vec![0u8; self.bytes_per_rank() as usize];
        rng.fill_bytes(&mut buf);
        buf
    }
}

struct Outcome {
    /// Sum over ranks of pairs processed, one entry per time step.
    pairs_per_step: Vec<u64>,
    /// Slowest rank's virtual ns, one entry per time step.
    ns_per_step: Vec<u64>,
    image: Vec<u8>,
}

fn run_checkpoint(c: Ckpt, cache: bool) -> Outcome {
    let pfs = Pfs::new(PfsConfig {
        stripe_size: c.stripe,
        page_size: 4096,
        locking: true,
        lock_expansion: true,
        client_cache: true,
        ..PfsConfig::default()
    });
    let per_rank = run(c.nprocs, CostModel::default(), {
        let pfs = Arc::clone(&pfs);
        move |rank| {
            let hints = Hints {
                schedule_cache: cache,
                persistent_file_realms: true,
                fr_alignment: Some(c.stripe),
                cb_nodes: Some((c.nprocs / 2).max(1)),
                io_method: IoMethod::DataSieve { buffer: 512 << 10 },
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "ckpt", hints).unwrap();
            // One fixed view for the whole run: rank r owns slice r of
            // every point, the checkpoint is overwritten in place each
            // step (restart-file pattern).
            let ftype =
                Datatype::resized(0, c.nprocs as u64 * c.slice, Datatype::bytes(c.slice));
            f.set_view(rank.rank() as u64 * c.slice, &Datatype::bytes(1), &ftype).unwrap();
            let mut per_step = Vec::with_capacity(STEPS as usize);
            for s in 0..STEPS {
                let data = c.data(rank.rank(), s);
                rank.barrier();
                let p0 = rank.stats().pairs_processed;
                let t0 = rank.now();
                f.write_all(&data, &Datatype::bytes(data.len() as u64), 1).unwrap();
                let ns = rank.allreduce_max(rank.now() - t0);
                per_step.push((rank.stats().pairs_processed - p0, ns));
            }
            f.close().unwrap();
            per_step
        }
    });
    let pairs_per_step = (0..STEPS as usize)
        .map(|s| per_rank.iter().map(|r| r[s].0).sum())
        .collect();
    let ns_per_step = (0..STEPS as usize).map(|s| per_rank[0][s].1).collect();
    let h = pfs.open("ckpt", usize::MAX - 1);
    let mut image = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut image).unwrap();
    Outcome { pairs_per_step, ns_per_step, image }
}

fn main() {
    let scale = Scale::from_args();
    let mut c = if scale.paper {
        Ckpt { nprocs: 64, slice: 3200, points: 2048, stripe: 2 << 20 }
    } else {
        Ckpt { nprocs: 16, slice: 3200, points: 256, stripe: 512 << 10 }
    };
    c.nprocs = scale.nprocs_or(c.nprocs);

    let on = run_checkpoint(c, true);
    let off = run_checkpoint(c, false);
    assert_eq!(on.image, off.image, "cache changed the bytes on disk");
    // The surviving checkpoint must be the last step's data.
    for r in 0..c.nprocs {
        let want = c.data(r, STEPS - 1);
        for p in 0..c.points {
            let off_b = (p * c.nprocs as u64 * c.slice + r as u64 * c.slice) as usize;
            let src = (p * c.slice) as usize;
            assert_eq!(
                &on.image[off_b..off_b + c.slice as usize],
                &want[src..src + c.slice as usize],
                "rank {r} point {p} corrupted"
            );
        }
    }

    println!(
        "# Ablation — exchange-schedule cache, {}-step checkpoint overwrite \
         ({} clients, {} aggregators, PFR + aligned realms)",
        STEPS,
        c.nprocs,
        (c.nprocs / 2).max(1)
    );
    println!("# columns: step,pairs_cache_on,pairs_cache_off,ms_cache_on,ms_cache_off");
    for s in 0..STEPS as usize {
        println!(
            "{},{},{},{:.3},{:.3}",
            s + 1,
            on.pairs_per_step[s],
            off.pairs_per_step[s],
            on.ns_per_step[s] as f64 / 1e6,
            off.ns_per_step[s] as f64 / 1e6,
        );
    }

    let steady = |v: &[u64]| v[1..].iter().sum::<u64>() as f64 / (v.len() - 1) as f64;
    let xs: Vec<String> = ["call 1", "calls 2..N (avg)"].iter().map(|s| s.to_string()).collect();
    let series = vec![
        ("pairs on".to_string(), vec![on.pairs_per_step[0] as f64, steady(&on.pairs_per_step)]),
        ("pairs off".to_string(), vec![off.pairs_per_step[0] as f64, steady(&off.pairs_per_step)]),
        ("ms on".to_string(), vec![
            on.ns_per_step[0] as f64 / 1e6,
            steady(&on.ns_per_step) / 1e6,
        ]),
        ("ms off".to_string(), vec![
            off.ns_per_step[0] as f64 / 1e6,
            steady(&off.ns_per_step) / 1e6,
        ]),
    ];
    print_table("Exchange-schedule cache ablation", "phase", &xs, &series);

    assert_eq!(
        on.pairs_per_step[0], off.pairs_per_step[0],
        "call 1 must charge identically with the cache armed"
    );
    assert!(
        steady(&on.pairs_per_step) < steady(&off.pairs_per_step),
        "steady-state pairs must drop with the cache on"
    );
    let speedup = steady(&off.ns_per_step) / steady(&on.ns_per_step);
    println!("\nsteady-state virtual-time speedup: {speedup:.3}x");
    println!("file images byte-identical: yes");
}
