//! Scenario suite — the five workload families at bench scale.
//!
//! Runs one deterministic member of each `flexio-workload` scenario
//! family (checkpoint N-to-1, restart with shifted rank counts, many-task
//! independent regions, read-heavy scans, mixed subarray views) through
//! both engines and reports aggregate bandwidth: total data bytes moved
//! divided by the summed virtual time of the slowest rank of every phase.
//! The same typed [`WorkloadSpec`]s drive `tests/workload_fuzz.rs`, so a
//! number here is a number the differential fuzzer has already
//! cross-checked for correctness.
//!
//! Flags: the shared `--paper` / `--nprocs N` / `--engine {romio,
//! flexible,both}` set, plus `--scenario <name>` to run a single family
//! (names as in [`ScenarioKind::name`]).
//!
//! Paper scale (`--paper`): 64-rank worlds, MiB-scale tiles, 8 OSTs with
//! 1 MiB stripes. Default scale: 8-rank worlds, KiB-scale tiles, finishes
//! in well under a second.

use flexio_bench::{engines_from_args, mbps, print_table, Scale};
use flexio_workload::{
    check_invariants, checkpoint_spec, many_task_spec, mixed_subarray_spec, read_scan_spec,
    restart_spec, run_spec, PfsShape, PhaseOp, RankPlan, RunConfig, ScenarioKind, WorkloadSpec,
};

/// The deterministic suite member of every family at the given scale.
fn suite(scale: &Scale) -> Vec<WorkloadSpec> {
    let n = scale.nprocs_or(if scale.paper { 64 } else { 8 });
    let readers = (n * 3 / 4).max(1); // shifted rank count for the read side
    let mut specs = if scale.paper {
        vec![
            checkpoint_spec(0xC0FFEE, n, 256 << 10, 4, 5),
            restart_spec(0xBEEF, n, readers, 64 << 20, 1, 1 << 20),
            many_task_spec(0xDAB, n, 1 << 20, 4, 64 << 10, 3),
            read_scan_spec(0x5CA4, n, readers, 256 << 10, 4, 4),
            mixed_subarray_spec(0x2D, 8, n / 8, 512, 2048, readers),
        ]
    } else {
        vec![
            checkpoint_spec(0xC0FFEE, n, 16 << 10, 4, 3),
            restart_spec(0xBEEF, n, readers, 1 << 20, 1, 64 << 10),
            many_task_spec(0xDAB, n, 64 << 10, 4, 4 << 10, 2),
            read_scan_spec(0x5CA4, n, readers, 16 << 10, 4, 3),
            mixed_subarray_spec(0x2D, 2, n / 2, 128, 512, readers),
        ]
    };
    // Bench-scale knobs: the builders default to the fuzzer's tiny
    // geometry; here the PFS and collective buffer match the figure
    // harnesses.
    for s in &mut specs {
        s.pfs = if scale.paper {
            PfsShape { n_osts: 8, stripe: 1 << 20, page: 4096 }
        } else {
            PfsShape { n_osts: 4, stripe: 64 << 10, page: 4096 }
        };
        s.cb = if scale.paper { 4 << 20 } else { 256 << 10 };
        s.pfr = true;
    }
    specs
}

/// Data bytes a spec moves in each direction: `(written, read)`.
fn moved_bytes(spec: &WorkloadSpec) -> (u64, u64) {
    let mut w = 0;
    let mut r = 0;
    for p in &spec.phases {
        let per_call: u64 = p.plans.iter().map(RankPlan::total_bytes).sum();
        match p.op {
            PhaseOp::Write => w += p.steps * per_call,
            PhaseOp::Read => r += per_call,
        }
    }
    (w, r)
}

fn main() {
    let scale = Scale::from_args();
    let engines = engines_from_args();
    let args: Vec<String> = std::env::args().collect();
    let filter = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            ScenarioKind::from_name(s).unwrap_or_else(|| {
                let names: Vec<_> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
                panic!("--scenario must be one of {names:?}, got {s:?}")
            })
        });

    println!("# scenario_suite | {}", scale.describe());
    println!("scenario,engine,write_bytes,read_bytes,virtual_ns,mbps");

    let mut xs = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> =
        engines.iter().map(|(name, _)| (format!("{name} MB/s"), Vec::new())).collect();
    for spec in suite(&scale) {
        if filter.is_some_and(|k| k != spec.kind) {
            continue;
        }
        let (wb, rb) = moved_bytes(&spec);
        xs.push(spec.kind.name().to_string());
        for ((name, engine), (_, col)) in engines.iter().zip(&mut series) {
            let out =
                run_spec(&spec, RunConfig { engine: *engine, zero_copy: true, faulted: false, shards: 0 });
            check_invariants(&out, name);
            let ns: u64 =
                out.phases.iter().map(|p| p.clocks.iter().copied().max().unwrap_or(0)).sum();
            let bw = mbps(wb + rb, ns);
            println!("{},{name},{wb},{rb},{ns},{bw:.2}", spec.kind.name());
            col.push(bw);
        }
    }
    print_table("Scenario suite: aggregate bandwidth", "scenario", &xs, &series);
}
