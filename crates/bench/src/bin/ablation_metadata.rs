//! Ablation A1 (§5.3): request-metadata volume and datatype-processing
//! work — fully flattened access (`M` pairs, old engine) vs flattened
//! filetype (`D` pairs, new engine) with succinct and enumerated types.
//!
//! Prints, per region count: metadata bytes on the wire (total payload
//! bytes minus data bytes) and offset/length pairs evaluated.

use flexio_bench::Scale;
use flexio_core::{Engine, Hints, MpiFile};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;

fn measure(spec: HpioSpec, engine: Engine, style: TypeStyle) -> (u64, u64) {
    let pfs = Pfs::new(PfsConfig::default());
    let out = run(spec.nprocs, CostModel::default(), move |rank| {
        let hints = Hints { engine, cb_nodes: Some((spec.nprocs / 2).max(1)), ..Hints::default() };
        let mut f = MpiFile::open(rank, &pfs, "meta", hints).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), style);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        f.close().unwrap();
        let s = rank.stats();
        (s.bytes_sent, s.pairs_processed)
    });
    let bytes: u64 = out.iter().map(|(b, _)| b).sum();
    let pairs: u64 = out.iter().map(|(_, p)| p).sum();
    (bytes, pairs)
}

fn main() {
    let scale = Scale::from_args();
    let nprocs = scale.nprocs_or(if scale.paper { 64 } else { 16 });
    let counts: Vec<u64> = if scale.paper {
        vec![256, 1024, 4096, 16384]
    } else {
        vec![64, 256, 1024, 4096]
    };
    println!("# Ablation A1 — metadata representation (§5.3)");
    println!("# columns: regions,variant,wire_bytes_total,metadata_bytes,pairs_processed");
    let variants: [(&str, Engine, TypeStyle); 3] = [
        ("old(flattened-access)", Engine::Romio, TypeStyle::Enumerated),
        ("new+vector(D=M)", Engine::Flexible, TypeStyle::Enumerated),
        ("new+struct(D=1)", Engine::Flexible, TypeStyle::Succinct),
    ];
    for &m in &counts {
        let spec = HpioSpec {
            region_size: 16,
            region_count: m,
            region_spacing: 128,
            mem_noncontig: true,
            file_noncontig: true,
            nprocs,
        };
        let data = spec.aggregate_bytes();
        for (name, engine, style) in variants {
            let (bytes, pairs) = measure(spec, engine, style);
            let meta = bytes.saturating_sub(data);
            println!("{m},{name},{bytes},{meta},{pairs}");
        }
    }
    println!();
    println!("Expected shape: metadata bytes grow with M for the old engine and for");
    println!("new+vector, but stay flat for new+struct; pairs processed are highest");
    println!("for new+vector (O(M*A) on the client side).");
}
