//! Ablation A7 — fault injection: retry cost and straggler degradation.
//!
//! Two panels on a tiled collective-write workload:
//!
//! 1. **Transient faults**: slowdown vs. per-request OST error rate, with
//!    the retry loop off (`flexio_io_retries=0`, the collective aborts on
//!    the first fault via the error agreement) and on (default budget,
//!    backoff charged in virtual time). Shows that retries turn faults
//!    from hard failures into a bounded time cost.
//! 2. **Straggler OST**: slowdown vs. straggler severity with static
//!    realms (no rebalancing) and with persistent file realms plus
//!    EWMA-driven realm rebalancing. The stripe is sized so each
//!    aggregator serves exactly one OST; realm boundaries stay
//!    page-aligned so the rebalancer can split the slow realm and spread
//!    the straggler's stripes over neighbouring aggregators.
//!
//! Every arm of every panel must leave a byte-identical file image: the
//! fault model perturbs time and outcomes, never data.
//!
//! Paper scale (`--paper`): 64 procs, 8 MiB span, aggregators {8, 32}.
//! Default scale: 16 procs, 1 MiB span, aggregators {4, 8}.

use flexio_bench::{print_table, Scale};
use flexio_core::{Hints, IoError, MpiFile};
use flexio_pfs::{FaultPlan, Pfs, PfsConfig, PfsCostModel};
use flexio_sim::{run, CostModel, XorShift64Star};
use flexio_types::Datatype;
use std::sync::Arc;

/// Collective-write steps per run; later steps see realms the earlier
/// steps' detections already rebalanced.
const STEPS: u64 = 4;

#[derive(Debug, Clone, Copy)]
struct Workload {
    nprocs: usize,
    /// Bytes per filetype block (page-sized, so realm splits stay aligned).
    block: u64,
    /// Blocks each rank writes per collective call.
    reps: u64,
    aggs: usize,
}

impl Workload {
    fn span(&self) -> u64 {
        self.nprocs as u64 * self.block * self.reps
    }

    /// One OST per aggregator: the stripe is the realm block, so a
    /// straggler OST maps to exactly one slow aggregator.
    fn pfs_config(&self) -> PfsConfig {
        PfsConfig {
            n_osts: self.aggs,
            stripe_size: self.span() / self.aggs as u64,
            page_size: 4096,
            locking: false,
            lock_expansion: false,
            client_cache: false,
            cost: PfsCostModel::default(),
        }
    }

    fn hints(&self, rebalance: bool, io_retries: u32) -> Hints {
        Hints {
            cb_nodes: Some(self.aggs),
            cb_buffer_size: (self.span() / self.aggs as u64 / 4) as usize,
            persistent_file_realms: rebalance,
            fr_alignment: Some(4096),
            io_retries,
            retry_backoff_us: 100,
            ..Hints::default()
        }
    }
}

struct Sample {
    /// Slowest rank's elapsed ns per collective step.
    step_ns: Vec<u64>,
    /// First collective error, identical on every rank (or None).
    err: Option<IoError>,
    retries: u64,
    degraded: u64,
    rebalanced: u64,
    faults: u64,
    image: Vec<u8>,
}

fn total_ns(s: &Sample) -> u64 {
    s.step_ns.iter().sum()
}

/// Run `STEPS` collective writes of the tiled workload under `plan`.
fn run_once(w: Workload, plan: Option<FaultPlan>, hints: &Hints) -> Sample {
    let pfs = match plan {
        Some(p) => Pfs::with_faults(w.pfs_config(), p),
        None => Pfs::new(w.pfs_config()),
    };
    let inner = Arc::clone(&pfs);
    let hints = hints.clone();
    let out = run(w.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &inner, "a7", hints.clone()).unwrap();
        let ftype =
            Datatype::resized(0, w.nprocs as u64 * w.block, Datatype::bytes(w.block));
        f.set_view(rank.rank() as u64 * w.block, &Datatype::bytes(1), &ftype).unwrap();
        let len = (w.reps * w.block) as usize;
        let mut step_ns = Vec::new();
        let mut err: Option<IoError> = None;
        for s in 0..STEPS {
            let mut data = vec![0u8; len];
            XorShift64Star::new((rank.rank() as u64) << 32 | (s + 1)).fill_bytes(&mut data);
            rank.barrier();
            let t0 = rank.now();
            let res = f.write_all(&data, &Datatype::bytes(len as u64), 1);
            step_ns.push(rank.allreduce_max(rank.now() - t0));
            if let Err(e) = res {
                err = err.or(Some(e));
            }
        }
        let _ = f.close();
        let s = rank.stats();
        (step_ns, err, s.io_retries, s.degraded_cycles, s.realms_rebalanced)
    });
    let h = pfs.open("a7", usize::MAX - 1);
    let mut image = vec![0u8; h.size() as usize];
    let _ = h.read(0, 0, &mut image);
    Sample {
        step_ns: out[0].0.clone(),
        err: out[0].1.clone(),
        retries: out.iter().map(|o| o.2).sum(),
        degraded: out.iter().map(|o| o.3).sum(),
        rebalanced: out.iter().map(|o| o.4).sum(),
        faults: pfs.stats().faults_injected,
        image,
    }
}

fn main() {
    let scale = Scale::from_args();
    // Realms must be I/O-dominated: the detector's per-cycle heartbeat is
    // a ring allgather (~p x net latency), so each aggregator serves at
    // least 1 MiB per collective call.
    let (nprocs, reps, agg_counts): (usize, u64, Vec<usize>) = if scale.paper {
        (64, 16, vec![8, 32])
    } else {
        (16, 8, vec![4, 8])
    };
    // `--nprocs N` rescales the world; aggregator counts then track the
    // process count so one OST per aggregator stays meaningful.
    let (nprocs, agg_counts) = match scale.nprocs {
        Some(n) => (n, vec![(n / 8).max(1), (n / 2).max(1)]),
        None => (nprocs, agg_counts),
    };

    println!("# Ablation A7 — fault injection: retries and straggler rebalancing");
    println!("# {}", scale.describe());
    println!(
        "# tiled workload: {nprocs} procs x {reps} blocks of 64 KiB x {STEPS} steps; \
         one OST per aggregator"
    );

    // ---- panel 1: transient fault rate, retries off vs on ------------------
    let w = Workload { nprocs, block: 64 << 10, reps, aggs: agg_counts[0] };
    let oracle = run_once(w, None, &w.hints(false, 4));
    println!("\n# panel 1: transient faults at {} aggregators", w.aggs);
    println!("# columns: rate,io_retries,outcome,ns,slowdown,retries,faults_injected");
    let rates = [0.002, 0.01, 0.05, 0.1];
    let mut series: Vec<(String, Vec<f64>)> =
        vec![("no-retry".into(), Vec::new()), ("retry-4".into(), Vec::new())];
    for &rate in &rates {
        for (si, &retries) in [0u32, 4].iter().enumerate() {
            let hints = w.hints(false, retries);
            let s = run_once(w, Some(FaultPlan::transient(0xa7, rate)), &hints);
            assert_eq!(s.image, oracle.image, "transient faults changed bytes");
            assert!(s.retries <= s.faults, "retry ledger exceeds injected faults");
            let outcome = match &s.err {
                None => "ok".to_string(),
                Some(e) => format!("error({e})"),
            };
            let slowdown = total_ns(&s) as f64 / total_ns(&oracle) as f64;
            println!(
                "{rate},{retries},{},{},{:.3},{},{}",
                if s.err.is_none() { "ok" } else { "aborted" },
                total_ns(&s),
                slowdown,
                s.retries,
                s.faults
            );
            if s.err.is_some() {
                println!("#   -> {outcome}");
            }
            // An aborted collective is not a data point on the slowdown
            // curve; plot it as 0 so the gap is visible in the table.
            series[si].1.push(if s.err.is_none() { slowdown } else { 0.0 });
        }
    }
    print_table(
        &format!("A7.1 transient-fault slowdown, {} aggs (0 = aborted)", w.aggs),
        "rate",
        &rates.iter().map(|r| format!("{r}")).collect::<Vec<_>>(),
        &series,
    );

    // ---- panel 2: straggler severity, static vs rebalancing realms ---------
    println!("\n# panel 2: persistent straggler OST 0");
    println!(
        "# columns: aggs,multiplier,mode,ns,last_step_ns,slowdown,degraded_cycles,\
         realms_rebalanced"
    );
    let mults = [2.0, 4.0, 8.0, 16.0];
    for &aggs in &agg_counts {
        let w = Workload { nprocs, block: 64 << 10, reps, aggs };
        let oracle = run_once(w, None, &w.hints(true, 4));
        let mut series: Vec<(String, Vec<f64>)> =
            vec![("static".into(), Vec::new()), ("rebalance".into(), Vec::new())];
        for &m in &mults {
            let mut static_ns = u64::MAX;
            for (si, (mode, rebalance)) in
                [("static", false), ("rebalance", true)].iter().enumerate()
            {
                let hints = w.hints(*rebalance, 4);
                let s = run_once(w, Some(FaultPlan::straggler(0, m)), &hints);
                assert_eq!(s.image, oracle.image, "straggler run changed bytes");
                assert!(s.err.is_none(), "straggler-only plan must not error");
                // The EWMA detector deliberately ignores mild stragglers
                // (below its 2x threshold), and the adaptive pipeline
                // already hides moderate latency within one aggregator,
                // so a strict win is required once the straggler is
                // severe enough to exceed both defences.
                if *rebalance && m >= 16.0 {
                    assert!(
                        total_ns(&s) < static_ns,
                        "aggs {aggs} x{m}: rebalancing ({}) not faster than static \
                         ({static_ns})",
                        total_ns(&s)
                    );
                } else if !*rebalance {
                    static_ns = total_ns(&s);
                }
                let slowdown = total_ns(&s) as f64 / total_ns(&oracle) as f64;
                println!(
                    "{aggs},{m},{mode},{},{},{:.3},{},{}",
                    total_ns(&s),
                    s.step_ns.last().unwrap(),
                    slowdown,
                    s.degraded,
                    s.rebalanced
                );
                series[si].1.push(slowdown);
            }
        }
        print_table(
            &format!("A7.2 straggler slowdown, {aggs} aggs"),
            "multiplier",
            &mults.iter().map(|m| format!("x{m}")).collect::<Vec<_>>(),
            &series,
        );
    }
}
