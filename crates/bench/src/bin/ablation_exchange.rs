//! Ablation A2 (§5.4): data-exchange flavour — sparse non-blocking
//! point-to-point (with pack/unpack copies, overlapped with address
//! computation) vs a dense `MPI_Alltoallw`-style collective operating
//! directly on user/collective buffers.
//!
//! The tradeoff: alltoallw skips the copies but sends one message per peer
//! pair regardless of sparsity, so it wins for dense exchanges and loses
//! when only a few pairs communicate.

use flexio_bench::{best_of_ns, hpio_collective_write_ns, mbps, Scale};
use flexio_core::{ExchangeMode, Hints};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};

fn main() {
    let scale = Scale::from_args();
    let nprocs = scale.nprocs_or(if scale.paper { 64 } else { 16 });
    println!("# Ablation A2 — exchange mode (§5.4)");
    println!("# {}", scale.describe());
    println!("# columns: pattern,aggs,mode,mbps");
    // Dense pattern: fine interleave, every client talks to every
    // aggregator. Sparse pattern: coarse blocks, each client's data lands
    // in one aggregator's realm.
    let patterns: [(&str, u64, u64); 2] = [
        ("dense(64B interleave)", 64, 2048),
        ("sparse(256KiB blocks)", 256 << 10, 4),
    ];
    for (pname, region, count) in patterns {
        let sparse = region > 1024;
        for aggs in [(nprocs / 4).max(1), (nprocs / 2).max(1), nprocs] {
            let spec = HpioSpec {
                region_size: region,
                region_count: count,
                region_spacing: 0,
                mem_noncontig: false,
                // Sparse: each rank one contiguous range -> few pairs talk.
                file_noncontig: !sparse,
                nprocs,
            };
            for (mname, mode) in [
                ("nonblocking", ExchangeMode::Nonblocking),
                ("alltoallw", ExchangeMode::Alltoallw),
            ] {
                let hints = Hints {
                    cb_nodes: Some(aggs),
                    exchange: mode,
                    ..Hints::default()
                };
                let ns = best_of_ns(scale.best_of, || {
                    let pfs = Pfs::new(PfsConfig::default());
                    hpio_collective_write_ns(&pfs, spec, TypeStyle::Succinct, &hints, "a2")
                });
                println!("{pname},{aggs},{mname},{:.2}", mbps(spec.aggregate_bytes(), ns));
            }
        }
    }
}
