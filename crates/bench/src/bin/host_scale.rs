//! Host-capacity scaling: ranks simulated per wall-clock second, threaded
//! backend vs the event-loop backend (ISSUE 7 tentpole measurement).
//!
//! Unlike every fig/ablation harness, this one measures **wall time**, not
//! virtual time: the workload is identical on both backends and both
//! produce bit-identical virtual results, so the only thing that differs
//! is how fast the host can turn the crank.
//!
//! The main table runs a fig4-style non-contiguous collective write,
//! deliberately fine-grained (16 regions x 8 B per rank, 512 B collective
//! buffer, dense alltoallw exchange) so that host-runtime overhead —
//! thread spawn, park/wake, message dispatch — dominates wall time rather
//! than simulated data volume, which both backends process identically.
//! Weak scaling: per-rank work is constant, the world grows. A second
//! section isolates the runtime-overhead floor with two microbenchmarks
//! at 64 ranks: spawn/join (empty rank bodies) and a 64-step ping-pong
//! (park-per-message chains).
//!
//! Flags: the shared `--best-of N` (best wall time of N, default 3) and
//! `--nprocs N` (restrict the main table to one row), `--full` (extend
//! the sweep to 4096 ranks and run threads up to 1024), `--check` (CI
//! sanity: one 256-rank run per backend, asserts the event loop is
//! faster, prints one line, exits).

use flexio_bench::Scale;
use flexio_core::{ExchangeMode, Hints, MpiFile};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run_on, Backend, CostModel};
use flexio_types::Datatype;
use std::time::{Duration, Instant};

/// One fine-grained collective write at `nprocs` ranks on `backend`;
/// returns host wall time for the whole world (spawn, open, write,
/// close, join).
fn collective_write(backend: Backend, nprocs: usize) -> Duration {
    let pfs = Pfs::new(PfsConfig::default());
    let spec = HpioSpec {
        region_size: 8,
        region_count: 16,
        region_spacing: 128,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs,
    };
    let hints = Hints {
        cb_nodes: Some((nprocs / 2).max(1)),
        cb_buffer_size: 512,
        exchange: ExchangeMode::Alltoallw,
        ..Hints::default()
    };
    let t0 = Instant::now();
    run_on(backend, nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, "host_scale", hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        f.close().unwrap();
    });
    t0.elapsed()
}

/// Spawn/join only: empty rank bodies. Isolates world setup/teardown —
/// for the threaded backend that is one OS thread spawn per rank.
fn spawn_join(backend: Backend, nprocs: usize) -> Duration {
    let t0 = Instant::now();
    run_on(backend, nprocs, CostModel::default(), |_rank| {});
    t0.elapsed()
}

/// 64-step neighbour ping-pong: every receive parks (the partner's send
/// happens strictly after), so this isolates the per-message
/// park/deliver/wake cost with no I/O-path work at all.
fn ping_pong(backend: Backend, nprocs: usize) -> Duration {
    let t0 = Instant::now();
    run_on(backend, nprocs, CostModel::default(), |rank| {
        let p = rank.nprocs();
        for step in 0..64u64 {
            if rank.rank() % 2 == 0 {
                rank.send((rank.rank() + 1) % p, step, &[1u8; 8]);
                rank.recv((rank.rank() + 1) % p, step);
            } else {
                rank.recv((rank.rank() + p - 1) % p, step);
                rank.send((rank.rank() + p - 1) % p, step, &[1u8; 8]);
            }
        }
    });
    t0.elapsed()
}

fn best_wall(n: usize, f: impl Fn() -> Duration) -> Duration {
    (0..n.max(1)).map(|_| f()).min().unwrap()
}

fn ranks_per_sec(nprocs: usize, wall: Duration) -> f64 {
    nprocs as f64 / wall.as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let full = args.iter().any(|a| a == "--full");
    let check = args.iter().any(|a| a == "--check");
    assert!(
        Backend::event_loop_supported(),
        "host_scale needs the event-loop backend (x86_64 only)"
    );

    if check {
        // CI sanity: at 256 ranks one host thread must beat 256 OS threads.
        let el = collective_write(Backend::EventLoop, 256);
        let th = collective_write(Backend::Threads, 256);
        println!(
            "check @256 ranks: event-loop {:.0} ms, threads {:.0} ms, speedup {:.1}x",
            el.as_secs_f64() * 1e3,
            th.as_secs_f64() * 1e3,
            th.as_secs_f64() / el.as_secs_f64()
        );
        assert!(el < th, "event loop must beat the threaded backend at 256 ranks");
        return;
    }

    let el_rows: Vec<usize> = match scale.nprocs {
        Some(n) => vec![n],
        None if full => vec![16, 64, 256, 1024, 4096],
        None => vec![16, 64, 256, 1024],
    };
    let thread_cap = if full { 1024 } else { 256 };

    println!("# Host-capacity scaling — ranks simulated per wall-second");
    println!("# {}", scale.describe());
    println!("# fine-grained fig4 write: 16 regions x 8 B per rank, cb 512 B,");
    println!("# alltoallw exchange, cb_nodes = nprocs/2 (weak scaling)");
    println!("# columns: nprocs,backend,wall_ms,ranks_per_wall_sec,speedup_vs_threads");
    for &nprocs in &el_rows {
        let el = best_wall(scale.best_of, || collective_write(Backend::EventLoop, nprocs));
        let th = (nprocs <= thread_cap)
            .then(|| best_wall(scale.best_of, || collective_write(Backend::Threads, nprocs)));
        println!(
            "{nprocs},event-loop,{:.1},{:.1},{}",
            el.as_secs_f64() * 1e3,
            ranks_per_sec(nprocs, el),
            th.map_or("-".into(), |t| format!("{:.1}", t.as_secs_f64() / el.as_secs_f64())),
        );
        match th {
            Some(t) => println!(
                "{nprocs},threads,{:.1},{:.1},1.0",
                t.as_secs_f64() * 1e3,
                ranks_per_sec(nprocs, t),
            ),
            None => println!("{nprocs},threads,-,-,- (skipped: past thread cap {thread_cap})"),
        }
    }

    println!("\n# Runtime-overhead floor @64 ranks (no I/O-path work)");
    println!("# columns: microbench,el_ms,threads_ms,speedup");
    for (name, f) in [
        ("spawn-join", spawn_join as fn(Backend, usize) -> Duration),
        ("ping-pong", ping_pong),
    ] {
        let el = best_wall(scale.best_of, || f(Backend::EventLoop, 64));
        let th = best_wall(scale.best_of, || f(Backend::Threads, 64));
        println!(
            "{name},{:.2},{:.2},{:.1}",
            el.as_secs_f64() * 1e3,
            th.as_secs_f64() * 1e3,
            th.as_secs_f64() / el.as_secs_f64()
        );
    }
}
