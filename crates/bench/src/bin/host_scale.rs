//! Host-capacity scaling: ranks simulated per wall-clock second, the
//! sequential event loop vs the sharded host-thread pool (ISSUE 7/10
//! tentpole measurement).
//!
//! Unlike every fig/ablation harness, this one measures **wall time**, not
//! virtual time: the workload is identical on every backend and all of
//! them produce bit-identical virtual results, so the only thing that
//! differs is how fast the host can turn the crank.
//!
//! The main table runs a fig4-style non-contiguous collective write,
//! deliberately fine-grained (16 regions x 8 B per rank, 512 B collective
//! buffer, dense alltoallw exchange) so that host-runtime overhead —
//! park/wake, message dispatch, and under the pool the min-gate baton —
//! dominates wall time rather than simulated data volume, which every
//! backend processes identically. Weak scaling: per-rank work is constant,
//! the world grows. A second section isolates the runtime-overhead floor
//! with two microbenchmarks at 64 ranks: spawn/join (empty rank bodies)
//! and a 64-step ping-pong (park-per-message chains).
//!
//! Read the shard columns with the pool's design in mind: dispatch is
//! serialized on the global minimum key (zero model lookahead), so shards
//! parallelize scheduler state, not rank execution — on a single-core
//! host the baton hand-off is pure overhead and the ratio column reads
//! below 1.0. The `avail_cores` line records what the host could have
//! offered. See EXPERIMENTS.md E-host for the honest ceiling discussion.
//!
//! Flags: the shared `--best-of N` (best wall time of N, default 3) and
//! `--nprocs N` (restrict the main table to one row), `--full` (extend
//! the sweep to 4096 ranks and add the 7-shard column), `--check` (CI
//! sanity: one 256-rank run sequential and at 4 shards, asserts the pool
//! stays within a livelock-guard bound of sequential, prints one line,
//! exits).

use flexio_bench::Scale;
use flexio_core::{ExchangeMode, Hints, MpiFile};
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run_on, Backend, CostModel};
use flexio_types::Datatype;
use std::time::{Duration, Instant};

/// One fine-grained collective write at `nprocs` ranks on `backend`;
/// returns host wall time for the whole world (spawn, open, write,
/// close, join).
fn collective_write(backend: Backend, nprocs: usize) -> Duration {
    let pfs = Pfs::new(PfsConfig::default());
    let spec = HpioSpec {
        region_size: 8,
        region_count: 16,
        region_spacing: 128,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs,
    };
    let hints = Hints {
        cb_nodes: Some((nprocs / 2).max(1)),
        cb_buffer_size: 512,
        exchange: ExchangeMode::Alltoallw,
        ..Hints::default()
    };
    let t0 = Instant::now();
    run_on(backend, nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, "host_scale", hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        f.close().unwrap();
    });
    t0.elapsed()
}

/// Spawn/join only: empty rank bodies. Isolates world setup/teardown —
/// for the pool that is fiber-slot setup plus shard-thread spawn.
fn spawn_join(backend: Backend, nprocs: usize) -> Duration {
    let t0 = Instant::now();
    run_on(backend, nprocs, CostModel::default(), |_rank| {});
    t0.elapsed()
}

/// 64-step neighbour ping-pong: every receive parks (the partner's send
/// happens strictly after), so this isolates the per-message
/// park/deliver/wake cost with no I/O-path work at all. Neighbour pairs
/// straddle shard boundaries, so under the pool this is also the worst
/// case for cross-shard inbox traffic.
fn ping_pong(backend: Backend, nprocs: usize) -> Duration {
    let t0 = Instant::now();
    run_on(backend, nprocs, CostModel::default(), |rank| {
        let p = rank.nprocs();
        for step in 0..64u64 {
            if rank.rank() % 2 == 0 {
                rank.send((rank.rank() + 1) % p, step, &[1u8; 8]);
                rank.recv((rank.rank() + 1) % p, step);
            } else {
                rank.recv((rank.rank() + p - 1) % p, step);
                rank.send((rank.rank() + p - 1) % p, step, &[1u8; 8]);
            }
        }
    });
    t0.elapsed()
}

fn best_wall(n: usize, f: impl Fn() -> Duration) -> Duration {
    (0..n.max(1)).map(|_| f()).min().unwrap()
}

fn ranks_per_sec(nprocs: usize, wall: Duration) -> f64 {
    nprocs as f64 / wall.as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let full = args.iter().any(|a| a == "--full");
    let check = args.iter().any(|a| a == "--check");
    assert!(
        Backend::event_loop_supported(),
        "host_scale needs the fiber rank runtime (x86_64 only)"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    if check {
        // CI sanity: the pool must complete, agree with sequential, and
        // stay within a generous livelock-guard bound of it (a baton bug
        // that spins or serializes pathologically blows straight past
        // 50x; honest single-core gate overhead sits well under it).
        let el = collective_write(Backend::EventLoop, 256);
        let sh = collective_write(Backend::Sharded(4), 256);
        println!(
            "check @256 ranks: event-loop {:.0} ms, 4 shards {:.0} ms, ratio {:.2}x ({cores} core(s))",
            el.as_secs_f64() * 1e3,
            sh.as_secs_f64() * 1e3,
            el.as_secs_f64() / sh.as_secs_f64()
        );
        assert!(
            sh < el * 50,
            "4-shard pool fell outside the livelock-guard bound at 256 ranks"
        );
        return;
    }

    let rows: Vec<usize> = match scale.nprocs {
        Some(n) => vec![n],
        None if full => vec![16, 64, 256, 1024, 4096],
        None => vec![16, 64, 256, 1024],
    };
    let shard_cols: &[usize] = if full { &[2, 4, 7] } else { &[2, 4] };

    println!("# Host-capacity scaling — ranks simulated per wall-second");
    println!("# {}", scale.describe());
    println!("# avail_cores: {cores}");
    println!("# fine-grained fig4 write: 16 regions x 8 B per rank, cb 512 B,");
    println!("# alltoallw exchange, cb_nodes = nprocs/2 (weak scaling)");
    println!("# columns: nprocs,backend,wall_ms,ranks_per_wall_sec,ratio_vs_event_loop");
    for &nprocs in &rows {
        let el = best_wall(scale.best_of, || collective_write(Backend::EventLoop, nprocs));
        println!(
            "{nprocs},event-loop,{:.1},{:.1},1.00",
            el.as_secs_f64() * 1e3,
            ranks_per_sec(nprocs, el),
        );
        for &k in shard_cols {
            let sh = best_wall(scale.best_of, || collective_write(Backend::Sharded(k), nprocs));
            println!(
                "{nprocs},shards-{k},{:.1},{:.1},{:.2}",
                sh.as_secs_f64() * 1e3,
                ranks_per_sec(nprocs, sh),
                el.as_secs_f64() / sh.as_secs_f64(),
            );
        }
    }

    println!("\n# Runtime-overhead floor @64 ranks (no I/O-path work)");
    println!("# columns: microbench,event_loop_ms,shards2_ms,shards4_ms");
    for (name, f) in [
        ("spawn-join", spawn_join as fn(Backend, usize) -> Duration),
        ("ping-pong", ping_pong),
    ] {
        let el = best_wall(scale.best_of, || f(Backend::EventLoop, 64));
        let s2 = best_wall(scale.best_of, || f(Backend::Sharded(2), 64));
        let s4 = best_wall(scale.best_of, || f(Backend::Sharded(4), 64));
        println!(
            "{name},{:.2},{:.2},{:.2}",
            el.as_secs_f64() * 1e3,
            s2.as_secs_f64() * 1e3,
            s4.as_secs_f64() * 1e3,
        );
    }
}
