//! Figure 7: persistent file realms × file-realm alignment, the Fig. 6
//! time-step pattern (one collective write per step), client write-back
//! caching and Lustre-style locks on.
//!
//! Paper scale (`--paper`): 32-byte elements, 100 elements/point, 2048
//! points, 32 time steps, clients ∈ {16, 32, 48, 64}, half of the clients
//! are aggregators, 2 MiB stripes. Default scale shrinks points/steps.

use flexio_bench::{best_of_ns, mbps, print_table, Scale};
use flexio_core::{Hints, MpiFile};
use flexio_hpio::TimeStepSpec;
use flexio_io::IoMethod;
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;

fn time_one(spec: TimeStepSpec, pfr: bool, align: bool, stripe: u64) -> u64 {
    let pfs = Pfs::new(PfsConfig {
        stripe_size: stripe,
        page_size: 4096,
        locking: true,
        lock_expansion: true,
        client_cache: true,
        ..PfsConfig::default()
    });
    let out = run(spec.nprocs, CostModel::default(), move |rank| {
        let hints = Hints {
            persistent_file_realms: pfr,
            fr_alignment: align.then_some(stripe),
            cb_nodes: Some((spec.nprocs / 2).max(1)),
            // "data sieving is always on" in this experiment (§6.4).
            io_method: IoMethod::DataSieve { buffer: 512 << 10 },
            ..Hints::default()
        };
        let mut f = MpiFile::open(rank, &pfs, "fig7", hints).unwrap();
        rank.barrier();
        let t0 = rank.now();
        for t in 0..spec.steps {
            let (disp, ftype) = spec.file_view(rank.rank(), t);
            f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
            let buf = spec.make_buffer(rank.rank(), t);
            let n = buf.len() as u64;
            f.write_all(&buf, &Datatype::bytes(n.max(1)), (n > 0) as u64).unwrap();
        }
        let elapsed = rank.now() - t0;
        f.close().unwrap();
        rank.allreduce_max(elapsed)
    });
    out[0]
}

fn main() {
    let scale = Scale::from_args();
    let (client_counts, points, steps, stripe): (Vec<usize>, u64, u64, u64) = if scale.paper {
        (vec![16, 32, 48, 64], 2048, 32, 2 << 20)
    } else {
        (vec![8, 16, 24, 32], 512, 8, 512 << 10)
    };
    // `--nprocs N` narrows the sweep to the one requested client count.
    let client_counts: Vec<usize> = match scale.nprocs {
        Some(n) => vec![n],
        None => client_counts,
    };
    let combos: [(&str, bool, bool); 4] = [
        ("pfr/fr-align", true, true),
        ("pfr/no-fr-align", true, false),
        ("no-pfr/fr-align", false, true),
        ("no-pfr/no-fr-align", false, false),
    ];

    println!("# Fig. 7 — PFRs & file realm alignment (half of clients are aggregators)");
    println!("# {}", scale.describe());
    println!("# columns: clients,combo,mbps");
    let mut series: Vec<(String, Vec<f64>)> =
        combos.iter().map(|(n, _, _)| (n.to_string(), Vec::new())).collect();
    for &clients in &client_counts {
        let spec = TimeStepSpec {
            elem_size: 32,
            elems_per_point: 100,
            points,
            steps,
            nprocs: clients,
        };
        let total = spec.bytes_per_step() * spec.steps;
        for (ci, (name, pfr, align)) in combos.iter().enumerate() {
            let ns = best_of_ns(scale.best_of, || time_one(spec, *pfr, *align, stripe));
            let bw = mbps(total, ns);
            println!("{clients},{name},{bw:.3}");
            series[ci].1.push(bw);
        }
    }
    let xs: Vec<String> = client_counts.iter().map(|c| c.to_string()).collect();
    print_table("PFRs & File Realm Alignment — I/O bandwidth (MB/s)", "clients", &xs, &series);
}
