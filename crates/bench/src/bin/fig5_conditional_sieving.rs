//! Figure 5: conditional data sieving — DataSieve vs Naive beneath
//! two-phase collective writes, one panel per datatype extent (1/8/16/64
//! KiB), region size swept from 3 % to 97 % of the extent.
//!
//! The file (1 GiB at paper scale) is pre-written so unaligned writes pay
//! read-modify-write, exactly as on a pre-existing Lustre file; the spikes
//! at 4 KiB-multiple region sizes come from page alignment.

use flexio_bench::{best_of_ns, hpio_collective_write_ns, mbps, print_table, Scale};
use flexio_core::Hints;
use flexio_hpio::{HpioSpec, TypeStyle};
use flexio_io::IoMethod;
use flexio_pfs::{Pfs, PfsConfig};

fn main() {
    let scale = Scale::from_args();
    // (extent, region sizes at ~3%..97% of extent, as in the paper's axes)
    let panels: Vec<(u64, Vec<u64>)> = vec![
        // The final point of each sweep is 100% of the extent: the
        // "contiguous in memory to contiguous in file" fast-path spike.
        (1 << 10, vec![32, 192, 352, 512, 672, 832, 992, 1024]),
        (8 << 10, vec![256, 1536, 2816, 4096, 5376, 6656, 7936, 8192]),
        (16 << 10, vec![512, 3072, 5632, 8192, 10752, 13312, 15872, 16384]),
        (64 << 10, vec![2048, 12288, 22528, 32768, 43008, 53248, 63488, 65536]),
    ];
    let (default_procs, file_bytes): (usize, u64) = if scale.paper {
        (64, 1 << 30)
    } else {
        (8, 64 << 20)
    };
    let nprocs = scale.nprocs_or(default_procs);
    let aggs = (nprocs / 2).max(1);
    let methods: [(&str, IoMethod); 3] = [
        ("datasieve", IoMethod::DataSieve { buffer: 512 << 10 }),
        ("naive", IoMethod::Naive),
        ("conditional", IoMethod::Conditional { extent_threshold: 16 << 10, sieve_buffer: 512 << 10 }),
    ];

    println!("# Fig. 5 — conditional data sieving and naive I/O from within collective I/O");
    println!("# {}", scale.describe());
    println!("# {nprocs} procs, {aggs} aggregators, file pre-sized to {file_bytes} bytes");
    println!("# columns: extent_bytes,region_size_bytes,percent,method,mbps");
    for (extent, region_sizes) in panels {
        let mut series: Vec<(String, Vec<f64>)> =
            methods.iter().map(|(n, _)| (n.to_string(), Vec::new())).collect();
        for &rs in &region_sizes {
            // Region count chosen so the access covers the whole file span:
            // count * extent * nprocs = file_bytes.
            let count = (file_bytes / (extent * nprocs as u64)).max(1);
            let spec = HpioSpec {
                region_size: rs,
                region_count: count,
                region_spacing: extent - rs,
                mem_noncontig: false,
                file_noncontig: true,
                nprocs,
            };
            let pct = rs * 100 / extent;
            for (mi, (name, method)) in methods.iter().enumerate() {
                let hints = Hints {
                    cb_nodes: Some(aggs),
                    io_method: *method,
                    ..Hints::default()
                };
                let ns = best_of_ns(scale.best_of, || {
                    let pfs = Pfs::new(PfsConfig::default());
                    // Pre-size the file so gaps contain real data (RMW).
                    let h = pfs.open("fig5", usize::MAX - 1);
                    let chunk = vec![0xAAu8; 4 << 20];
                    let mut off = 0u64;
                    while off < file_bytes {
                        let n = chunk.len().min((file_bytes - off) as usize);
                        h.write(0, off, &chunk[..n]).unwrap();
                        off += n as u64;
                    }
                    hpio_collective_write_ns(&pfs, spec, TypeStyle::Succinct, &hints, "fig5")
                });
                let bw = mbps(spec.aggregate_bytes(), ns);
                println!("{extent},{rs},{pct},{name},{bw:.2}");
                series[mi].1.push(bw);
            }
        }
        let xs: Vec<String> =
            region_sizes.iter().map(|r| format!("{r} ({}%)", r * 100 / extent)).collect();
        print_table(
            &format!("{} KiB datatype extent — I/O bandwidth (MB/s)", extent >> 10),
            "region",
            &xs,
            &series,
        );
    }
}
