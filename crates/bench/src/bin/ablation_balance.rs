//! Ablation A3 (§7 future work): load-balanced realm assignment vs the
//! even aggregate-access-region split, on sparse clustered accesses.
//!
//! Workload: every rank writes one stripe-aligned cluster near the start
//! of the file; rank 0 also writes a single straggler byte far away, which
//! stretches the AAR so the even split leaves all real data in one realm.

use flexio_bench::{best_of_ns, mbps, Scale};
use flexio_core::{BalancedLoad, EvenAar, Hints, MpiFile, RealmAssigner};
use flexio_pfs::{Pfs, PfsConfig};
use flexio_sim::{run, CostModel};
use flexio_types::Datatype;
use std::sync::Arc;

fn time_one(nprocs: usize, cluster: u64, straggler: u64, assigner: Arc<dyn RealmAssigner>) -> u64 {
    let pfs = Pfs::new(PfsConfig {
        stripe_size: cluster,
        page_size: 4096,
        ..PfsConfig::default()
    });
    let out = run(nprocs, CostModel::default(), move |rank| {
        let hints = Hints {
            realm_assigner: Some(Arc::clone(&assigner)),
            cb_nodes: Some(nprocs),
            ..Hints::default()
        };
        let mut f = MpiFile::open(rank, &pfs, "a3", hints).unwrap();
        let bt = Datatype::bytes(1);
        let t0;
        let elapsed;
        if rank.rank() == 0 {
            let ft = Datatype::hindexed(
                vec![(0, cluster), (straggler as i64, 1)],
                Datatype::bytes(1),
            );
            f.set_view(0, &bt, &ft).unwrap();
            let data = vec![7u8; cluster as usize + 1];
            t0 = rank.now();
            f.write_all(&data, &Datatype::bytes(cluster + 1), 1).unwrap();
            elapsed = rank.now() - t0;
        } else {
            let ft = Datatype::bytes(cluster);
            f.set_view(rank.rank() as u64 * cluster, &bt, &ft).unwrap();
            let data = vec![7u8; cluster as usize];
            t0 = rank.now();
            f.write_all(&data, &Datatype::bytes(cluster), 1).unwrap();
            elapsed = rank.now() - t0;
        }
        f.close().unwrap();
        rank.allreduce_max(elapsed)
    });
    out[0]
}

fn main() {
    let scale = Scale::from_args();
    let cluster: u64 = if scale.paper { 2 << 20 } else { 256 << 10 };
    println!("# Ablation A3 — realm assignment on sparse clustered access (§7)");
    println!("# {}", scale.describe());
    println!("# columns: nprocs,assigner,mbps");
    // `--nprocs N` narrows the sweep to the one requested world size.
    let proc_counts: Vec<usize> = match scale.nprocs {
        Some(n) => vec![n],
        None => vec![4, 8, 16],
    };
    for nprocs in proc_counts {
        let straggler = cluster * nprocs as u64 * 64; // sparse tail
        let total = cluster * nprocs as u64 + 1;
        for (name, assigner) in [
            ("even-aar", Arc::new(EvenAar) as Arc<dyn RealmAssigner>),
            ("balanced-load", Arc::new(BalancedLoad) as Arc<dyn RealmAssigner>),
        ] {
            let ns =
                best_of_ns(scale.best_of, || time_one(nprocs, cluster, straggler, assigner.clone()));
            println!("{nprocs},{name},{:.2}", mbps(total, ns));
        }
    }
    println!();
    println!("Expected shape: balanced-load spreads the clusters over all aggregators");
    println!("while even-aar funnels them through one; the gap grows with nprocs.");
}
