//! Ablation A8 — crash recovery: survivor-completion cost vs crash point.
//!
//! Two panels on the crash-checkpoint workload family
//! (`flexio_workload::run_crash_checkpoint`: clean epoch-committed
//! generations, then one generation with a seeded victim crash):
//!
//! 1. **Crash point**: slowdown of the crash generation (slowest
//!    survivor's virtual clock vs the same generation run fault-free)
//!    as the drawn crash time sweeps from collective entry to
//!    three-quarters through the run, with recovery on (`recover`: the
//!    survivors detect, re-elect aggregators, re-partition, and replay
//!    to a published survivor checkpoint) and off (`abort`: the same
//!    detection, then the agreed `RanksFailed` verdict — the cost of
//!    *failing cleanly*). One table per aggregator count: recovery
//!    replays whole collectives, so more aggregators change the realm
//!    re-partition but not the replay granularity.
//! 2. **Watchdog**: recovery slowdown at a mid-run crash vs
//!    `flexio_watchdog_us`. Detection latency is the watchdog deadline,
//!    so the curve is linear in the timeout until replay cost dominates
//!    — the knob trades false-positive margin against recovery time.
//!
//! Every recovered arm must publish the crash generation as a survivor
//! checkpoint; every aborted arm must leave the previous generation
//! committed. Both are asserted, so the ablation doubles as a smoke
//! test of the commit protocol at bench scale.
//!
//! Paper scale (`--paper`): 32 procs, aggregators {4, 16}.
//! Default scale: 8 procs, aggregators {2, 4}.

use flexio_bench::{print_table, Scale};
use flexio_workload::{run_crash_checkpoint, CrashOutcome, CrashScenario};

/// Clean generations committed before the crash generation: one, so the
/// aborted arms have an old epoch to fall back to.
const CLEAN_EPOCHS: u64 = 1;

#[derive(Debug, Clone, Copy)]
struct Shape {
    nprocs: usize,
    block: u64,
    reps: u64,
    aggs: usize,
}

impl Shape {
    fn scenario(&self, at_ns: u64, recovery: bool, watchdog_us: u64) -> CrashScenario {
        CrashScenario {
            seed: 0xA8,
            nprocs: self.nprocs,
            block: self.block,
            reps: self.reps,
            clean_epochs: CLEAN_EPOCHS,
            aggs: self.aggs,
            victim: self.nprocs / 2,
            at_ns,
            recovery,
            watchdog_us,
            torn_rate: 0.0,
        }
    }
}

struct Sample {
    /// Slowest surviving rank's clock in the crash generation.
    gen_ns: u64,
    /// Generation the header names after everything settled.
    committed: Option<u64>,
    recovered: u64,
    rebalanced: u64,
    survivors: usize,
}

fn sample(scn: &CrashScenario) -> Sample {
    let out: CrashOutcome = run_crash_checkpoint(scn);
    let last = out.epochs.last().expect("crash generation ran");
    let recs: Vec<_> = last.iter().flatten().collect();
    Sample {
        gen_ns: recs.iter().map(|r| r.clock).max().unwrap_or(0),
        committed: out.committed,
        recovered: recs.iter().map(|r| r.stats.ranks_recovered).max().unwrap_or(0),
        rebalanced: recs.iter().map(|r| r.stats.realms_rebalanced).max().unwrap_or(0),
        survivors: out.survivors.len(),
    }
}

fn main() {
    let scale = Scale::from_args();
    let (nprocs, block, reps, agg_counts): (usize, u64, u64, Vec<usize>) = if scale.paper {
        (32, 4096, 8, vec![4, 16])
    } else {
        (8, 1024, 4, vec![2, 4])
    };
    // `--nprocs N` rescales the world; aggregator counts track it.
    let (nprocs, agg_counts) = match scale.nprocs {
        Some(n) => (n, vec![(n / 8).max(1), (n / 2).max(1)]),
        None => (nprocs, agg_counts),
    };
    let watchdog_us = 200_000u64;

    println!("# Ablation A8 — crash recovery: survivor completion vs crash point");
    println!("# {}", scale.describe());
    println!(
        "# crash-checkpoint workload: {nprocs} procs x {reps} tiles of {block} B, \
         {CLEAN_EPOCHS} clean epoch(s) then a mid-world victim crash"
    );

    // ---- panel 1: crash point, recovery on vs off --------------------------
    println!("\n# panel 1: crash point sweep at watchdog {watchdog_us} us");
    println!(
        "# columns: aggs,frac,at_ns,mode,gen_ns,slowdown,survivors,\
         ranks_recovered,realms_rebalanced,committed"
    );
    let fracs = [0.0, 0.25, 0.5, 0.75];
    for &aggs in &agg_counts {
        let w = Shape { nprocs, block, reps, aggs };
        // Fault-free reference: the crash time past any checkpoint, so
        // the victim survives and the generation publishes in full.
        let base = sample(&w.scenario(u64::MAX / 2, true, watchdog_us));
        assert_eq!(base.committed, Some(CLEAN_EPOCHS), "reference run must publish");
        assert_eq!(base.survivors, nprocs, "reference run must keep every rank");
        let mut series: Vec<(String, Vec<f64>)> =
            vec![("recover".into(), Vec::new()), ("abort".into(), Vec::new())];
        for &frac in &fracs {
            let at_ns = (base.gen_ns as f64 * frac) as u64;
            for (si, (mode, recovery)) in
                [("recover", true), ("abort", false)].iter().enumerate()
            {
                let s = sample(&w.scenario(at_ns, *recovery, watchdog_us));
                assert_eq!(s.survivors, nprocs - 1, "frac {frac}: the victim must die");
                if *recovery {
                    assert_eq!(s.committed, Some(CLEAN_EPOCHS), "recovered arm must publish");
                    assert_eq!(s.recovered, 1, "one dead peer counted");
                } else {
                    assert_eq!(
                        s.committed,
                        Some(CLEAN_EPOCHS - 1),
                        "aborted arm must keep the old epoch"
                    );
                }
                let slowdown = s.gen_ns as f64 / base.gen_ns as f64;
                println!(
                    "{aggs},{frac},{at_ns},{mode},{},{:.3},{},{},{},{:?}",
                    s.gen_ns, slowdown, s.survivors, s.recovered, s.rebalanced, s.committed
                );
                series[si].1.push(slowdown);
            }
        }
        print_table(
            &format!("A8.1 crash-generation slowdown, {aggs} aggs"),
            "crash frac",
            &fracs.iter().map(|f| format!("{f}")).collect::<Vec<_>>(),
            &series,
        );
    }

    // ---- panel 2: watchdog timeout at a mid-run crash ----------------------
    println!("\n# panel 2: watchdog sweep, mid-run crash, recovery on");
    println!("# columns: aggs,watchdog_us,gen_ns,slowdown,realms_rebalanced");
    let watchdogs = [10_000u64, 50_000, 200_000, 1_000_000];
    let mut series: Vec<(String, Vec<f64>)> =
        agg_counts.iter().map(|a| (format!("{a} aggs"), Vec::new())).collect();
    for (si, &aggs) in agg_counts.iter().enumerate() {
        let w = Shape { nprocs, block, reps, aggs };
        let base = sample(&w.scenario(u64::MAX / 2, true, watchdog_us));
        for &wd in &watchdogs {
            let s = sample(&w.scenario(base.gen_ns / 2, true, wd));
            assert_eq!(s.committed, Some(CLEAN_EPOCHS), "recovered arm must publish");
            let slowdown = s.gen_ns as f64 / base.gen_ns as f64;
            println!("{aggs},{wd},{},{:.3},{}", s.gen_ns, slowdown, s.rebalanced);
            series[si].1.push(slowdown);
        }
    }
    print_table(
        "A8.2 recovery slowdown vs watchdog timeout (mid-run crash)",
        "watchdog us",
        &watchdogs.iter().map(|w| format!("{w}")).collect::<Vec<_>>(),
        &series,
    );
}
