//! # flexio-io — independent I/O methods over the parallel file system
//!
//! These are the "optimizations beneath collective I/O" of the paper's
//! §5.1/§6.3: ways of moving a *packed* byte stream to/from a sorted list
//! of non-contiguous file segments.
//!
//! * [`IoMethod::Naive`] — list I/O: one file-system call per contiguous
//!   segment. Pays per-request overhead per segment (and page RMW for
//!   unaligned segments), but touches only useful bytes.
//! * [`IoMethod::DataSieve`] — read the covering extent into a sieve
//!   buffer, patch (write case) or extract (read case), and write the whole
//!   chunk back. Few large sequential requests, but moves gap bytes too.
//! * [`IoMethod::Conditional`] — the paper's conditional data sieving:
//!   choose between the two by the datatype extent (crossover ≈ 16 KiB in
//!   §6.3), with a contiguous fast path when segments form one run.
//!
//! Because the flexible collective engine funnels every buffer cycle
//! through this one interface, the method can differ per cycle — the "more
//! code paths with less code" point of §5.1.

#![warn(missing_docs)]

use flexio_pfs::{FileHandle, PfsError};

/// How to move packed data between memory and non-contiguous file space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMethod {
    /// One file-system call per contiguous segment (list I/O).
    Naive,
    /// Data sieving with the given sieve-buffer size in bytes.
    DataSieve {
        /// Sieve buffer size in bytes (ROMIO default: 512 KiB).
        buffer: usize,
    },
    /// Pick [`IoMethod::Naive`] when the access pattern's datatype extent
    /// is at least `extent_threshold`, otherwise sieve (§6.3).
    Conditional {
        /// Datatype-extent crossover in bytes (paper: ≈ 16 KiB).
        extent_threshold: u64,
        /// Sieve buffer size used when sieving is chosen.
        sieve_buffer: usize,
    },
}

impl Default for IoMethod {
    fn default() -> Self {
        IoMethod::Conditional { extent_threshold: 16 << 10, sieve_buffer: 512 << 10 }
    }
}

/// The concrete method picked after conditional resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolved {
    /// Single contiguous run: one plain call.
    Contiguous,
    /// Per-segment calls.
    Naive,
    /// Sieve with this buffer size.
    DataSieve(usize),
}

/// Resolve a method against an access: `segs` are sorted non-overlapping
/// `(offset, len)` pairs; `pattern_extent` is the datatype extent of the
/// pattern that produced them (the conditional's selection metric).
pub fn resolve(method: &IoMethod, segs: &[(u64, u64)], pattern_extent: u64) -> Resolved {
    let contiguous = match segs {
        [] | [_] => true,
        _ => segs.windows(2).all(|w| w[0].0 + w[0].1 == w[1].0),
    };
    if contiguous {
        return Resolved::Contiguous;
    }
    match *method {
        IoMethod::Naive => Resolved::Naive,
        IoMethod::DataSieve { buffer } => Resolved::DataSieve(buffer),
        IoMethod::Conditional { extent_threshold, sieve_buffer } => {
            if pattern_extent >= extent_threshold {
                Resolved::Naive
            } else {
                Resolved::DataSieve(sieve_buffer)
            }
        }
    }
}

fn total_len(segs: &[(u64, u64)]) -> u64 {
    segs.iter().map(|(_, l)| l).sum()
}

fn check_segs(segs: &[(u64, u64)], packed_len: usize) {
    debug_assert_eq!(total_len(segs), packed_len as u64, "packed buffer length mismatch");
    debug_assert!(
        segs.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0),
        "segments must be sorted and non-overlapping"
    );
    debug_assert!(segs.iter().all(|(_, l)| *l > 0), "zero-length segment");
}

/// A packed-stream I/O operation in flight: the issue/wait split of
/// [`write_packed`]/[`read_packed`]. Like [`flexio_pfs::NbOp`], the data
/// movement is already done when the completion is returned — only the
/// op's virtual window is pending, so a caller can overlap it with other
/// work and charge `max` instead of the sum.
///
/// If any underlying PFS request faulted, the completion still spans the
/// full virtual window (every request was issued, so a retry of the same
/// packed op is idempotent) and [`IoCompletion::error`] reports the first
/// fault, stamped with the op's completion time.
#[must_use = "an issued I/O must be waited on to charge its virtual time"]
#[derive(Debug, Clone, Copy)]
pub struct IoCompletion {
    issued_at: u64,
    done_at: u64,
    err: Option<PfsError>,
}

impl IoCompletion {
    /// A completion spanning `[issued_at, done_at)` — for callers that
    /// compose several lower-level ops (locks, sieve chunks, stripes) into
    /// one logical request window.
    pub fn span(issued_at: u64, done_at: u64) -> IoCompletion {
        debug_assert!(done_at >= issued_at, "completion must not end before it starts");
        IoCompletion { issued_at, done_at, err: None }
    }

    /// The window covering both `self` and `other` (earliest issue to
    /// latest completion) — chained ops reported as one. Keeps the first
    /// fault of the pair (`self`'s takes precedence).
    pub fn merged(self, other: IoCompletion) -> IoCompletion {
        IoCompletion {
            issued_at: self.issued_at.min(other.issued_at),
            done_at: self.done_at.max(other.done_at),
            err: self.err.or(other.err),
        }
    }

    /// Virtual time the operation was issued at.
    pub fn issued_at(&self) -> u64 {
        self.issued_at
    }

    /// Virtual time the operation completes at (successfully or not).
    pub fn done_at(&self) -> u64 {
        self.done_at
    }

    /// The operation's virtual duration.
    pub fn duration(&self) -> u64 {
        self.done_at.saturating_sub(self.issued_at)
    }

    /// The first fault any underlying request reported, if any, with
    /// `at` normalised to the op's completion time.
    pub fn error(&self) -> Option<PfsError> {
        self.err
    }

    /// Block until completion: the later of `now` and `done_at`, or the
    /// op's fault stamped at that moment.
    pub fn wait(&self, now: u64) -> Result<u64, PfsError> {
        let done = now.max(self.done_at);
        match self.err {
            Some(e) => Err(PfsError { at: done, ..e }),
            None => Ok(done),
        }
    }

    /// Record a fault observed while composing this window (a failed lock
    /// acquisition, a retry-exhausted request) unless an earlier fault is
    /// already carried; the recorded fault is restamped to the window's
    /// completion time like any other.
    pub fn or_error(self, err: Option<PfsError>) -> IoCompletion {
        IoCompletion::new(self.issued_at, self.done_at, self.err.or(err))
    }

    /// Split into the completion time and any fault — for callers that
    /// charge the window regardless of outcome.
    pub fn into_result(self) -> Result<u64, PfsError> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.done_at),
        }
    }

    fn new(issued_at: u64, done_at: u64, err: Option<PfsError>) -> IoCompletion {
        IoCompletion {
            issued_at,
            done_at,
            err: err.map(|e| PfsError { at: done_at, ..e }),
        }
    }
}

/// Write `packed` (segments concatenated in order) to the file segments
/// using `method`. Returns the virtual completion time, or the first
/// injected fault (stamped with that completion time — the data is
/// committed and the window fully charged either way).
pub fn write_packed(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    packed: &[u8],
    method: &IoMethod,
    pattern_extent: u64,
) -> Result<u64, PfsError> {
    write_packed_nb(h, now, segs, packed, method, pattern_extent).into_result()
}

/// Issue half of [`write_packed`]: data is committed immediately, the
/// returned completion carries the virtual window the write occupies and
/// any fault an underlying request reported.
pub fn write_packed_nb(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    packed: &[u8],
    method: &IoMethod,
    pattern_extent: u64,
) -> IoCompletion {
    if segs.is_empty() {
        return IoCompletion::span(now, now);
    }
    check_segs(segs, packed.len());
    let (done_at, err) = match resolve(method, segs, pattern_extent) {
        Resolved::Contiguous => {
            let op = h.pwrite_nb(now, segs[0].0, packed);
            (op.done_at(), op.error())
        }
        Resolved::Naive => {
            // List I/O requests depend on each other only through the
            // handle's request stream; chain their completion times. A
            // faulted request still charges its window, so the remaining
            // segments are issued and the first fault captured.
            let mut t = now;
            let mut pos = 0usize;
            let mut err = None;
            for &(off, len) in segs {
                let op = h.pwrite_nb(t, off, &packed[pos..pos + len as usize]);
                t = op.done_at();
                err = err.or(op.error());
                pos += len as usize;
            }
            (t, err)
        }
        Resolved::DataSieve(buffer) => sieve_write(h, now, segs, packed, buffer),
    };
    IoCompletion::new(now, done_at, err)
}

/// Read the file segments into `packed` using `method`. Returns the
/// virtual completion time, or the first injected fault (stamped with
/// that completion time — `packed` is filled and the window fully
/// charged either way).
pub fn read_packed(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    packed: &mut [u8],
    method: &IoMethod,
    pattern_extent: u64,
) -> Result<u64, PfsError> {
    read_packed_nb(h, now, segs, packed, method, pattern_extent).into_result()
}

/// Issue half of [`read_packed`]: `packed` is filled immediately, the
/// returned completion carries the virtual window the read occupies and
/// any fault an underlying request reported.
pub fn read_packed_nb(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    packed: &mut [u8],
    method: &IoMethod,
    pattern_extent: u64,
) -> IoCompletion {
    if segs.is_empty() {
        return IoCompletion::span(now, now);
    }
    check_segs(segs, packed.len());
    let (done_at, err) = match resolve(method, segs, pattern_extent) {
        Resolved::Contiguous => {
            let op = h.pread_nb(now, segs[0].0, packed);
            (op.done_at(), op.error())
        }
        Resolved::Naive => {
            let mut t = now;
            let mut pos = 0usize;
            let mut err = None;
            for &(off, len) in segs {
                let op = h.pread_nb(t, off, &mut packed[pos..pos + len as usize]);
                t = op.done_at();
                err = err.or(op.error());
                pos += len as usize;
            }
            (t, err)
        }
        Resolved::DataSieve(buffer) => sieve_read(h, now, segs, packed, buffer),
    };
    IoCompletion::new(now, done_at, err)
}

/// Scatter-gather twin of [`write_packed_nb`]: the packed stream arrives
/// as an iovec-style run list (`runs`, concatenating to the segments'
/// bytes) instead of one contiguous buffer, so callers holding borrowed
/// user-buffer or received-payload slices skip the intermediate packed
/// copy. Segment boundaries and run boundaries cut the same byte stream
/// independently — neither needs to nest in the other.
///
/// Charged identically to [`write_packed_nb`] of the same segments: the
/// PFS sees the same requests (vectored where the packed path was
/// contiguous per request). Data sieving still assembles a contiguous
/// patch stream internally — the sieve chunk RMW needs one — which is why
/// engines route sieve-resolved groups through the packed path and charge
/// that copy explicitly.
pub fn write_gathered_nb(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    runs: &[&[u8]],
    method: &IoMethod,
    pattern_extent: u64,
) -> IoCompletion {
    if segs.is_empty() {
        return IoCompletion::span(now, now);
    }
    let run_total: usize = runs.iter().map(|r| r.len()).sum();
    check_segs(segs, run_total);
    let (done_at, err) = match resolve(method, segs, pattern_extent) {
        Resolved::Contiguous => {
            let op = h.pwritev_nb(now, segs[0].0, runs);
            (op.done_at(), op.error())
        }
        Resolved::Naive => {
            // One vectored request per segment, the sub-runs carved out of
            // the shared stream; completion times chain like list I/O.
            let mut t = now;
            let mut err = None;
            let mut ri = 0usize;
            let mut within = 0usize;
            for &(off, len) in segs {
                let mut sub: Vec<&[u8]> = Vec::new();
                let mut remaining = len as usize;
                while remaining > 0 {
                    let r = runs[ri];
                    let take = (r.len() - within).min(remaining);
                    sub.push(&r[within..within + take]);
                    within += take;
                    remaining -= take;
                    if within == r.len() {
                        ri += 1;
                        within = 0;
                    }
                }
                let op = h.pwritev_nb(t, off, &sub);
                t = op.done_at();
                err = err.or(op.error());
            }
            (t, err)
        }
        Resolved::DataSieve(buffer) => {
            // The sieve RMW patches a contiguous chunk stream: assemble one
            // here. Callers wanting this copy *charged* use the packed path.
            let mut joined = Vec::with_capacity(run_total);
            for r in runs {
                joined.extend_from_slice(r);
            }
            sieve_write(h, now, segs, &joined, buffer)
        }
    };
    IoCompletion::new(now, done_at, err)
}

/// Scatter-gather twin of [`read_packed_nb`]: the segments' bytes land
/// straight in the caller's run list (`dests`, filled in stream order)
/// with no intermediate packed buffer. Charged identically to
/// [`read_packed_nb`] of the same segments; sieve chunks extract into the
/// destination runs directly (the chunk buffer is inherent to sieving).
pub fn read_scattered_nb(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    dests: &mut [&mut [u8]],
    method: &IoMethod,
    pattern_extent: u64,
) -> IoCompletion {
    if segs.is_empty() {
        return IoCompletion::span(now, now);
    }
    let dest_total: usize = dests.iter().map(|d| d.len()).sum();
    check_segs(segs, dest_total);
    let (done_at, err) = match resolve(method, segs, pattern_extent) {
        Resolved::Contiguous => {
            let op = h.preadv_nb(now, segs[0].0, dests);
            (op.done_at(), op.error())
        }
        Resolved::Naive => {
            let mut t = now;
            let mut err = None;
            let mut iter = dests.iter_mut();
            let mut cur: &mut [u8] = &mut [];
            for &(off, len) in segs {
                let mut sub: Vec<&mut [u8]> = Vec::new();
                let mut remaining = len as usize;
                while remaining > 0 {
                    while cur.is_empty() {
                        cur = std::mem::take(iter.next().expect("dest runs exhausted"));
                    }
                    let take = cur.len().min(remaining);
                    let (head, tail) = std::mem::take(&mut cur).split_at_mut(take);
                    sub.push(head);
                    cur = tail;
                    remaining -= take;
                }
                let op = h.preadv_nb(t, off, &mut sub);
                t = op.done_at();
                err = err.or(op.error());
            }
            (t, err)
        }
        Resolved::DataSieve(buffer) => {
            let mut packed = vec![0u8; dest_total];
            let (t, err) = sieve_read(h, now, segs, &mut packed, buffer);
            let mut pos = 0usize;
            for d in dests.iter_mut() {
                d.copy_from_slice(&packed[pos..pos + d.len()]);
                pos += d.len();
            }
            (t, err)
        }
    };
    IoCompletion::new(now, done_at, err)
}

/// Data-sieving write: for each sieve-buffer-sized chunk of the covering
/// extent, pre-read it (unless the chunk is fully covered by data), patch
/// in the packed bytes, and write the whole chunk back.
fn sieve_write(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    packed: &[u8],
    buffer: usize,
) -> (u64, Option<PfsError>) {
    let buffer = buffer.max(1) as u64;
    let start = segs[0].0;
    let end = segs.last().unwrap().0 + segs.last().unwrap().1;
    let mut t = now;
    let mut err = None;
    let mut chunk_start = start;
    // Cursor into segs/packed shared across chunks.
    let mut si = 0usize;
    let mut packed_pos = 0usize;
    while chunk_start < end {
        let chunk_end = (chunk_start + buffer).min(end);
        // Collect the segment runs overlapping this chunk, clipped.
        let covered = chunk_fully_covered(segs, si, chunk_start, chunk_end);
        let mut chunk_segs: Vec<(u64, u64)> = Vec::new();
        let mut chunk_packed: Vec<u8> = Vec::new();
        while si < segs.len() && segs[si].0 < chunk_end {
            let (off, len) = segs[si];
            let seg_end = off + len;
            let lo = off.max(chunk_start);
            let hi = seg_end.min(chunk_end);
            let in_packed = packed_pos + (lo - off) as usize;
            chunk_segs.push((lo, hi - lo));
            chunk_packed.extend_from_slice(&packed[in_packed..in_packed + (hi - lo) as usize]);
            if seg_end <= chunk_end {
                packed_pos += len as usize;
                si += 1;
            } else {
                break; // segment continues into the next chunk
            }
        }
        // Atomic read-modify-write: the file system holds its RMW lock
        // across the pre-read and the write-back so concurrent writers
        // to gap bytes are never clobbered (ROMIO's fcntl sieve lock).
        t = match h.sieve_chunk_write(
            t,
            chunk_start,
            chunk_end - chunk_start,
            &chunk_segs,
            &chunk_packed,
            covered,
        ) {
            Ok(done) => done,
            Err(e) => {
                // The chunk's data landed and its window was charged
                // (`e.at` is its completion time); record the first fault
                // and keep issuing the remaining chunks.
                err = err.or(Some(e));
                e.at
            }
        };
        // Skip straight to the next segment: empty sieve windows are not
        // read or written (as in ADIOI), so distant segment groups do not
        // drag the whole gap through the sieve buffer.
        chunk_start = match segs.get(si) {
            Some(&(off, _)) => off.max(chunk_end),
            None => end,
        };
    }
    (t, err)
}

/// Data-sieving read: read each chunk of the covering extent and extract
/// the segment bytes.
fn sieve_read(
    h: &FileHandle,
    now: u64,
    segs: &[(u64, u64)],
    packed: &mut [u8],
    buffer: usize,
) -> (u64, Option<PfsError>) {
    let buffer = buffer.max(1) as u64;
    let start = segs[0].0;
    let end = segs.last().unwrap().0 + segs.last().unwrap().1;
    let mut t = now;
    let mut err = None;
    let mut chunk_start = start;
    let mut si = 0usize;
    let mut packed_pos = 0usize;
    while chunk_start < end {
        let chunk_end = (chunk_start + buffer).min(end);
        let clen = (chunk_end - chunk_start) as usize;
        let mut buf = vec![0u8; clen];
        t = match h.read(t, chunk_start, &mut buf) {
            Ok(done) => done,
            Err(e) => {
                err = err.or(Some(e));
                e.at
            }
        };
        while si < segs.len() && segs[si].0 < chunk_end {
            let (off, len) = segs[si];
            let seg_end = off + len;
            let lo = off.max(chunk_start);
            let hi = seg_end.min(chunk_end);
            let in_packed = packed_pos + (lo - off) as usize;
            packed[in_packed..in_packed + (hi - lo) as usize]
                .copy_from_slice(&buf[(lo - chunk_start) as usize..(hi - chunk_start) as usize]);
            if seg_end <= chunk_end {
                packed_pos += len as usize;
                si += 1;
            } else {
                break;
            }
        }
        chunk_start = match segs.get(si) {
            Some(&(off, _)) => off.max(chunk_end),
            None => end,
        };
    }
    (t, err)
}

fn chunk_fully_covered(segs: &[(u64, u64)], si: usize, chunk_start: u64, chunk_end: u64) -> bool {
    let mut pos = chunk_start;
    for &(off, len) in &segs[si..] {
        if off > pos {
            return false;
        }
        pos = pos.max(off + len);
        if pos >= chunk_end {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_pfs::{Pfs, PfsConfig, PfsCostModel};
    use std::sync::Arc;

    fn pfs() -> Arc<Pfs> {
        Pfs::new(PfsConfig::test_tiny())
    }

    fn timed_pfs() -> Arc<Pfs> {
        Pfs::new(PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() })
    }

    fn strided_segs(start: u64, n: u64, len: u64, stride: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (start + i * stride, len)).collect()
    }

    fn packed_for(segs: &[(u64, u64)]) -> Vec<u8> {
        (0..total_len(segs)).map(|i| (i % 241 + 1) as u8).collect()
    }

    fn readback(pfs: &Arc<Pfs>, segs: &[(u64, u64)]) -> Vec<u8> {
        let h = pfs.open("f", 99);
        let mut out = Vec::new();
        for &(off, len) in segs {
            let mut buf = vec![0u8; len as usize];
            let _ = h.read(0, off, &mut buf); // data lands even if a fault is injected
            out.extend(buf);
        }
        out
    }

    #[test]
    fn resolve_contiguous_fast_path() {
        let segs = [(0u64, 10u64), (10, 20), (30, 5)];
        assert_eq!(resolve(&IoMethod::Naive, &segs, 1 << 20), Resolved::Contiguous);
        assert_eq!(resolve(&IoMethod::Naive, &[], 0), Resolved::Contiguous);
    }

    #[test]
    fn resolve_conditional_threshold() {
        let segs = [(0u64, 4u64), (100, 4)];
        let m = IoMethod::Conditional { extent_threshold: 1000, sieve_buffer: 64 };
        assert_eq!(resolve(&m, &segs, 999), Resolved::DataSieve(64));
        assert_eq!(resolve(&m, &segs, 1000), Resolved::Naive);
    }

    #[test]
    fn naive_write_roundtrip() {
        let pfs = pfs();
        let h = pfs.open("f", 0);
        let segs = strided_segs(5, 10, 7, 23);
        let data = packed_for(&segs);
        write_packed(&h, 0, &segs, &data, &IoMethod::Naive, 0).unwrap();
        assert_eq!(readback(&pfs, &segs), data);
    }

    #[test]
    fn sieve_write_roundtrip() {
        let pfs = pfs();
        let h = pfs.open("f", 0);
        let segs = strided_segs(5, 10, 7, 23);
        let data = packed_for(&segs);
        write_packed(&h, 0, &segs, &data, &IoMethod::DataSieve { buffer: 64 }, 0).unwrap();
        assert_eq!(readback(&pfs, &segs), data);
    }

    #[test]
    fn sieve_write_preserves_gap_data() {
        let pfs = pfs();
        let h = pfs.open("f", 0);
        // Pre-fill the file with 9s.
        h.write(0, 0, &vec![9u8; 300]).unwrap();
        let segs = strided_segs(10, 5, 4, 20);
        let data = packed_for(&segs);
        write_packed(&h, 0, &segs, &data, &IoMethod::DataSieve { buffer: 32 }, 0).unwrap();
        assert_eq!(readback(&pfs, &segs), data);
        // Gap bytes untouched.
        let mut gap = [0u8; 4];
        h.read(0, 14, &mut gap).unwrap();
        assert_eq!(gap, [9u8; 4]);
    }

    #[test]
    fn sieve_segment_spanning_chunks() {
        let pfs = pfs();
        let h = pfs.open("f", 0);
        // One 100-byte segment with a 10-byte sieve buffer.
        let segs = vec![(3u64, 100u64), (200, 8)];
        let data = packed_for(&segs);
        write_packed(&h, 0, &segs, &data, &IoMethod::DataSieve { buffer: 10 }, 0).unwrap();
        assert_eq!(readback(&pfs, &segs), data);
    }

    #[test]
    fn reads_match_writes_all_methods() {
        for method in [
            IoMethod::Naive,
            IoMethod::DataSieve { buffer: 48 },
            IoMethod::Conditional { extent_threshold: 10, sieve_buffer: 48 },
            IoMethod::Conditional { extent_threshold: 1 << 30, sieve_buffer: 48 },
        ] {
            let pfs = pfs();
            let h = pfs.open("f", 0);
            let segs = strided_segs(11, 9, 6, 31);
            let data = packed_for(&segs);
            write_packed(&h, 0, &segs, &data, &IoMethod::Naive, 0).unwrap();
            let mut out = vec![0u8; data.len()];
            read_packed(&h, 0, &segs, &mut out, &method, 100).unwrap();
            assert_eq!(out, data, "method {method:?}");
        }
    }

    #[test]
    fn naive_issues_more_requests_than_sieve() {
        let pfs_a = timed_pfs();
        let h = pfs_a.open("f", 0);
        let segs = strided_segs(0, 16, 4, 16);
        let data = packed_for(&segs);
        write_packed(&h, 0, &segs, &data, &IoMethod::Naive, 0).unwrap();
        let naive_reqs = pfs_a.stats().ost_requests;

        let pfs_b = timed_pfs();
        let h = pfs_b.open("f", 0);
        write_packed(&h, 0, &segs, &data, &IoMethod::DataSieve { buffer: 1 << 20 }, 0).unwrap();
        let sieve_reqs = pfs_b.stats().ost_requests;
        assert!(
            naive_reqs > sieve_reqs,
            "naive {naive_reqs} should exceed sieve {sieve_reqs}"
        );
    }

    #[test]
    fn sieve_moves_more_bytes_than_naive() {
        let segs = strided_segs(0, 16, 4, 64); // 6% useful
        let data = packed_for(&segs);

        let pfs_a = timed_pfs();
        let h = pfs_a.open("f", 0);
        write_packed(&h, 0, &segs, &data, &IoMethod::Naive, 0).unwrap();
        let naive_bytes = pfs_a.stats().bytes_written;

        let pfs_b = timed_pfs();
        let h = pfs_b.open("f", 0);
        write_packed(&h, 0, &segs, &data, &IoMethod::DataSieve { buffer: 1 << 20 }, 0).unwrap();
        let sieve_bytes = pfs_b.stats().bytes_written;
        assert!(sieve_bytes > naive_bytes * 5, "sieve {sieve_bytes} vs naive {naive_bytes}");
    }

    #[test]
    fn fully_covered_chunk_skips_preread() {
        let pfs = timed_pfs();
        let h = pfs.open("f", 0);
        let segs = vec![(0u64, 64u64)];
        let data = packed_for(&segs);
        // Single contiguous run resolves to Contiguous in write_packed; use
        // sieve_write directly to check the coverage logic.
        let (t, err) = super::sieve_write(&h, 0, &segs, &data, 64);
        assert!(err.is_none());
        assert!(t > 0);
        assert_eq!(pfs.stats().bytes_read, 0, "covered chunk must skip pre-read");
    }

    #[test]
    fn write_empty_segments_noop() {
        let pfs = pfs();
        let h = pfs.open("f", 0);
        let t = write_packed(&h, 5, &[], &[], &IoMethod::Naive, 0).unwrap();
        assert_eq!(t, 5);
        assert_eq!(h.size(), 0);
    }

    #[test]
    fn sieve_skips_large_gaps() {
        // Two segment groups separated by a gap far larger than the sieve
        // buffer: the gap must not be read or written.
        let pfs = timed_pfs();
        let h = pfs.open("f", 0);
        h.write(0, 0, &vec![9u8; 4000]).unwrap(); // pre-fill so gaps hold data
        let before = pfs.stats().bytes_read;
        let segs = vec![(0u64, 4u64), (8, 4), (3000, 4), (3008, 4)];
        let data = packed_for(&segs);
        write_packed(&h, 0, &segs, &data, &IoMethod::DataSieve { buffer: 64 }, 0).unwrap();
        let read = pfs.stats().bytes_read - before;
        assert!(read < 100, "sieve read {read} bytes; it must skip the 3 KB gap");
        assert_eq!(readback(&pfs, &segs), data);
        // Gap data intact.
        let mut gap = [0u8; 4];
        h.read(0, 100, &mut gap).unwrap();
        assert_eq!(gap, [9u8; 4]);
    }

    #[test]
    fn concurrent_sieve_writers_never_clobber() {
        // Two threads sieve-write interleaved segments of the same region
        // concurrently, many rounds. Without atomic RMW, one thread's
        // write-back of stale gap bytes erases the other's data.
        for round in 0..50 {
            let pfs = pfs();
            let h0 = pfs.open("f", 0);
            let h1 = pfs.open("f", 1);
            // Interleaved 8-byte segments over 512 bytes: rank 0 even
            // slots, rank 1 odd slots.
            let segs0: Vec<(u64, u64)> = (0..32).map(|i| (i * 16, 8u64)).collect();
            let segs1: Vec<(u64, u64)> = (0..32).map(|i| (i * 16 + 8, 8u64)).collect();
            let d0 = vec![1u8; 32 * 8];
            let d1 = vec![2u8; 32 * 8];
            std::thread::scope(|s| {
                s.spawn(|| {
                    write_packed(&h0, 0, &segs0, &d0, &IoMethod::DataSieve { buffer: 96 }, 0).unwrap()
                });
                s.spawn(|| {
                    write_packed(&h1, 0, &segs1, &d1, &IoMethod::DataSieve { buffer: 96 }, 0).unwrap()
                });
            });
            let mut img = vec![0u8; 512];
            pfs.open("f", 9).read(0, 0, &mut img).unwrap();
            for (i, &b) in img.iter().enumerate() {
                let want = if (i / 8) % 2 == 0 { 1 } else { 2 };
                assert_eq!(b, want, "round {round}: byte {i} clobbered");
            }
        }
    }

    #[test]
    fn nb_split_matches_blocking() {
        for method in [
            IoMethod::Naive,
            IoMethod::DataSieve { buffer: 48 },
            IoMethod::default(),
        ] {
            let pfs_a = timed_pfs();
            let pfs_b = timed_pfs();
            let ha = pfs_a.open("f", 0);
            let hb = pfs_b.open("f", 0);
            let segs = strided_segs(11, 9, 6, 31);
            let data = packed_for(&segs);
            let t_blocking = write_packed(&ha, 700, &segs, &data, &method, 100).unwrap();
            let c = write_packed_nb(&hb, 700, &segs, &data, &method, 100);
            assert_eq!(c.issued_at(), 700);
            assert_eq!(c.done_at(), t_blocking, "method {method:?}");
            assert_eq!(c.duration(), t_blocking - 700);
            let mut out_a = vec![0u8; data.len()];
            let mut out_b = vec![0u8; data.len()];
            let r_blocking = read_packed(&ha, t_blocking, &segs, &mut out_a, &method, 100).unwrap();
            // The nb read sees the committed data without waiting on the
            // write's completion handle first.
            let r = read_packed_nb(&hb, t_blocking, &segs, &mut out_b, &method, 100);
            assert_eq!(r.done_at(), r_blocking);
            assert_eq!(out_b, data);
            assert_eq!(out_a, out_b);
            assert_eq!(readback(&pfs_b, &segs), data);
            // wait() clamps in both directions.
            assert_eq!(r.wait(0).unwrap(), r.done_at());
            assert_eq!(r.wait(r.done_at() + 3).unwrap(), r.done_at() + 3);
        }
    }

    /// Split `data` into runs at pseudo-odd boundaries so run cuts and
    /// segment cuts never line up by accident.
    fn odd_runs(data: &[u8]) -> Vec<&[u8]> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut step = 3usize;
        while pos < data.len() {
            let take = step.min(data.len() - pos);
            out.push(&data[pos..pos + take]);
            pos += take;
            step = step % 7 + 3; // 3,6,4,7,3,...
        }
        out
    }

    #[test]
    fn gathered_write_matches_packed_in_time_and_bytes() {
        for method in [
            IoMethod::Naive,
            IoMethod::DataSieve { buffer: 48 },
            IoMethod::default(),
        ] {
            let pfs_a = timed_pfs();
            let pfs_b = timed_pfs();
            let ha = pfs_a.open("f", 0);
            let hb = pfs_b.open("f", 0);
            let segs = strided_segs(11, 9, 6, 31);
            let data = packed_for(&segs);
            let packed = write_packed_nb(&ha, 700, &segs, &data, &method, 100);
            let runs = odd_runs(&data);
            let gathered = write_gathered_nb(&hb, 700, &segs, &runs, &method, 100);
            assert_eq!(gathered.done_at(), packed.done_at(), "method {method:?}");
            // Compare stats before readback: reading from another client
            // revokes the writer's cached pages and the flush traffic
            // would skew whichever side is read first.
            assert_eq!(
                pfs_a.stats().bytes_written,
                pfs_b.stats().bytes_written,
                "method {method:?}"
            );
            assert_eq!(
                pfs_a.stats().ost_requests,
                pfs_b.stats().ost_requests,
                "method {method:?} request count"
            );
            assert_eq!(readback(&pfs_b, &segs), data, "method {method:?}");
            assert_eq!(readback(&pfs_a, &segs), data, "method {method:?}");
        }
    }

    #[test]
    fn scattered_read_matches_packed_in_time_and_bytes() {
        for method in [
            IoMethod::Naive,
            IoMethod::DataSieve { buffer: 48 },
            IoMethod::default(),
        ] {
            // Twin filesystems: a read advances the OST clocks and warms
            // the client cache, so running both reads against one PFS
            // would make the second strictly cheaper.
            let pfs_a = timed_pfs();
            let pfs_b = timed_pfs();
            let ha = pfs_a.open("f", 0);
            let hb = pfs_b.open("f", 0);
            let segs = strided_segs(11, 9, 6, 31);
            let data = packed_for(&segs);
            let ta = write_packed(&ha, 0, &segs, &data, &IoMethod::Naive, 100).unwrap();
            let tb = write_packed(&hb, 0, &segs, &data, &IoMethod::Naive, 100).unwrap();
            assert_eq!(ta, tb);
            let t = ta;
            let mut packed_out = vec![0u8; data.len()];
            let packed = read_packed_nb(&ha, t, &segs, &mut packed_out, &method, 100);
            // Scatter into unevenly sized destination runs (incl. empties).
            let mut bufs: Vec<Vec<u8>> = Vec::new();
            let mut remaining = data.len();
            let mut step = 5usize;
            while remaining > 0 {
                let take = step.min(remaining);
                bufs.push(vec![0u8; take]);
                bufs.push(Vec::new()); // empty runs must be skipped cleanly
                remaining -= take;
                step = step % 6 + 2;
            }
            let mut dests: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            let scattered = read_scattered_nb(&hb, t, &segs, &mut dests, &method, 100);
            assert_eq!(scattered.done_at(), packed.done_at(), "method {method:?}");
            let got: Vec<u8> = bufs.concat();
            assert_eq!(got, data, "method {method:?}");
            assert_eq!(packed_out, data);
        }
    }

    #[test]
    fn gathered_empty_runs_and_segments_noop() {
        let pfs = pfs();
        let h = pfs.open("f", 0);
        let c = write_gathered_nb(&h, 5, &[], &[], &IoMethod::Naive, 0);
        assert_eq!((c.issued_at(), c.done_at()), (5, 5));
        let r = read_scattered_nb(&h, 7, &[], &mut [], &IoMethod::Naive, 0);
        assert_eq!((r.issued_at(), r.done_at()), (7, 7));
        assert_eq!(h.size(), 0);
    }

    #[test]
    fn nb_empty_segments_noop() {
        let pfs = pfs();
        let h = pfs.open("f", 0);
        let c = write_packed_nb(&h, 5, &[], &[], &IoMethod::Naive, 0);
        assert_eq!((c.issued_at(), c.done_at()), (5, 5));
        let r = read_packed_nb(&h, 7, &[], &mut [], &IoMethod::Naive, 0);
        assert_eq!((r.issued_at(), r.done_at()), (7, 7));
    }

    #[test]
    fn completion_span_and_merge() {
        let a = IoCompletion::span(100, 250);
        assert_eq!((a.issued_at(), a.done_at(), a.duration()), (100, 250, 150));
        let b = IoCompletion::span(200, 220);
        let m = a.merged(b);
        assert_eq!((m.issued_at(), m.done_at()), (100, 250));
        let c = IoCompletion::span(50, 400).merged(a);
        assert_eq!((c.issued_at(), c.done_at()), (50, 400));
        assert_eq!(IoCompletion::span(7, 7).duration(), 0);
    }

    #[test]
    fn faulted_packed_write_lands_data_and_charges_full_window() {
        use flexio_pfs::FaultPlan;
        for method in [IoMethod::Naive, IoMethod::DataSieve { buffer: 48 }] {
            let clean = timed_pfs();
            let faulty = Pfs::with_faults(
                PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() },
                FaultPlan::transient(3, 1.0),
            );
            let hc = clean.open("f", 0);
            let hf = faulty.open("f", 0);
            let segs = strided_segs(5, 10, 7, 23);
            let data = packed_for(&segs);
            let t_clean = write_packed(&hc, 0, &segs, &data, &method, 0).unwrap();
            let e = write_packed(&hf, 0, &segs, &data, &method, 0).unwrap_err();
            // Every request is still issued and charged, so the fault is
            // stamped with the fault-free completion time.
            assert_eq!(e.at, t_clean, "method {method:?}");
            // ...and the data landed anyway: retries are idempotent.
            assert_eq!(readback(&faulty, &segs), data, "method {method:?}");
        }
    }

    #[test]
    fn nb_completion_carries_fault_to_wait() {
        use flexio_pfs::FaultPlan;
        let pfs = Pfs::with_faults(PfsConfig::test_tiny(), FaultPlan::transient(3, 1.0));
        let h = pfs.open("f", 0);
        let segs = strided_segs(0, 4, 8, 32);
        let data = packed_for(&segs);
        let c = write_packed_nb(&h, 10, &segs, &data, &IoMethod::Naive, 1 << 20);
        let e = c.error().expect("full-rate plan must fault");
        assert_eq!(e.at, c.done_at());
        let late = c.done_at() + 100;
        assert_eq!(c.wait(late).unwrap_err().at, late, "wait stamps the caller's clock");
        // merged() keeps the fault; a clean span does not invent one.
        assert!(IoCompletion::span(0, 5).merged(c).error().is_some());
        assert!(IoCompletion::span(0, 5).error().is_none());
    }

    #[test]
    fn chunk_fully_covered_logic() {
        let segs = [(0u64, 10u64), (10, 10), (30, 10)];
        assert!(chunk_fully_covered(&segs, 0, 0, 20));
        assert!(!chunk_fully_covered(&segs, 0, 0, 21));
        assert!(!chunk_fully_covered(&segs, 0, 25, 35));
        assert!(chunk_fully_covered(&segs, 2, 30, 40));
        assert!(chunk_fully_covered(&segs, 0, 5, 15));
    }
}
