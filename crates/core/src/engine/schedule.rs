//! Persistent exchange schedules for the flexible engine.
//!
//! Deriving a collective call's data-movement plan — per-aggregator
//! windows, each client's `Piece` lists, each aggregator's per-client
//! `Piece` lists — is pure computation over the participants' flattened
//! filetypes and the realm set. Under persistent file realms (§5.2/§6.4)
//! and any timestep-loop workload the inputs repeat call after call, so
//! the plan is identical every time. This module caches the fully derived
//! plan, keyed by a digest of everything it depends on; on a hit the
//! engine skips stream re-derivation entirely and replays the cached
//! schedule against the fresh user buffer.
//!
//! The cache lives on [`crate::file::MpiFile`] next to the PFR state and
//! is invalidated by `set_view` and hint changes. Hits and misses are
//! counted in [`flexio_sim::Stats`].

use crate::engine::common::Piece;
use crate::hints::Hints;

/// Offset/length pairs charged for probing the cache on a hit. The probe
/// is a single digest comparison, far cheaper than re-deriving the
/// schedule; one pair keeps it visible in the cost model without drowning
/// the savings.
pub const PROBE_PAIRS: u64 = 1;

/// One buffer cycle's pre-derived data movement.
#[derive(Debug, Clone)]
pub struct CycleSchedule {
    /// This rank's aggregator window (file segments), empty for pure
    /// clients or idle cycles.
    pub my_window: Vec<(u64, u64)>,
    /// This rank's pieces inside each aggregator's window (client role),
    /// indexed by aggregator.
    pub my_pieces: Vec<Vec<Piece>>,
    /// Every client's pieces inside this rank's window (aggregator role);
    /// empty for pure clients.
    pub agg_pieces: Vec<(usize, Vec<Piece>)>,
    /// Offset/length pairs this cycle's derivation evaluated (window walk
    /// plus client/aggregator stream intersections). Charged at the top
    /// of the cycle on a miss — the same point the pre-cache engine
    /// charged them — so the virtual clock at every send and file request
    /// is bit-identical to the uncached engine. Skipped entirely on a hit.
    pub pairs: u64,
}

/// A complete per-call exchange schedule, reusable while its key matches.
#[derive(Debug, Clone)]
pub struct ExchangeSchedule {
    /// Digest of the inputs the schedule was derived from.
    pub key: u64,
    /// Aggregator ranks, in aggregator order.
    pub agg_ranks: Vec<usize>,
    /// Per-cycle plans, in cycle order.
    pub cycles: Vec<CycleSchedule>,
    /// Pairs evaluated parsing every rank's wire metadata, charged before
    /// the first cycle on a miss (see [`CycleSchedule::pairs`]).
    pub parse_pairs: u64,
}

/// FNV-1a, used instead of `std::hash` so the digest is stable across
/// runs and platforms (no per-process `RandomState`), which keeps
/// hit/miss traces reproducible.
#[derive(Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// Start a new digest.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb raw bytes.
    pub fn bytes(mut self, data: &[u8]) -> Self {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Digest(self.0)
    }

    /// Absorb one u64 (length-prefixing and field separation).
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Finish.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// Digest of everything the schedule derivation reads: every rank's wire
/// metadata (filetype + displacement + access range, which also pins the
/// aggregate access region), the world size, and the hints that shape
/// realms and cycles. The realm set itself is a deterministic function of
/// these inputs, plus the custom assigner's identity when one is plugged
/// in.
pub fn schedule_key(wires: &[Vec<u8>], hints: &Hints, nprocs: usize) -> u64 {
    let mut d = Digest::new()
        .u64(nprocs as u64)
        .u64(hints.cb_buffer_size as u64)
        .u64(hints.aggregators(nprocs) as u64)
        .u64(hints.fr_alignment.unwrap_or(0))
        .u64(u64::from(hints.persistent_file_realms))
        .u64(match &hints.realm_assigner {
            // Identity of the plugged-in assigner: stable per Arc. A
            // rebound assigner (new Arc) conservatively misses.
            Some(a) => std::sync::Arc::as_ptr(a) as *const () as u64,
            None => 0,
        });
    for w in wires {
        d = d.u64(w.len() as u64).bytes(w);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wires() -> Vec<Vec<u8>> {
        vec![vec![1, 2, 3], vec![4, 5], vec![]]
    }

    #[test]
    fn key_stable_for_equal_inputs() {
        let h = Hints::default();
        assert_eq!(schedule_key(&wires(), &h, 3), schedule_key(&wires(), &h, 3));
    }

    #[test]
    fn key_changes_with_inputs() {
        let h = Hints::default();
        let base = schedule_key(&wires(), &h, 3);
        let mut other = wires();
        other[0][0] = 9;
        assert_ne!(schedule_key(&other, &h, 3), base);
        assert_ne!(schedule_key(&wires(), &h, 4), base);
        let h2 = Hints { cb_buffer_size: 1 << 12, ..Hints::default() };
        assert_ne!(schedule_key(&wires(), &h2, 3), base);
        let h3 = Hints { persistent_file_realms: true, ..Hints::default() };
        assert_ne!(schedule_key(&wires(), &h3, 3), base);
        let h4 = Hints { fr_alignment: Some(64), ..Hints::default() };
        assert_ne!(schedule_key(&wires(), &h4, 3), base);
    }

    #[test]
    fn key_separates_block_boundaries() {
        // [1,2],[3] and [1],[2,3] must not collide (length prefixing).
        let h = Hints::default();
        let a = schedule_key(&[vec![1, 2], vec![3]], &h, 2);
        let b = schedule_key(&[vec![1], vec![2, 3]], &h, 2);
        assert_ne!(a, b);
    }
}
