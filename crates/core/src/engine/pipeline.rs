//! The shared N-deep buffer-cycle pipeline core.
//!
//! Both two-phase engines split every buffer cycle into the same two
//! halves — an **exchange half** (pure client↔aggregator data movement)
//! and an **issue half** (aggregator↔file I/O) — and both profit from the
//! same overlap: while one cycle's file I/O is still in flight, the next
//! cycle's exchange can already run into its own collective buffer. This
//! module owns that machinery once, so `flexio_double_buffer` and
//! `flexio_pipeline_depth` mean exactly the same thing under the flexible
//! engine and the ROMIO baseline:
//!
//! * the in-flight window deque (one [`OverlapWindow`] + [`NbGuard`] per
//!   outstanding cycle, drained when its collective buffer must be
//!   reused),
//! * the overlap accounting through [`Rank::overlap_begin`] /
//!   [`Rank::overlap_complete`] — elapsed time is `max(io, exchange)`,
//!   never the sum, with the hidden part in `Stats::overlap_saved_ns`,
//! * the EWMA-driven [`CapPolicy::Auto`] depth adaptation, and
//! * the per-cycle straggler watch feeding graceful degradation.
//!
//! An engine plugs in by implementing [`CycleDriver`] twice — once per
//! direction — and handing the driver to [`drive_write`] or
//! [`drive_read`]. Depth 1 (`cap == 0`) issues and immediately completes
//! every window, which charges exactly like the blocking engines did
//! (`Rank::overlap_begin` + immediate complete ≡ advance + phase note),
//! so the serial charge fixtures stay bit-identical.

use crate::engine::common::ewma;
use crate::hints::{Hints, PipelineDepth};
use flexio_io::IoCompletion;
use flexio_pfs::{FileHandle, NbGuard, PfsError};
use flexio_sim::{OverlapWindow, Phase, Rank};
use std::collections::VecDeque;

/// Most in-flight completion windows any pipeline keeps (depth − 1). Past
/// eight buffers the exchange can't keep even one OST busy per extra
/// buffer, and real memory would run out long before virtual time cared.
pub(crate) const MAX_INFLIGHT: usize = 7;

/// How many buffer cycles may be in flight ahead of the one being
/// exchanged — the resolved form of `flexio_double_buffer` +
/// `flexio_pipeline_depth`, expressed as a *cap* on outstanding
/// completion windows (cap = depth − 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CapPolicy {
    /// Never exceed this many outstanding windows. 0 is the strictly
    /// serial engine, 1 the classic two-buffer pipeline.
    Fixed(usize),
    /// Start at 1 (double buffering) and re-derive the cap after every
    /// issue from the measured I/O:exchange duration ratio: I/O that runs
    /// `r` times longer than an exchange needs `ceil(r)` cycles of
    /// exchange work to hide behind. `bound` caps the ratio — an
    /// aggregator's useful outstanding I/O is limited by its share of the
    /// stripe width, since ops beyond that only queue on OSTs other
    /// aggregators are driving (and the measured I/O time then includes
    /// their queueing, which would talk the ratio into going ever
    /// deeper).
    Auto {
        /// `clamp(2·n_osts / n_aggregators, 1, MAX_INFLIGHT)`.
        bound: usize,
    },
}

impl CapPolicy {
    pub(crate) fn resolve(hints: &Hints, n_osts: usize, n_aggs: usize) -> CapPolicy {
        if !hints.double_buffer {
            return CapPolicy::Fixed(0);
        }
        match hints.pipeline_depth {
            PipelineDepth::Auto => {
                CapPolicy::Auto { bound: (2 * n_osts / n_aggs.max(1)).clamp(1, MAX_INFLIGHT) }
            }
            PipelineDepth::Fixed(d) => {
                CapPolicy::Fixed(((d as usize).saturating_sub(1)).min(MAX_INFLIGHT))
            }
        }
    }

    /// The cap to start the cycle loop with.
    fn initial_cap(self) -> usize {
        match self {
            CapPolicy::Fixed(c) => c,
            CapPolicy::Auto { .. } => 1,
        }
    }

    /// Re-derive the cap after an issue whose I/O occupied `io_ns` of
    /// virtual time, the preceding exchange `exch_ns`. Fixed caps never
    /// move.
    fn adapt(self, io_ns: u64, exch_ns: u64) -> usize {
        match self {
            CapPolicy::Fixed(c) => c,
            CapPolicy::Auto { bound } => {
                (io_ns.div_ceil(exch_ns.max(1)) as usize).clamp(1, bound)
            }
        }
    }

    /// Whether the derive-overlap optimisation may run: it perturbs the
    /// virtual timeline (never the counters), so the charge-replay
    /// configurations — serial and classic double buffering — keep it off
    /// to stay bit-identical to the reference engines.
    pub(crate) fn allows_derive_overlap(self) -> bool {
        match self {
            CapPolicy::Fixed(c) => c >= 2,
            CapPolicy::Auto { .. } => true,
        }
    }
}

/// The straggler verdict one engine pass converged on: the flagged
/// aggregator plus the per-aggregator smoothed I/O durations it was judged
/// against, so the rebalancer can split the handoff proportionally across
/// every healthy peer instead of dumping it on one.
#[derive(Debug, Clone)]
pub(crate) struct StragglerVerdict {
    /// Index (into the aggregator list) of the flagged aggregator.
    pub straggler: usize,
    /// `(aggregator index, smoothed I/O ns)` for every aggregator with at
    /// least one sample, in index order. Identical on every rank: it is
    /// folded from allgathered durations only.
    pub loads: Vec<(usize, u64)>,
}

/// What one engine pass reports back beyond its data movement: the first
/// retry-exhausted fault (fed to the error agreement) and the straggler
/// verdict the EWMA detector converged on, if any.
#[derive(Debug, Default)]
pub(crate) struct CycleOutcome {
    pub err: Option<PfsError>,
    pub straggler: Option<StragglerVerdict>,
    /// A [`CycleDriver::boundary`] check failed: the remaining cycles were
    /// skipped and in-flight I/O drained. The driver knows why (for the
    /// flexible engine: peers found crash-stopped).
    pub aborted: bool,
}

/// Tracks per-aggregator smoothed I/O durations across buffer cycles and
/// flags a straggler. Runs only under a fault plan: each cycle, every rank
/// allgathers its local I/O duration (clients contribute 0), feeds the
/// aggregators' samples into per-aggregator EWMAs, and — because everyone
/// folds the same data — reaches the same verdict with no extra
/// agreement round.
struct StragglerDetector {
    agg_ewma: Vec<Option<u64>>,
}

impl StragglerDetector {
    fn new(n_agg: usize) -> StragglerDetector {
        StragglerDetector { agg_ewma: vec![None; n_agg] }
    }

    /// Fold one cycle's allgathered durations; returns the verdict if a
    /// straggler now stands out.
    fn observe(
        &mut self,
        rank: &Rank,
        agg_ranks: &[usize],
        my_io_ns: u64,
    ) -> Option<StragglerVerdict> {
        let durs = rank.allgatherv(&my_io_ns.to_le_bytes());
        for (a, &ar) in agg_ranks.iter().enumerate() {
            let d = u64::from_le_bytes(
                durs[ar][..8].try_into().expect("duration payload must be 8 bytes"),
            );
            if d > 0 {
                self.agg_ewma[a] = Some(ewma(self.agg_ewma[a], d));
            }
        }
        self.straggler()
    }

    /// The aggregator whose smoothed I/O time is more than twice the mean
    /// of its peers' (strict, so a clean 2:1 split does not churn; needs
    /// ≥ 2 aggregators with samples; first index wins ties,
    /// deterministically), with the load table the rebalancer splits the
    /// handoff by.
    fn straggler(&self) -> Option<StragglerVerdict> {
        let known: Vec<(usize, u64)> =
            self.agg_ewma.iter().enumerate().filter_map(|(i, e)| e.map(|v| (i, v))).collect();
        if known.len() < 2 {
            return None;
        }
        let (mut mi, mut mv) = known[0];
        for &(i, v) in &known[1..] {
            if v > mv {
                (mi, mv) = (i, v);
            }
        }
        let others: u64 = known.iter().filter(|&&(i, _)| i != mi).map(|&(_, v)| v).sum();
        let avg = others / (known.len() as u64 - 1);
        if avg == 0 || mv <= 2 * avg {
            return None;
        }
        Some(StragglerVerdict { straggler: mi, loads: known })
    }
}

/// One engine direction's per-cycle behaviour, plugged into
/// [`drive_write`] / [`drive_read`]. The driver owns everything
/// engine-specific — schedules, cursors, buffers, charge accounting — and
/// the drive loop owns everything depth-specific.
///
/// The two halves map onto the two directions like this:
///
/// * **Write** ([`drive_write`]): `exchange(i, None)` runs the cycle's
///   collective data movement and returns the assembled stage (`None` on
///   ranks with no file data this cycle); `issue(i, Some(stage))` commits
///   the stage to the file and returns its [`IoCompletion`].
/// * **Read** ([`drive_read`]): `issue(i, None)` reads cycle `i`'s window
///   into a fresh collective buffer, returning the completion and the
///   filled stage (`None` — with nothing charged, so a re-issue is free —
///   on idle ranks); `exchange(i, stage)` distributes it (every rank calls
///   this every cycle: the exchange is collective).
pub(crate) trait CycleDriver {
    /// One cycle's collective buffer in engine-specific form.
    type Stage;

    /// Total buffer cycles this collective call runs.
    fn n_cycles(&self) -> usize;

    /// Crash boundary before cycle `i` moves any data: the one place a
    /// scheduled rank crash may fire and dead peers are detected, so every
    /// survivor sees the same partial-cycle prefix. Return `false` to
    /// abort the drive loop — remaining cycles are skipped, in-flight I/O
    /// is drained, and the outcome comes back with `aborted` set. The
    /// default (no crash machinery) never aborts.
    fn boundary(&mut self, _i: usize) -> bool {
        true
    }

    /// Top-of-cycle accounting before any data moves (e.g. charging the
    /// cycle's derivation pairs). Runs exactly once per cycle, in order,
    /// whatever the pipeline depth.
    fn begin_cycle(&mut self, _i: usize) {}

    /// Exchange half — pure data movement, no file contact, so the drive
    /// loop may run it while earlier cycles' I/O is still in flight.
    fn exchange(&mut self, i: usize, incoming: Option<Self::Stage>) -> Option<Self::Stage>;

    /// Issue half — the file I/O. The returned completion carries the
    /// op's virtual window and the first retry-exhausted fault; the drive
    /// loop decides whether to block on it (depth 1) or keep it in
    /// flight.
    fn issue(
        &mut self,
        i: usize,
        outgoing: Option<Self::Stage>,
    ) -> Option<(IoCompletion, Option<Self::Stage>)>;
}

/// Is the straggler watch live? Only under a fault plan (the per-cycle
/// allgather would otherwise break fault-free charge identity) and with
/// at least two watched aggregators.
fn watch_on(handle: &FileHandle, watch: Option<&[usize]>) -> bool {
    handle.pfs().fault_plan().is_some() && watch.is_some_and(|a| a.len() >= 2)
}

/// Drive the write cycles as an N-deep software pipeline: up to `cap`
/// cycles of file I/O stay in flight while the next cycle's exchange runs
/// (into its own collective buffer), and an I/O is only waited on when its
/// buffer must be reused — charging `max(io, exchange)` across the whole
/// window instead of their sum. Cycle 0's exchange is the fill prologue,
/// the trailing waits the drain epilogue. `cap == 1` is charge-for-charge
/// the classic double-buffered engine; `cap == 0` issues and immediately
/// waits every cycle, charge-for-charge the serial engine. Under
/// [`CapPolicy::Auto`] the cap follows the measured I/O:exchange ratio.
///
/// `watch` enables the straggler detector over those aggregator ranks
/// (`None` for engines with nothing to rebalance); `derive_win` is an
/// open overlap window settled after cycle 0's exchange (the flexible
/// engine's derive-overlap; `None` otherwise).
pub(crate) fn drive_write<D: CycleDriver>(
    rank: &Rank,
    handle: &FileHandle,
    driver: &mut D,
    policy: CapPolicy,
    watch: Option<&[usize]>,
    mut derive_win: Option<OverlapWindow>,
) -> CycleOutcome {
    let mut cap = policy.initial_cap();
    let mut inflight: VecDeque<(OverlapWindow, NbGuard)> = VecDeque::new();
    let mut outcome = CycleOutcome::default();
    // Smoothed I/O and exchange durations feeding the auto depth policy:
    // one fast or slow cycle no longer swings the cap to its own ratio.
    let (mut ewma_io, mut ewma_exch) = (None, None);
    let watching = watch_on(handle, watch);
    let mut detector = StragglerDetector::new(watch.map_or(0, <[usize]>::len));
    for i in 0..driver.n_cycles() {
        if !driver.boundary(i) {
            outcome.aborted = true;
            break;
        }
        driver.begin_cycle(i);
        let exch_t0 = rank.now();
        let stage = driver.exchange(i, None);
        let exch_ns = rank.now().saturating_sub(exch_t0);
        if i == 0 {
            // Cycle 1+'s derivation has been overlapping this exchange;
            // cycle 1 needs it next, so settle up now.
            if let Some(w) = derive_win.take() {
                rank.overlap_complete_derive(w);
            }
        }
        // All cap+1 collective buffers are full once the next exchange has
        // run: drain the oldest in-flight I/O before reusing its buffer
        // (dropping its guard retires it from the handle's inflight tally).
        while inflight.len() >= cap.max(1) {
            let (w, _guard) = inflight.pop_front().expect("nonempty");
            rank.overlap_complete(w);
        }
        let mut cycle_io_ns = 0u64;
        if let Some(stage) = stage {
            let (io, _) = driver.issue(i, Some(stage)).expect("write issue returns a completion");
            outcome.err = outcome.err.or(io.error());
            cycle_io_ns = io.duration();
            if cap == 0 {
                // Wait immediately. Begin/complete (rather than a raw
                // advance + note) keeps the phase buckets summing to
                // elapsed even when a copy inside the issue already
                // charged Compute time; nothing is hidden, so
                // overlap_saved_ns stays 0.
                rank.overlap_complete(rank.overlap_begin(io.done_at(), Phase::Io));
                rank.note_pipeline_depth(1);
            } else {
                inflight.push_back((rank.overlap_begin(io.done_at(), Phase::Io), handle.nb_issued()));
                rank.note_pipeline_depth(inflight.len() as u64 + 1);
                ewma_io = Some(ewma(ewma_io, io.duration()));
                ewma_exch = Some(ewma(ewma_exch, exch_ns));
                cap = policy.adapt(ewma_io.unwrap_or(0), ewma_exch.unwrap_or(0));
            }
        }
        if watching {
            if let Some(v) = detector.observe(rank, watch.expect("watching implies ranks"), cycle_io_ns) {
                rank.note_degraded_cycle();
                outcome.straggler = Some(v);
            }
        }
        // If Auto just lowered the cap, fall back to it right away.
        while inflight.len() > cap {
            let (w, _guard) = inflight.pop_front().expect("nonempty");
            rank.overlap_complete(w);
        }
    }
    for (w, _guard) in inflight {
        rank.overlap_complete(w);
    }
    outcome
}

/// Drive the read cycles as an N-deep pipeline running in the opposite
/// direction from writes: up to `cap` future cycles' file reads are
/// prefetched (each into its own collective buffer) before the current
/// cycle's data is distributed, so read latency hides behind the
/// exchange/scatter work of the cycles in between. Cycle 0's read is
/// waited on immediately (fill prologue — there is nothing to overlap it
/// with). `cap == 1` is charge-for-charge the classic double-buffered
/// engine; `cap == 0` reads, waits, and distributes serially, matching
/// the serial engine charge for charge. Under [`CapPolicy::Auto`] the cap
/// follows the measured I/O:distribute ratio.
pub(crate) fn drive_read<D: CycleDriver>(
    rank: &Rank,
    handle: &FileHandle,
    driver: &mut D,
    policy: CapPolicy,
    watch: Option<&[usize]>,
    mut derive_win: Option<OverlapWindow>,
) -> CycleOutcome {
    let n = driver.n_cycles();
    let mut cap = policy.initial_cap();
    // Prefetched reads: (cycle index, overlap window, filled stage, nb
    // guard), in cycle order. `next` is the first cycle not yet issued.
    let mut q: VecDeque<(usize, OverlapWindow, D::Stage, NbGuard)> = VecDeque::new();
    let mut next = 0usize;
    // The previous cycle's distribute duration — the exchange-side work a
    // prefetched read hides behind.
    let mut exch_ns = 0u64;
    let mut outcome = CycleOutcome::default();
    let (mut ewma_io, mut ewma_exch) = (None, None);
    let watching = watch_on(handle, watch);
    let mut detector = StragglerDetector::new(watch.map_or(0, <[usize]>::len));
    for i in 0..n {
        if !driver.boundary(i) {
            outcome.aborted = true;
            break;
        }
        driver.begin_cycle(i);
        let mut cycle_io_ns = 0u64;
        let stage = if q.front().is_some_and(|(c, _, _, _)| *c == i) {
            // This cycle's read was prefetched; its window has been
            // overlapping the distributions since. Drain it now (the
            // guard drop retires it from the handle's inflight tally).
            let (_, w, stage, _guard) = q.pop_front().expect("nonempty");
            rank.overlap_complete(w);
            Some(stage)
        } else {
            // Fill (or serial path, or an idle cycle between prefetches):
            // issue this cycle's read and block on it.
            match driver.issue(i, None) {
                Some((io, stage)) => {
                    // Immediate begin/complete, not advance + note: see
                    // the serial write path.
                    outcome.err = outcome.err.or(io.error());
                    cycle_io_ns += io.duration();
                    rank.overlap_complete(rank.overlap_begin(io.done_at(), Phase::Io));
                    rank.note_pipeline_depth(1);
                    Some(stage.expect("read issue returns a stage"))
                }
                None => None,
            }
        };
        if next <= i {
            next = i + 1;
        }
        if i == 0 {
            // Cycle 1+'s derivation overlapped the fill read; settle up
            // before prefetching needs its piece lists.
            if let Some(w) = derive_win.take() {
                rank.overlap_complete_derive(w);
            }
        }
        // Prefetch up to `cap` cycles ahead of the one being distributed.
        while cap > 0 && next < n && q.len() < cap && next <= i + cap {
            if let Some((io, stage)) = driver.issue(next, None) {
                outcome.err = outcome.err.or(io.error());
                cycle_io_ns += io.duration();
                q.push_back((
                    next,
                    rank.overlap_begin(io.done_at(), Phase::Io),
                    stage.expect("read issue returns a stage"),
                    handle.nb_issued(),
                ));
                rank.note_pipeline_depth(q.len() as u64 + 1);
                ewma_io = Some(ewma(ewma_io, io.duration()));
                ewma_exch = Some(ewma(ewma_exch, exch_ns));
                cap = policy.adapt(ewma_io.unwrap_or(0), ewma_exch.unwrap_or(0));
            }
            next += 1;
        }
        if watching {
            if let Some(v) = detector.observe(rank, watch.expect("watching implies ranks"), cycle_io_ns) {
                rank.note_degraded_cycle();
                outcome.straggler = Some(v);
            }
        }
        let dist_t0 = rank.now();
        driver.exchange(i, stage);
        exch_ns = rank.now().saturating_sub(dist_t0);
    }
    debug_assert!(
        q.is_empty() || outcome.aborted,
        "a read stage was issued but never distributed"
    );
    // An aborted loop leaves prefetched reads in flight; drain their
    // windows (guard drops retire them from the handle's inflight tally).
    for (_, w, _, _guard) in q {
        rank.overlap_complete(w);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hints(double_buffer: bool, depth: PipelineDepth) -> Hints {
        Hints { double_buffer, pipeline_depth: depth, ..Hints::default() }
    }

    #[test]
    fn cap_policy_resolution() {
        // double_buffer off forces the serial engine whatever the depth.
        assert_eq!(CapPolicy::resolve(&hints(false, PipelineDepth::Auto), 8, 2), CapPolicy::Fixed(0));
        assert_eq!(
            CapPolicy::resolve(&hints(false, PipelineDepth::Fixed(5)), 8, 2),
            CapPolicy::Fixed(0)
        );
        // Fixed depth d = cap d-1, clamped to MAX_INFLIGHT.
        assert_eq!(
            CapPolicy::resolve(&hints(true, PipelineDepth::Fixed(1)), 8, 2),
            CapPolicy::Fixed(0)
        );
        assert_eq!(
            CapPolicy::resolve(&hints(true, PipelineDepth::Fixed(4)), 8, 2),
            CapPolicy::Fixed(3)
        );
        assert_eq!(
            CapPolicy::resolve(&hints(true, PipelineDepth::Fixed(99)), 8, 2),
            CapPolicy::Fixed(MAX_INFLIGHT)
        );
        // Auto bound follows the aggregator's stripe share.
        assert_eq!(
            CapPolicy::resolve(&hints(true, PipelineDepth::Auto), 8, 2),
            CapPolicy::Auto { bound: 7 }
        );
        assert_eq!(
            CapPolicy::resolve(&hints(true, PipelineDepth::Auto), 4, 4),
            CapPolicy::Auto { bound: 2 }
        );
        assert_eq!(
            CapPolicy::resolve(&hints(true, PipelineDepth::Auto), 1, 8),
            CapPolicy::Auto { bound: 1 }
        );
    }

    #[test]
    fn auto_adapts_fixed_does_not() {
        let auto = CapPolicy::Auto { bound: 4 };
        assert_eq!(auto.adapt(1000, 1000), 1);
        assert_eq!(auto.adapt(3500, 1000), 4);
        assert_eq!(auto.adapt(9000, 1000), 4); // clamped to bound
        assert_eq!(auto.adapt(100, 0), 4); // zero exchange guarded
        let fixed = CapPolicy::Fixed(2);
        assert_eq!(fixed.adapt(9000, 1), 2);
        assert_eq!(fixed.initial_cap(), 2);
        assert_eq!(auto.initial_cap(), 1);
    }

    #[test]
    fn derive_overlap_gates() {
        assert!(!CapPolicy::Fixed(0).allows_derive_overlap());
        assert!(!CapPolicy::Fixed(1).allows_derive_overlap());
        assert!(CapPolicy::Fixed(2).allows_derive_overlap());
        assert!(CapPolicy::Auto { bound: 1 }.allows_derive_overlap());
    }

    #[test]
    fn straggler_detector_needs_a_clear_excess() {
        let mut d = StragglerDetector::new(3);
        d.agg_ewma = vec![Some(100), Some(100), Some(201)];
        let v = d.straggler().expect("2x excess must flag");
        assert_eq!(v.straggler, 2);
        assert_eq!(v.loads, vec![(0, 100), (1, 100), (2, 201)]);
        // A clean 2:1 split must not churn (strict threshold).
        d.agg_ewma = vec![Some(100), Some(100), Some(200)];
        assert!(d.straggler().is_none());
        // One sample is not a comparison.
        d.agg_ewma = vec![None, None, Some(500)];
        assert!(d.straggler().is_none());
    }
}
