//! Faithful re-implementation of the *original* ROMIO two-phase code path,
//! used as the paper's baseline ("old+vector" in Fig. 4).
//!
//! Characteristics (§5.3):
//! * each client **flattens its entire access** into `M` offset/length
//!   pairs up front and ships each aggregator its relevant sub-list — the
//!   metadata volume is O(M), but processing is O(M) too;
//! * file realms are always the even aggregate-access-region split —
//!   no alignment, no persistence, no pluggable assigners;
//! * data sieving is **integrated**: the collective buffer *is* the sieve
//!   buffer, so there is one less copy than the flexible engine, but the
//!   buffer-to-file method cannot be changed, and gap data lives in the
//!   collective buffer.
//!
//! The buffer cycles run on the shared pipeline core
//! ([`crate::engine::pipeline`]), so `flexio_double_buffer` and
//! `flexio_pipeline_depth` mean the same thing here as under the flexible
//! engine — depth 1 charges exactly like the historical serial loop
//! (fixture-enforced), deeper pipelines overlap each cycle's *final*
//! buffer-to-file request with the next cycle's exchange. A write cycle's
//! sieving *read* stays blocking at any depth: it is the read half of a
//! read-modify-write, and the payloads can only be placed after it lands.

use crate::engine::common::{agree_error, retry_io, Piece};
use crate::engine::flexible::DataBuf;
use crate::engine::pipeline::{self, CapPolicy, CycleDriver};
use crate::error::{IoError, Result};
use crate::hints::{aggregator_ranks, Hints};
use crate::meta::ClientAccess;
use flexio_io::IoCompletion;
use flexio_pfs::{FileHandle, PfsError};
use flexio_sim::{Phase, Rank};
use flexio_types::MemLayout;

fn encode_pairs(pieces: &[Piece]) -> Vec<u8> {
    let mut out = Vec::with_capacity(pieces.len() * 16);
    for p in pieces {
        out.extend_from_slice(&p.file_off.to_le_bytes());
        out.extend_from_slice(&p.len.to_le_bytes());
    }
    out
}

fn decode_pairs(buf: &[u8]) -> Vec<(u64, u64)> {
    buf.chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..16].try_into().unwrap()),
            )
        })
        .collect()
}

/// Take the pieces of `list[*idx..]` that start below `win_end`, splitting
/// a piece that crosses the boundary. `split_tail` holds a partially
/// consumed piece carried between cycles.
fn take_below_window(
    list: &[Piece],
    idx: &mut usize,
    split_tail: &mut Option<Piece>,
    win_end: u64,
) -> Vec<Piece> {
    let mut out = Vec::new();
    if let Some(tail) = split_tail.take() {
        if tail.file_off < win_end {
            let take = tail.len.min(win_end - tail.file_off);
            out.push(Piece { file_off: tail.file_off, data_pos: tail.data_pos, len: take });
            if take < tail.len {
                *split_tail = Some(Piece {
                    file_off: tail.file_off + take,
                    data_pos: tail.data_pos + take,
                    len: tail.len - take,
                });
                return out;
            }
        } else {
            *split_tail = Some(tail);
            return out;
        }
    }
    while *idx < list.len() && list[*idx].file_off < win_end {
        let p = list[*idx];
        *idx += 1;
        let take = p.len.min(win_end - p.file_off);
        out.push(Piece { file_off: p.file_off, data_pos: p.data_pos, len: take });
        if take < p.len {
            *split_tail = Some(Piece {
                file_off: p.file_off + take,
                data_pos: p.data_pos + take,
                len: p.len - take,
            });
            break;
        }
    }
    out
}

/// One precomputed buffer cycle: this rank's pieces per aggregator
/// (client role) and each client's requests inside my window (aggregator
/// role). The historical loop derived these lazily from per-cycle
/// cursors; deriving them up front charges nothing extra — the cursor
/// walks were never charged (their pair processing was paid when the
/// lists were built and decoded) — and lets the pipelined drive loop
/// prefetch future cycles' reads.
struct RomioCycle {
    my_cycle: Vec<Vec<Piece>>,
    agg_cycle: Vec<Vec<(u64, u64)>>,
}

/// Run one collective read/write with the original ROMIO algorithm.
#[allow(clippy::too_many_lines)]
pub fn run(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    mut buf: DataBuf<'_>,
    hints: &Hints,
) -> Result<()> {
    let nprocs = rank.nprocs();
    let is_write = matches!(buf, DataBuf::Write(_));

    // ---- flatten the ENTIRE access into M offset/length pairs ------------
    let mut all_pieces: Vec<Piece> = Vec::new();
    if my.data_len > 0 {
        let mut cur = my.view.cursor(my.data_start);
        let end = my.data_end();
        while cur.data_pos() < end {
            let p = cur.take(end - cur.data_pos());
            all_pieces.push(Piece { file_off: p.file_off, data_pos: p.data_pos, len: p.len });
        }
        rank.charge_pairs(cur.evaluated());
    }
    let m = all_pieces.len() as u64;

    // ---- aggregate access region (scalar allgather) -----------------------
    let (first, end) = match my.file_range() {
        Some((a, b)) => (a, b),
        None => (u64::MAX, 0),
    };
    let mut scalar = Vec::with_capacity(16);
    scalar.extend_from_slice(&first.to_le_bytes());
    scalar.extend_from_slice(&end.to_le_bytes());
    let ranges = rank.allgatherv(&scalar);
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for r in &ranges {
        let a = u64::from_le_bytes(r[0..8].try_into().unwrap());
        let b = u64::from_le_bytes(r[8..16].try_into().unwrap());
        if b > 0 {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    if hi <= lo {
        return Ok(());
    }

    // ---- even AAR realms; ship each aggregator its pair sub-list ----------
    // The old code's realms are always the unaligned even split of the
    // aggregate access region: boundaries are a closed formula.
    let n_agg = hints.aggregators(nprocs);
    let agg_ranks = aggregator_ranks(n_agg, nprocs);
    let len_aar = hi - lo;
    let bounds: Vec<u64> =
        (0..=n_agg as u64).map(|i| lo + len_aar * i / n_agg as u64).collect();

    // Partition my pieces by realm (splitting boundary-crossers), O(M).
    let mut per_agg: Vec<Vec<Piece>> = vec![Vec::new(); n_agg];
    for p in &all_pieces {
        let mut off = p.file_off;
        let mut data = p.data_pos;
        let mut len = p.len;
        while len > 0 {
            let a = bounds[1..n_agg].partition_point(|&b| b <= off);
            let realm_end = bounds[a + 1];
            let take = len.min(realm_end - off);
            per_agg[a].push(Piece { file_off: off, data_pos: data, len: take });
            off += take;
            data += take;
            len -= take;
        }
    }
    rank.charge_pairs(m);

    // Send every aggregator its offset/length list (O(M) metadata bytes).
    let blocks: Vec<Vec<u8>> = {
        let mut b = vec![Vec::new(); nprocs];
        for (a, list) in per_agg.iter().enumerate() {
            if !list.is_empty() {
                b[agg_ranks[a]] = encode_pairs(list);
            }
        }
        b
    };
    let lists_in = rank.alltoallv(blocks);

    // Aggregator: decode everyone's requests for my realm.
    let my_agg_idx = agg_ranks.iter().position(|&r| r == rank.rank());
    let mut others: Vec<Vec<(u64, u64)>> = Vec::new();
    let (mut st, mut en) = (u64::MAX, 0u64);
    if my_agg_idx.is_some() {
        others = lists_in.iter().map(|b| decode_pairs(b)).collect();
        let m_recv: u64 = others.iter().map(|l| l.len() as u64).sum();
        rank.charge_pairs(m_recv);
        for l in &others {
            if let Some(&(o, _)) = l.first() {
                st = st.min(o);
            }
            if let Some(&(o, len)) = l.last() {
                en = en.max(o + len);
            }
        }
    }

    // Everyone learns each aggregator's actual data bounds.
    let mut bscal = Vec::with_capacity(16);
    bscal.extend_from_slice(&st.to_le_bytes());
    bscal.extend_from_slice(&en.to_le_bytes());
    let all_bounds = rank.allgatherv(&bscal);
    let agg_bounds: Vec<(u64, u64)> = agg_ranks
        .iter()
        .map(|&ar| {
            let b = &all_bounds[ar];
            (
                u64::from_le_bytes(b[0..8].try_into().unwrap()),
                u64::from_le_bytes(b[8..16].try_into().unwrap()),
            )
        })
        .collect();

    let cb = hints.cb_buffer_size as u64;
    let ntimes = agg_bounds
        .iter()
        .map(|&(s, e)| if e > s { (e - s).div_ceil(cb) } else { 0 })
        .max()
        .unwrap_or(0);

    // ---- precompute every cycle's piece lists ------------------------------
    // Client side: per-aggregator index + split carry into my lists.
    let mut cli_idx = vec![0usize; n_agg];
    let mut cli_tail: Vec<Option<Piece>> = vec![None; n_agg];
    // Aggregator side: per-client index + split carry into received lists.
    let mut agg_idx = vec![0usize; nprocs];
    let mut agg_tail: Vec<Option<(u64, u64)>> = vec![None; nprocs];
    let mut cycles: Vec<RomioCycle> = Vec::with_capacity(ntimes as usize);
    for t in 0..ntimes {
        // Window per aggregator, in file space (the old code cycles over
        // the realm's file extent, not its data stream).
        let windows: Vec<Option<(u64, u64)>> = agg_bounds
            .iter()
            .map(|&(s, e)| {
                if e <= s {
                    return None;
                }
                let w0 = s + t * cb;
                let w1 = (s + (t + 1) * cb).min(e);
                if w0 >= w1 {
                    None
                } else {
                    Some((w0, w1))
                }
            })
            .collect();

        // Client: pieces to each aggregator this cycle.
        let mut my_cycle: Vec<Vec<Piece>> = Vec::with_capacity(n_agg);
        for a in 0..n_agg {
            let pieces = match windows[a] {
                Some((_, w1)) => {
                    take_below_window(&per_agg[a], &mut cli_idx[a], &mut cli_tail[a], w1)
                }
                None => Vec::new(),
            };
            my_cycle.push(pieces);
        }

        // Aggregator: requests from each client this cycle.
        let mut agg_cycle: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nprocs];
        if let Some(ai) = my_agg_idx {
            if let Some((_, w1)) = windows[ai] {
                for (c, list) in others.iter().enumerate() {
                    let mut out = Vec::new();
                    if let Some((o, l)) = agg_tail[c].take() {
                        if o < w1 {
                            let take = l.min(w1 - o);
                            out.push((o, take));
                            if take < l {
                                agg_tail[c] = Some((o + take, l - take));
                            }
                        } else {
                            agg_tail[c] = Some((o, l));
                        }
                    }
                    if agg_tail[c].is_none() {
                        while agg_idx[c] < list.len() && list[agg_idx[c]].0 < w1 {
                            let (o, l) = list[agg_idx[c]];
                            agg_idx[c] += 1;
                            let take = l.min(w1 - o);
                            out.push((o, take));
                            if take < l {
                                agg_tail[c] = Some((o + take, l - take));
                                break;
                            }
                        }
                    }
                    agg_cycle[c] = out;
                }
            }
        }
        cycles.push(RomioCycle { my_cycle, agg_cycle });
    }

    // ---- buffer cycles on the shared pipeline ------------------------------
    // No straggler watch (ROMIO has no realms to rebalance) and no
    // derive-overlap (the flattening cost was all charged up front), so
    // those slots stay empty; the depth semantics are exactly the
    // flexible engine's.
    let policy = CapPolicy::resolve(hints, handle.pfs().config().n_osts, agg_ranks.len());
    let outcome = if is_write {
        let mut driver = RomioWrite {
            rank,
            handle,
            my,
            mem,
            buf: &buf,
            hints,
            agg_ranks: &agg_ranks,
            cycles: &cycles,
            my_agg_idx,
            prefetch: None,
        };
        pipeline::drive_write(rank, handle, &mut driver, policy, None, None)
    } else {
        let mut driver = RomioRead {
            rank,
            handle,
            my,
            mem,
            buf: &mut buf,
            hints,
            agg_ranks: &agg_ranks,
            cycles: &cycles,
            my_agg_idx,
        };
        pipeline::drive_read(rank, handle, &mut driver, policy, None, None)
    };
    let first_err = outcome.err;

    // ---- collective error agreement ---------------------------------------
    // Same gate as the flexible engine: a fault plan is the only source of
    // request errors, and its presence is identical on every rank, so
    // fault-free runs pay no extra communication and faulted runs always
    // reach the same verdict together.
    if handle.pfs().fault_plan().is_some() {
        if let Some(e) = agree_error(rank, first_err) {
            return Err(IoError::Transient(e));
        }
    } else {
        debug_assert!(first_err.is_none(), "a fault was reported without a fault plan");
    }
    Ok(())
}

/// Spanning range of one cycle's requests at this aggregator:
/// `(blo, span, holes)`, or `None` when the cycle holds no data here.
fn cycle_span(agg_cycle: &[Vec<(u64, u64)>]) -> Option<(u64, u64, bool)> {
    let mut blo = u64::MAX;
    let mut bhi = 0u64;
    let mut covered = 0u64;
    for l in agg_cycle {
        for &(o, len) in l {
            blo = blo.min(o);
            bhi = bhi.max(o + len);
            covered += len;
        }
    }
    if blo == u64::MAX {
        return None;
    }
    Some((blo, bhi - blo, covered < bhi - blo))
}

/// Gap data for an upcoming cycle's read-modify-write, fetched
/// nonblockingly behind the current cycle's commit window
/// (`flexio_sieve_prefetch`). Holding it here instead of re-reading at
/// the cycle itself turns the one blocking read in the ROMIO write path
/// into overlappable I/O.
struct SievePrefetch {
    /// Cycle index the buffer belongs to.
    cycle: usize,
    /// File offset the spanning read started at.
    blo: u64,
    /// The spanning range's bytes as of the prefetch.
    buf: Vec<u8>,
}

/// One write cycle's exchanged payloads, awaiting the integrated
/// sieve-and-commit. The received buffers ARE the stage: placement into
/// the collective buffer needs the sieving read first, so it happens in
/// the issue half.
struct RomioWriteStage {
    /// Spanning range start of this cycle's requests.
    blo: u64,
    /// Spanning range length — the collective/sieve buffer size.
    span: u64,
    /// Whether the requests leave gaps (forcing the sieving read).
    holes: bool,
    received: Vec<(usize, Vec<u8>)>,
}

/// [`CycleDriver`] for the ROMIO write direction, over the precomputed
/// cycle lists.
struct RomioWrite<'a> {
    rank: &'a Rank,
    handle: &'a FileHandle,
    my: &'a ClientAccess,
    mem: &'a MemLayout,
    buf: &'a DataBuf<'a>,
    hints: &'a Hints,
    agg_ranks: &'a [usize],
    cycles: &'a [RomioCycle],
    my_agg_idx: Option<usize>,
    /// Next cycle's gap data, when `flexio_sieve_prefetch` fetched it.
    prefetch: Option<SievePrefetch>,
}

impl CycleDriver for RomioWrite<'_> {
    type Stage = RomioWriteStage;

    fn n_cycles(&self) -> usize {
        self.cycles.len()
    }

    fn exchange(&mut self, i: usize, _incoming: Option<RomioWriteStage>) -> Option<RomioWriteStage> {
        let RomioCycle { my_cycle, agg_cycle } = &self.cycles[i];
        let user = match self.buf {
            DataBuf::Write(b) => *b,
            DataBuf::Read(_) => unreachable!(),
        };
        // Client -> aggregator payloads (non-blocking exchange, as the old
        // code does). The packed path gathers into a staging buffer and
        // charges the copy; zero-copy sends an iovec run list borrowed
        // off the flattened view, so the `Vec` below is only the wire
        // representation — nothing charged, nothing in the ledger.
        let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
        for (a, pieces) in my_cycle.iter().enumerate() {
            if pieces.is_empty() {
                continue;
            }
            let total: u64 = pieces.iter().map(|p| p.len).sum();
            let mut payload = vec![0u8; total as usize];
            let mut pos = 0usize;
            for p in pieces {
                self.mem.gather(
                    user,
                    p.data_pos - self.my.data_start,
                    &mut payload[pos..pos + p.len as usize],
                );
                pos += p.len as usize;
            }
            if !self.hints.zero_copy {
                self.rank.charge_memcpy(total);
                self.rank.note_bytes_copied(total);
            }
            sends.push((self.agg_ranks[a], payload));
        }
        let recv_from: Vec<usize> = agg_cycle
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(c, _)| c)
            .collect();
        let received = self.rank.exchange(&sends, &recv_from);
        if self.my_agg_idx.is_none() || recv_from.is_empty() {
            return None;
        }
        // Spanning range of this cycle's requests (pure arithmetic over
        // already-charged pairs).
        let (blo, span, holes) = cycle_span(agg_cycle).expect("non-empty recv list spans bytes");
        Some(RomioWriteStage { blo, span, holes, received })
    }

    fn issue(
        &mut self,
        i: usize,
        outgoing: Option<RomioWriteStage>,
    ) -> Option<(IoCompletion, Option<RomioWriteStage>)> {
        let stage = outgoing.expect("write issue needs an exchanged stage");
        let agg_cycle = &self.cycles[i].agg_cycle;
        let mut err: Option<PfsError> = None;
        let pre = match self.prefetch.take() {
            Some(p) if p.cycle == i && p.blo == stage.blo && p.buf.len() == stage.span as usize => {
                Some(p)
            }
            _ => None,
        };
        let t0;
        let mut t_done;
        if self.hints.zero_copy && !stage.holes {
            // The requests tile the spanning range exactly, so the
            // collective buffer adds nothing: sort the received payloads'
            // request runs by file offset and commit them as one gathered
            // write — the placement copy and its charge disappear. With
            // holes the buffer IS the sieve buffer and the packed path
            // below stays (the read-modify-write needs contiguous bytes).
            let mut plan: Vec<(u64, usize, usize, usize)> = Vec::new();
            for (ri, (src, _)) in stage.received.iter().enumerate() {
                let mut pos = 0usize;
                for &(o, len) in &agg_cycle[*src] {
                    plan.push((o, ri, pos, len as usize));
                    pos += len as usize;
                }
            }
            plan.sort_unstable_by_key(|r| r.0);
            let slices: Vec<&[u8]> = plan
                .iter()
                .map(|&(_, ri, pos, len)| &stage.received[ri].1[pos..pos + len])
                .collect();
            t0 = self.rank.now();
            let (nt, e) = retry_io(self.rank, self.hints, t0, |at| {
                self.handle.pwritev_nb(at, stage.blo, &slices).wait(at)
            });
            t_done = nt;
            err = err.or(e);
        } else {
            // Integrated sieve: single buffer spanning [blo, blo+span).
            let mut cbuf = match pre {
                // The gap data was prefetched behind the previous cycle's
                // commit window; no blocking read this cycle.
                Some(p) => p.buf,
                None => {
                    let mut fresh = vec![0u8; stage.span as usize];
                    if stage.holes {
                        // The read half of the read-modify-write blocks at
                        // ANY pipeline depth: payloads cannot be placed
                        // over gap data that has not arrived. Only the
                        // commit write below overlaps.
                        let rt0 = self.rank.now();
                        let (nt, e) = retry_io(self.rank, self.hints, rt0, |at| {
                            self.handle.read(at, stage.blo, &mut fresh)
                        });
                        err = err.or(e);
                        self.rank.advance_to(nt);
                        self.rank.note_phase(Phase::Io, nt - rt0);
                    }
                    fresh
                }
            };
            // Place every client's payload directly into the collective
            // buffer (this IS the sieve buffer: one copy total).
            let mut total_placed = 0u64;
            for (src, payload) in &stage.received {
                let mut pos = 0usize;
                for &(o, len) in &agg_cycle[*src] {
                    cbuf[(o - stage.blo) as usize..(o - stage.blo + len) as usize]
                        .copy_from_slice(&payload[pos..pos + len as usize]);
                    pos += len as usize;
                    total_placed += len;
                }
            }
            self.rank.charge_memcpy(total_placed);
            self.rank.note_bytes_copied(total_placed);
            t0 = self.rank.now();
            let (nt, e) =
                retry_io(self.rank, self.hints, t0, |at| self.handle.write(at, stage.blo, &cbuf));
            t_done = nt;
            err = err.or(e);
        }
        // Sieve prefetch (`flexio_sieve_prefetch`): fetch the NEXT
        // cycle's gap data now, nonblockingly alongside this cycle's
        // commit, so its read-modify-write no longer starts with a
        // blocking read. The window rides this cycle's I/O completion,
        // which the pipeline already overlaps with the next exchange.
        // Safe because each cycle's spanning range is a disjoint slice of
        // this aggregator's realm — nothing written later can change the
        // prefetched bytes. A faulted prefetch is dropped (the fallback
        // blocking read retries on its own schedule); its wire time still
        // extends the window, as a real speculative read would.
        if self.hints.sieve_prefetch && i + 1 < self.cycles.len() {
            if let Some((nblo, nspan, true)) = cycle_span(&self.cycles[i + 1].agg_cycle) {
                let mut buf = vec![0u8; nspan as usize];
                let op = self.handle.pread_nb(t0, nblo, &mut buf);
                t_done = t_done.max(op.done_at());
                if op.error().is_none() {
                    self.prefetch = Some(SievePrefetch { cycle: i + 1, blo: nblo, buf });
                }
            }
        }
        Some((IoCompletion::span(t0, t_done).or_error(err), None))
    }
}

/// One read cycle's collective buffer, read from the file and awaiting
/// slicing + distribution.
struct RomioReadStage {
    blo: u64,
    cbuf: Vec<u8>,
}

/// [`CycleDriver`] for the ROMIO read direction: issue prefetches a
/// cycle's spanning sieve read, exchange slices and distributes it.
struct RomioRead<'a, 'b> {
    rank: &'a Rank,
    handle: &'a FileHandle,
    my: &'a ClientAccess,
    mem: &'a MemLayout,
    buf: &'a mut DataBuf<'b>,
    hints: &'a Hints,
    agg_ranks: &'a [usize],
    cycles: &'a [RomioCycle],
    my_agg_idx: Option<usize>,
}

impl CycleDriver for RomioRead<'_, '_> {
    type Stage = RomioReadStage;

    fn n_cycles(&self) -> usize {
        self.cycles.len()
    }

    fn issue(
        &mut self,
        i: usize,
        _outgoing: Option<RomioReadStage>,
    ) -> Option<(IoCompletion, Option<RomioReadStage>)> {
        let agg_cycle = &self.cycles[i].agg_cycle;
        if self.my_agg_idx.is_none() || agg_cycle.iter().all(|l| l.is_empty()) {
            return None;
        }
        // One sieving read of the spanning range.
        let mut blo = u64::MAX;
        let mut bhi = 0u64;
        for l in agg_cycle {
            for &(o, len) in l {
                blo = blo.min(o);
                bhi = bhi.max(o + len);
            }
        }
        let mut cbuf = vec![0u8; (bhi - blo) as usize];
        let t0 = self.rank.now();
        let (t, e) = retry_io(self.rank, self.hints, t0, |at| self.handle.read(at, blo, &mut cbuf));
        Some((IoCompletion::span(t0, t).or_error(e), Some(RomioReadStage { blo, cbuf })))
    }

    fn exchange(&mut self, i: usize, incoming: Option<RomioReadStage>) -> Option<RomioReadStage> {
        let RomioCycle { my_cycle, agg_cycle } = &self.cycles[i];
        // Aggregator: slice the collective buffer per client. The buffer
        // persists in the stage, so zero-copy sends each client an iovec
        // run list pointing straight into it — the slicing pass below is
        // then wire representation only, not a charged copy.
        let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
        if let Some(stage) = incoming {
            let mut total = 0u64;
            for (c, l) in agg_cycle.iter().enumerate() {
                if l.is_empty() {
                    continue;
                }
                let mut payload = Vec::with_capacity(l.iter().map(|&(_, n)| n as usize).sum());
                for &(o, len) in l {
                    payload.extend_from_slice(
                        &stage.cbuf[(o - stage.blo) as usize..(o - stage.blo + len) as usize],
                    );
                    total += len;
                }
                sends.push((c, payload));
            }
            if !self.hints.zero_copy {
                self.rank.charge_memcpy(total);
                self.rank.note_bytes_copied(total);
            }
        }
        let recv_from: Vec<usize> = my_cycle
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(a, _)| self.agg_ranks[a])
            .collect();
        let received = self.rank.exchange(&sends, &recv_from);
        let user = match self.buf {
            DataBuf::Read(b) => &mut **b,
            DataBuf::Write(_) => unreachable!(),
        };
        let mut by_src: std::collections::HashMap<usize, Vec<u8>> = received.into_iter().collect();
        for (a, pieces) in my_cycle.iter().enumerate() {
            if pieces.is_empty() {
                continue;
            }
            let payload = by_src.remove(&self.agg_ranks[a]).expect("missing payload");
            let mut pos = 0usize;
            let mut total = 0u64;
            for p in pieces {
                self.mem.scatter(
                    user,
                    p.data_pos - self.my.data_start,
                    &payload[pos..pos + p.len as usize],
                );
                pos += p.len as usize;
                total += p.len;
            }
            if !self.hints.zero_copy {
                // Zero-copy receives into the user buffer's runs directly.
                self.rank.charge_memcpy(total);
                self.rank.note_bytes_copied(total);
            }
        }
        None
    }
}
