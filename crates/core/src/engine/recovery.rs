//! Crash-stop failure detection and collective recovery.
//!
//! The sim's crash model kills a rank's fiber at a scheduled virtual
//! time, but only at *crash checkpoints* ([`Rank::maybe_crash`]): the
//! entry of a recovery-wrapped collective and the top of every buffer
//! cycle ([`CycleDriver::boundary`]). A checkpoint fires **before** the
//! rank sends that boundary's heartbeats, so a dead rank contributed
//! nothing to the boundary and every survivor's detector reaches the
//! same verdict without a consensus protocol:
//!
//! 1. **Heartbeat round** — every rank sends a one-byte heartbeat to
//!    every peer, then collects heartbeats with [`Rank::recv_timeout`]
//!    against an absolute deadline `now + flexio_watchdog_us`. A peer
//!    whose heartbeat never arrives is suspected. Under lowest-virtual-
//!    clock-first scheduling a live peer's heartbeat always lands before
//!    the deadline *provided the watchdog exceeds the inter-rank clock
//!    skew* — the one soundness assumption of the model (see DESIGN).
//! 2. **Suspect-union round** — non-suspects exchange suspect bitmaps
//!    and union them, so a survivor that raced a late crash still adopts
//!    its peers' verdict. The round re-uses the deadline machinery as a
//!    defence: a peer that goes silent between rounds times out rather
//!    than hanging the exchange.
//!
//! Detection costs virtual time only (the timeout advances the waiting
//! rank's clock to the deadline), so a generous default watchdog is
//! nearly free; it is charged exactly like any other communication wait.
//!
//! [`run`] wraps the flexible engine with the recovery loop: detect at
//! entry, run the engine (which detects at every cycle boundary), and on
//! a failed-rank verdict either surface [`IoError::RanksFailed`]
//! (`flexio_crash_recovery=disable` — the same agreed list on every
//! survivor, never a hang) or shrink the communicator to the survivors,
//! re-elect aggregators and re-partition realms over them, and replay
//! the whole call. Replay is idempotent: writes re-land every survivor
//! byte, reads re-fill every survivor buffer, so survivors end
//! byte-identical to a fault-free run over the surviving ranks.
//!
//! [`CycleDriver::boundary`]: crate::engine::pipeline::CycleDriver::boundary
//! [`IoError::RanksFailed`]: crate::error::IoError::RanksFailed

use crate::engine::flexible::{self, DataBuf};
use crate::engine::schedule::ExchangeSchedule;
use crate::error::{IoError, Result};
use crate::hints::Hints;
use crate::meta::ClientAccess;
use crate::realm::FileRealm;
use flexio_pfs::FileHandle;
use flexio_sim::Rank;
use flexio_types::MemLayout;

/// Heartbeat tag: the top of the user tag space (internal collective
/// tags start at 2^40), far above anything the engines use.
const HB_TAG: u64 = (1 << 40) - 64;
/// Suspect-bitmap exchange tag.
const SUSPECT_TAG: u64 = HB_TAG + 1;

/// Per-call crash-detection state threaded into the cycle drivers: the
/// watchdog in nanoseconds and, after an aborted drive, the
/// communicator-relative ranks found dead.
pub(crate) struct CrashState {
    pub watchdog_ns: u64,
    pub dead: Vec<usize>,
}

impl CrashState {
    pub(crate) fn new(hints: &Hints) -> CrashState {
        CrashState { watchdog_ns: hints.watchdog_us.saturating_mul(1000), dead: Vec::new() }
    }
}

/// One crash checkpoint: fire a scheduled crash if its time has come
/// (this rank never returns then — the fiber unwinds and the world reaps
/// it), otherwise run failure detection. Returns `false` when dead peers
/// were found, with the verdict left in `st.dead`.
pub(crate) fn crash_boundary(rank: &Rank, st: &mut CrashState) -> bool {
    rank.maybe_crash();
    let dead = detect_failures(rank, st.watchdog_ns);
    if dead.is_empty() {
        true
    } else {
        st.dead = dead;
        false
    }
}

/// Two-round crash detection over `rank`'s communicator. Returns the
/// communicator-relative ranks agreed dead, ascending (empty = all
/// alive). See the module docs for the protocol and its soundness
/// assumption.
pub(crate) fn detect_failures(rank: &Rank, watchdog_ns: u64) -> Vec<usize> {
    let p = rank.nprocs();
    if p == 1 {
        return Vec::new();
    }
    let me = rank.rank();
    // Round 1: heartbeats out, then collect against one absolute
    // deadline (sends to dead peers are dropped by the world).
    for r in 0..p {
        if r != me {
            rank.send(r, HB_TAG, &[1]);
        }
    }
    let deadline = rank.now().saturating_add(watchdog_ns);
    let mut suspect = vec![false; p];
    for (r, s) in suspect.iter_mut().enumerate() {
        if r != me && rank.recv_timeout(r, HB_TAG, deadline).is_none() {
            *s = true;
        }
    }
    if suspect.iter().all(|&s| !s) {
        return Vec::new();
    }
    // Round 2: union suspect bitmaps among non-suspects. The deadline
    // guards against a peer that died between the rounds (it heartbeated,
    // then hit its own checkpoint — impossible under the checkpoint
    // placement, but cheap to defend against).
    let bitmap: Vec<u8> = suspect.iter().map(|&b| b as u8).collect();
    for (r, &s) in suspect.iter().enumerate() {
        if r != me && !s {
            rank.send(r, SUSPECT_TAG, &bitmap);
        }
    }
    let deadline2 = rank.now().saturating_add(watchdog_ns);
    for r in 0..p {
        if r == me || suspect[r] {
            continue;
        }
        match rank.recv_timeout(r, SUSPECT_TAG, deadline2) {
            Some(theirs) => {
                for (i, &b) in theirs.iter().enumerate() {
                    if b != 0 {
                        suspect[i] = true;
                    }
                }
            }
            None => suspect[r] = true,
        }
    }
    (0..p).filter(|&r| suspect[r]).collect()
}

/// Run one flexible-engine collective under the crash-recovery loop.
/// `MpiFile::run_engine` routes here instead of [`flexible::run`] when
/// the installed fault plan schedules rank crashes; without crashes the
/// plain path is taken and nothing here runs (charge identity).
///
/// `rank` must be the world communicator the collective was issued on;
/// the loop derives shrinking survivor subgroups from it. On a verdict:
///
/// * recovery disabled — every survivor returns the same
///   [`IoError::RanksFailed`] (world-frame ranks);
/// * recovery enabled — every survivor bumps `ranks_recovered` and
///   `realms_rebalanced`, drops the persistent realms and the schedule
///   cache (both are partition-shaped, and the partition just changed),
///   and replays the whole call over the survivors. Aggregator
///   re-election is implicit: `aggregator_ranks` is derived from the
///   shrunk communicator on replay.
///
/// [`IoError::RanksFailed`]: crate::error::IoError::RanksFailed
#[allow(clippy::too_many_arguments)] // mirrors flexible::run (one call site)
pub fn run(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &mut DataBuf<'_>,
    hints: &Hints,
    pfr_state: &mut Option<Vec<FileRealm>>,
    sched_cache: &mut Option<ExchangeSchedule>,
) -> Result<()> {
    let mut members: Vec<usize> = (0..rank.nprocs()).collect();
    let watchdog_ns = hints.watchdog_us.saturating_mul(1000);
    loop {
        let comm = rank.subgroup(&members);
        // Entry checkpoint: a rank whose crash time already passed dies
        // here, where every survivor detects it — before the engine's
        // metadata allgather could hang on the dead peer.
        comm.maybe_crash();
        let dead_local = detect_failures(&comm, watchdog_ns);
        let res = if dead_local.is_empty() {
            flexible::run(&comm, handle, my, mem, buf, hints, pfr_state, sched_cache)
        } else {
            Err(IoError::RanksFailed(dead_local))
        };
        match res {
            Err(IoError::RanksFailed(dead)) => {
                let dead_world: Vec<usize> = dead.iter().map(|&d| members[d]).collect();
                if !hints.crash_recovery {
                    return Err(IoError::RanksFailed(dead_world));
                }
                comm.note_ranks_recovered(dead_world.len() as u64);
                comm.note_realms_rebalanced();
                *pfr_state = None;
                *sched_cache = None;
                members.retain(|m| !dead_world.contains(m));
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_sim::CostModel;

    #[test]
    fn detect_nothing_when_all_alive() {
        let out = flexio_sim::run_crashable(4, CostModel::default(), &[], |rank| {
            detect_failures(rank, 1_000_000)
        });
        for r in out {
            assert_eq!(r.expect("no crashes scheduled"), Vec::<usize>::new());
        }
    }

    #[test]
    fn survivors_agree_on_a_dead_rank() {
        // Rank 2 dies at its first checkpoint; every survivor must return
        // exactly [2].
        let out = flexio_sim::run_crashable(4, CostModel::default(), &[(2, 0)], |rank| {
            rank.maybe_crash();
            detect_failures(rank, 1_000_000)
        });
        assert!(out[2].is_none(), "rank 2 must have crashed");
        for (r, res) in out.iter().enumerate() {
            if r != 2 {
                assert_eq!(res.as_deref(), Some(&[2usize][..]), "rank {r}");
            }
        }
    }

    #[test]
    fn survivors_agree_on_multiple_dead_ranks() {
        let out =
            flexio_sim::run_crashable(5, CostModel::default(), &[(0, 0), (3, 0)], |rank| {
                rank.maybe_crash();
                detect_failures(rank, 1_000_000)
            });
        for (r, res) in out.iter().enumerate() {
            match r {
                0 | 3 => assert!(res.is_none()),
                _ => assert_eq!(res.as_deref(), Some(&[0usize, 3][..]), "rank {r}"),
            }
        }
    }

    #[test]
    fn detection_works_on_subgroups() {
        // Kill world rank 3; detect over the subgroup {1, 2, 3} where it
        // is group rank 2.
        let out = flexio_sim::run_crashable(4, CostModel::default(), &[(3, 0)], |rank| {
            if rank.rank() == 0 {
                return Vec::new();
            }
            let comm = rank.subgroup(&[1, 2, 3]);
            comm.maybe_crash();
            detect_failures(&comm, 1_000_000)
        });
        assert!(out[3].is_none());
        assert_eq!(out[1].as_deref(), Some(&[2usize][..]));
        assert_eq!(out[2].as_deref(), Some(&[2usize][..]));
    }

    #[test]
    fn singleton_communicator_detects_nothing() {
        let out = flexio_sim::run_crashable(1, CostModel::default(), &[], |rank| {
            detect_failures(rank, 1000)
        });
        assert_eq!(out[0].as_deref(), Some(&[][..]));
    }

    #[test]
    fn detection_advances_the_clock_by_at_most_the_watchdog_rounds() {
        // A timeout costs virtual time: survivors' clocks move past the
        // deadline they waited out, but by a bounded amount (two rounds).
        let out = flexio_sim::run_crashable(3, CostModel::default(), &[(0, 0)], |rank| {
            rank.maybe_crash();
            let t0 = rank.now();
            let dead = detect_failures(rank, 50_000);
            (dead, rank.now() - t0)
        });
        for res in out.iter().skip(1) {
            let (dead, waited) = res.as_ref().expect("survivor");
            assert_eq!(dead, &[0usize]);
            assert!(*waited >= 50_000, "must have waited out the watchdog: {waited}");
            assert!(*waited < 250_000, "two rounds must bound the wait: {waited}");
        }
    }
}
