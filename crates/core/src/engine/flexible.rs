//! The new flexible two-phase collective I/O engine (§4–§5).
//!
//! Differences from the original ROMIO code path (`engine::romio`):
//!
//! * **Metadata**: ships each client's *flattened filetype* (`D` pairs)
//!   once via allgather, instead of the fully flattened access (`M`
//!   pairs). Aggregators re-derive every client's offset/length stream
//!   themselves — O(M) work per aggregator, and the client walks its own
//!   stream once per aggregator (O(MA) with enumerated filetypes, far less
//!   with succinct ones thanks to whole-datatype skipping).
//! * **File realms are datatype streams** ([`crate::realm::FileRealm`]):
//!   any assigner can be plugged in; persistent file realms and boundary
//!   alignment are hints, not code forks.
//! * **The collective buffer is separate** from any sieve buffer: each
//!   buffer cycle hands one packed non-contiguous request to `flexio-io`,
//!   which may choose a different method every cycle (§5.1). The price is
//!   the double-buffer copy, charged here.
//! * **Exchange flavour** (§5.4): sparse non-blocking, or a dense
//!   alltoallw-style collective that skips pack/unpack copies.

use crate::engine::common::{
    agree_error, ewma, group_by_window, merge_pieces, retry_io, ClientStream, Piece, PlanEntry,
};
use crate::engine::schedule::{self, schedule_key, CycleSchedule, ExchangeSchedule};
use crate::error::{IoError, Result};
use crate::hints::{aggregator_ranks, ExchangeMode, Hints, PipelineDepth};
use crate::meta::ClientAccess;
use crate::realm::{AssignCtx, EvenAar, FileRealm, PersistentBlockCyclic, RealmAssigner};
use flexio_io::{read_packed_nb, resolve, write_packed_nb, IoCompletion, Resolved};
use flexio_pfs::{FileHandle, NbGuard, PfsError};
use flexio_sim::{OverlapWindow, Phase, Rank};
use flexio_types::{FlatType, MemLayout, Seg};
use std::collections::VecDeque;
use std::sync::Arc;

/// Most in-flight completion windows any pipeline keeps (depth − 1). Past
/// eight buffers the exchange can't keep even one OST busy per extra
/// buffer, and real memory would run out long before virtual time cared.
const MAX_INFLIGHT: usize = 7;

/// How many buffer cycles may be in flight ahead of the one being
/// exchanged — the resolved form of `flexio_double_buffer` +
/// `flexio_pipeline_depth`, expressed as a *cap* on outstanding
/// completion windows (cap = depth − 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CapPolicy {
    /// Never exceed this many outstanding windows. 0 is the strictly
    /// serial engine, 1 the classic two-buffer pipeline.
    Fixed(usize),
    /// Start at 1 (double buffering) and re-derive the cap after every
    /// issue from the measured I/O:exchange duration ratio: I/O that runs
    /// `r` times longer than an exchange needs `ceil(r)` cycles of
    /// exchange work to hide behind. `bound` caps the ratio — an
    /// aggregator's useful outstanding I/O is limited by its share of the
    /// stripe width, since ops beyond that only queue on OSTs other
    /// aggregators are driving (and the measured I/O time then includes
    /// their queueing, which would talk the ratio into going ever
    /// deeper).
    Auto {
        /// `clamp(2·n_osts / n_aggregators, 1, MAX_INFLIGHT)`.
        bound: usize,
    },
}

impl CapPolicy {
    fn resolve(hints: &Hints, n_osts: usize, n_aggs: usize) -> CapPolicy {
        if !hints.double_buffer {
            return CapPolicy::Fixed(0);
        }
        match hints.pipeline_depth {
            PipelineDepth::Auto => {
                CapPolicy::Auto { bound: (2 * n_osts / n_aggs.max(1)).clamp(1, MAX_INFLIGHT) }
            }
            PipelineDepth::Fixed(d) => {
                CapPolicy::Fixed(((d as usize).saturating_sub(1)).min(MAX_INFLIGHT))
            }
        }
    }

    /// The cap to start the cycle loop with.
    fn initial_cap(self) -> usize {
        match self {
            CapPolicy::Fixed(c) => c,
            CapPolicy::Auto { .. } => 1,
        }
    }

    /// Re-derive the cap after an issue whose I/O occupied `io_ns` of
    /// virtual time, the preceding exchange `exch_ns`. Fixed caps never
    /// move.
    fn adapt(self, io_ns: u64, exch_ns: u64) -> usize {
        match self {
            CapPolicy::Fixed(c) => c,
            CapPolicy::Auto { bound } => {
                (io_ns.div_ceil(exch_ns.max(1)) as usize).clamp(1, bound)
            }
        }
    }

    /// Whether the derive-overlap optimisation may run: it perturbs the
    /// virtual timeline (never the counters), so the charge-replay
    /// configurations — serial and classic double buffering — keep it off
    /// to stay bit-identical to the reference engines.
    fn allows_derive_overlap(self) -> bool {
        match self {
            CapPolicy::Fixed(c) => c >= 2,
            CapPolicy::Auto { .. } => true,
        }
    }
}

/// Direction + user buffer for one collective call.
pub enum DataBuf<'a> {
    /// Collective write: data flows user buffer → file.
    Write(&'a [u8]),
    /// Collective read: data flows file → user buffer.
    Read(&'a mut [u8]),
}

impl DataBuf<'_> {
    fn is_write(&self) -> bool {
        matches!(self, DataBuf::Write(_))
    }
}

/// Run one collective read/write with the flexible engine. Must be called
/// by every rank of the world (standard collective semantics); ranks with
/// `my.data_len == 0` still participate in the exchanges.
///
/// `sched_cache` holds the last call's exchange schedule. When the digest
/// of this call's inputs matches, the entire derivation — metadata
/// parsing, realm assignment, window walks, stream intersection — is
/// skipped and the cached schedule is replayed against the fresh user
/// buffer, charging only [`schedule::PROBE_PAIRS`]. A first (miss) call
/// charges exactly what the pre-cache engine charged.
#[allow(clippy::too_many_arguments)] // one call site (MpiFile::run_engine)
pub fn run(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    mut buf: DataBuf<'_>,
    hints: &Hints,
    pfr_state: &mut Option<Vec<FileRealm>>,
    sched_cache: &mut Option<ExchangeSchedule>,
) -> Result<()> {
    let nprocs = rank.nprocs();
    let is_write = buf.is_write();

    // ---- metadata exchange: flattened filetypes (D pairs each) ----------
    rank.charge_pairs(my.view.d() as u64);
    let wires = rank.allgatherv(&my.to_wire());

    // ---- schedule-cache probe -------------------------------------------
    // Every rank sees the same wires and (by MPI collective semantics) the
    // same hints, so every rank reaches the same hit/miss verdict and the
    // replayed communication pattern stays globally consistent.
    let key = schedule_key(&wires, hints, nprocs);
    let hit = hints.schedule_cache && sched_cache.as_ref().is_some_and(|s| s.key == key);
    if hints.schedule_cache {
        rank.note_schedule_cache(hit);
    }
    let derived: Option<ExchangeSchedule> = if hit {
        rank.charge_pairs(schedule::PROBE_PAIRS);
        None
    } else {
        Some(derive_schedule(rank, &wires, key, my, hints, pfr_state))
    };
    let sched = match &derived {
        Some(s) => s,
        None => sched_cache.as_ref().expect("hit implies a cached schedule"),
    };

    // ---- buffer cycles ----------------------------------------------------
    // Derivation pairs are charged where the pre-cache engine charged
    // them — parse before the loop, window/stream work at the top of each
    // cycle — so a miss's virtual clock matches the uncached engine at
    // every send and file request. A hit skips all of it.
    //
    // With a deep (≥ 3) or auto pipeline, a miss instead charges cycle 0's
    // derivation up front and lets the rest — pure local computation over
    // already-exchanged metadata — proceed as an overlap window behind the
    // first cycle's exchange. Same pair counts, earlier first send.
    let policy =
        CapPolicy::resolve(hints, handle.pfs().config().n_osts, sched.agg_ranks.len());
    let derive_overlap = !hit && policy.allows_derive_overlap() && sched.cycles.len() > 1;
    let mut derive_win: Option<OverlapWindow> = None;
    if !hit {
        if derive_overlap {
            rank.charge_pairs(sched.parse_pairs + sched.cycles[0].pairs);
            let rest: u64 = sched.cycles[1..].iter().map(|c| c.pairs).sum();
            if rest > 0 {
                derive_win = Some(rank.charge_pairs_overlapped(rest));
            }
        } else {
            rank.charge_pairs(sched.parse_pairs);
        }
    }
    let charge_cycles = !hit && !derive_overlap;
    let n_agg = sched.agg_ranks.len();
    let outcome = if is_write {
        run_write(rank, handle, my, mem, &buf, hints, sched, charge_cycles, policy, derive_win)
    } else {
        run_read(rank, handle, my, mem, &mut buf, hints, sched, charge_cycles, policy, derive_win)
    };

    if hints.schedule_cache {
        if let Some(s) = derived {
            *sched_cache = Some(s);
        }
    }

    // ---- graceful degradation -------------------------------------------
    // Every rank ran the same straggler detector over the same allgathered
    // durations, so the rebalance decision is already collective. Shrink
    // the straggling aggregator's persistent realms so later calls steer
    // work to its healthy peers; the cached schedule replays the old
    // ownership (realms are not part of the schedule key), so it must go.
    if let Some((si, helper)) = outcome.straggler {
        if hints.persistent_file_realms && n_agg >= 2 {
            if let Some(new_realms) =
                pfr_state.as_deref().and_then(|r| rebalance_realms(r, si, helper, hints))
            {
                *pfr_state = Some(new_realms);
                *sched_cache = None;
                rank.note_realms_rebalanced();
            }
        }
    }

    // ---- collective error agreement -------------------------------------
    // Gated on the fault plan's presence: without one no request can fail
    // (keeping fault-free runs charge-identical), and with one every rank
    // sees the same plan, so all ranks take this branch together.
    if handle.pfs().fault_plan().is_some() {
        if let Some(e) = agree_error(rank, outcome.err) {
            return Err(IoError::Transient(e));
        }
    } else {
        debug_assert!(outcome.err.is_none(), "a fault was reported without a fault plan");
    }
    Ok(())
}

/// What one engine pass reports back to [`run`] beyond its data movement:
/// the first retry-exhausted fault (fed to the error agreement) and the
/// `(straggler, helper)` aggregator pair the EWMA detector converged on,
/// if any.
#[derive(Debug, Default)]
struct CycleOutcome {
    err: Option<PfsError>,
    straggler: Option<(usize, usize)>,
}

/// Tracks per-aggregator smoothed I/O durations across buffer cycles and
/// flags a straggler. Runs only under a fault plan: each cycle, every rank
/// allgathers its local I/O duration (clients contribute 0), feeds the
/// aggregators' samples into per-aggregator EWMAs, and — because everyone
/// folds the same data — reaches the same verdict with no extra
/// agreement round.
struct StragglerDetector {
    agg_ewma: Vec<Option<u64>>,
}

impl StragglerDetector {
    fn new(n_agg: usize) -> StragglerDetector {
        StragglerDetector { agg_ewma: vec![None; n_agg] }
    }

    /// Fold one cycle's allgathered durations; returns the straggling
    /// aggregator and its least-loaded peer if one now stands out.
    fn observe(
        &mut self,
        rank: &Rank,
        agg_ranks: &[usize],
        my_io_ns: u64,
    ) -> Option<(usize, usize)> {
        let durs = rank.allgatherv(&my_io_ns.to_le_bytes());
        for (a, &ar) in agg_ranks.iter().enumerate() {
            let d = u64::from_le_bytes(
                durs[ar][..8].try_into().expect("duration payload must be 8 bytes"),
            );
            if d > 0 {
                self.agg_ewma[a] = Some(ewma(self.agg_ewma[a], d));
            }
        }
        self.straggler()
    }

    /// The aggregator whose smoothed I/O time is more than twice the mean
    /// of its peers' (strict, so a clean 2:1 split does not churn; needs
    /// ≥ 2 aggregators with samples; first index wins ties,
    /// deterministically), paired with the least-loaded peer — the best
    /// place for the rebalancer to move realm bytes to.
    fn straggler(&self) -> Option<(usize, usize)> {
        let known: Vec<(usize, u64)> =
            self.agg_ewma.iter().enumerate().filter_map(|(i, e)| e.map(|v| (i, v))).collect();
        if known.len() < 2 {
            return None;
        }
        let (mut mi, mut mv) = known[0];
        for &(i, v) in &known[1..] {
            if v > mv {
                (mi, mv) = (i, v);
            }
        }
        let others: u64 = known.iter().filter(|&&(i, _)| i != mi).map(|&(_, v)| v).sum();
        let avg = others / (known.len() as u64 - 1);
        if avg == 0 || mv <= 2 * avg {
            return None;
        }
        let (mut hi, mut hv) = (usize::MAX, u64::MAX);
        for &(i, v) in &known {
            if i != mi && v < hv {
                (hi, hv) = (i, v);
            }
        }
        Some((mi, hi))
    }
}

/// Rebuild the persistent block-cyclic realms with the straggler's largest
/// per-period run halved and the freed bytes handed to `helper` (the
/// detector's least-loaded aggregator, so repeated rebalances spread a
/// slow realm over many peers instead of piling it onto one neighbour).
/// The realm *period* is unchanged, so the realms still tile the whole
/// file and stay pairwise disjoint; only the ownership split inside each
/// period moves. Deterministic given the same inputs, so every rank
/// rebuilds identical realms without communicating. `None` when nothing
/// meaningful can move (non-tiled realms, or the straggler's share is
/// already below one alignment unit).
fn rebalance_realms(
    old: &[FileRealm],
    straggler: usize,
    helper: usize,
    hints: &Hints,
) -> Option<Vec<FileRealm>> {
    let mut shares: Vec<Vec<(u64, u64)>> = Vec::with_capacity(old.len());
    let mut period = 0u64;
    for r in old {
        let (segs, p) = r.tile()?;
        if period == 0 {
            period = p;
        } else if period != p {
            return None; // custom assigner with mismatched tilings
        }
        shares.push(segs);
    }
    // Halve the straggler's largest run (first wins ties, so every rank
    // picks the same one), keeping the front half aligned when a boundary
    // alignment is hinted.
    let (mut idx, mut s_len) = (0usize, 0u64);
    for (i, &(_, l)) in shares[straggler].iter().enumerate() {
        if l > s_len {
            (idx, s_len) = (i, l);
        }
    }
    let s_off = shares[straggler].get(idx)?.0;
    let mut keep = s_len / 2;
    if let Some(al) = hints.fr_alignment {
        keep = keep / al * al;
    }
    if keep == 0 {
        return None;
    }
    shares[straggler][idx] = (s_off, keep);
    shares[helper].push((s_off + keep, s_len - keep));
    shares[helper].sort_unstable();
    Some(
        shares
            .into_iter()
            .map(|segs| {
                // Merge runs the handoff made adjacent.
                let mut merged: Vec<(u64, u64)> = Vec::with_capacity(segs.len());
                for (o, l) in segs {
                    match merged.last_mut() {
                        Some(last) if last.0 + last.1 == o => last.1 += l,
                        _ => merged.push((o, l)),
                    }
                }
                let size: u64 = merged.iter().map(|(_, l)| l).sum();
                let mut prefix = vec![0u64];
                for &(_, l) in &merged {
                    prefix.push(prefix.last().unwrap() + l);
                }
                let pattern = FlatType {
                    segs: merged.iter().map(|&(o, l)| Seg::new(o as i64, l)).collect(),
                    lb: 0,
                    extent: period,
                    size,
                    monotonic: true,
                    contiguous: merged.len() <= 1,
                    prefix,
                };
                FileRealm::tiled(Arc::new(pattern), 0)
            })
            .collect(),
    )
}

/// Derive the full per-cycle exchange schedule for one collective call,
/// charging the same pair-processing costs the engine always charged for
/// this work. Pure computation over the exchanged metadata: no
/// communication happens here, so hoisting it out of the cycle loop (to
/// make it cacheable) cannot change message ordering.
#[allow(clippy::too_many_lines)]
fn derive_schedule(
    rank: &Rank,
    wires: &[Vec<u8>],
    key: u64,
    my: &ClientAccess,
    hints: &Hints,
    pfr_state: &mut Option<Vec<FileRealm>>,
) -> ExchangeSchedule {
    let nprocs = rank.nprocs();
    let clients: Vec<ClientAccess> = wires.iter().map(|w| ClientAccess::from_wire(w)).collect();
    let parse_pairs: u64 = clients.iter().map(|c| c.view.d() as u64).sum();

    // ---- aggregate access region ----------------------------------------
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for c in &clients {
        if let Some((a, b)) = c.file_range() {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    if hi <= lo {
        // Every rank's access is empty; all agree. An empty schedule is
        // cached too, so repeated empty calls hit.
        return ExchangeSchedule { key, agg_ranks: Vec::new(), cycles: Vec::new(), parse_pairs };
    }

    // ---- realm assignment -------------------------------------------------
    let n_agg = hints.aggregators(nprocs);
    let agg_ranks = aggregator_ranks(n_agg, nprocs);
    let ctx = AssignCtx {
        aar: (lo, hi),
        n_aggregators: n_agg,
        alignment: hints.fr_alignment,
        clients: &clients,
    };
    let assign = |ctx: &AssignCtx<'_>, default: &dyn RealmAssigner| match &hints.realm_assigner {
        Some(a) => a.assign(ctx),
        None => default.assign(ctx),
    };
    // Persistent realms are borrowed from the per-file state, not cloned
    // per call; non-persistent realms live only for this derivation.
    let computed: Vec<FileRealm>;
    let realms: &[FileRealm] = if hints.persistent_file_realms {
        if pfr_state.is_none() {
            *pfr_state = Some(assign(&ctx, &PersistentBlockCyclic));
        }
        pfr_state.as_deref().unwrap()
    } else {
        computed = assign(&ctx, &EvenAar);
        &computed
    };
    assert_eq!(realms.len(), n_agg, "assigner must produce one realm per aggregator");

    // ---- cycle counts -------------------------------------------------------
    let cb = hints.cb_buffer_size as u64;
    let spans: Vec<(u64, u64)> = realms.iter().map(|r| (r.data_lower(lo), r.data_lower(hi))).collect();
    let ntimes = spans.iter().map(|(b, c)| (c - b).div_ceil(cb)).max().unwrap_or(0);

    // ---- per-pair state ------------------------------------------------------
    let my_agg_idx = agg_ranks.iter().position(|&r| r == rank.rank());
    let mut agg_streams: Vec<ClientStream> = if my_agg_idx.is_some() {
        clients.iter().cloned().map(ClientStream::new).collect()
    } else {
        Vec::new()
    };
    let mut my_streams: Vec<ClientStream> =
        (0..n_agg).map(|_| ClientStream::new(my.clone())).collect();

    let mut cycles: Vec<CycleSchedule> = Vec::with_capacity(ntimes as usize);
    for t in 0..ntimes {
        // Every rank derives every aggregator's window (realms are
        // deterministic, so no extra communication is needed).
        let mut windows: Vec<Vec<(u64, u64)>> = (0..n_agg)
            .map(|a| {
                let (base, cap) = spans[a];
                let d0 = base + t * cb;
                let d1 = (base + (t + 1) * cb).min(cap);
                if d0 >= d1 {
                    Vec::new()
                } else {
                    realms[a].segments(d0, d1)
                }
            })
            .collect();
        let mut pairs: u64 = windows.iter().map(|w| w.len() as u64).sum();

        // Client role: my pieces inside each aggregator's window.
        let mut my_pieces: Vec<Vec<Piece>> = Vec::with_capacity(n_agg);
        for a in 0..n_agg {
            let (p, charged) = my_streams[a].take_window(&windows[a]);
            pairs += charged;
            my_pieces.push(p);
        }

        // Aggregator role: every client's pieces inside my window.
        let agg_pieces: Vec<(usize, Vec<Piece>)> = if let Some(ai) = my_agg_idx {
            let w = &windows[ai];
            agg_streams
                .iter_mut()
                .enumerate()
                .map(|(c, s)| {
                    let (p, charged) = s.take_window(w);
                    pairs += charged;
                    (c, p)
                })
                .collect()
        } else {
            Vec::new()
        };

        let my_window = match my_agg_idx {
            Some(ai) => std::mem::take(&mut windows[ai]),
            None => Vec::new(),
        };
        cycles.push(CycleSchedule { my_window, my_pieces, agg_pieces, pairs });
    }
    ExchangeSchedule { key, agg_ranks, cycles, parse_pairs }
}

/// Pack this rank's outgoing payload for one aggregator.
fn pack_payload(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    user: &[u8],
    pieces: &[Piece],
    hints: &Hints,
) -> Vec<u8> {
    let total: u64 = pieces.iter().map(|p| p.len).sum();
    let mut payload = vec![0u8; total as usize];
    let mut pos = 0usize;
    for p in pieces {
        mem.gather(user, p.data_pos - my.data_start, &mut payload[pos..pos + p.len as usize]);
        pos += p.len as usize;
    }
    if matches!(hints.exchange, ExchangeMode::Nonblocking) {
        // Alltoallw sends straight from the user buffer; the non-blocking
        // path packs first (§5.4).
        rank.charge_memcpy(total);
    }
    payload
}

/// Estimate the period of an aggregated segment group: the average
/// distance between consecutive segment starts. For the paper's regular
/// workloads this equals the datatype extent, which §6.3 found to be the
/// right metric for conditional data sieving; unlike the raw filetype
/// extent it stays meaningful when many clients' filetypes interleave
/// densely at the aggregator.
fn group_period(group: &[(u64, u64)]) -> u64 {
    match group {
        [] => 0,
        [only] => only.1,
        _ => {
            let span = group.last().unwrap().0 + group.last().unwrap().1 - group[0].0;
            span / group.len() as u64
        }
    }
}

/// One write cycle's assembled collective buffer, ready for the file.
struct WriteStage {
    /// Sorted, merged file segments of this aggregator's window slice.
    segs: Vec<(u64, u64)>,
    /// The segments' bytes, concatenated in file order.
    packed: Vec<u8>,
}

/// Exchange half of a write cycle: clients send their pieces, aggregators
/// assemble the collective buffer in file order. Pure data movement — the
/// file is not touched, so the pipelined driver can run this while the
/// previous cycle's I/O is still in flight.
#[allow(clippy::too_many_arguments)]
fn exchange_write(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &DataBuf<'_>,
    hints: &Hints,
    agg_ranks: &[usize],
    my_pieces: &[Vec<Piece>],
    agg_pieces: &[(usize, Vec<Piece>)],
) -> Option<WriteStage> {
    let user = match buf {
        DataBuf::Write(b) => *b,
        DataBuf::Read(_) => unreachable!(),
    };
    // Sends: client -> aggregators.
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    for (a, pieces) in my_pieces.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        sends.push((agg_ranks[a], pack_payload(rank, my, mem, user, pieces, hints)));
    }
    let recv_from: Vec<usize> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).map(|(c, _)| *c).collect();

    let received: Vec<(usize, Vec<u8>)> = match hints.exchange {
        ExchangeMode::Nonblocking => rank.exchange(&sends, &recv_from),
        ExchangeMode::Alltoallw => {
            let mut blocks = vec![Vec::new(); rank.nprocs()];
            for (dst, payload) in sends {
                blocks[dst] = payload;
            }
            let out = rank.alltoallv(blocks);
            recv_from.iter().map(|&c| (c, out[c].clone())).collect()
        }
    };
    if agg_pieces.iter().all(|(_, p)| p.is_empty()) {
        return None; // nothing owned this cycle (or not an aggregator)
    }

    // Assemble the collective buffer in file order.
    let nonempty: Vec<(usize, Vec<Piece>)> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).cloned().collect();
    let (entries, segs) = merge_pieces(&nonempty);
    let total: u64 = entries.iter().map(|e| e.3).sum();
    let mut packed = vec![0u8; total as usize];
    let mut recv_cursor: std::collections::HashMap<usize, (usize, usize)> =
        received.iter().enumerate().map(|(i, (c, _))| (*c, (i, 0usize))).collect();
    let mut pos = 0usize;
    for &(_off, client, _piece, len) in &entries {
        let (ri, consumed) = recv_cursor.get_mut(&client).expect("payload for client missing");
        let src = &received[*ri].1;
        packed[pos..pos + len as usize].copy_from_slice(&src[*consumed..*consumed + len as usize]);
        *consumed += len as usize;
        pos += len as usize;
    }
    if matches!(hints.exchange, ExchangeMode::Nonblocking) {
        rank.charge_memcpy(total); // assembly into the collective buffer
    }
    Some(WriteStage { segs, packed })
}

/// Issue half of a write cycle: commit the assembled collective buffer to
/// the file with nonblocking requests, retrying transient faults per
/// realm chunk. Returns the virtual window the I/O occupies — carrying
/// the first retry-exhausted fault, if any; the caller decides whether to
/// block on it (serial engine) or overlap it (pipelined engine). Every
/// chunk is issued even after an exhausted one, so all data that *can*
/// land does, and the error agreement sees one deterministic first fault.
fn issue_write(
    rank: &Rank,
    handle: &FileHandle,
    hints: &Hints,
    window: &[(u64, u64)],
    stage: &WriteStage,
) -> IoCompletion {
    // One buffer-to-file request per realm chunk: sieving must never span
    // a realm boundary (the gap would belong to another aggregator).
    let t0 = rank.now();
    let mut t = t0;
    let mut err: Option<PfsError> = None;
    let mut pos = 0usize;
    for (wi, group) in group_by_window(&stage.segs, window) {
        let glen: u64 = group.iter().map(|(_, l)| l).sum();
        let period = group_period(&group);
        // Lock the whole realm chunk (as ROMIO locks the sieve extent).
        // Realm chunks are stable across calls under persistent file
        // realms, so the lock is acquired once and reused.
        match handle.lock_range(t, window[wi].0, window[wi].1) {
            Ok(nt) => t = nt,
            Err(e) => {
                t = e.at;
                err = err.or(Some(e));
            }
        }
        // Double buffering (§5.1/§6.2): sieving beneath the collective
        // buffer copies once more, collective buffer -> sieve buffer.
        if matches!(resolve(&hints.io_method, &group, period), Resolved::DataSieve(_)) {
            rank.charge_memcpy(glen);
        }
        let data = &stage.packed[pos..pos + glen as usize];
        let (nt, e) = retry_io(rank, hints, t, |at| {
            write_packed_nb(handle, at, &group, data, &hints.io_method, period).into_result()
        });
        t = nt;
        err = err.or(e);
        pos += glen as usize;
    }
    IoCompletion::span(t0, t).or_error(err)
}

/// Drive the write cycles as an N-deep software pipeline: up to `cap`
/// cycles of file I/O stay in flight while the next cycle's exchange runs
/// (into its own collective buffer), and an I/O is only waited on when its
/// buffer must be reused — charging `max(io, exchange)` across the whole
/// window instead of their sum. Cycle 0's exchange is the fill prologue,
/// the trailing waits the drain epilogue. `cap == 1` is charge-for-charge
/// the classic double-buffered engine; `cap == 0` issues and immediately
/// waits every cycle, charge-for-charge the serial engine. Under
/// [`CapPolicy::Auto`] the cap follows the measured I/O:exchange ratio.
#[allow(clippy::too_many_arguments)]
fn run_write(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &DataBuf<'_>,
    hints: &Hints,
    sched: &ExchangeSchedule,
    charge_cycles: bool,
    policy: CapPolicy,
    mut derive_win: Option<OverlapWindow>,
) -> CycleOutcome {
    let mut cap = policy.initial_cap();
    let mut inflight: VecDeque<(OverlapWindow, NbGuard)> = VecDeque::new();
    let mut outcome = CycleOutcome::default();
    // Smoothed I/O and exchange durations feeding the auto depth policy:
    // one fast or slow cycle no longer swings the cap to its own ratio.
    let (mut ewma_io, mut ewma_exch) = (None, None);
    // Straggler watch, only when faults can exist (the allgather would
    // otherwise break fault-free charge identity).
    let watch = handle.pfs().fault_plan().is_some() && sched.agg_ranks.len() >= 2;
    let mut detector = StragglerDetector::new(sched.agg_ranks.len());
    for (i, cyc) in sched.cycles.iter().enumerate() {
        if charge_cycles {
            rank.charge_pairs(cyc.pairs);
        }
        let exch_t0 = rank.now();
        let stage = exchange_write(
            rank, my, mem, buf, hints, &sched.agg_ranks, &cyc.my_pieces, &cyc.agg_pieces,
        );
        let exch_ns = rank.now().saturating_sub(exch_t0);
        if i == 0 {
            // Cycle 1+'s derivation has been overlapping this exchange;
            // cycle 1 needs it next, so settle up now.
            if let Some(w) = derive_win.take() {
                rank.overlap_complete_derive(w);
            }
        }
        // All cap+1 collective buffers are full once the next exchange has
        // run: drain the oldest in-flight I/O before reusing its buffer
        // (dropping its guard retires it from the handle's inflight tally).
        while inflight.len() >= cap.max(1) {
            let (w, _guard) = inflight.pop_front().expect("nonempty");
            rank.overlap_complete(w);
        }
        let mut cycle_io_ns = 0u64;
        if let Some(stage) = stage {
            let io = issue_write(rank, handle, hints, &cyc.my_window, &stage);
            outcome.err = outcome.err.or(io.error());
            cycle_io_ns = io.duration();
            if cap == 0 {
                // Wait immediately. Begin/complete (rather than a raw
                // advance + note) keeps the phase buckets summing to
                // elapsed even when a sieve copy inside the issue already
                // charged Compute time; nothing is hidden, so
                // overlap_saved_ns stays 0.
                rank.overlap_complete(rank.overlap_begin(io.done_at(), Phase::Io));
                rank.note_pipeline_depth(1);
            } else {
                inflight.push_back((rank.overlap_begin(io.done_at(), Phase::Io), handle.nb_issued()));
                rank.note_pipeline_depth(inflight.len() as u64 + 1);
                ewma_io = Some(ewma(ewma_io, io.duration()));
                ewma_exch = Some(ewma(ewma_exch, exch_ns));
                cap = policy.adapt(ewma_io.unwrap_or(0), ewma_exch.unwrap_or(0));
            }
        }
        if watch {
            if let Some(si) = detector.observe(rank, &sched.agg_ranks, cycle_io_ns) {
                rank.note_degraded_cycle();
                outcome.straggler = Some(si);
            }
        }
        // If Auto just lowered the cap, fall back to it right away.
        while inflight.len() > cap {
            let (w, _guard) = inflight.pop_front().expect("nonempty");
            rank.overlap_complete(w);
        }
    }
    for (w, _guard) in inflight {
        rank.overlap_complete(w);
    }
    outcome
}

/// One read cycle's collective buffer, read from the file and awaiting
/// distribution to the clients.
struct ReadStage {
    /// Merged plan entries `(file_off, client, piece_idx, len)` in file
    /// order — the slicing map from the packed buffer to per-client sends.
    entries: Vec<PlanEntry>,
    /// The window's bytes, concatenated in file order.
    packed: Vec<u8>,
}

/// Issue half of a read cycle: an aggregator with data this cycle reads
/// its window slice into a collective buffer with nonblocking requests.
/// Returns the I/O's virtual window and the filled stage; `None` — with
/// nothing charged, so a re-issue is free — for pure clients and idle
/// cycles.
fn issue_read(
    rank: &Rank,
    handle: &FileHandle,
    hints: &Hints,
    window: &[(u64, u64)],
    agg_pieces: &[(usize, Vec<Piece>)],
) -> Option<(IoCompletion, ReadStage)> {
    if agg_pieces.iter().all(|(_, p)| p.is_empty()) {
        return None;
    }
    let nonempty: Vec<(usize, Vec<Piece>)> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).cloned().collect();
    let (entries, segs) = merge_pieces(&nonempty);
    let total: u64 = entries.iter().map(|e| e.3).sum();
    let mut packed = vec![0u8; total as usize];
    let t0 = rank.now();
    let mut t = t0;
    let mut err: Option<PfsError> = None;
    let mut pos = 0usize;
    for (wi, group) in group_by_window(&segs, window) {
        let glen: u64 = group.iter().map(|(_, l)| l).sum();
        let period = group_period(&group);
        match handle.lock_range(t, window[wi].0, window[wi].1) {
            Ok(nt) => t = nt,
            Err(e) => {
                t = e.at;
                err = err.or(Some(e));
            }
        }
        if matches!(resolve(&hints.io_method, &group, period), Resolved::DataSieve(_)) {
            rank.charge_memcpy(glen); // sieve buffer -> collective buffer
        }
        let dst = &mut packed[pos..pos + glen as usize];
        let (nt, e) = retry_io(rank, hints, t, |at| {
            read_packed_nb(handle, at, &group, dst, &hints.io_method, period).into_result()
        });
        t = nt;
        err = err.or(e);
        pos += glen as usize;
    }
    Some((IoCompletion::span(t0, t).or_error(err), ReadStage { entries, packed }))
}

/// Distribute half of a read cycle: the aggregator slices its collective
/// buffer per client, everyone exchanges, clients scatter into the user
/// buffer. Every rank must call this every cycle (collective exchange)
/// whether or not it holds a stage.
#[allow(clippy::too_many_arguments)]
fn distribute_read(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &mut DataBuf<'_>,
    hints: &Hints,
    agg_ranks: &[usize],
    my_pieces: &[Vec<Piece>],
    stage: Option<ReadStage>,
) {
    // Slice the packed buffer back out per client, in entry order
    // (within a client, entry order == the client's own piece order).
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    if let Some(stage) = stage {
        let total: u64 = stage.entries.iter().map(|e| e.3).sum();
        let mut per_client: std::collections::HashMap<usize, Vec<u8>> = Default::default();
        let mut pos = 0usize;
        for &(_off, client, _piece, len) in &stage.entries {
            per_client
                .entry(client)
                .or_default()
                .extend_from_slice(&stage.packed[pos..pos + len as usize]);
            pos += len as usize;
        }
        if matches!(hints.exchange, ExchangeMode::Nonblocking) {
            rank.charge_memcpy(total); // collective buffer -> send payloads
        }
        let mut targets: Vec<usize> = per_client.keys().copied().collect();
        targets.sort_unstable();
        for c in targets {
            sends.push((c, per_client.remove(&c).unwrap()));
        }
    }
    // Client: receive from every aggregator whose window holds my data.
    let recv_from: Vec<usize> = my_pieces
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(a, _)| agg_ranks[a])
        .collect();
    let received: Vec<(usize, Vec<u8>)> = match hints.exchange {
        ExchangeMode::Nonblocking => rank.exchange(&sends, &recv_from),
        ExchangeMode::Alltoallw => {
            let mut blocks = vec![Vec::new(); rank.nprocs()];
            for (dst, payload) in sends {
                blocks[dst] = payload;
            }
            let out = rank.alltoallv(blocks);
            recv_from.iter().map(|&a| (a, out[a].clone())).collect()
        }
    };
    // Scatter into the user buffer.
    let user = match buf {
        DataBuf::Read(b) => &mut **b,
        DataBuf::Write(_) => unreachable!(),
    };
    let mut by_src: std::collections::HashMap<usize, Vec<u8>> = received.into_iter().collect();
    for (a, pieces) in my_pieces.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        let payload = by_src.remove(&agg_ranks[a]).expect("missing aggregator payload");
        let mut pos = 0usize;
        let mut total = 0u64;
        for p in pieces {
            mem.scatter(user, p.data_pos - my.data_start, &payload[pos..pos + p.len as usize]);
            pos += p.len as usize;
            total += p.len;
        }
        if matches!(hints.exchange, ExchangeMode::Nonblocking) {
            rank.charge_memcpy(total); // unpack into user memory
        }
    }
}

/// Drive the read cycles as an N-deep pipeline running in the opposite
/// direction from writes: up to `cap` future cycles' file reads are
/// prefetched (each into its own collective buffer) before the current
/// cycle's data is distributed, so read latency hides behind the
/// exchange/scatter work of the cycles in between. Cycle 0's read is
/// waited on immediately (fill prologue — there is nothing to overlap it
/// with). `cap == 1` is charge-for-charge the classic double-buffered
/// engine; `cap == 0` reads, waits, and distributes serially, matching
/// the serial engine charge for charge. Under [`CapPolicy::Auto`] the cap
/// follows the measured I/O:distribute ratio.
#[allow(clippy::too_many_arguments)]
fn run_read(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &mut DataBuf<'_>,
    hints: &Hints,
    sched: &ExchangeSchedule,
    charge_cycles: bool,
    policy: CapPolicy,
    mut derive_win: Option<OverlapWindow>,
) -> CycleOutcome {
    let n = sched.cycles.len();
    let mut cap = policy.initial_cap();
    // Prefetched reads: (cycle index, overlap window, filled stage, nb
    // guard), in cycle order. `next` is the first cycle not yet issued.
    let mut q: VecDeque<(usize, OverlapWindow, ReadStage, NbGuard)> = VecDeque::new();
    let mut next = 0usize;
    // The previous cycle's distribute duration — the exchange-side work a
    // prefetched read hides behind.
    let mut exch_ns = 0u64;
    let mut outcome = CycleOutcome::default();
    let (mut ewma_io, mut ewma_exch) = (None, None);
    let watch = handle.pfs().fault_plan().is_some() && sched.agg_ranks.len() >= 2;
    let mut detector = StragglerDetector::new(sched.agg_ranks.len());
    for i in 0..n {
        if charge_cycles {
            rank.charge_pairs(sched.cycles[i].pairs);
        }
        let mut cycle_io_ns = 0u64;
        let stage = if q.front().is_some_and(|(c, _, _, _)| *c == i) {
            // This cycle's read was prefetched; its window has been
            // overlapping the distributions since. Drain it now (the
            // guard drop retires it from the handle's inflight tally).
            let (_, w, stage, _guard) = q.pop_front().expect("nonempty");
            rank.overlap_complete(w);
            Some(stage)
        } else {
            // Fill (or serial path, or an idle cycle between prefetches):
            // issue this cycle's read and block on it.
            match issue_read(rank, handle, hints, &sched.cycles[i].my_window, &sched.cycles[i].agg_pieces)
            {
                Some((io, stage)) => {
                    // Immediate begin/complete, not advance + note: see
                    // the serial write path.
                    outcome.err = outcome.err.or(io.error());
                    cycle_io_ns += io.duration();
                    rank.overlap_complete(rank.overlap_begin(io.done_at(), Phase::Io));
                    rank.note_pipeline_depth(1);
                    Some(stage)
                }
                None => None,
            }
        };
        if next <= i {
            next = i + 1;
        }
        if i == 0 {
            // Cycle 1+'s derivation overlapped the fill read; settle up
            // before prefetching needs its piece lists.
            if let Some(w) = derive_win.take() {
                rank.overlap_complete_derive(w);
            }
        }
        // Prefetch up to `cap` cycles ahead of the one being distributed.
        while cap > 0 && next < n && q.len() < cap && next <= i + cap {
            if let Some((io, stage)) = issue_read(
                rank,
                handle,
                hints,
                &sched.cycles[next].my_window,
                &sched.cycles[next].agg_pieces,
            ) {
                outcome.err = outcome.err.or(io.error());
                cycle_io_ns += io.duration();
                q.push_back((next, rank.overlap_begin(io.done_at(), Phase::Io), stage, handle.nb_issued()));
                rank.note_pipeline_depth(q.len() as u64 + 1);
                ewma_io = Some(ewma(ewma_io, io.duration()));
                ewma_exch = Some(ewma(ewma_exch, exch_ns));
                cap = policy.adapt(ewma_io.unwrap_or(0), ewma_exch.unwrap_or(0));
            }
            next += 1;
        }
        if watch {
            if let Some(si) = detector.observe(rank, &sched.agg_ranks, cycle_io_ns) {
                rank.note_degraded_cycle();
                outcome.straggler = Some(si);
            }
        }
        let dist_t0 = rank.now();
        distribute_read(rank, my, mem, buf, hints, &sched.agg_ranks, &sched.cycles[i].my_pieces, stage);
        exch_ns = rank.now().saturating_sub(dist_t0);
    }
    debug_assert!(q.is_empty(), "a read stage was issued but never distributed");
    outcome
}
