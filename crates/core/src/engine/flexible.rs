//! The new flexible two-phase collective I/O engine (§4–§5).
//!
//! Differences from the original ROMIO code path (`engine::romio`):
//!
//! * **Metadata**: ships each client's *flattened filetype* (`D` pairs)
//!   once via allgather, instead of the fully flattened access (`M`
//!   pairs). Aggregators re-derive every client's offset/length stream
//!   themselves — O(M) work per aggregator, and the client walks its own
//!   stream once per aggregator (O(MA) with enumerated filetypes, far less
//!   with succinct ones thanks to whole-datatype skipping).
//! * **File realms are datatype streams** ([`crate::realm::FileRealm`]):
//!   any assigner can be plugged in; persistent file realms and boundary
//!   alignment are hints, not code forks.
//! * **The collective buffer is separate** from any sieve buffer: each
//!   buffer cycle hands one packed non-contiguous request to `flexio-io`,
//!   which may choose a different method every cycle (§5.1). The price is
//!   the double-buffer copy, charged here.
//! * **Exchange flavour** (§5.4): sparse non-blocking, or a dense
//!   alltoallw-style collective that skips pack/unpack copies.

use crate::engine::common::{group_by_window, merge_pieces, ClientStream, Piece, PlanEntry};
use crate::engine::schedule::{self, schedule_key, CycleSchedule, ExchangeSchedule};
use crate::error::Result;
use crate::hints::{aggregator_ranks, ExchangeMode, Hints};
use crate::meta::ClientAccess;
use crate::realm::{AssignCtx, EvenAar, FileRealm, PersistentBlockCyclic, RealmAssigner};
use flexio_io::{read_packed_nb, resolve, write_packed_nb, Resolved};
use flexio_pfs::FileHandle;
use flexio_sim::{OverlapWindow, Phase, Rank};
use flexio_types::MemLayout;

/// Direction + user buffer for one collective call.
pub enum DataBuf<'a> {
    /// Collective write: data flows user buffer → file.
    Write(&'a [u8]),
    /// Collective read: data flows file → user buffer.
    Read(&'a mut [u8]),
}

impl DataBuf<'_> {
    fn is_write(&self) -> bool {
        matches!(self, DataBuf::Write(_))
    }
}

/// Run one collective read/write with the flexible engine. Must be called
/// by every rank of the world (standard collective semantics); ranks with
/// `my.data_len == 0` still participate in the exchanges.
///
/// `sched_cache` holds the last call's exchange schedule. When the digest
/// of this call's inputs matches, the entire derivation — metadata
/// parsing, realm assignment, window walks, stream intersection — is
/// skipped and the cached schedule is replayed against the fresh user
/// buffer, charging only [`schedule::PROBE_PAIRS`]. A first (miss) call
/// charges exactly what the pre-cache engine charged.
#[allow(clippy::too_many_arguments)] // one call site (MpiFile::run_engine)
pub fn run(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    mut buf: DataBuf<'_>,
    hints: &Hints,
    pfr_state: &mut Option<Vec<FileRealm>>,
    sched_cache: &mut Option<ExchangeSchedule>,
) -> Result<()> {
    let nprocs = rank.nprocs();
    let is_write = buf.is_write();

    // ---- metadata exchange: flattened filetypes (D pairs each) ----------
    rank.charge_pairs(my.view.d() as u64);
    let wires = rank.allgatherv(&my.to_wire());

    // ---- schedule-cache probe -------------------------------------------
    // Every rank sees the same wires and (by MPI collective semantics) the
    // same hints, so every rank reaches the same hit/miss verdict and the
    // replayed communication pattern stays globally consistent.
    let key = schedule_key(&wires, hints, nprocs);
    let hit = hints.schedule_cache && sched_cache.as_ref().is_some_and(|s| s.key == key);
    if hints.schedule_cache {
        rank.note_schedule_cache(hit);
    }
    let derived: Option<ExchangeSchedule> = if hit {
        rank.charge_pairs(schedule::PROBE_PAIRS);
        None
    } else {
        Some(derive_schedule(rank, &wires, key, my, hints, pfr_state))
    };
    let sched = match &derived {
        Some(s) => s,
        None => sched_cache.as_ref().expect("hit implies a cached schedule"),
    };

    // ---- buffer cycles ----------------------------------------------------
    // Derivation pairs are charged where the pre-cache engine charged
    // them — parse before the loop, window/stream work at the top of each
    // cycle — so a miss's virtual clock matches the uncached engine at
    // every send and file request. A hit skips all of it.
    if !hit {
        rank.charge_pairs(sched.parse_pairs);
    }
    if is_write {
        run_write(rank, handle, my, mem, &buf, hints, sched, hit);
    } else {
        run_read(rank, handle, my, mem, &mut buf, hints, sched, hit);
    }

    if hints.schedule_cache {
        if let Some(s) = derived {
            *sched_cache = Some(s);
        }
    }
    Ok(())
}

/// Derive the full per-cycle exchange schedule for one collective call,
/// charging the same pair-processing costs the engine always charged for
/// this work. Pure computation over the exchanged metadata: no
/// communication happens here, so hoisting it out of the cycle loop (to
/// make it cacheable) cannot change message ordering.
#[allow(clippy::too_many_lines)]
fn derive_schedule(
    rank: &Rank,
    wires: &[Vec<u8>],
    key: u64,
    my: &ClientAccess,
    hints: &Hints,
    pfr_state: &mut Option<Vec<FileRealm>>,
) -> ExchangeSchedule {
    let nprocs = rank.nprocs();
    let clients: Vec<ClientAccess> = wires.iter().map(|w| ClientAccess::from_wire(w)).collect();
    let parse_pairs: u64 = clients.iter().map(|c| c.view.d() as u64).sum();

    // ---- aggregate access region ----------------------------------------
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for c in &clients {
        if let Some((a, b)) = c.file_range() {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    if hi <= lo {
        // Every rank's access is empty; all agree. An empty schedule is
        // cached too, so repeated empty calls hit.
        return ExchangeSchedule { key, agg_ranks: Vec::new(), cycles: Vec::new(), parse_pairs };
    }

    // ---- realm assignment -------------------------------------------------
    let n_agg = hints.aggregators(nprocs);
    let agg_ranks = aggregator_ranks(n_agg, nprocs);
    let ctx = AssignCtx {
        aar: (lo, hi),
        n_aggregators: n_agg,
        alignment: hints.fr_alignment,
        clients: &clients,
    };
    let assign = |ctx: &AssignCtx<'_>, default: &dyn RealmAssigner| match &hints.realm_assigner {
        Some(a) => a.assign(ctx),
        None => default.assign(ctx),
    };
    // Persistent realms are borrowed from the per-file state, not cloned
    // per call; non-persistent realms live only for this derivation.
    let computed: Vec<FileRealm>;
    let realms: &[FileRealm] = if hints.persistent_file_realms {
        if pfr_state.is_none() {
            *pfr_state = Some(assign(&ctx, &PersistentBlockCyclic));
        }
        pfr_state.as_deref().unwrap()
    } else {
        computed = assign(&ctx, &EvenAar);
        &computed
    };
    assert_eq!(realms.len(), n_agg, "assigner must produce one realm per aggregator");

    // ---- cycle counts -------------------------------------------------------
    let cb = hints.cb_buffer_size as u64;
    let spans: Vec<(u64, u64)> = realms.iter().map(|r| (r.data_lower(lo), r.data_lower(hi))).collect();
    let ntimes = spans.iter().map(|(b, c)| (c - b).div_ceil(cb)).max().unwrap_or(0);

    // ---- per-pair state ------------------------------------------------------
    let my_agg_idx = agg_ranks.iter().position(|&r| r == rank.rank());
    let mut agg_streams: Vec<ClientStream> = if my_agg_idx.is_some() {
        clients.iter().cloned().map(ClientStream::new).collect()
    } else {
        Vec::new()
    };
    let mut my_streams: Vec<ClientStream> =
        (0..n_agg).map(|_| ClientStream::new(my.clone())).collect();

    let mut cycles: Vec<CycleSchedule> = Vec::with_capacity(ntimes as usize);
    for t in 0..ntimes {
        // Every rank derives every aggregator's window (realms are
        // deterministic, so no extra communication is needed).
        let mut windows: Vec<Vec<(u64, u64)>> = (0..n_agg)
            .map(|a| {
                let (base, cap) = spans[a];
                let d0 = base + t * cb;
                let d1 = (base + (t + 1) * cb).min(cap);
                if d0 >= d1 {
                    Vec::new()
                } else {
                    realms[a].segments(d0, d1)
                }
            })
            .collect();
        let mut pairs: u64 = windows.iter().map(|w| w.len() as u64).sum();

        // Client role: my pieces inside each aggregator's window.
        let mut my_pieces: Vec<Vec<Piece>> = Vec::with_capacity(n_agg);
        for a in 0..n_agg {
            let (p, charged) = my_streams[a].take_window(&windows[a]);
            pairs += charged;
            my_pieces.push(p);
        }

        // Aggregator role: every client's pieces inside my window.
        let agg_pieces: Vec<(usize, Vec<Piece>)> = if let Some(ai) = my_agg_idx {
            let w = &windows[ai];
            agg_streams
                .iter_mut()
                .enumerate()
                .map(|(c, s)| {
                    let (p, charged) = s.take_window(w);
                    pairs += charged;
                    (c, p)
                })
                .collect()
        } else {
            Vec::new()
        };

        let my_window = match my_agg_idx {
            Some(ai) => std::mem::take(&mut windows[ai]),
            None => Vec::new(),
        };
        cycles.push(CycleSchedule { my_window, my_pieces, agg_pieces, pairs });
    }
    ExchangeSchedule { key, agg_ranks, cycles, parse_pairs }
}

/// Pack this rank's outgoing payload for one aggregator.
fn pack_payload(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    user: &[u8],
    pieces: &[Piece],
    hints: &Hints,
) -> Vec<u8> {
    let total: u64 = pieces.iter().map(|p| p.len).sum();
    let mut payload = vec![0u8; total as usize];
    let mut pos = 0usize;
    for p in pieces {
        mem.gather(user, p.data_pos - my.data_start, &mut payload[pos..pos + p.len as usize]);
        pos += p.len as usize;
    }
    if matches!(hints.exchange, ExchangeMode::Nonblocking) {
        // Alltoallw sends straight from the user buffer; the non-blocking
        // path packs first (§5.4).
        rank.charge_memcpy(total);
    }
    payload
}

/// Estimate the period of an aggregated segment group: the average
/// distance between consecutive segment starts. For the paper's regular
/// workloads this equals the datatype extent, which §6.3 found to be the
/// right metric for conditional data sieving; unlike the raw filetype
/// extent it stays meaningful when many clients' filetypes interleave
/// densely at the aggregator.
fn group_period(group: &[(u64, u64)]) -> u64 {
    match group {
        [] => 0,
        [only] => only.1,
        _ => {
            let span = group.last().unwrap().0 + group.last().unwrap().1 - group[0].0;
            span / group.len() as u64
        }
    }
}

/// One write cycle's assembled collective buffer, ready for the file.
struct WriteStage {
    /// Sorted, merged file segments of this aggregator's window slice.
    segs: Vec<(u64, u64)>,
    /// The segments' bytes, concatenated in file order.
    packed: Vec<u8>,
}

/// Exchange half of a write cycle: clients send their pieces, aggregators
/// assemble the collective buffer in file order. Pure data movement — the
/// file is not touched, so the pipelined driver can run this while the
/// previous cycle's I/O is still in flight.
#[allow(clippy::too_many_arguments)]
fn exchange_write(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &DataBuf<'_>,
    hints: &Hints,
    agg_ranks: &[usize],
    my_pieces: &[Vec<Piece>],
    agg_pieces: &[(usize, Vec<Piece>)],
) -> Option<WriteStage> {
    let user = match buf {
        DataBuf::Write(b) => *b,
        DataBuf::Read(_) => unreachable!(),
    };
    // Sends: client -> aggregators.
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    for (a, pieces) in my_pieces.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        sends.push((agg_ranks[a], pack_payload(rank, my, mem, user, pieces, hints)));
    }
    let recv_from: Vec<usize> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).map(|(c, _)| *c).collect();

    let received: Vec<(usize, Vec<u8>)> = match hints.exchange {
        ExchangeMode::Nonblocking => rank.exchange(&sends, &recv_from),
        ExchangeMode::Alltoallw => {
            let mut blocks = vec![Vec::new(); rank.nprocs()];
            for (dst, payload) in sends {
                blocks[dst] = payload;
            }
            let out = rank.alltoallv(blocks);
            recv_from.iter().map(|&c| (c, out[c].clone())).collect()
        }
    };
    if agg_pieces.iter().all(|(_, p)| p.is_empty()) {
        return None; // nothing owned this cycle (or not an aggregator)
    }

    // Assemble the collective buffer in file order.
    let nonempty: Vec<(usize, Vec<Piece>)> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).cloned().collect();
    let (entries, segs) = merge_pieces(&nonempty);
    let total: u64 = entries.iter().map(|e| e.3).sum();
    let mut packed = vec![0u8; total as usize];
    let mut recv_cursor: std::collections::HashMap<usize, (usize, usize)> =
        received.iter().enumerate().map(|(i, (c, _))| (*c, (i, 0usize))).collect();
    let mut pos = 0usize;
    for &(_off, client, _piece, len) in &entries {
        let (ri, consumed) = recv_cursor.get_mut(&client).expect("payload for client missing");
        let src = &received[*ri].1;
        packed[pos..pos + len as usize].copy_from_slice(&src[*consumed..*consumed + len as usize]);
        *consumed += len as usize;
        pos += len as usize;
    }
    if matches!(hints.exchange, ExchangeMode::Nonblocking) {
        rank.charge_memcpy(total); // assembly into the collective buffer
    }
    Some(WriteStage { segs, packed })
}

/// Issue half of a write cycle: commit the assembled collective buffer to
/// the file with nonblocking requests. Returns the virtual window
/// `(issued_at, done_at)` the I/O occupies; the caller decides whether to
/// block on it (serial engine) or overlap it (pipelined engine).
fn issue_write(
    rank: &Rank,
    handle: &FileHandle,
    hints: &Hints,
    window: &[(u64, u64)],
    stage: &WriteStage,
) -> (u64, u64) {
    // One buffer-to-file request per realm chunk: sieving must never span
    // a realm boundary (the gap would belong to another aggregator).
    let t0 = rank.now();
    let mut t = t0;
    let mut pos = 0usize;
    for (wi, group) in group_by_window(&stage.segs, window) {
        let glen: u64 = group.iter().map(|(_, l)| l).sum();
        let period = group_period(&group);
        // Lock the whole realm chunk (as ROMIO locks the sieve extent).
        // Realm chunks are stable across calls under persistent file
        // realms, so the lock is acquired once and reused.
        t = handle.lock_range(t, window[wi].0, window[wi].1);
        // Double buffering (§5.1/§6.2): sieving beneath the collective
        // buffer copies once more, collective buffer -> sieve buffer.
        if matches!(resolve(&hints.io_method, &group, period), Resolved::DataSieve(_)) {
            rank.charge_memcpy(glen);
        }
        t = write_packed_nb(
            handle,
            t,
            &group,
            &stage.packed[pos..pos + glen as usize],
            &hints.io_method,
            period,
        )
        .done_at();
        pos += glen as usize;
    }
    (t0, t)
}

/// Drive the write cycles. With `double_buffer` the loop is software-
/// pipelined two deep: the exchange for cycle *i+1* proceeds (into the
/// second collective buffer) while cycle *i*'s file I/O is still in
/// flight, and only then is the previous I/O waited on — charging
/// `max(io, exchange)` instead of their sum. Cycle 0's exchange is the
/// fill prologue, the last wait the drain epilogue. Without
/// `double_buffer` every cycle issues and immediately waits, which is
/// charge-for-charge the serial engine.
#[allow(clippy::too_many_arguments)]
fn run_write(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &DataBuf<'_>,
    hints: &Hints,
    sched: &ExchangeSchedule,
    hit: bool,
) {
    let mut inflight: Option<OverlapWindow> = None;
    for cyc in &sched.cycles {
        if !hit {
            rank.charge_pairs(cyc.pairs);
        }
        let stage = exchange_write(
            rank, my, mem, buf, hints, &sched.agg_ranks, &cyc.my_pieces, &cyc.agg_pieces,
        );
        // Both collective buffers are full once the next exchange has run:
        // drain the in-flight I/O before reusing its buffer.
        if let Some(w) = inflight.take() {
            rank.overlap_complete(w);
        }
        if let Some(stage) = stage {
            let (t0, t) = issue_write(rank, handle, hints, &cyc.my_window, &stage);
            if hints.double_buffer {
                inflight = Some(rank.overlap_begin(t, Phase::Io));
            } else {
                rank.advance_to(t);
                rank.note_phase(Phase::Io, t.saturating_sub(t0));
            }
        }
    }
    if let Some(w) = inflight {
        rank.overlap_complete(w);
    }
}

/// One read cycle's collective buffer, read from the file and awaiting
/// distribution to the clients.
struct ReadStage {
    /// Merged plan entries `(file_off, client, piece_idx, len)` in file
    /// order — the slicing map from the packed buffer to per-client sends.
    entries: Vec<PlanEntry>,
    /// The window's bytes, concatenated in file order.
    packed: Vec<u8>,
}

/// Issue half of a read cycle: an aggregator with data this cycle reads
/// its window slice into a collective buffer with nonblocking requests.
/// Returns the I/O's virtual window `(issued_at, done_at)` and the filled
/// stage; `None` for pure clients and idle cycles.
fn issue_read(
    rank: &Rank,
    handle: &FileHandle,
    hints: &Hints,
    window: &[(u64, u64)],
    agg_pieces: &[(usize, Vec<Piece>)],
) -> Option<(u64, u64, ReadStage)> {
    if agg_pieces.iter().all(|(_, p)| p.is_empty()) {
        return None;
    }
    let nonempty: Vec<(usize, Vec<Piece>)> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).cloned().collect();
    let (entries, segs) = merge_pieces(&nonempty);
    let total: u64 = entries.iter().map(|e| e.3).sum();
    let mut packed = vec![0u8; total as usize];
    let t0 = rank.now();
    let mut t = t0;
    let mut pos = 0usize;
    for (wi, group) in group_by_window(&segs, window) {
        let glen: u64 = group.iter().map(|(_, l)| l).sum();
        let period = group_period(&group);
        t = handle.lock_range(t, window[wi].0, window[wi].1);
        if matches!(resolve(&hints.io_method, &group, period), Resolved::DataSieve(_)) {
            rank.charge_memcpy(glen); // sieve buffer -> collective buffer
        }
        t = read_packed_nb(
            handle,
            t,
            &group,
            &mut packed[pos..pos + glen as usize],
            &hints.io_method,
            period,
        )
        .done_at();
        pos += glen as usize;
    }
    Some((t0, t, ReadStage { entries, packed }))
}

/// Distribute half of a read cycle: the aggregator slices its collective
/// buffer per client, everyone exchanges, clients scatter into the user
/// buffer. Every rank must call this every cycle (collective exchange)
/// whether or not it holds a stage.
#[allow(clippy::too_many_arguments)]
fn distribute_read(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &mut DataBuf<'_>,
    hints: &Hints,
    agg_ranks: &[usize],
    my_pieces: &[Vec<Piece>],
    stage: Option<ReadStage>,
) {
    // Slice the packed buffer back out per client, in entry order
    // (within a client, entry order == the client's own piece order).
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    if let Some(stage) = stage {
        let total: u64 = stage.entries.iter().map(|e| e.3).sum();
        let mut per_client: std::collections::HashMap<usize, Vec<u8>> = Default::default();
        let mut pos = 0usize;
        for &(_off, client, _piece, len) in &stage.entries {
            per_client
                .entry(client)
                .or_default()
                .extend_from_slice(&stage.packed[pos..pos + len as usize]);
            pos += len as usize;
        }
        if matches!(hints.exchange, ExchangeMode::Nonblocking) {
            rank.charge_memcpy(total); // collective buffer -> send payloads
        }
        let mut targets: Vec<usize> = per_client.keys().copied().collect();
        targets.sort_unstable();
        for c in targets {
            sends.push((c, per_client.remove(&c).unwrap()));
        }
    }
    // Client: receive from every aggregator whose window holds my data.
    let recv_from: Vec<usize> = my_pieces
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(a, _)| agg_ranks[a])
        .collect();
    let received: Vec<(usize, Vec<u8>)> = match hints.exchange {
        ExchangeMode::Nonblocking => rank.exchange(&sends, &recv_from),
        ExchangeMode::Alltoallw => {
            let mut blocks = vec![Vec::new(); rank.nprocs()];
            for (dst, payload) in sends {
                blocks[dst] = payload;
            }
            let out = rank.alltoallv(blocks);
            recv_from.iter().map(|&a| (a, out[a].clone())).collect()
        }
    };
    // Scatter into the user buffer.
    let user = match buf {
        DataBuf::Read(b) => &mut **b,
        DataBuf::Write(_) => unreachable!(),
    };
    let mut by_src: std::collections::HashMap<usize, Vec<u8>> = received.into_iter().collect();
    for (a, pieces) in my_pieces.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        let payload = by_src.remove(&agg_ranks[a]).expect("missing aggregator payload");
        let mut pos = 0usize;
        let mut total = 0u64;
        for p in pieces {
            mem.scatter(user, p.data_pos - my.data_start, &payload[pos..pos + p.len as usize]);
            pos += p.len as usize;
            total += p.len;
        }
        if matches!(hints.exchange, ExchangeMode::Nonblocking) {
            rank.charge_memcpy(total); // unpack into user memory
        }
    }
}

/// Drive the read cycles. With `double_buffer` the loop is pipelined two
/// deep in the opposite direction from writes: cycle *i+1*'s file read is
/// issued (into the second collective buffer) before cycle *i*'s data is
/// distributed, so the next read's latency hides behind the current
/// exchange/scatter. Cycle 0's read is waited on immediately (fill
/// prologue — there is nothing to overlap it with). Without
/// `double_buffer` each cycle reads, waits, and distributes serially,
/// matching the serial engine charge for charge.
#[allow(clippy::too_many_arguments)]
fn run_read(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &mut DataBuf<'_>,
    hints: &Hints,
    sched: &ExchangeSchedule,
    hit: bool,
) {
    let n = sched.cycles.len();
    // The in-flight read: its overlap window (None once waited on) and its
    // stage, for ranks that aggregate that cycle.
    let mut inflight: Option<(Option<OverlapWindow>, ReadStage)> = None;
    for i in 0..n {
        if !hit {
            rank.charge_pairs(sched.cycles[i].pairs);
        }
        if inflight.is_none() {
            // Fill (or serial path): issue this cycle's read and block on it.
            if let Some((t0, t, stage)) =
                issue_read(rank, handle, hints, &sched.cycles[i].my_window, &sched.cycles[i].agg_pieces)
            {
                rank.advance_to(t);
                rank.note_phase(Phase::Io, t.saturating_sub(t0));
                inflight = Some((None, stage));
            }
        } else if let Some((w, _)) = &mut inflight {
            // Steady state: the read was issued last cycle; its window has
            // been overlapping that cycle's distribution. Drain it now.
            if let Some(w) = w.take() {
                rank.overlap_complete(w);
            }
        }
        let stage = inflight.take().map(|(_, s)| s);
        if hints.double_buffer && i + 1 < n {
            // Issue the next cycle's read before distributing this one: it
            // proceeds into the second buffer while the exchange runs.
            if let Some((_t0, t, next)) = issue_read(
                rank,
                handle,
                hints,
                &sched.cycles[i + 1].my_window,
                &sched.cycles[i + 1].agg_pieces,
            ) {
                inflight = Some((Some(rank.overlap_begin(t, Phase::Io)), next));
            }
        }
        distribute_read(rank, my, mem, buf, hints, &sched.agg_ranks, &sched.cycles[i].my_pieces, stage);
    }
    debug_assert!(inflight.is_none(), "a read stage was issued but never distributed");
}
