//! The new flexible two-phase collective I/O engine (§4–§5).
//!
//! Differences from the original ROMIO code path (`engine::romio`):
//!
//! * **Metadata**: ships each client's *flattened filetype* (`D` pairs)
//!   once via allgather, instead of the fully flattened access (`M`
//!   pairs). Aggregators re-derive every client's offset/length stream
//!   themselves — O(M) work per aggregator, and the client walks its own
//!   stream once per aggregator (O(MA) with enumerated filetypes, far less
//!   with succinct ones thanks to whole-datatype skipping).
//! * **File realms are datatype streams** ([`crate::realm::FileRealm`]):
//!   any assigner can be plugged in; persistent file realms and boundary
//!   alignment are hints, not code forks.
//! * **The collective buffer is separate** from any sieve buffer: each
//!   buffer cycle hands one packed non-contiguous request to `flexio-io`,
//!   which may choose a different method every cycle (§5.1). The price is
//!   the double-buffer copy, charged here.
//! * **Exchange flavour** (§5.4): sparse non-blocking, or a dense
//!   alltoallw-style collective that skips pack/unpack copies.
//!
//! The buffer cycles themselves run on the shared N-deep pipeline core
//! ([`crate::engine::pipeline`]): this module contributes the two
//! [`CycleDriver`] halves per direction, the drive loops own the depth.

use crate::engine::common::{
    agree_error, group_by_window, merge_pieces, retry_io, ClientStream, Piece, PlanEntry,
};
use crate::engine::pipeline::{self, CapPolicy, CycleDriver, StragglerVerdict};
use crate::engine::recovery::{crash_boundary, CrashState};
use crate::engine::schedule::{self, schedule_key, CycleSchedule, ExchangeSchedule};
use crate::error::{IoError, Result};
use crate::hints::{aggregator_ranks, ExchangeMode, Hints};
use crate::meta::ClientAccess;
use crate::realm::{AssignCtx, EvenAar, FileRealm, PersistentBlockCyclic, RealmAssigner};
use flexio_io::{
    read_packed_nb, read_scattered_nb, resolve, write_gathered_nb, write_packed_nb, IoCompletion,
    Resolved,
};
use flexio_pfs::FileHandle;
use flexio_sim::{OverlapWindow, Rank};
use flexio_types::{FlatType, MemLayout, Seg};
use std::sync::Arc;

/// Direction + user buffer for one collective call.
pub enum DataBuf<'a> {
    /// Collective write: data flows user buffer → file.
    Write(&'a [u8]),
    /// Collective read: data flows file → user buffer.
    Read(&'a mut [u8]),
}

impl DataBuf<'_> {
    fn is_write(&self) -> bool {
        matches!(self, DataBuf::Write(_))
    }
}

/// Run one collective read/write with the flexible engine. Must be called
/// by every rank of the world (standard collective semantics); ranks with
/// `my.data_len == 0` still participate in the exchanges.
///
/// `sched_cache` holds the last call's exchange schedule. When the digest
/// of this call's inputs matches, the entire derivation — metadata
/// parsing, realm assignment, window walks, stream intersection — is
/// skipped and the cached schedule is replayed against the fresh user
/// buffer, charging only [`schedule::PROBE_PAIRS`]. A first (miss) call
/// charges exactly what the pre-cache engine charged.
#[allow(clippy::too_many_arguments)] // one call site (MpiFile::run_engine)
pub fn run(
    rank: &Rank,
    handle: &FileHandle,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &mut DataBuf<'_>,
    hints: &Hints,
    pfr_state: &mut Option<Vec<FileRealm>>,
    sched_cache: &mut Option<ExchangeSchedule>,
) -> Result<()> {
    let nprocs = rank.nprocs();
    let is_write = buf.is_write();
    // Crash machinery arms only when the plan schedules crashes: all
    // ranks see the same plan, so the per-cycle boundary checks (and
    // their heartbeats) run collectively or not at all, and crash-free
    // plans stay charge-identical.
    let mut crash = handle
        .pfs()
        .fault_plan()
        .is_some_and(|p| !p.crashes.is_empty())
        .then(|| CrashState::new(hints));

    // ---- metadata exchange: flattened filetypes (D pairs each) ----------
    rank.charge_pairs(my.view.d() as u64);
    let wires = rank.allgatherv(&my.to_wire());

    // ---- schedule-cache probe -------------------------------------------
    // Every rank sees the same wires and (by MPI collective semantics) the
    // same hints, so every rank reaches the same hit/miss verdict and the
    // replayed communication pattern stays globally consistent.
    let key = schedule_key(&wires, hints, nprocs);
    let hit = hints.schedule_cache && sched_cache.as_ref().is_some_and(|s| s.key == key);
    if hints.schedule_cache {
        rank.note_schedule_cache(hit);
    }
    let derived: Option<ExchangeSchedule> = if hit {
        rank.charge_pairs(schedule::PROBE_PAIRS);
        None
    } else {
        Some(derive_schedule(rank, &wires, key, my, hints, pfr_state))
    };
    let sched = match &derived {
        Some(s) => s,
        None => sched_cache.as_ref().expect("hit implies a cached schedule"),
    };

    // ---- buffer cycles ----------------------------------------------------
    // Derivation pairs are charged where the pre-cache engine charged
    // them — parse before the loop, window/stream work at the top of each
    // cycle — so a miss's virtual clock matches the uncached engine at
    // every send and file request. A hit skips all of it.
    //
    // With a deep (≥ 3) or auto pipeline, a miss instead charges cycle 0's
    // derivation up front and lets the rest — pure local computation over
    // already-exchanged metadata — proceed as an overlap window behind the
    // first cycle's exchange. Same pair counts, earlier first send.
    let policy =
        CapPolicy::resolve(hints, handle.pfs().config().n_osts, sched.agg_ranks.len());
    let derive_overlap = !hit && policy.allows_derive_overlap() && sched.cycles.len() > 1;
    let mut derive_win: Option<OverlapWindow> = None;
    if !hit {
        if derive_overlap {
            rank.charge_pairs(sched.parse_pairs + sched.cycles[0].pairs);
            let rest: u64 = sched.cycles[1..].iter().map(|c| c.pairs).sum();
            if rest > 0 {
                derive_win = Some(rank.charge_pairs_overlapped(rest));
            }
        } else {
            rank.charge_pairs(sched.parse_pairs);
        }
    }
    let charge_cycles = !hit && !derive_overlap;
    let n_agg = sched.agg_ranks.len();
    let outcome = if is_write {
        let mut driver = FlexWrite {
            rank,
            handle,
            my,
            mem,
            buf: &*buf,
            hints,
            sched,
            charge_cycles,
            crash: crash.as_mut(),
        };
        pipeline::drive_write(rank, handle, &mut driver, policy, Some(&sched.agg_ranks), derive_win)
    } else {
        let mut driver = FlexRead {
            rank,
            handle,
            my,
            mem,
            buf: &mut *buf,
            hints,
            sched,
            charge_cycles,
            crash: crash.as_mut(),
        };
        pipeline::drive_read(rank, handle, &mut driver, policy, Some(&sched.agg_ranks), derive_win)
    };

    // A crash-aborted drive returns before any further collective could
    // hang on the dead peers: the straggler machinery and the error
    // agreement both assume every member answers. The dead set is already
    // agreed (two-round detection), so this error is collective too.
    if outcome.aborted {
        let dead = crash.map(|c| c.dead).expect("only the crash boundary aborts");
        return Err(IoError::RanksFailed(dead));
    }

    if hints.schedule_cache {
        if let Some(s) = derived {
            *sched_cache = Some(s);
        }
    }

    // ---- graceful degradation -------------------------------------------
    // Every rank ran the same straggler detector over the same allgathered
    // durations, so the rebalance decision is already collective. Shrink
    // the straggling aggregator's persistent realms so later calls steer
    // work to its healthy peers. The cached schedule replays the old
    // ownership (realms are not part of the schedule key), so it is
    // patched in place against the new realms: the wires are already
    // parsed, only the window cuts and piece streams move, so the patch
    // charges the cycle walks but not the parse — and the next identical
    // call still probes as a hit instead of paying a full miss.
    if let Some(v) = &outcome.straggler {
        if hints.persistent_file_realms && n_agg >= 2 {
            if let Some(new_realms) =
                pfr_state.as_deref().and_then(|r| rebalance_realms(r, v, hints))
            {
                *pfr_state = Some(new_realms);
                rank.note_realms_rebalanced();
                if hints.schedule_cache && sched_cache.is_some() {
                    let patched = derive_schedule(rank, &wires, key, my, hints, pfr_state);
                    let cycle_pairs: u64 = patched.cycles.iter().map(|c| c.pairs).sum();
                    rank.charge_pairs(cycle_pairs);
                    *sched_cache = Some(patched);
                    rank.note_schedule_cache_patch();
                } else {
                    *sched_cache = None;
                }
            }
        }
    }

    // ---- collective error agreement -------------------------------------
    // Gated on the fault plan's presence: without one no request can fail
    // (keeping fault-free runs charge-identical), and with one every rank
    // sees the same plan, so all ranks take this branch together.
    if handle.pfs().fault_plan().is_some() {
        if let Some(e) = agree_error(rank, outcome.err) {
            return Err(IoError::Transient(e));
        }
    } else {
        debug_assert!(outcome.err.is_none(), "a fault was reported without a fault plan");
    }
    Ok(())
}

/// Rebuild the persistent block-cyclic realms with the straggler's
/// per-period share shrunk *proportionally to its measured slowdown* and
/// the freed bytes split across every healthy peer, weighted by peer
/// speed (inverse smoothed I/O time). One detection therefore suffices:
/// the straggler keeps `share · avg/mv` bytes — what its slow storage can
/// finish in a healthy peer's cycle time — instead of halving toward that
/// point over several detection cycles, and no single helper inherits the
/// whole handoff.
///
/// The realm *period* is unchanged, so the realms still tile the whole
/// file and stay pairwise disjoint; only the ownership split inside each
/// period moves. Deterministic given the same inputs (the verdict is
/// folded from allgathered durations, identical everywhere), so every
/// rank rebuilds identical realms without communicating. `None` when
/// nothing meaningful can move (non-tiled realms, or the straggler's
/// share is already at the floor of one alignment unit).
fn rebalance_realms(
    old: &[FileRealm],
    verdict: &StragglerVerdict,
    hints: &Hints,
) -> Option<Vec<FileRealm>> {
    let straggler = verdict.straggler;
    let mut shares: Vec<Vec<(u64, u64)>> = Vec::with_capacity(old.len());
    let mut period = 0u64;
    for r in old {
        let (segs, p) = r.tile()?;
        if period == 0 {
            period = p;
        } else if period != p {
            return None; // custom assigner with mismatched tilings
        }
        shares.push(segs);
    }
    let mv = verdict.loads.iter().find(|&&(i, _)| i == straggler)?.1;
    let helpers: Vec<(usize, u64)> = verdict
        .loads
        .iter()
        .copied()
        .filter(|&(i, _)| i != straggler && i < shares.len())
        .collect();
    if helpers.is_empty() || mv == 0 {
        return None;
    }
    let avg = helpers.iter().map(|&(_, v)| v).sum::<u64>() / helpers.len() as u64;
    if avg == 0 {
        return None;
    }
    let total: u64 = shares[straggler].iter().map(|&(_, l)| l).sum();
    let al = hints.fr_alignment.unwrap_or(1);
    // Keep the fraction the slowdown ratio says the straggler can finish
    // in a peer's cycle time, aligned down when a boundary alignment is
    // hinted, floored at one alignment unit so the realm never empties.
    let keep = ((total as u128 * avg as u128 / mv as u128) as u64 / al * al).max(al);
    if keep >= total {
        return None;
    }
    // Trim the straggler's runs from the back (every rank pops the same
    // sorted list, so the donation is identical everywhere).
    let donation = total - keep;
    let mut freed = donation;
    let mut donated: Vec<(u64, u64)> = Vec::new();
    while freed > 0 {
        let (o, l) = shares[straggler].pop().expect("freed < total implies runs remain");
        if l <= freed {
            donated.push((o, l));
            freed -= l;
        } else {
            shares[straggler].push((o, l - freed));
            donated.push((o + l - freed, freed));
            freed = 0;
        }
    }
    donated.sort_unstable();
    // Per-helper donation targets, proportional to speed (inverse
    // smoothed I/O time), aligned down; the rounding tail goes to the
    // fastest helper (lowest load, lowest index on ties).
    let inv: Vec<u128> = helpers.iter().map(|&(_, v)| (1u128 << 32) / v.max(1) as u128).collect();
    let inv_sum: u128 = inv.iter().sum();
    let mut targets: Vec<u64> =
        inv.iter().map(|&w| (donation as u128 * w / inv_sum) as u64 / al * al).collect();
    let assigned: u64 = targets.iter().sum();
    let fastest = helpers
        .iter()
        .enumerate()
        .min_by_key(|&(_, &(i, v))| (v, i))
        .map(|(k, _)| k)
        .expect("helpers is nonempty");
    targets[fastest] += donation - assigned;
    // Carve the donated runs into consecutive per-helper chunks.
    let (mut run, mut run_pos) = (0usize, 0u64);
    for (k, &(h, _)) in helpers.iter().enumerate() {
        let mut want = targets[k];
        while want > 0 {
            let (o, l) = donated[run];
            let take = (l - run_pos).min(want);
            shares[h].push((o + run_pos, take));
            run_pos += take;
            want -= take;
            if run_pos == l {
                run += 1;
                run_pos = 0;
            }
        }
        shares[h].sort_unstable();
    }
    Some(
        shares
            .into_iter()
            .map(|segs| {
                // Merge runs the handoff made adjacent.
                let mut merged: Vec<(u64, u64)> = Vec::with_capacity(segs.len());
                for (o, l) in segs {
                    match merged.last_mut() {
                        Some(last) if last.0 + last.1 == o => last.1 += l,
                        _ => merged.push((o, l)),
                    }
                }
                let size: u64 = merged.iter().map(|(_, l)| l).sum();
                let mut prefix = vec![0u64];
                for &(_, l) in &merged {
                    prefix.push(prefix.last().unwrap() + l);
                }
                let pattern = FlatType {
                    segs: merged.iter().map(|&(o, l)| Seg::new(o as i64, l)).collect(),
                    lb: 0,
                    extent: period,
                    size,
                    monotonic: true,
                    contiguous: merged.len() <= 1,
                    prefix,
                };
                FileRealm::tiled(Arc::new(pattern), 0)
            })
            .collect(),
    )
}

/// Derive the full per-cycle exchange schedule for one collective call,
/// charging the same pair-processing costs the engine always charged for
/// this work. Pure computation over the exchanged metadata: no
/// communication happens here, so hoisting it out of the cycle loop (to
/// make it cacheable) cannot change message ordering.
#[allow(clippy::too_many_lines)]
fn derive_schedule(
    rank: &Rank,
    wires: &[Vec<u8>],
    key: u64,
    my: &ClientAccess,
    hints: &Hints,
    pfr_state: &mut Option<Vec<FileRealm>>,
) -> ExchangeSchedule {
    let nprocs = rank.nprocs();
    let clients: Vec<ClientAccess> = wires.iter().map(|w| ClientAccess::from_wire(w)).collect();
    let parse_pairs: u64 = clients.iter().map(|c| c.view.d() as u64).sum();

    // ---- aggregate access region ----------------------------------------
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for c in &clients {
        if let Some((a, b)) = c.file_range() {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    if hi <= lo {
        // Every rank's access is empty; all agree. An empty schedule is
        // cached too, so repeated empty calls hit.
        return ExchangeSchedule { key, agg_ranks: Vec::new(), cycles: Vec::new(), parse_pairs };
    }

    // ---- realm assignment -------------------------------------------------
    let n_agg = hints.aggregators(nprocs);
    let agg_ranks = aggregator_ranks(n_agg, nprocs);
    let ctx = AssignCtx {
        aar: (lo, hi),
        n_aggregators: n_agg,
        alignment: hints.fr_alignment,
        clients: &clients,
    };
    let assign = |ctx: &AssignCtx<'_>, default: &dyn RealmAssigner| match &hints.realm_assigner {
        Some(a) => a.assign(ctx),
        None => default.assign(ctx),
    };
    // Persistent realms are borrowed from the per-file state, not cloned
    // per call; non-persistent realms live only for this derivation.
    let computed: Vec<FileRealm>;
    let realms: &[FileRealm] = if hints.persistent_file_realms {
        if pfr_state.is_none() {
            *pfr_state = Some(assign(&ctx, &PersistentBlockCyclic));
        }
        pfr_state.as_deref().unwrap()
    } else {
        computed = assign(&ctx, &EvenAar);
        &computed
    };
    assert_eq!(realms.len(), n_agg, "assigner must produce one realm per aggregator");

    // ---- cycle counts -------------------------------------------------------
    let cb = hints.cb_buffer_size as u64;
    let spans: Vec<(u64, u64)> = realms.iter().map(|r| (r.data_lower(lo), r.data_lower(hi))).collect();
    let ntimes = spans.iter().map(|(b, c)| (c - b).div_ceil(cb)).max().unwrap_or(0);

    // ---- per-pair state ------------------------------------------------------
    let my_agg_idx = agg_ranks.iter().position(|&r| r == rank.rank());
    let mut agg_streams: Vec<ClientStream> = if my_agg_idx.is_some() {
        clients.iter().cloned().map(ClientStream::new).collect()
    } else {
        Vec::new()
    };
    let mut my_streams: Vec<ClientStream> =
        (0..n_agg).map(|_| ClientStream::new(my.clone())).collect();

    let mut cycles: Vec<CycleSchedule> = Vec::with_capacity(ntimes as usize);
    for t in 0..ntimes {
        // Every rank derives every aggregator's window (realms are
        // deterministic, so no extra communication is needed).
        let mut windows: Vec<Vec<(u64, u64)>> = (0..n_agg)
            .map(|a| {
                let (base, cap) = spans[a];
                let d0 = base + t * cb;
                let d1 = (base + (t + 1) * cb).min(cap);
                if d0 >= d1 {
                    Vec::new()
                } else {
                    realms[a].segments(d0, d1)
                }
            })
            .collect();
        let mut pairs: u64 = windows.iter().map(|w| w.len() as u64).sum();

        // Client role: my pieces inside each aggregator's window.
        let mut my_pieces: Vec<Vec<Piece>> = Vec::with_capacity(n_agg);
        for a in 0..n_agg {
            let (p, charged) = my_streams[a].take_window(&windows[a]);
            pairs += charged;
            my_pieces.push(p);
        }

        // Aggregator role: every client's pieces inside my window.
        let agg_pieces: Vec<(usize, Vec<Piece>)> = if let Some(ai) = my_agg_idx {
            let w = &windows[ai];
            agg_streams
                .iter_mut()
                .enumerate()
                .map(|(c, s)| {
                    let (p, charged) = s.take_window(w);
                    pairs += charged;
                    (c, p)
                })
                .collect()
        } else {
            Vec::new()
        };

        let my_window = match my_agg_idx {
            Some(ai) => std::mem::take(&mut windows[ai]),
            None => Vec::new(),
        };
        cycles.push(CycleSchedule { my_window, my_pieces, agg_pieces, pairs });
    }
    ExchangeSchedule { key, agg_ranks, cycles, parse_pairs }
}

/// Build this rank's outgoing payload for one aggregator.
///
/// With `flexio_zero_copy` the payload is an iovec run list borrowed
/// straight off the flattened memory view ([`MemLayout::runs`]) handed to
/// the NIC — no pack copy is modeled, so nothing is charged and nothing
/// enters the [`flexio_sim::Stats::bytes_copied`] ledger (the `Vec` built
/// below is the simulator's wire representation, exactly as the alltoallw
/// mode always modeled it). The packed path gathers into a staging buffer
/// and, under the non-blocking exchange, charges that copy (§5.4).
fn pack_payload(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    user: &[u8],
    pieces: &[Piece],
    hints: &Hints,
) -> Vec<u8> {
    let total: u64 = pieces.iter().map(|p| p.len).sum();
    if hints.zero_copy {
        let mut payload = Vec::with_capacity(total as usize);
        for p in pieces {
            for run in mem.runs(user, p.data_pos - my.data_start, p.len) {
                payload.extend_from_slice(run.bytes);
            }
        }
        return payload;
    }
    let mut payload = vec![0u8; total as usize];
    let mut pos = 0usize;
    for p in pieces {
        mem.gather(user, p.data_pos - my.data_start, &mut payload[pos..pos + p.len as usize]);
        pos += p.len as usize;
    }
    if matches!(hints.exchange, ExchangeMode::Nonblocking) {
        // Alltoallw sends straight from the user buffer; the non-blocking
        // path packs first (§5.4).
        rank.charge_memcpy(total);
        rank.note_bytes_copied(total);
    }
    payload
}

/// Sieve method covering a whole segment group in one chunk: one RMW
/// read and one write-back for the group's span. The zero-copy issue
/// paths use this for sieve-resolved groups — the staging is span-sized
/// either way (ROMIO's integrated RMW holds the same span), and a single
/// round trip replaces the packed path's serialized sieve-buffer chunks.
fn span_wide_sieve(group: &[(u64, u64)]) -> flexio_io::IoMethod {
    let span = group.last().unwrap().0 + group.last().unwrap().1 - group[0].0;
    flexio_io::IoMethod::DataSieve { buffer: span as usize }
}

/// Estimate the period of an aggregated segment group: the average
/// distance between consecutive segment starts. For the paper's regular
/// workloads this equals the datatype extent, which §6.3 found to be the
/// right metric for conditional data sieving; unlike the raw filetype
/// extent it stays meaningful when many clients' filetypes interleave
/// densely at the aggregator.
fn group_period(group: &[(u64, u64)]) -> u64 {
    match group {
        [] => 0,
        [only] => only.1,
        _ => {
            let span = group.last().unwrap().0 + group.last().unwrap().1 - group[0].0;
            span / group.len() as u64
        }
    }
}

/// One write cycle's assembled collective buffer, ready for the file.
struct WriteStage {
    /// Sorted, merged file segments of this aggregator's window slice.
    segs: Vec<(u64, u64)>,
    /// The segments' bytes, in one of two representations.
    data: StageData,
}

/// How a stage holds the window's bytes between exchange and issue.
enum StageData {
    /// The classic path: one copy into a collective buffer, concatenated
    /// in file order.
    Packed(Vec<u8>),
    /// The zero-copy path: received payloads held as delivered, plus the
    /// run plan mapping the file-order segment stream onto
    /// `(payload index, offset, len)` slices. The issue half hands these
    /// slices to the scatter-gather PFS entry points without assembling
    /// an intermediate buffer.
    Runs { bufs: Vec<Vec<u8>>, runs: Vec<(usize, usize, usize)> },
}

impl StageData {
    /// Borrow the sub-slices of `runs` covering stream bytes
    /// `[start, start + len)`. Stream positions are byte offsets into the
    /// file-order concatenation of the stage's segments, so a window
    /// group's slice list is exactly its contiguous stream range.
    fn run_slices<'a>(
        bufs: &'a [Vec<u8>],
        runs: &[(usize, usize, usize)],
        start: usize,
        len: usize,
    ) -> Vec<&'a [u8]> {
        let mut out = Vec::new();
        let (mut pos, end) = (0usize, start + len);
        for &(bi, off, rlen) in runs {
            if pos >= end {
                break;
            }
            let rstart = pos;
            pos += rlen;
            if pos <= start {
                continue;
            }
            let lo = start.saturating_sub(rstart);
            let hi = rlen - pos.saturating_sub(end).min(rlen);
            out.push(&bufs[bi][off + lo..off + hi]);
        }
        out
    }
}

/// Exchange half of a write cycle: clients send their pieces, aggregators
/// assemble the collective buffer in file order. Pure data movement — the
/// file is not touched, so the pipelined driver can run this while the
/// previous cycle's I/O is still in flight.
#[allow(clippy::too_many_arguments)]
fn exchange_write(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &DataBuf<'_>,
    hints: &Hints,
    agg_ranks: &[usize],
    my_pieces: &[Vec<Piece>],
    agg_pieces: &[(usize, Vec<Piece>)],
) -> Option<WriteStage> {
    let user = match buf {
        DataBuf::Write(b) => *b,
        DataBuf::Read(_) => unreachable!(),
    };
    // Sends: client -> aggregators.
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    for (a, pieces) in my_pieces.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        sends.push((agg_ranks[a], pack_payload(rank, my, mem, user, pieces, hints)));
    }
    let recv_from: Vec<usize> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).map(|(c, _)| *c).collect();

    let received: Vec<(usize, Vec<u8>)> = match hints.exchange {
        ExchangeMode::Nonblocking => rank.exchange(&sends, &recv_from),
        ExchangeMode::Alltoallw => {
            let mut blocks = vec![Vec::new(); rank.nprocs()];
            for (dst, payload) in sends {
                blocks[dst] = payload;
            }
            let out = rank.alltoallv(blocks);
            recv_from.iter().map(|&c| (c, out[c].clone())).collect()
        }
    };
    if agg_pieces.iter().all(|(_, p)| p.is_empty()) {
        return None; // nothing owned this cycle (or not an aggregator)
    }

    // Assemble the collective buffer in file order. Within one client,
    // entry order equals the client's own pack order, so a per-client
    // sequential cursor walks each payload exactly once.
    let nonempty: Vec<(usize, Vec<Piece>)> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).cloned().collect();
    let (entries, segs) = merge_pieces(&nonempty);
    let total: u64 = entries.iter().map(|e| e.3).sum();
    let mut recv_cursor: std::collections::HashMap<usize, (usize, usize)> =
        received.iter().enumerate().map(|(i, (c, _))| (*c, (i, 0usize))).collect();
    if hints.zero_copy {
        // Record where each stream byte lives instead of moving it: the
        // plan is the same cursor walk as the packed assembly below,
        // minus the copy (and minus its charge).
        let mut runs = Vec::with_capacity(entries.len());
        for &(_off, client, _piece, len) in &entries {
            let (ri, consumed) = recv_cursor.get_mut(&client).expect("payload for client missing");
            runs.push((*ri, *consumed, len as usize));
            *consumed += len as usize;
        }
        let bufs: Vec<Vec<u8>> = received.into_iter().map(|(_, b)| b).collect();
        return Some(WriteStage { segs, data: StageData::Runs { bufs, runs } });
    }
    let mut packed = vec![0u8; total as usize];
    let mut pos = 0usize;
    for &(_off, client, _piece, len) in &entries {
        let (ri, consumed) = recv_cursor.get_mut(&client).expect("payload for client missing");
        let src = &received[*ri].1;
        packed[pos..pos + len as usize].copy_from_slice(&src[*consumed..*consumed + len as usize]);
        *consumed += len as usize;
        pos += len as usize;
    }
    if matches!(hints.exchange, ExchangeMode::Nonblocking) {
        rank.charge_memcpy(total); // assembly into the collective buffer
        rank.note_bytes_copied(total);
    }
    Some(WriteStage { segs, data: StageData::Packed(packed) })
}

/// Issue half of a write cycle: commit the assembled collective buffer to
/// the file with nonblocking requests, retrying transient faults per
/// realm chunk. Returns the virtual window the I/O occupies — carrying
/// the first retry-exhausted fault, if any; the caller decides whether to
/// block on it (serial engine) or overlap it (pipelined engine). Every
/// chunk is issued even after an exhausted one, so all data that *can*
/// land does, and the error agreement sees one deterministic first fault.
fn issue_write(
    rank: &Rank,
    handle: &FileHandle,
    hints: &Hints,
    window: &[(u64, u64)],
    stage: &WriteStage,
) -> IoCompletion {
    // One buffer-to-file request per realm chunk: sieving must never span
    // a realm boundary (the gap would belong to another aggregator).
    let t0 = rank.now();
    let mut t = t0;
    let mut err: Option<flexio_pfs::PfsError> = None;
    let mut pos = 0usize;
    for (wi, group) in group_by_window(&stage.segs, window) {
        let glen: u64 = group.iter().map(|(_, l)| l).sum();
        let period = group_period(&group);
        // Lock the whole realm chunk (as ROMIO locks the sieve extent).
        // Realm chunks are stable across calls under persistent file
        // realms, so the lock is acquired once and reused.
        match handle.lock_range(t, window[wi].0, window[wi].1) {
            Ok(nt) => t = nt,
            Err(e) => {
                t = e.at;
                err = err.or(Some(e));
            }
        }
        let sieved = matches!(resolve(&hints.io_method, &group, period), Resolved::DataSieve(_));
        let (nt, e) = match &stage.data {
            StageData::Packed(packed) => {
                // Double buffering (§5.1/§6.2): sieving beneath the
                // collective buffer copies once more, collective buffer
                // -> sieve buffer.
                if sieved {
                    rank.charge_memcpy(glen);
                    rank.note_bytes_copied(glen);
                }
                let data = &packed[pos..pos + glen as usize];
                retry_io(rank, hints, t, |at| {
                    write_packed_nb(handle, at, &group, data, &hints.io_method, period)
                        .into_result()
                })
            }
            StageData::Runs { bufs, runs } if sieved => {
                // Sieving needs a contiguous patch stream for its
                // read-modify-write, so this group still packs — the one
                // copy zero-copy keeps (it replaces the packed path's
                // assembly + double-buffer pair for the same bytes).
                // The chunk is widened to the whole group span: one RMW
                // read + one write-back per realm chunk, the same
                // span-sized staging ROMIO's integrated RMW pass uses,
                // instead of serialized sieve-buffer-sized round trips.
                let data: Vec<u8> =
                    StageData::run_slices(bufs, runs, pos, glen as usize).concat();
                rank.charge_memcpy(glen);
                rank.note_bytes_copied(glen);
                let method = span_wide_sieve(&group);
                retry_io(rank, hints, t, |at| {
                    write_packed_nb(handle, at, &group, &data, &method, period).into_result()
                })
            }
            StageData::Runs { bufs, runs } => {
                // Pack-free: hand the received payloads' sub-slices to
                // the scatter-gather write as-is.
                let slices = StageData::run_slices(bufs, runs, pos, glen as usize);
                retry_io(rank, hints, t, |at| {
                    write_gathered_nb(handle, at, &group, &slices, &hints.io_method, period)
                        .into_result()
                })
            }
        };
        t = nt;
        err = err.or(e);
        pos += glen as usize;
    }
    IoCompletion::span(t0, t).or_error(err)
}

/// [`CycleDriver`] for the flexible engine's write direction, over the
/// (possibly cached) exchange schedule.
struct FlexWrite<'a> {
    rank: &'a Rank,
    handle: &'a FileHandle,
    my: &'a ClientAccess,
    mem: &'a MemLayout,
    buf: &'a DataBuf<'a>,
    hints: &'a Hints,
    sched: &'a ExchangeSchedule,
    charge_cycles: bool,
    crash: Option<&'a mut CrashState>,
}

impl CycleDriver for FlexWrite<'_> {
    type Stage = WriteStage;

    fn n_cycles(&self) -> usize {
        self.sched.cycles.len()
    }

    fn boundary(&mut self, _i: usize) -> bool {
        match self.crash.as_deref_mut() {
            Some(st) => crash_boundary(self.rank, st),
            None => true,
        }
    }

    fn begin_cycle(&mut self, i: usize) {
        if self.charge_cycles {
            self.rank.charge_pairs(self.sched.cycles[i].pairs);
        }
    }

    fn exchange(&mut self, i: usize, _incoming: Option<WriteStage>) -> Option<WriteStage> {
        let cyc = &self.sched.cycles[i];
        exchange_write(
            self.rank,
            self.my,
            self.mem,
            self.buf,
            self.hints,
            &self.sched.agg_ranks,
            &cyc.my_pieces,
            &cyc.agg_pieces,
        )
    }

    fn issue(
        &mut self,
        i: usize,
        outgoing: Option<WriteStage>,
    ) -> Option<(IoCompletion, Option<WriteStage>)> {
        let stage = outgoing.expect("write issue needs an assembled stage");
        let io = issue_write(
            self.rank,
            self.handle,
            self.hints,
            &self.sched.cycles[i].my_window,
            &stage,
        );
        Some((io, None))
    }
}

/// One read cycle's collective buffer, read from the file and awaiting
/// distribution to the clients.
struct ReadStage {
    /// Merged plan entries `(file_off, client, piece_idx, len)` in file
    /// order — the slicing map from the packed buffer to per-client sends.
    entries: Vec<PlanEntry>,
    /// The window's bytes, in one of two representations.
    data: ReadStageData,
}

/// How a read stage holds the window's bytes between issue and
/// distribution.
enum ReadStageData {
    /// The classic path: the window concatenated in file order; the
    /// distribute half slices (copies) it into per-client payloads.
    Packed(Vec<u8>),
    /// The zero-copy path: per-client payload buffers, in ascending
    /// client order, filled directly by the scattered read — ready to
    /// send without a slicing pass.
    PerClient(Vec<(usize, Vec<u8>)>),
}

/// Issue half of a read cycle: an aggregator with data this cycle reads
/// its window slice into a collective buffer with nonblocking requests.
/// Returns the I/O's virtual window and the filled stage; `None` — with
/// nothing charged, so a re-issue is free — for pure clients and idle
/// cycles.
fn issue_read(
    rank: &Rank,
    handle: &FileHandle,
    hints: &Hints,
    window: &[(u64, u64)],
    agg_pieces: &[(usize, Vec<Piece>)],
) -> Option<(IoCompletion, ReadStage)> {
    if agg_pieces.iter().all(|(_, p)| p.is_empty()) {
        return None;
    }
    let nonempty: Vec<(usize, Vec<Piece>)> =
        agg_pieces.iter().filter(|(_, p)| !p.is_empty()).cloned().collect();
    let (entries, segs) = merge_pieces(&nonempty);
    let t0 = rank.now();
    let mut t = t0;
    let mut err: Option<flexio_pfs::PfsError> = None;
    if hints.zero_copy {
        // Pack-free: scattered reads land straight in per-client payload
        // buffers, so the distribute half can send them as-is.
        let mut totals: std::collections::BTreeMap<usize, usize> = Default::default();
        for &(_off, client, _piece, len) in &entries {
            *totals.entry(client).or_default() += len as usize;
        }
        let mut bufs: Vec<(usize, Vec<u8>)> =
            totals.into_iter().map(|(c, n)| (c, vec![0u8; n])).collect();
        // Dest runs in entry order: each entry gets the next `len` bytes
        // of its client's buffer (within a client, entry order equals the
        // client's own piece order).
        let mut rem: std::collections::HashMap<usize, &mut [u8]> =
            bufs.iter_mut().map(|(c, b)| (*c, b.as_mut_slice())).collect();
        let mut dests: Vec<&mut [u8]> = Vec::with_capacity(entries.len());
        for &(_off, client, _piece, len) in &entries {
            let r = rem.remove(&client).expect("client buffer missing");
            let (head, tail) = r.split_at_mut(len as usize);
            dests.push(head);
            rem.insert(client, tail);
        }
        drop(rem);
        // Merged segment boundaries always fall on entry boundaries, so
        // every window group covers a whole number of entries/dest runs.
        let mut ei = 0usize;
        for (wi, group) in group_by_window(&segs, window) {
            let glen: u64 = group.iter().map(|(_, l)| l).sum();
            let period = group_period(&group);
            match handle.lock_range(t, window[wi].0, window[wi].1) {
                Ok(nt) => t = nt,
                Err(e) => {
                    t = e.at;
                    err = err.or(Some(e));
                }
            }
            let mut got = 0u64;
            let mut ej = ei;
            while got < glen {
                got += entries[ej].3;
                ej += 1;
            }
            let sieved = matches!(resolve(&hints.io_method, &group, period), Resolved::DataSieve(_));
            let method = if sieved {
                // Sieving drains its chunk buffer into the per-client
                // payloads — the one copy zero-copy keeps on reads. One
                // span-wide chunk per group, as on the write side.
                rank.charge_memcpy(glen);
                rank.note_bytes_copied(glen);
                span_wide_sieve(&group)
            } else {
                hints.io_method
            };
            let (nt, e) = retry_io(rank, hints, t, |at| {
                read_scattered_nb(handle, at, &group, &mut dests[ei..ej], &method, period)
                    .into_result()
            });
            t = nt;
            err = err.or(e);
            ei = ej;
        }
        drop(dests);
        return Some((
            IoCompletion::span(t0, t).or_error(err),
            ReadStage { entries, data: ReadStageData::PerClient(bufs) },
        ));
    }
    let total: u64 = entries.iter().map(|e| e.3).sum();
    let mut packed = vec![0u8; total as usize];
    let mut pos = 0usize;
    for (wi, group) in group_by_window(&segs, window) {
        let glen: u64 = group.iter().map(|(_, l)| l).sum();
        let period = group_period(&group);
        match handle.lock_range(t, window[wi].0, window[wi].1) {
            Ok(nt) => t = nt,
            Err(e) => {
                t = e.at;
                err = err.or(Some(e));
            }
        }
        if matches!(resolve(&hints.io_method, &group, period), Resolved::DataSieve(_)) {
            rank.charge_memcpy(glen); // sieve buffer -> collective buffer
            rank.note_bytes_copied(glen);
        }
        let dst = &mut packed[pos..pos + glen as usize];
        let (nt, e) = retry_io(rank, hints, t, |at| {
            read_packed_nb(handle, at, &group, dst, &hints.io_method, period).into_result()
        });
        t = nt;
        err = err.or(e);
        pos += glen as usize;
    }
    Some((
        IoCompletion::span(t0, t).or_error(err),
        ReadStage { entries, data: ReadStageData::Packed(packed) },
    ))
}

/// Distribute half of a read cycle: the aggregator slices its collective
/// buffer per client, everyone exchanges, clients scatter into the user
/// buffer. Every rank must call this every cycle (collective exchange)
/// whether or not it holds a stage.
#[allow(clippy::too_many_arguments)]
fn distribute_read(
    rank: &Rank,
    my: &ClientAccess,
    mem: &MemLayout,
    buf: &mut DataBuf<'_>,
    hints: &Hints,
    agg_ranks: &[usize],
    my_pieces: &[Vec<Piece>],
    stage: Option<ReadStage>,
) {
    // Slice the packed buffer back out per client, in entry order
    // (within a client, entry order == the client's own piece order).
    // The zero-copy stage already holds per-client payloads — filled in
    // place by the scattered read — so no slicing pass (and no charge).
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    if let Some(stage) = stage {
        match stage.data {
            ReadStageData::PerClient(bufs) => sends = bufs,
            ReadStageData::Packed(packed) => {
                let total: u64 = stage.entries.iter().map(|e| e.3).sum();
                let mut per_client: std::collections::HashMap<usize, Vec<u8>> = Default::default();
                let mut pos = 0usize;
                for &(_off, client, _piece, len) in &stage.entries {
                    per_client
                        .entry(client)
                        .or_default()
                        .extend_from_slice(&packed[pos..pos + len as usize]);
                    pos += len as usize;
                }
                if matches!(hints.exchange, ExchangeMode::Nonblocking) {
                    rank.charge_memcpy(total); // collective buffer -> send payloads
                    rank.note_bytes_copied(total);
                }
                let mut targets: Vec<usize> = per_client.keys().copied().collect();
                targets.sort_unstable();
                for c in targets {
                    sends.push((c, per_client.remove(&c).unwrap()));
                }
            }
        }
    }
    // Client: receive from every aggregator whose window holds my data.
    let recv_from: Vec<usize> = my_pieces
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(a, _)| agg_ranks[a])
        .collect();
    let received: Vec<(usize, Vec<u8>)> = match hints.exchange {
        ExchangeMode::Nonblocking => rank.exchange(&sends, &recv_from),
        ExchangeMode::Alltoallw => {
            let mut blocks = vec![Vec::new(); rank.nprocs()];
            for (dst, payload) in sends {
                blocks[dst] = payload;
            }
            let out = rank.alltoallv(blocks);
            recv_from.iter().map(|&a| (a, out[a].clone())).collect()
        }
    };
    // Scatter into the user buffer.
    let user = match buf {
        DataBuf::Read(b) => &mut **b,
        DataBuf::Write(_) => unreachable!(),
    };
    let mut by_src: std::collections::HashMap<usize, Vec<u8>> = received.into_iter().collect();
    for (a, pieces) in my_pieces.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        let payload = by_src.remove(&agg_ranks[a]).expect("missing aggregator payload");
        let mut pos = 0usize;
        let mut total = 0u64;
        for p in pieces {
            mem.scatter(user, p.data_pos - my.data_start, &payload[pos..pos + p.len as usize]);
            pos += p.len as usize;
            total += p.len;
        }
        if matches!(hints.exchange, ExchangeMode::Nonblocking) && !hints.zero_copy {
            // Zero-copy receives through an iovec run list borrowed off
            // the flattened view, landing bytes in user memory directly;
            // the packed path unpacks a staging buffer.
            rank.charge_memcpy(total);
            rank.note_bytes_copied(total);
        }
    }
}

/// [`CycleDriver`] for the flexible engine's read direction: issue
/// prefetches a cycle's window into a fresh collective buffer,
/// exchange distributes it to the clients.
struct FlexRead<'a, 'b> {
    rank: &'a Rank,
    handle: &'a FileHandle,
    my: &'a ClientAccess,
    mem: &'a MemLayout,
    buf: &'a mut DataBuf<'b>,
    hints: &'a Hints,
    sched: &'a ExchangeSchedule,
    charge_cycles: bool,
    crash: Option<&'a mut CrashState>,
}

impl CycleDriver for FlexRead<'_, '_> {
    type Stage = ReadStage;

    fn n_cycles(&self) -> usize {
        self.sched.cycles.len()
    }

    fn boundary(&mut self, _i: usize) -> bool {
        match self.crash.as_deref_mut() {
            Some(st) => crash_boundary(self.rank, st),
            None => true,
        }
    }

    fn begin_cycle(&mut self, i: usize) {
        if self.charge_cycles {
            self.rank.charge_pairs(self.sched.cycles[i].pairs);
        }
    }

    fn exchange(&mut self, i: usize, incoming: Option<ReadStage>) -> Option<ReadStage> {
        distribute_read(
            self.rank,
            self.my,
            self.mem,
            self.buf,
            self.hints,
            &self.sched.agg_ranks,
            &self.sched.cycles[i].my_pieces,
            incoming,
        );
        None
    }

    fn issue(
        &mut self,
        i: usize,
        _outgoing: Option<ReadStage>,
    ) -> Option<(IoCompletion, Option<ReadStage>)> {
        issue_read(
            self.rank,
            self.handle,
            self.hints,
            &self.sched.cycles[i].my_window,
            &self.sched.cycles[i].agg_pieces,
        )
        .map(|(io, stage)| (io, Some(stage)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::PipelineDepth;

    /// Build tiled realms: one run of `len` bytes per aggregator inside a
    /// shared period, like the persistent block-cyclic assigner produces.
    fn tiled_realms(runs: &[(u64, u64)], period: u64) -> Vec<FileRealm> {
        runs.iter()
            .map(|&(o, l)| {
                let pattern = FlatType {
                    segs: vec![Seg::new(o as i64, l)],
                    lb: 0,
                    extent: period,
                    size: l,
                    monotonic: true,
                    contiguous: true,
                    prefix: vec![0, l],
                };
                FileRealm::tiled(Arc::new(pattern), 0)
            })
            .collect()
    }

    fn share_bytes(realms: &[FileRealm]) -> Vec<u64> {
        realms
            .iter()
            .map(|r| r.tile().expect("tiled").0.iter().map(|&(_, l)| l).sum())
            .collect()
    }

    #[test]
    fn rebalance_splits_proportionally_across_all_helpers() {
        // Aggregator 0 straggles at 8x; helpers 1 and 2 are equally fast.
        // The straggler must shrink to ~1/8 of its share in ONE step and
        // BOTH helpers must gain, splitting the donation evenly.
        let old = tiled_realms(&[(0, 8192), (8192, 8192), (16384, 8192)], 24576);
        let verdict = StragglerVerdict {
            straggler: 0,
            loads: vec![(0, 8000), (1, 1000), (2, 1000)],
        };
        let hints = Hints { fr_alignment: Some(1024), ..Hints::default() };
        let new = rebalance_realms(&old, &verdict, &hints).expect("must rebalance");
        let shares = share_bytes(&new);
        assert_eq!(shares.iter().sum::<u64>(), 24576, "realms must still tile the period");
        assert_eq!(shares[0], 1024, "straggler keeps share*avg/mv aligned down");
        let donated = 8192 - 1024;
        assert!(shares[1] > 8192 && shares[2] > 8192, "both helpers must gain: {shares:?}");
        assert_eq!(shares[1] + shares[2], 2 * 8192 + donated);
        // Equal speeds -> the split is as even as alignment allows.
        assert!(shares[1].abs_diff(shares[2]) <= 1024, "skewed split: {shares:?}");
    }

    #[test]
    fn rebalance_weighs_helpers_by_speed() {
        // Helper 1 is 3x slower than helper 2: helper 2 must absorb ~3x
        // the donated bytes.
        let old = tiled_realms(&[(0, 8192), (8192, 8192), (16384, 8192)], 24576);
        let verdict = StragglerVerdict {
            straggler: 0,
            loads: vec![(0, 24000), (1, 3000), (2, 1000)],
        };
        let hints = Hints { fr_alignment: None, ..Hints::default() };
        let new = rebalance_realms(&old, &verdict, &hints).expect("must rebalance");
        let shares = share_bytes(&new);
        assert_eq!(shares.iter().sum::<u64>(), 24576);
        let (gain1, gain2) = (shares[1] - 8192, shares[2] - 8192);
        assert!(gain2 > 2 * gain1, "fast helper must take the bulk: {shares:?}");
        assert!(gain1 > 0, "slow helper must still take a proportional slice");
    }

    #[test]
    fn rebalance_declines_when_nothing_can_move() {
        let old = tiled_realms(&[(0, 1024), (1024, 8192)], 9216);
        // Straggler already at one alignment unit: keep == total.
        let verdict =
            StragglerVerdict { straggler: 0, loads: vec![(0, 9000), (1, 1000)] };
        let hints = Hints { fr_alignment: Some(1024), ..Hints::default() };
        assert!(rebalance_realms(&old, &verdict, &hints).is_none());
        // Zero helper average (no samples worth comparing) declines too.
        let verdict = StragglerVerdict { straggler: 1, loads: vec![(0, 0), (1, 9000)] };
        assert!(rebalance_realms(&old, &verdict, &hints).is_none());
    }

    #[test]
    fn depth_hint_is_engine_agnostic() {
        // CapPolicy is shared machinery now; double-check the resolution
        // the engines rely on (depth d -> cap d-1).
        let h = Hints { pipeline_depth: PipelineDepth::Fixed(3), ..Hints::default() };
        assert_eq!(CapPolicy::resolve(&h, 4, 1), CapPolicy::Fixed(2));
    }
}
