//! The two-phase collective I/O engines.
//!
//! [`flexible`] is the paper's new implementation; [`romio`] re-implements
//! the original ROMIO code path as the evaluation baseline. Both move the
//! same bytes — integration tests assert byte equality — but they charge
//! different computation, metadata volume, and buffer copies, which is
//! where the Fig. 4 performance differences come from.

pub mod common;
pub mod flexible;
pub(crate) mod pipeline;
pub mod recovery;
pub mod romio;
pub mod schedule;

pub use common::{intersect_window, merge_pieces, ClientStream, Piece};
pub use flexible::DataBuf;
pub use schedule::{CycleSchedule, ExchangeSchedule};
