//! Machinery shared by both two-phase engines.

use crate::meta::ClientAccess;
use flexio_pfs::{PfsError, PfsErrorKind};
use flexio_sim::Rank;
use flexio_types::ViewCursor;

/// Integer exponential moving average with α = 1/4: `None` seeds with the
/// first sample, after which each update moves a quarter of the way to the
/// new value. Used to smooth per-cycle I/O and exchange durations so one
/// outlier cycle (a straggling OST, a cold lock) doesn't whipsaw the
/// pipeline depth or the straggler detector.
pub fn ewma(prev: Option<u64>, x: u64) -> u64 {
    match prev {
        None => x,
        Some(e) => (3 * e + x) / 4,
    }
}

/// Drive one idempotent file-system request through the retry loop:
/// reissue a transiently failed request up to `hints.io_retries` times,
/// each attempt preceded by an exponentially doubling backoff charged in
/// virtual time (`flexio_retry_backoff_us << attempt`). The fault model
/// guarantees requests move their data even when the request itself fails
/// (server committed, reply lost), so a reissue only re-pays the virtual
/// window. `op` takes the attempt's start time and returns the completion
/// time or a fault stamped with the would-be completion time. Returns the
/// final clock and the last error if every attempt failed.
pub fn retry_io(
    rank: &Rank,
    hints: &crate::hints::Hints,
    start: u64,
    mut op: impl FnMut(u64) -> Result<u64, PfsError>,
) -> (u64, Option<PfsError>) {
    let mut t = start;
    let mut attempt = 0u32;
    loop {
        match op(t) {
            Ok(done) => return (done, None),
            Err(e) if attempt >= hints.io_retries => return (e.at, Some(e)),
            Err(e) => {
                let backoff = hints
                    .retry_backoff_us
                    .saturating_mul(1000)
                    .saturating_mul(1u64 << attempt.min(32));
                t = e.at.saturating_add(backoff);
                rank.note_io_retry();
                attempt += 1;
            }
        }
    }
}

/// Collectively agree on the outcome of a collective call after retries
/// are exhausted. Every rank contributes its local verdict (`None` =
/// success); every rank returns the *same* `Option<PfsError>` — the
/// lowest-ranked reporter's error wins, stamped with that reporter's
/// failure time — so a faulted collective can never hang some ranks or
/// split the world between `Ok` and `Err`.
///
/// Two `allreduce_min` rounds: the first elects the winning error (success
/// encodes as `u64::MAX`, an error as `rank << 32 | ost << 8 | kind`, so
/// the minimum is a concrete reporter), the second carries the winner's
/// failure timestamp.
pub fn agree_error(rank: &Rank, local: Option<PfsError>) -> Option<PfsError> {
    let kind_code = |k: PfsErrorKind| match k {
        PfsErrorKind::TransientOst => 1u64,
        PfsErrorKind::TornWrite => 2u64,
    };
    let mine = match &local {
        Some(e) => ((rank.rank() as u64) << 32) | ((e.ost as u64 & 0xff_ffff) << 8) | kind_code(e.kind),
        None => u64::MAX,
    };
    let winner = rank.allreduce_min(mine);
    if winner == u64::MAX {
        return None;
    }
    let at_vote = if mine == winner {
        local.expect("winning encoding implies a local error").at
    } else {
        u64::MAX
    };
    let at = rank.allreduce_min(at_vote);
    let kind = match winner & 0xff {
        1 => PfsErrorKind::TransientOst,
        2 => PfsErrorKind::TornWrite,
        c => unreachable!("unknown agreed fault kind code {c}"),
    };
    Some(PfsError { kind, ost: ((winner >> 8) & 0xff_ffff) as usize, at })
}

/// One piece of a client's access that falls in an aggregator's window:
/// a contiguous file run plus its position in the client's data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// Absolute file offset.
    pub file_off: u64,
    /// Position in the owning client's data space.
    pub data_pos: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Piece {
    /// Exclusive end file offset.
    pub fn file_end(&self) -> u64 {
        self.file_off + self.len
    }
}

/// Stream the pieces of a client's access that fall inside the window
/// `win` (sorted disjoint file segments). `cur` is the stateful cursor for
/// this (client, aggregator) pair — windows ascend monotonically across
/// buffer cycles, so the cursor never rewinds. `data_end` clips to the
/// client's access length.
pub fn intersect_window(
    cur: &mut ViewCursor<'_>,
    data_end: u64,
    win: &[(u64, u64)],
) -> Vec<Piece> {
    let mut out = Vec::new();
    for &(ws, wlen) in win {
        let we = ws + wlen;
        if cur.data_pos() >= data_end {
            break;
        }
        cur.advance_to_file(ws);
        loop {
            if cur.data_pos() >= data_end {
                return out;
            }
            let room = data_end - cur.data_pos();
            match cur.take_below(we, room) {
                Some(p) => out.push(Piece { file_off: p.file_off, data_pos: p.data_pos, len: p.len }),
                None => break,
            }
        }
    }
    out
}

/// A cursor wrapper owning the reconstructed view of a remote client, so
/// aggregators can walk other ranks' filetypes (§5.3: "the aggregator must
/// calculate them itself").
pub struct ClientStream {
    access: ClientAccess,
    /// Total offset/length pairs evaluated so far (for compute charging).
    evaluated_done: u64,
    /// Data position reached (cursor recreated lazily per window batch).
    data_pos: u64,
}

impl ClientStream {
    /// Start a stream at the client's first data byte.
    pub fn new(access: ClientAccess) -> Self {
        let data_pos = access.data_start;
        ClientStream { access, evaluated_done: 0, data_pos }
    }

    /// The underlying access.
    pub fn access(&self) -> &ClientAccess {
        &self.access
    }

    /// Pieces of this client inside `win`; returns (pieces, pairs_charged).
    pub fn take_window(&mut self, win: &[(u64, u64)]) -> (Vec<Piece>, u64) {
        if self.access.data_len == 0 || self.data_pos >= self.access.data_end() {
            return (Vec::new(), 0);
        }
        let mut cur = self.access.view.cursor(self.data_pos);
        let before = cur.evaluated();
        let pieces = intersect_window(&mut cur, self.access.data_end(), win);
        let charged = cur.evaluated() - before;
        self.evaluated_done += charged;
        if let Some(last) = pieces.last() {
            self.data_pos = last.data_pos + last.len;
        } else {
            // The cursor advanced past the window even with no data there.
            self.data_pos = self.data_pos.max(cur.data_pos().min(self.access.data_end()));
        }
        (pieces, charged)
    }

    /// Total pairs evaluated by this stream.
    pub fn evaluated(&self) -> u64 {
        self.evaluated_done
    }
}

/// One assembly-plan entry: `(file_off, client, piece_idx, len)`.
pub type PlanEntry = (u64, usize, usize, u64);

/// Merge per-client piece lists into a file-ordered plan: returns
/// `(entries, segs)` where entries are sorted by file offset and `segs`
/// are the merged `(off, len)` runs.
pub fn merge_pieces(per_client: &[(usize, Vec<Piece>)]) -> (Vec<PlanEntry>, Vec<(u64, u64)>) {
    let mut entries: Vec<(u64, usize, usize, u64)> = Vec::new();
    for (client, pieces) in per_client {
        for (i, p) in pieces.iter().enumerate() {
            entries.push((p.file_off, *client, i, p.len));
        }
    }
    entries.sort_unstable();
    let mut segs: Vec<(u64, u64)> = Vec::with_capacity(entries.len());
    for &(off, _, _, len) in &entries {
        match segs.last_mut() {
            Some(last) if last.0 + last.1 == off => last.1 += len,
            _ => segs.push((off, len)),
        }
    }
    (entries, segs)
}

/// Split file-ordered data segments into groups, one per realm window
/// segment. Data sieving must never span a realm boundary: the gap bytes
/// between two realm chunks belong to *other* aggregators, and writing
/// them back from a sieve buffer would race with their owners. Each group
/// is safe to sieve because every byte in its bounding box is owned by
/// this aggregator's realm chunk.
pub fn group_by_window(
    segs: &[(u64, u64)],
    window: &[(u64, u64)],
) -> Vec<(usize, Vec<(u64, u64)>)> {
    let mut groups: Vec<(usize, Vec<(u64, u64)>)> = Vec::new();
    let mut wi = 0usize;
    let mut current: Vec<(u64, u64)> = Vec::new();
    for &(off, len) in segs {
        while wi < window.len() && window[wi].0 + window[wi].1 <= off {
            if !current.is_empty() {
                groups.push((wi, std::mem::take(&mut current)));
            }
            wi += 1;
        }
        debug_assert!(
            wi < window.len() && off >= window[wi].0 && off + len <= window[wi].0 + window[wi].1,
            "data segment ({off},{len}) outside realm window"
        );
        current.push((off, len));
    }
    if !current.is_empty() {
        groups.push((wi, current));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_types::{flatten, Datatype, FileView};
    use std::sync::Arc;

    fn access(disp: u64, block: u64, extent: u64, start: u64, len: u64) -> ClientAccess {
        let dt = Datatype::resized(0, extent, Datatype::bytes(block));
        ClientAccess {
            view: FileView::new(disp, Arc::new(flatten(&dt)), 1).unwrap(),
            data_start: start,
            data_len: len,
        }
    }

    #[test]
    fn intersect_single_window() {
        // 4 data / 4 gap, disp 0; window [0, 10)
        let a = access(0, 4, 8, 0, 100);
        let mut cur = a.view.cursor(0);
        let pieces = intersect_window(&mut cur, 100, &[(0, 10)]);
        assert_eq!(
            pieces,
            vec![
                Piece { file_off: 0, data_pos: 0, len: 4 },
                Piece { file_off: 8, data_pos: 4, len: 2 },
            ]
        );
    }

    #[test]
    fn intersect_respects_data_end() {
        let a = access(0, 4, 8, 0, 5);
        let mut cur = a.view.cursor(0);
        let pieces = intersect_window(&mut cur, 5, &[(0, 100)]);
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, 5);
        assert_eq!(pieces.last().unwrap().file_off, 8);
    }

    #[test]
    fn intersect_multi_segment_window() {
        let a = access(0, 4, 8, 0, 100);
        let mut cur = a.view.cursor(0);
        let pieces = intersect_window(&mut cur, 100, &[(0, 4), (16, 4)]);
        assert_eq!(
            pieces,
            vec![
                Piece { file_off: 0, data_pos: 0, len: 4 },
                Piece { file_off: 16, data_pos: 8, len: 4 },
            ]
        );
    }

    #[test]
    fn client_stream_monotonic_windows() {
        let a = access(0, 4, 8, 0, 100);
        let mut s = ClientStream::new(a);
        let (p1, c1) = s.take_window(&[(0, 8)]);
        assert_eq!(p1.len(), 1);
        assert!(c1 > 0);
        let (p2, _) = s.take_window(&[(8, 8)]);
        assert_eq!(p2, vec![Piece { file_off: 8, data_pos: 4, len: 4 }]);
        let (p3, _) = s.take_window(&[(16, 16)]);
        let total: u64 = p3.iter().map(|p| p.len).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn client_stream_empty_access() {
        let a = access(0, 4, 8, 0, 0);
        let mut s = ClientStream::new(a);
        let (p, c) = s.take_window(&[(0, 100)]);
        assert!(p.is_empty());
        assert_eq!(c, 0);
    }

    #[test]
    fn client_stream_offset_start() {
        // data_start 6 -> begins mid-second-block (file 10).
        let a = access(0, 4, 8, 6, 10);
        let mut s = ClientStream::new(a);
        let (p, _) = s.take_window(&[(0, 100)]);
        assert_eq!(p[0], Piece { file_off: 10, data_pos: 6, len: 2 });
        let total: u64 = p.iter().map(|x| x.len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn group_by_window_splits_at_realm_chunks() {
        let window = [(0u64, 100u64), (300, 100), (600, 50)];
        let segs = [(10u64, 20u64), (50, 10), (310, 5), (620, 10)];
        let groups = group_by_window(&segs, &window);
        assert_eq!(
            groups,
            vec![
                (0, vec![(10, 20), (50, 10)]),
                (1, vec![(310, 5)]),
                (2, vec![(620, 10)])
            ]
        );
    }

    #[test]
    fn group_by_window_single_chunk() {
        let window = [(0u64, 1000u64)];
        let segs = [(10u64, 20u64), (500, 10)];
        assert_eq!(group_by_window(&segs, &window), vec![(0, vec![(10, 20), (500, 10)])]);
    }

    #[test]
    fn group_by_window_skips_empty_chunks() {
        let window = [(0u64, 10u64), (20, 10), (40, 10)];
        let segs = [(42u64, 3u64)];
        assert_eq!(group_by_window(&segs, &window), vec![(2, vec![(42, 3)])]);
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        assert_eq!(ewma(None, 100), 100);
        assert_eq!(ewma(Some(100), 100), 100);
        assert_eq!(ewma(Some(100), 200), 125);
        assert_eq!(ewma(Some(200), 0), 150);
        assert_eq!(ewma(Some(0), 0), 0);
    }

    #[test]
    fn agree_error_unanimous_success() {
        let outcomes = flexio_sim::run(4, flexio_sim::CostModel::default(), |rank| {
            agree_error(rank, None)
        });
        assert!(outcomes.iter().all(|o| o.is_none()));
    }

    #[test]
    fn agree_error_lowest_rank_wins_everywhere() {
        let outcomes = flexio_sim::run(4, flexio_sim::CostModel::default(), |rank| {
            // Ranks 1 and 3 fail locally with different errors; all four
            // must agree on rank 1's.
            let local = match rank.rank() {
                1 => Some(PfsError { kind: PfsErrorKind::TransientOst, ost: 5, at: 777 }),
                3 => Some(PfsError { kind: PfsErrorKind::TransientOst, ost: 9, at: 111 }),
                _ => None,
            };
            agree_error(rank, local)
        });
        let expect = PfsError { kind: PfsErrorKind::TransientOst, ost: 5, at: 777 };
        assert!(outcomes.iter().all(|o| *o == Some(expect)), "{outcomes:?}");
    }

    #[test]
    fn agree_error_round_trips_torn_write_kind() {
        let outcomes = flexio_sim::run(3, flexio_sim::CostModel::default(), |rank| {
            let local = (rank.rank() == 2)
                .then_some(PfsError { kind: PfsErrorKind::TornWrite, ost: 3, at: 42 });
            agree_error(rank, local)
        });
        let expect = PfsError { kind: PfsErrorKind::TornWrite, ost: 3, at: 42 };
        assert!(outcomes.iter().all(|o| *o == Some(expect)), "{outcomes:?}");
    }

    #[test]
    fn merge_pieces_sorts_and_merges() {
        let per_client = vec![
            (0usize, vec![Piece { file_off: 8, data_pos: 0, len: 4 }]),
            (1usize, vec![
                Piece { file_off: 0, data_pos: 0, len: 4 },
                Piece { file_off: 12, data_pos: 4, len: 4 },
            ]),
        ];
        let (entries, segs) = merge_pieces(&per_client);
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[1].0, 8);
        assert_eq!(entries[2].0, 12);
        assert_eq!(segs, vec![(0, 4), (8, 8)]);
    }
}
