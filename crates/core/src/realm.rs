//! Datatype-described file realms and pluggable realm assignment (§5.2).
//!
//! A [`FileRealm`] is "a datatype and a file offset (similar to a file
//! view)": the set of file bytes one aggregator is exclusively responsible
//! for. Realms are *streams*: deciding what realm a byte belongs to is a
//! search, not an O(1) calculation — the generality/performance tradeoff
//! the paper discusses. [`RealmAssigner`] is the plug-in point: the default
//! reproduces ROMIO's even aggregate-access-region split; alternatives
//! implement boundary alignment (§6.4), persistent whole-file realms
//! (§5.2), and data-balanced boundaries (the §7 "future work" assigner).

use crate::meta::ClientAccess;
use flexio_types::{FileView, FlatType, Seg};
use std::sync::Arc;

/// The file bytes owned by one aggregator, as a (possibly tiled) datatype
/// stream, optionally clipped to a file range.
#[derive(Debug, Clone)]
pub struct FileRealm {
    view: FileView,
    /// Clip to `[lo, hi)` in file space (contiguous per-call realms).
    bound: Option<(u64, u64)>,
}

impl FileRealm {
    /// A contiguous realm covering `[lo, hi)`. `lo == hi` makes an empty
    /// realm (a legal assignment: the aggregator idles).
    pub fn contiguous(lo: u64, hi: u64) -> FileRealm {
        FileRealm { view: FileView::contiguous(lo), bound: Some((lo, hi)) }
    }

    /// An unbounded realm: `pattern` tiled forever from `disp`. Used by
    /// persistent file realms, which must cover the entire (growing) file.
    pub fn tiled(pattern: Arc<FlatType>, disp: u64) -> FileRealm {
        FileRealm {
            view: FileView::new(disp, pattern, 1).expect("invalid realm pattern"),
            bound: None,
        }
    }

    /// Build from any monotonic flattened datatype, clipped to a range.
    pub fn from_pattern(pattern: Arc<FlatType>, disp: u64, bound: Option<(u64, u64)>) -> FileRealm {
        FileRealm {
            view: FileView::new(disp, pattern, 1).expect("invalid realm pattern"),
            bound,
        }
    }

    /// `D` of the realm's datatype: pairs per tile.
    pub fn d(&self) -> usize {
        self.view.d()
    }

    /// True if this realm owns zero bytes.
    pub fn is_empty(&self) -> bool {
        matches!(self.bound, Some((lo, hi)) if lo >= hi)
    }

    fn clamp(&self, off: u64) -> u64 {
        match self.bound {
            Some((lo, hi)) => off.clamp(lo, hi),
            None => off,
        }
    }

    /// Realm-data position of the first owned byte at or after file
    /// offset `off` (a search: O(log D)).
    pub fn data_lower(&self, off: u64) -> u64 {
        self.view.file_to_data_lower(self.clamp(off))
    }

    /// Owned bytes within `[lo, hi)` of file space.
    pub fn owned_between(&self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return 0;
        }
        self.data_lower(hi).saturating_sub(self.data_lower(lo))
    }

    /// File segments of realm-data `[d0, d1)`, merged and sorted. Realm
    /// data positions come from [`FileRealm::data_lower`].
    pub fn segments(&self, d0: u64, d1: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        if d0 >= d1 {
            return out;
        }
        let mut cur = self.view.cursor(d0);
        let mut remaining = d1 - d0;
        while remaining > 0 {
            let p = cur.take(remaining);
            match out.last_mut() {
                Some(last) if last.0 + last.1 == p.file_off => last.1 += p.len,
                _ => out.push((p.file_off, p.len)),
            }
            remaining -= p.len;
        }
        out
    }

    /// The tiling of an unbounded realm: its absolute per-period file
    /// segments and the period (pattern extent). `None` for clipped
    /// per-call realms, which have no meaningful period. This is what the
    /// straggler-rebalance path uses to recover the current ownership
    /// split so it can move bytes between aggregators.
    pub fn tile(&self) -> Option<(Vec<(u64, u64)>, u64)> {
        if self.bound.is_some() {
            return None;
        }
        let ft = self.view.ftype();
        let segs =
            ft.segs.iter().map(|s| (self.view.disp() + s.off as u64, s.len)).collect();
        Some((segs, ft.extent))
    }

    /// Does this realm own file offset `off`?
    pub fn owns(&self, off: u64) -> bool {
        if let Some((lo, hi)) = self.bound {
            if off < lo || off >= hi {
                return false;
            }
        }
        self.view.file_to_data_lower(off) != self.view.file_to_data_lower(off + 1)
    }
}

/// Inputs available when assigning realms for one collective call.
#[derive(Debug)]
pub struct AssignCtx<'a> {
    /// Aggregate access region `[lo, hi)` of this collective call.
    pub aar: (u64, u64),
    /// Number of aggregators to produce realms for.
    pub n_aggregators: usize,
    /// Requested boundary alignment in bytes (`fr_alignment` hint).
    pub alignment: Option<u64>,
    /// Every rank's access (for data-aware assignment).
    pub clients: &'a [ClientAccess],
}

/// Pluggable file-realm assignment (§5.2): "one can easily plug in a new
/// optimization function to determine the file realms in a completely
/// different scheme."
pub trait RealmAssigner: Send + Sync {
    /// Produce exactly `ctx.n_aggregators` realms that jointly cover the
    /// aggregate access region (realms must be pairwise disjoint).
    fn assign(&self, ctx: &AssignCtx<'_>) -> Vec<FileRealm>;
    /// Human-readable name for logs and benches.
    fn name(&self) -> &'static str;
}

fn align_down(x: u64, a: u64) -> u64 {
    x - x % a
}

fn align_up(x: u64, a: u64) -> u64 {
    x.div_ceil(a) * a
}

/// ROMIO's default: split the aggregate access region evenly; optionally
/// snap interior boundaries down to the alignment.
#[derive(Debug, Default, Clone, Copy)]
pub struct EvenAar;

impl RealmAssigner for EvenAar {
    fn assign(&self, ctx: &AssignCtx<'_>) -> Vec<FileRealm> {
        let (lo, hi) = ctx.aar;
        let a = ctx.n_aggregators as u64;
        let len = hi.saturating_sub(lo);
        let mut bounds = Vec::with_capacity(ctx.n_aggregators + 1);
        for i in 0..=a {
            let mut b = lo + len * i / a;
            if let Some(al) = ctx.alignment {
                if i == 0 {
                    b = align_down(b, al);
                } else if i == a {
                    b = align_up(b, al);
                } else {
                    b = align_down(b, al).max(align_down(lo, al));
                }
            }
            // Keep boundaries monotone after rounding.
            if let Some(&prev) = bounds.last() {
                b = b.max(prev);
            }
            bounds.push(b);
        }
        // Guarantee full coverage of the AAR.
        *bounds.last_mut().unwrap() = (*bounds.last().unwrap()).max(hi);
        (0..ctx.n_aggregators)
            .map(|i| FileRealm::contiguous(bounds[i], bounds[i + 1]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "even-aar"
    }
}

/// Persistent file realms (§5.2/§6.4): block-cyclic over the whole file,
/// anchored at byte zero, so they never change between collective calls.
/// The block size is derived from the first call's AAR (rounded up to the
/// alignment when given).
#[derive(Debug, Default, Clone, Copy)]
pub struct PersistentBlockCyclic;

impl RealmAssigner for PersistentBlockCyclic {
    fn assign(&self, ctx: &AssignCtx<'_>) -> Vec<FileRealm> {
        let (lo, hi) = ctx.aar;
        let a = ctx.n_aggregators as u64;
        let mut block = (hi.saturating_sub(lo)).div_ceil(a).max(1);
        if let Some(al) = ctx.alignment {
            block = align_up(block, al);
        }
        (0..ctx.n_aggregators)
            .map(|i| {
                let pattern = FlatType {
                    segs: vec![Seg::new(0, block)],
                    lb: 0,
                    extent: block * a,
                    size: block,
                    monotonic: true,
                    contiguous: true,
                    prefix: vec![0, block],
                };
                FileRealm::tiled(Arc::new(pattern), i as u64 * block)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "persistent-block-cyclic"
    }
}

/// Data-balanced contiguous realms (the paper's §7 "better I/O aggregator
/// load balancing" future-work direction): boundaries are chosen so every
/// aggregator owns roughly the same number of *accessed* bytes, not the
/// same span of file. Helps sparse clustered accesses, where the even
/// split leaves some aggregators idle.
#[derive(Debug, Default, Clone, Copy)]
pub struct BalancedLoad;

impl BalancedLoad {
    /// Accessed bytes at file offsets below `x`, across all clients.
    fn cumulative(clients: &[ClientAccess], x: u64) -> u64 {
        clients
            .iter()
            .filter(|c| c.data_len > 0)
            .map(|c| {
                let pos = c.view.file_to_data_lower(x);
                pos.clamp(c.data_start, c.data_end()) - c.data_start
            })
            .sum()
    }
}

impl RealmAssigner for BalancedLoad {
    fn assign(&self, ctx: &AssignCtx<'_>) -> Vec<FileRealm> {
        let (lo, hi) = ctx.aar;
        let a = ctx.n_aggregators as u64;
        let total = Self::cumulative(ctx.clients, hi);
        let mut bounds = vec![lo];
        for i in 1..a {
            let target = total * i / a;
            // Binary search the smallest offset with cumulative >= target.
            let (mut l, mut r) = (lo, hi);
            while l < r {
                let mid = l + (r - l) / 2;
                if Self::cumulative(ctx.clients, mid) < target {
                    l = mid + 1;
                } else {
                    r = mid;
                }
            }
            let mut b = l;
            if let Some(al) = ctx.alignment {
                b = align_down(b, al).max(lo);
            }
            b = b.max(*bounds.last().unwrap());
            bounds.push(b);
        }
        bounds.push(hi.max(*bounds.last().unwrap()));
        (0..ctx.n_aggregators)
            .map(|i| FileRealm::contiguous(bounds[i], bounds[i + 1]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "balanced-load"
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn check_partition(assigner: &dyn RealmAssigner, ctx: &AssignCtx<'_>) -> Result<(), String> {
        let realms = assigner.assign(ctx);
        if realms.len() != ctx.n_aggregators {
            return Err(format!("{}: wrong realm count", assigner.name()));
        }
        let (lo, hi) = ctx.aar;
        // Sampled ownership: every AAR byte owned by exactly one realm.
        let step = ((hi - lo) / 257).max(1);
        let mut off = lo;
        while off < hi {
            let owners = realms.iter().filter(|r| r.owns(off)).count();
            if owners != 1 {
                return Err(format!("{}: offset {off} owned {owners} times", assigner.name()));
            }
            off += step;
        }
        // Coverage accounting.
        let covered: u64 = realms.iter().map(|r| r.owned_between(lo, hi)).sum();
        if covered != hi - lo {
            return Err(format!("{}: covered {covered} of {}", assigner.name(), hi - lo));
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every built-in assigner partitions the AAR: full coverage,
        /// pairwise-disjoint ownership, for arbitrary regions, aggregator
        /// counts, and alignments.
        #[test]
        fn assigners_partition_the_aar(
            lo in 0u64..100_000,
            len in 1u64..500_000,
            aggs in 1usize..12,
            align_pow in proptest::option::of(4u32..16),
        ) {
            let ctx = AssignCtx {
                aar: (lo, lo + len),
                n_aggregators: aggs,
                alignment: align_pow.map(|p| 1u64 << p),
                clients: &[],
            };
            check_partition(&EvenAar, &ctx).map_err(TestCaseError::fail)?;
            check_partition(&PersistentBlockCyclic, &ctx).map_err(TestCaseError::fail)?;
            check_partition(&BalancedLoad, &ctx).map_err(TestCaseError::fail)?;
        }

        /// Persistent realms own every byte of the file, not just the AAR.
        #[test]
        fn persistent_realms_cover_whole_file(
            lo in 0u64..10_000,
            len in 1u64..100_000,
            aggs in 1usize..8,
            probe in 0u64..1_000_000,
        ) {
            let ctx = AssignCtx {
                aar: (lo, lo + len),
                n_aggregators: aggs,
                alignment: None,
                clients: &[],
            };
            let realms = PersistentBlockCyclic.assign(&ctx);
            let owners = realms.iter().filter(|r| r.owns(probe)).count();
            prop_assert_eq!(owners, 1, "byte {} owned {} times", probe, owners);
        }

        /// Realm segments reconstruct exactly the owned byte count.
        #[test]
        fn realm_segments_consistent(
            lo in 0u64..1000,
            len in 1u64..10_000,
            aggs in 1usize..6,
        ) {
            let ctx = AssignCtx { aar: (lo, lo + len), n_aggregators: aggs, alignment: None, clients: &[] };
            for r in PersistentBlockCyclic.assign(&ctx) {
                let d0 = r.data_lower(lo);
                let d1 = r.data_lower(lo + len);
                let segs = r.segments(d0, d1);
                let total: u64 = segs.iter().map(|(_, l)| l).sum();
                prop_assert_eq!(total, d1 - d0);
                // Sorted, disjoint.
                for w in segs.windows(2) {
                    prop_assert!(w[0].0 + w[0].1 <= w[1].0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_types::{flatten, Datatype};

    fn ctx(aar: (u64, u64), a: usize, alignment: Option<u64>) -> AssignCtx<'static> {
        AssignCtx { aar, n_aggregators: a, alignment, clients: &[] }
    }

    #[test]
    fn contiguous_realm_basics() {
        let r = FileRealm::contiguous(100, 200);
        assert!(!r.is_empty());
        assert_eq!(r.owned_between(0, 1000), 100);
        assert_eq!(r.owned_between(150, 160), 10);
        assert_eq!(r.owned_between(0, 100), 0);
        assert!(r.owns(100));
        assert!(r.owns(199));
        assert!(!r.owns(200));
        assert!(!r.owns(99));
    }

    #[test]
    fn contiguous_realm_segments() {
        let r = FileRealm::contiguous(100, 200);
        let d0 = r.data_lower(120);
        let d1 = r.data_lower(150);
        assert_eq!(r.segments(d0, d1), vec![(120, 30)]);
    }

    #[test]
    fn empty_realm() {
        let r = FileRealm::contiguous(50, 50);
        assert!(r.is_empty());
        assert_eq!(r.owned_between(0, 100), 0);
    }

    #[test]
    fn tiled_realm_block_cyclic() {
        // blocks of 10 every 30 bytes starting at 10 (aggregator 1 of 3).
        let pattern = FlatType {
            segs: vec![Seg::new(0, 10)],
            lb: 0,
            extent: 30,
            size: 10,
            monotonic: true,
            contiguous: true,
            prefix: vec![0, 10],
        };
        let r = FileRealm::tiled(Arc::new(pattern), 10);
        assert!(r.owns(10));
        assert!(r.owns(19));
        assert!(!r.owns(20));
        assert!(!r.owns(9));
        assert!(r.owns(40));
        assert_eq!(r.owned_between(0, 90), 30);
        let d0 = r.data_lower(0);
        let d1 = r.data_lower(90);
        assert_eq!(r.segments(d0, d1), vec![(10, 10), (40, 10), (70, 10)]);
    }

    #[test]
    fn even_aar_covers_and_splits() {
        let realms = EvenAar.assign(&ctx((100, 500), 4, None));
        assert_eq!(realms.len(), 4);
        let mut covered = 0;
        for r in &realms {
            covered += r.owned_between(100, 500);
        }
        assert_eq!(covered, 400);
        assert!(realms[0].owns(100));
        assert!(realms[3].owns(499));
        // Disjoint: each byte owned exactly once.
        for off in (100..500).step_by(7) {
            let owners = realms.iter().filter(|r| r.owns(off)).count();
            assert_eq!(owners, 1, "offset {off}");
        }
    }

    #[test]
    fn even_aar_aligned_boundaries() {
        let realms = EvenAar.assign(&AssignCtx {
            aar: (100, 1000),
            n_aggregators: 3,
            alignment: Some(256),
            clients: &[],
        });
        // Boundaries snap to 256 multiples; coverage preserved.
        let mut covered = 0;
        for r in &realms {
            covered += r.owned_between(100, 1000);
        }
        assert_eq!(covered, 900);
        // Interior boundary must be 256-aligned: realm 1 start.
        let d = realms[1].data_lower(0);
        let segs = realms[1].segments(d, d + 1);
        if let Some(&(off, _)) = segs.first() {
            assert_eq!(off % 256, 0, "unaligned interior boundary {off}");
        }
    }

    #[test]
    fn even_aar_alignment_may_empty_some_realms() {
        // Tiny AAR, huge alignment: all interior boundaries collapse.
        let realms = EvenAar.assign(&AssignCtx {
            aar: (0, 100),
            n_aggregators: 4,
            alignment: Some(1 << 20),
            clients: &[],
        });
        let covered: u64 = realms.iter().map(|r| r.owned_between(0, 100)).sum();
        assert_eq!(covered, 100);
        assert!(realms[1].is_empty() || realms[1].owned_between(0, 100) == 0);
    }

    #[test]
    fn persistent_block_cyclic_covers_everything() {
        let realms = PersistentBlockCyclic.assign(&ctx((0, 300), 3, None));
        for off in (0..2000).step_by(13) {
            let owners = realms.iter().filter(|r| r.owns(off)).count();
            assert_eq!(owners, 1, "offset {off}");
        }
        // Anchored at zero: realm 0 owns byte 0 regardless of the AAR.
        let realms = PersistentBlockCyclic.assign(&ctx((1000, 1300), 3, None));
        assert!(realms[0].owns(0));
    }

    #[test]
    fn persistent_blocks_align() {
        let realms = PersistentBlockCyclic.assign(&AssignCtx {
            aar: (0, 1000),
            n_aggregators: 4,
            alignment: Some(256),
            clients: &[],
        });
        // Block = ceil(250 -> 256); realm 1 starts at 256.
        assert!(realms[1].owns(256));
        assert!(!realms[1].owns(255));
    }

    #[test]
    fn balanced_load_equalizes_sparse_clusters() {
        use crate::meta::ClientAccess;
        // One client with all data clustered in [0, 100) of a [0, 1000) AAR.
        let dt = Datatype::bytes(100);
        let client = ClientAccess {
            view: flexio_types::FileView::new(0, Arc::new(flatten(&dt)), 1).unwrap(),
            data_start: 0,
            data_len: 100,
        };
        let clients = vec![client];
        let ctx = AssignCtx {
            aar: (0, 1000),
            n_aggregators: 2,
            alignment: None,
            clients: &clients,
        };
        let even = EvenAar.assign(&ctx);
        let bal = BalancedLoad.assign(&ctx);
        // Even split: realm 1 gets nothing useful.
        assert_eq!(even[1].owned_between(500, 1000), 500); // span, but
        // Balanced: the boundary lands inside the cluster (~byte 50).
        let b1_start = {
            let d = bal[1].data_lower(0);
            bal[1].segments(d, d + 1)[0].0
        };
        assert!((40..=60).contains(&b1_start), "boundary at {b1_start}");
    }
}
