//! MPE-style profiling: aggregate per-rank phase timings and counters into
//! a collective profile (§6.2 used MPE logging to attribute the new
//! implementation's overheads to datatype processing and buffer copies —
//! this module makes the same attribution a one-liner).

use flexio_sim::{Phase, Rank, Stats};

/// Aggregated view of one or more collective operations across all ranks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Number of ranks aggregated.
    pub ranks: usize,
    /// Max over ranks of virtual ns spent in datatype processing/copies.
    pub compute_ns_max: u64,
    /// Max over ranks of virtual ns spent in communication.
    pub comm_ns_max: u64,
    /// Max over ranks of virtual ns spent in file I/O.
    pub io_ns_max: u64,
    /// Total offset/length pairs evaluated across ranks.
    pub pairs_total: u64,
    /// Total buffer-copy bytes across ranks.
    pub memcpy_total: u64,
    /// Total bytes moved through intermediate staging buffers on the
    /// collective data path across ranks (the zero-copy ledger).
    pub bytes_copied_total: u64,
    /// Total messages sent across ranks.
    pub msgs_total: u64,
    /// Total payload bytes sent across ranks.
    pub bytes_sent_total: u64,
    /// Total virtual ns of in-flight I/O hidden behind exchange work
    /// across ranks (pipelined engine only; zero for the serial engine).
    pub overlap_saved_total_ns: u64,
    /// Total virtual ns of schedule derivation hidden behind the first
    /// cycle's exchange across ranks (depth ≥ 3 or auto only).
    pub derive_overlap_saved_total_ns: u64,
    /// Deepest pipeline any rank reached (high-water mark, not a sum).
    pub pipeline_depth_max: u64,
    /// Total file-system requests re-issued after transient faults across
    /// ranks (zero without fault injection).
    pub io_retries_total: u64,
    /// Total buffer cycles run while an aggregator straggled.
    pub degraded_cycles_total: u64,
    /// Total persistent-file-realm rebalances away from stragglers.
    pub realms_rebalanced_total: u64,
    /// Total crash-stopped peers agreed dead and recovered past across
    /// ranks (each survivor counts every dead peer of every recovery).
    pub ranks_recovered_total: u64,
}

impl Profile {
    /// Build from per-rank stats snapshots (e.g. collected by the caller
    /// after a `run(..)`).
    pub fn from_stats(stats: &[Stats]) -> Profile {
        let mut p = Profile { ranks: stats.len(), ..Profile::default() };
        for s in stats {
            p.compute_ns_max = p.compute_ns_max.max(s.phase_ns[Phase::Compute as usize]);
            p.comm_ns_max = p.comm_ns_max.max(s.phase_ns[Phase::Comm as usize]);
            p.io_ns_max = p.io_ns_max.max(s.phase_ns[Phase::Io as usize]);
            p.pairs_total += s.pairs_processed;
            p.memcpy_total += s.memcpy_bytes;
            p.bytes_copied_total += s.bytes_copied;
            p.msgs_total += s.msgs_sent;
            p.bytes_sent_total += s.bytes_sent;
            p.overlap_saved_total_ns += s.overlap_saved_ns;
            p.derive_overlap_saved_total_ns += s.derive_overlap_saved_ns;
            p.pipeline_depth_max = p.pipeline_depth_max.max(s.pipeline_depth_used);
            p.io_retries_total += s.io_retries;
            p.degraded_cycles_total += s.degraded_cycles;
            p.realms_rebalanced_total += s.realms_rebalanced;
            p.ranks_recovered_total += s.ranks_recovered;
        }
        p
    }

    /// Difference of two cumulative snapshots (per rank), for profiling a
    /// window of operations: `after[i] - before[i]`.
    pub fn delta(before: &[Stats], after: &[Stats]) -> Profile {
        assert_eq!(before.len(), after.len());
        let diffs: Vec<Stats> = before
            .iter()
            .zip(after)
            .map(|(b, a)| Stats {
                msgs_sent: a.msgs_sent - b.msgs_sent,
                bytes_sent: a.bytes_sent - b.bytes_sent,
                pairs_processed: a.pairs_processed - b.pairs_processed,
                memcpy_bytes: a.memcpy_bytes - b.memcpy_bytes,
                bytes_copied: a.bytes_copied - b.bytes_copied,
                schedule_cache_hits: a.schedule_cache_hits - b.schedule_cache_hits,
                schedule_cache_misses: a.schedule_cache_misses - b.schedule_cache_misses,
                schedule_cache_patches: a.schedule_cache_patches - b.schedule_cache_patches,
                flatten_cache_hits: a.flatten_cache_hits - b.flatten_cache_hits,
                flatten_cache_misses: a.flatten_cache_misses - b.flatten_cache_misses,
                overlap_saved_ns: a.overlap_saved_ns - b.overlap_saved_ns,
                derive_overlap_saved_ns: a.derive_overlap_saved_ns - b.derive_overlap_saved_ns,
                // A watermark, not an accumulator: the window's deepest
                // pipeline is whatever the cumulative snapshot reached.
                pipeline_depth_used: a.pipeline_depth_used,
                io_retries: a.io_retries - b.io_retries,
                degraded_cycles: a.degraded_cycles - b.degraded_cycles,
                realms_rebalanced: a.realms_rebalanced - b.realms_rebalanced,
                ranks_recovered: a.ranks_recovered - b.ranks_recovered,
                phase_ns: [
                    a.phase_ns[0] - b.phase_ns[0],
                    a.phase_ns[1] - b.phase_ns[1],
                    a.phase_ns[2] - b.phase_ns[2],
                ],
            })
            .collect();
        Profile::from_stats(&diffs)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "compute {:.2} ms | comm {:.2} ms | io {:.2} ms | {} pairs | {} copy bytes | {} msgs",
            self.compute_ns_max as f64 / 1e6,
            self.comm_ns_max as f64 / 1e6,
            self.io_ns_max as f64 / 1e6,
            self.pairs_total,
            self.memcpy_total,
            self.msgs_total,
        )
    }
}

/// Convenience: snapshot a rank's stats (alias for discoverability).
pub fn snapshot(rank: &Rank) -> Stats {
    rank.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_sim::{run, CostModel};

    #[test]
    fn aggregates_max_and_totals() {
        let stats = run(3, CostModel::default(), |rank| {
            rank.charge_pairs(100 * (rank.rank() as u64 + 1));
            rank.charge_memcpy(1000);
            if rank.rank() == 0 {
                rank.send(1, 1, &[0u8; 50]);
            } else if rank.rank() == 1 {
                let _ = rank.recv(0, 1);
            }
            rank.stats()
        });
        let p = Profile::from_stats(&stats);
        assert_eq!(p.ranks, 3);
        assert_eq!(p.pairs_total, 600);
        assert_eq!(p.memcpy_total, 3000);
        assert_eq!(p.msgs_total, 1);
        assert_eq!(p.bytes_sent_total, 50);
        // Max compute = rank 2's 300 pairs * 120ns + memcpy 500ns.
        assert_eq!(p.compute_ns_max, 300 * 120 + 500);
        assert!(p.comm_ns_max > 0);
    }

    #[test]
    fn delta_isolates_window() {
        let stats = run(2, CostModel::default(), |rank| {
            rank.charge_pairs(10);
            let before = rank.stats();
            rank.charge_pairs(5);
            let after = rank.stats();
            (before, after)
        });
        let before: Vec<_> = stats.iter().map(|(b, _)| b.clone()).collect();
        let after: Vec<_> = stats.iter().map(|(_, a)| a.clone()).collect();
        let p = Profile::delta(&before, &after);
        assert_eq!(p.pairs_total, 10); // 5 per rank
    }

    #[test]
    fn summary_formats() {
        let p = Profile::from_stats(&[]);
        assert!(p.summary().contains("compute"));
    }
}
