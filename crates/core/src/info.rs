//! MPI_Info-style hint parsing: accepts the ROMIO hint names real
//! applications already set, so configurations can be expressed as
//! `(key, value)` string pairs (e.g. read from a job script).
//!
//! Recognized keys:
//!
//! | key | effect |
//! |---|---|
//! | `cb_nodes` | number of I/O aggregators |
//! | `cb_buffer_size` | collective buffer bytes per cycle |
//! | `romio_cb_write` / `romio_cb_read` | `enable`/`disable` collective buffering (disable = independent I/O beneath `*_all`; we map it to engine selection) |
//! | `ind_wr_buffer_size` | data-sieve buffer bytes |
//! | `romio_ds_write` | `enable` = always sieve, `disable` = naive, `automatic` = conditional |
//! | `ds_extent_threshold` | conditional crossover bytes (flexio extension) |
//! | `striping_unit` | file-realm alignment bytes (the paper's new hint) |
//! | `flexio_pfr` | `enable` persistent file realms (the paper's PFR switch) |
//! | `flexio_engine` | `flexible` or `romio` |
//! | `flexio_exchange` | `nonblocking` or `alltoallw` |
//! | `flexio_schedule_cache` | `enable`/`disable` exchange-schedule caching (flexio extension, default enable) |
//! | `flexio_double_buffer` | `enable`/`disable` pipelined buffer cycles (exchange/I-O overlap; flexio extension, default enable) |
//! | `flexio_pipeline_depth` | `auto` or a positive integer: buffer cycles in flight at once (flexio extension, default auto; `1` = serial, `2` = classic double buffering) |
//! | `flexio_io_retries` | retries per failed file-system request before the collective agrees on an error (flexio extension, default 4, max 32) |
//! | `flexio_retry_backoff_us` | base microseconds of the first retry backoff, doubling per retry, charged in virtual time (flexio extension, default 100) |
//! | `flexio_zero_copy` | `enable`/`disable` the zero-copy datatype path: borrowed segment runs from user buffers through the exchange and the vectored PFS interface instead of packed staging copies (flexio extension, default enable; disable reproduces the packed path byte- and charge-identically) |
//! | `flexio_sieve_prefetch` | `enable`/`disable` prefetching the ROMIO engine's data-sieving RMW pre-read one pipeline cycle ahead (flexio extension, default disable) |
//! | `flexio_crash_recovery` | `enable`/`disable` surviving crash-stopped ranks: agree on the dead set, re-elect aggregators over survivors, replay the interrupted call (flexio extension, default disable; disabled, a crash terminates the collective with a collectively agreed error) |
//! | `flexio_watchdog_us` | failure-detection watchdog in virtual microseconds: heartbeat wait at collective boundaries before suspecting a peer dead (flexio extension, default 200000; must exceed per-cycle clock skew) |
//!
//! Unknown keys are ignored, as MPI requires.

use crate::error::{IoError, Result};
use crate::hints::{Engine, ExchangeMode, Hints, PipelineDepth};
use flexio_io::IoMethod;

/// Apply `(key, value)` info pairs on top of `base` hints.
pub fn hints_from_info(base: Hints, info: &[(&str, &str)]) -> Result<Hints> {
    let mut h = base;
    // Track sieve-buffer/threshold updates so ordering doesn't matter.
    let mut sieve_buffer: Option<usize> = None;
    let mut threshold: Option<u64> = None;
    let mut ds_mode: Option<&str> = None;
    for &(key, value) in info {
        match key {
            "cb_nodes" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| IoError::BadHints("cb_nodes must be an integer"))?;
                h.cb_nodes = Some(n);
            }
            "cb_buffer_size" => {
                h.cb_buffer_size = value
                    .parse()
                    .map_err(|_| IoError::BadHints("cb_buffer_size must be an integer"))?;
            }
            "ind_wr_buffer_size" | "ind_rd_buffer_size" => {
                sieve_buffer = Some(
                    value
                        .parse()
                        .map_err(|_| IoError::BadHints("sieve buffer must be an integer"))?,
                );
            }
            "romio_ds_write" | "romio_ds_read" => {
                ds_mode = Some(match value {
                    "enable" | "disable" | "automatic" => value,
                    _ => return Err(IoError::BadHints("romio_ds_* takes enable/disable/automatic")),
                });
            }
            "ds_extent_threshold" => {
                threshold = Some(
                    value
                        .parse()
                        .map_err(|_| IoError::BadHints("ds_extent_threshold must be an integer"))?,
                );
            }
            "striping_unit" => {
                let a: u64 = value
                    .parse()
                    .map_err(|_| IoError::BadHints("striping_unit must be an integer"))?;
                h.fr_alignment = Some(a);
            }
            "flexio_pfr" => {
                h.persistent_file_realms = match value {
                    "enable" | "true" => true,
                    "disable" | "false" => false,
                    _ => return Err(IoError::BadHints("flexio_pfr takes enable/disable")),
                };
            }
            "flexio_engine" => {
                h.engine = match value {
                    "flexible" | "new" => Engine::Flexible,
                    "romio" | "old" => Engine::Romio,
                    _ => return Err(IoError::BadHints("flexio_engine takes flexible/romio")),
                };
            }
            "flexio_exchange" => {
                h.exchange = match value {
                    "nonblocking" => ExchangeMode::Nonblocking,
                    "alltoallw" => ExchangeMode::Alltoallw,
                    _ => return Err(IoError::BadHints("flexio_exchange takes nonblocking/alltoallw")),
                };
            }
            "flexio_schedule_cache" => {
                h.schedule_cache = match value {
                    "enable" | "true" => true,
                    "disable" | "false" => false,
                    _ => {
                        return Err(IoError::BadHints("flexio_schedule_cache takes enable/disable"))
                    }
                };
            }
            "flexio_double_buffer" => {
                h.double_buffer = match value {
                    "enable" | "true" => true,
                    "disable" | "false" => false,
                    _ => {
                        return Err(IoError::BadHints("flexio_double_buffer takes enable/disable"))
                    }
                };
            }
            "flexio_pipeline_depth" => {
                h.pipeline_depth = match value {
                    "auto" => PipelineDepth::Auto,
                    _ => PipelineDepth::Fixed(value.parse().map_err(|_| {
                        IoError::BadHints("flexio_pipeline_depth takes auto or a positive integer")
                    })?),
                };
            }
            "flexio_zero_copy" => {
                h.zero_copy = match value {
                    "enable" | "true" => true,
                    "disable" | "false" => false,
                    _ => return Err(IoError::BadHints("flexio_zero_copy takes enable/disable")),
                };
            }
            "flexio_sieve_prefetch" => {
                h.sieve_prefetch = match value {
                    "enable" | "true" => true,
                    "disable" | "false" => false,
                    _ => {
                        return Err(IoError::BadHints("flexio_sieve_prefetch takes enable/disable"))
                    }
                };
            }
            "flexio_crash_recovery" => {
                h.crash_recovery = match value {
                    "enable" | "true" => true,
                    "disable" | "false" => false,
                    _ => {
                        return Err(IoError::BadHints("flexio_crash_recovery takes enable/disable"))
                    }
                };
            }
            "flexio_watchdog_us" => {
                h.watchdog_us = value
                    .parse()
                    .map_err(|_| IoError::BadHints("flexio_watchdog_us must be an integer"))?;
            }
            "flexio_io_retries" => {
                h.io_retries = value
                    .parse()
                    .map_err(|_| IoError::BadHints("flexio_io_retries must be an integer"))?;
            }
            "flexio_retry_backoff_us" => {
                h.retry_backoff_us = value.parse().map_err(|_| {
                    IoError::BadHints("flexio_retry_backoff_us must be an integer")
                })?;
            }
            _ => {} // unknown hints are ignored per the MPI standard
        }
    }
    // Resolve the data-sieving method from the pieces collected.
    let cur_buffer = match h.io_method {
        IoMethod::DataSieve { buffer } => buffer,
        IoMethod::Conditional { sieve_buffer, .. } => sieve_buffer,
        IoMethod::Naive => 512 << 10,
    };
    let cur_threshold = match h.io_method {
        IoMethod::Conditional { extent_threshold, .. } => extent_threshold,
        _ => 16 << 10,
    };
    let buffer = sieve_buffer.unwrap_or(cur_buffer);
    let extent_threshold = threshold.unwrap_or(cur_threshold);
    h.io_method = match ds_mode {
        Some("enable") => IoMethod::DataSieve { buffer },
        Some("disable") => IoMethod::Naive,
        Some("automatic") => IoMethod::Conditional { extent_threshold, sieve_buffer: buffer },
        Some(_) => unreachable!(),
        None => match h.io_method {
            IoMethod::DataSieve { .. } => IoMethod::DataSieve { buffer },
            IoMethod::Naive => IoMethod::Naive,
            IoMethod::Conditional { .. } => {
                IoMethod::Conditional { extent_threshold, sieve_buffer: buffer }
            }
        },
    };
    h.validate()?;
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_romio_hints() {
        let h = hints_from_info(
            Hints::default(),
            &[
                ("cb_nodes", "8"),
                ("cb_buffer_size", "1048576"),
                ("striping_unit", "2097152"),
                ("romio_ds_write", "automatic"),
                ("ind_wr_buffer_size", "262144"),
            ],
        )
        .unwrap();
        assert_eq!(h.cb_nodes, Some(8));
        assert_eq!(h.cb_buffer_size, 1 << 20);
        assert_eq!(h.fr_alignment, Some(2 << 20));
        assert_eq!(
            h.io_method,
            IoMethod::Conditional { extent_threshold: 16 << 10, sieve_buffer: 256 << 10 }
        );
    }

    #[test]
    fn pfr_and_engine_switches() {
        let h = hints_from_info(
            Hints::default(),
            &[("flexio_pfr", "enable"), ("flexio_engine", "romio"), ("flexio_exchange", "alltoallw")],
        )
        .unwrap();
        assert!(h.persistent_file_realms);
        assert_eq!(h.engine, Engine::Romio);
        assert_eq!(h.exchange, ExchangeMode::Alltoallw);
    }

    #[test]
    fn schedule_cache_switch() {
        assert!(Hints::default().schedule_cache);
        let h = hints_from_info(Hints::default(), &[("flexio_schedule_cache", "disable")]).unwrap();
        assert!(!h.schedule_cache);
        let h = hints_from_info(h, &[("flexio_schedule_cache", "enable")]).unwrap();
        assert!(h.schedule_cache);
        assert!(hints_from_info(Hints::default(), &[("flexio_schedule_cache", "maybe")]).is_err());
    }

    #[test]
    fn double_buffer_switch() {
        assert!(Hints::default().double_buffer);
        let h = hints_from_info(Hints::default(), &[("flexio_double_buffer", "disable")]).unwrap();
        assert!(!h.double_buffer);
        let h = hints_from_info(h, &[("flexio_double_buffer", "enable")]).unwrap();
        assert!(h.double_buffer);
        assert!(hints_from_info(Hints::default(), &[("flexio_double_buffer", "maybe")]).is_err());
    }

    #[test]
    fn pipeline_depth_key() {
        assert_eq!(Hints::default().pipeline_depth, PipelineDepth::Auto);
        let h = hints_from_info(Hints::default(), &[("flexio_pipeline_depth", "4")]).unwrap();
        assert_eq!(h.pipeline_depth, PipelineDepth::Fixed(4));
        let h = hints_from_info(h, &[("flexio_pipeline_depth", "auto")]).unwrap();
        assert_eq!(h.pipeline_depth, PipelineDepth::Auto);
        // Non-numeric values other than "auto" are descriptive errors, and
        // 0 is caught by Hints::validate at the end of parsing.
        assert!(hints_from_info(Hints::default(), &[("flexio_pipeline_depth", "fast")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("flexio_pipeline_depth", "0")]).is_err());
    }

    #[test]
    fn retry_keys() {
        assert_eq!(Hints::default().io_retries, 4);
        assert_eq!(Hints::default().retry_backoff_us, 100);
        let h = hints_from_info(
            Hints::default(),
            &[("flexio_io_retries", "7"), ("flexio_retry_backoff_us", "250")],
        )
        .unwrap();
        assert_eq!(h.io_retries, 7);
        assert_eq!(h.retry_backoff_us, 250);
        let h = hints_from_info(h, &[("flexio_io_retries", "0")]).unwrap();
        assert_eq!(h.io_retries, 0);
        assert!(hints_from_info(Hints::default(), &[("flexio_io_retries", "lots")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("flexio_retry_backoff_us", "-1")]).is_err());
        // Hints::validate bounds the doubling backoff at the end of parsing.
        assert!(hints_from_info(Hints::default(), &[("flexio_io_retries", "33")]).is_err());
    }

    #[test]
    fn zero_copy_switch() {
        assert!(Hints::default().zero_copy);
        let h = hints_from_info(Hints::default(), &[("flexio_zero_copy", "disable")]).unwrap();
        assert!(!h.zero_copy);
        let h = hints_from_info(h, &[("flexio_zero_copy", "enable")]).unwrap();
        assert!(h.zero_copy);
        assert!(hints_from_info(Hints::default(), &[("flexio_zero_copy", "mostly")]).is_err());
    }

    #[test]
    fn sieve_prefetch_switch() {
        assert!(!Hints::default().sieve_prefetch);
        let h = hints_from_info(Hints::default(), &[("flexio_sieve_prefetch", "enable")]).unwrap();
        assert!(h.sieve_prefetch);
        let h = hints_from_info(h, &[("flexio_sieve_prefetch", "disable")]).unwrap();
        assert!(!h.sieve_prefetch);
        assert!(hints_from_info(Hints::default(), &[("flexio_sieve_prefetch", "soon")]).is_err());
    }

    #[test]
    fn crash_recovery_keys() {
        assert!(!Hints::default().crash_recovery);
        let h = hints_from_info(
            Hints::default(),
            &[("flexio_crash_recovery", "enable"), ("flexio_watchdog_us", "5000")],
        )
        .unwrap();
        assert!(h.crash_recovery);
        assert_eq!(h.watchdog_us, 5000);
        let h = hints_from_info(h, &[("flexio_crash_recovery", "disable")]).unwrap();
        assert!(!h.crash_recovery);
        assert!(hints_from_info(Hints::default(), &[("flexio_crash_recovery", "maybe")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("flexio_watchdog_us", "soon")]).is_err());
        // Zero watchdog is caught by Hints::validate at the end of parsing.
        assert!(hints_from_info(Hints::default(), &[("flexio_watchdog_us", "0")]).is_err());
    }

    #[test]
    fn ds_enable_disable() {
        let h = hints_from_info(Hints::default(), &[("romio_ds_write", "enable")]).unwrap();
        assert!(matches!(h.io_method, IoMethod::DataSieve { .. }));
        let h = hints_from_info(Hints::default(), &[("romio_ds_write", "disable")]).unwrap();
        assert_eq!(h.io_method, IoMethod::Naive);
    }

    #[test]
    fn order_independent_sieve_settings() {
        let a = hints_from_info(
            Hints::default(),
            &[("ind_wr_buffer_size", "1024"), ("romio_ds_write", "enable")],
        )
        .unwrap();
        let b = hints_from_info(
            Hints::default(),
            &[("romio_ds_write", "enable"), ("ind_wr_buffer_size", "1024")],
        )
        .unwrap();
        assert_eq!(a.io_method, b.io_method);
        assert_eq!(a.io_method, IoMethod::DataSieve { buffer: 1024 });
    }

    #[test]
    fn unknown_keys_ignored() {
        let h = hints_from_info(Hints::default(), &[("some_vendor_hint", "whatever")]).unwrap();
        assert_eq!(h.cb_buffer_size, Hints::default().cb_buffer_size);
    }

    #[test]
    fn bad_values_rejected() {
        assert!(hints_from_info(Hints::default(), &[("cb_nodes", "many")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("romio_ds_write", "sometimes")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("cb_buffer_size", "0")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("striping_unit", "0")]).is_err());
    }

    #[test]
    fn malformed_numbers_are_errors_not_panics() {
        // Every numeric key turns a parse failure into a descriptive
        // BadHints error: non-numeric, negative, and unit-suffixed forms.
        for (key, val) in [
            ("cb_buffer_size", "big"),
            ("cb_buffer_size", "-4"),
            ("cb_buffer_size", "64k"),
            ("cb_nodes", "-1"),
            ("cb_nodes", "3.5"),
            ("ind_wr_buffer_size", "1e6"),
            ("ind_rd_buffer_size", ""),
            ("ds_extent_threshold", "16K"),
            ("striping_unit", "2MB"),
            ("flexio_io_retries", "∞"),
            ("flexio_retry_backoff_us", "100us"),
            ("flexio_pipeline_depth", "-2"),
        ] {
            let r = hints_from_info(Hints::default(), &[(key, val)]);
            assert!(
                matches!(r, Err(IoError::BadHints(_))),
                "{key}={val}: expected BadHints, got {r:?}"
            );
        }
        // Bad enum-ish values likewise.
        assert!(hints_from_info(Hints::default(), &[("flexio_engine", "turbo")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("flexio_pfr", "on")]).is_err());
        assert!(hints_from_info(Hints::default(), &[("flexio_exchange", "rdma")]).is_err());
    }

    #[test]
    fn unknown_flexio_prefixed_keys_are_ignored_too() {
        // The ignore-unknown rule is namespace-blind: a newer writer's
        // flexio_* hints must not break an older reader.
        let h = hints_from_info(
            Hints::default(),
            &[("flexio_future_knob", "whatever"), ("cb_nodes", "3")],
        )
        .unwrap();
        assert_eq!(h.cb_nodes, Some(3));
        assert_eq!(h.cb_buffer_size, Hints::default().cb_buffer_size);
    }

    #[test]
    fn rejected_info_applies_nothing() {
        // An error mid-list must not half-apply: callers keep their old
        // hints object, and the returned Result carries no partial state.
        let r = hints_from_info(Hints::default(), &[("cb_nodes", "3"), ("cb_buffer_size", "x")]);
        assert!(r.is_err());
    }
}
