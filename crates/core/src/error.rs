//! Error types for the collective I/O layer.

use flexio_types::ViewError;

/// Errors surfaced by the MPI-IO-like API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Invalid file view (bad filetype).
    View(ViewError),
    /// The buffer is too small for `count` instances of the memory type.
    BufferTooSmall {
        /// Bytes required.
        needed: u64,
        /// Bytes provided.
        got: u64,
    },
    /// A hint combination is invalid.
    BadHints(&'static str),
}

impl From<ViewError> for IoError {
    fn from(e: ViewError) -> Self {
        IoError::View(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::View(e) => write!(f, "invalid file view: {e}"),
            IoError::BufferTooSmall { needed, got } => {
                write!(f, "buffer too small: need {needed} bytes, got {got}")
            }
            IoError::BadHints(s) => write!(f, "bad hints: {s}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::BufferTooSmall { needed: 10, got: 5 };
        assert!(e.to_string().contains("need 10"));
        let e = IoError::View(ViewError::EmptyFiletype);
        assert!(e.to_string().contains("filetype"));
        assert!(IoError::BadHints("x").to_string().contains("x"));
    }
}
