//! Error types for the collective I/O layer.

use flexio_pfs::PfsError;
use flexio_types::ViewError;

/// Errors surfaced by the MPI-IO-like API.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm, so
/// future failure classes (new fault kinds, quota errors, …) are not a
/// breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// Invalid file view (bad filetype).
    View(ViewError),
    /// The buffer is too small for `count` instances of the memory type.
    BufferTooSmall {
        /// Bytes required.
        needed: u64,
        /// Bytes provided.
        got: u64,
    },
    /// A hint combination is invalid.
    BadHints(&'static str),
    /// A transient PFS fault persisted through every configured retry
    /// (`flexio_io_retries`); collectively agreed, so every rank of the
    /// call returns the same error.
    Transient(PfsError),
    /// A PFS fault on a path with no retry loop (independent I/O,
    /// close/sync flushes).
    Pfs(PfsError),
    /// One or more ranks crash-stopped during the collective and
    /// `flexio_crash_recovery` is disabled (or the caller is observing
    /// the failure before replay). Carries the world ranks every
    /// survivor agreed are dead — the same list on every survivor.
    RanksFailed(Vec<usize>),
}

impl From<ViewError> for IoError {
    fn from(e: ViewError) -> Self {
        IoError::View(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::View(e) => write!(f, "invalid file view: {e}"),
            IoError::BufferTooSmall { needed, got } => {
                write!(f, "buffer too small: need {needed} bytes, got {got}")
            }
            IoError::BadHints(s) => write!(f, "bad hints: {s}"),
            IoError::Transient(e) => write!(f, "retries exhausted: {e}"),
            IoError::Pfs(e) => write!(f, "file system error: {e}"),
            IoError::RanksFailed(dead) => {
                write!(f, "{} rank(s) crash-stopped: {dead:?}", dead.len())
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Transient(e) | IoError::Pfs(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::BufferTooSmall { needed: 10, got: 5 };
        assert!(e.to_string().contains("need 10"));
        let e = IoError::View(ViewError::EmptyFiletype);
        assert!(e.to_string().contains("filetype"));
        assert!(IoError::BadHints("x").to_string().contains("x"));
        let pe = PfsError { kind: flexio_pfs::PfsErrorKind::TransientOst, ost: 2, at: 7 };
        assert!(IoError::Transient(pe).to_string().contains("retries exhausted"));
        assert!(IoError::Pfs(pe).to_string().contains("OST 2"));
    }

    #[test]
    fn source_exposes_wrapped_pfs_error() {
        use std::error::Error;
        let pe = PfsError { kind: flexio_pfs::PfsErrorKind::TransientOst, ost: 1, at: 9 };
        let e = IoError::Transient(pe);
        let src = e.source().expect("wrapped error must be the source");
        assert_eq!(src.downcast_ref::<PfsError>(), Some(&pe));
        assert!(IoError::BadHints("x").source().is_none());
    }

    #[test]
    fn ranks_failed_lists_dead_ranks() {
        use std::error::Error;
        let e = IoError::RanksFailed(vec![1, 3]);
        let s = e.to_string();
        assert!(s.contains("2 rank(s)") && s.contains("[1, 3]"), "{s}");
        assert!(e.source().is_none(), "no underlying PFS fault for a crash");
    }
}
