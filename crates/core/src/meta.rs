//! Client access metadata: what each rank tells the aggregators.
//!
//! The flexible engine exchanges *flattened filetypes* (`D` pairs, §5.3)
//! plus the scalar access parameters, so any rank can reconstruct any other
//! rank's file view and re-derive its offset/length stream locally.

use flexio_types::{FileView, FlatType};
use std::sync::Arc;

/// One rank's collective access, as shipped over the wire.
#[derive(Debug, Clone)]
pub struct ClientAccess {
    /// The client's file view (displacement + flattened filetype).
    pub view: FileView,
    /// Starting position in the view's data space, bytes.
    pub data_start: u64,
    /// Access length in bytes (0 = does not participate).
    pub data_len: u64,
}

impl ClientAccess {
    /// First and one-past-last file offsets touched, or `None` for an
    /// empty access.
    pub fn file_range(&self) -> Option<(u64, u64)> {
        if self.data_len == 0 {
            return None;
        }
        Some(self.view.access_range(self.data_start, self.data_len))
    }

    /// Exclusive end of the access in data space.
    pub fn data_end(&self) -> u64 {
        self.data_start + self.data_len
    }

    /// Serialize for the metadata exchange.
    pub fn to_wire(&self) -> Vec<u8> {
        let ft = self.view.ftype().to_wire();
        let mut out = Vec::with_capacity(32 + ft.len());
        out.extend_from_slice(&self.view.disp().to_le_bytes());
        out.extend_from_slice(&self.view.etype_size().to_le_bytes());
        out.extend_from_slice(&self.data_start.to_le_bytes());
        out.extend_from_slice(&self.data_len.to_le_bytes());
        out.extend_from_slice(&ft);
        out
    }

    /// Deserialize from [`ClientAccess::to_wire`] output.
    pub fn from_wire(buf: &[u8]) -> Self {
        let rd = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().unwrap());
        let disp = rd(0);
        let etype = rd(8);
        let data_start = rd(16);
        let data_len = rd(24);
        let ftype = Arc::new(FlatType::from_wire(&buf[32..]));
        ClientAccess {
            view: FileView::new(disp, ftype, etype).expect("wire filetype invalid"),
            data_start,
            data_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_types::{flatten, Datatype};

    fn sample() -> ClientAccess {
        let dt = Datatype::resized(0, 192, Datatype::bytes(64));
        ClientAccess {
            view: FileView::new(1000, Arc::new(flatten(&dt)), 1).unwrap(),
            data_start: 64,
            data_len: 640,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let a = sample();
        let b = ClientAccess::from_wire(&a.to_wire());
        assert_eq!(b.view.disp(), 1000);
        assert_eq!(b.view.etype_size(), 1);
        assert_eq!(b.data_start, 64);
        assert_eq!(b.data_len, 640);
        assert_eq!(b.view.ftype(), a.view.ftype());
    }

    #[test]
    fn file_range_spans_access() {
        let a = sample();
        // data 64 begins in tile 1 (tile size 64): file = 1000 + 192 = 1192.
        // data end 703: tile 10, within 63: file 1000 + 10*192 + 63 = 2983.
        assert_eq!(a.file_range(), Some((1192, 2984)));
    }

    #[test]
    fn empty_access_no_range() {
        let mut a = sample();
        a.data_len = 0;
        assert_eq!(a.file_range(), None);
    }
}
