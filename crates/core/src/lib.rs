//! # flexio-core — a flexible MPI collective I/O implementation
//!
//! Reproduction of *"A New Flexible MPI Collective I/O Implementation"*
//! (IEEE Cluster 2006). The crate provides an MPI-IO-like [`MpiFile`] over
//! the simulated MPI runtime (`flexio-sim`) and parallel file system
//! (`flexio-pfs`), with **two interchangeable two-phase engines**:
//!
//! * [`hints::Engine::Flexible`] — the paper's contribution: file realms
//!   described by datatypes with pluggable [`realm::RealmAssigner`]s
//!   (even, aligned, persistent, load-balanced, or custom), flattened-
//!   filetype metadata exchange (`D` pairs instead of `M`), a collective
//!   buffer decoupled from the sieve buffer so the buffer-to-file method
//!   ([`flexio_io::IoMethod`]) can change every cycle, and selectable
//!   exchange flavour (non-blocking vs alltoallw).
//! * [`hints::Engine::Romio`] — the original ROMIO code path as the
//!   evaluation baseline: even aggregate-access-region split, fully
//!   flattened access metadata, integrated data sieving.
//!
//! Both engines produce byte-identical files; they differ in metadata
//! volume, datatype-processing work, buffer copies, and the file-system
//! access patterns they generate — which is exactly what the paper's
//! evaluation (Figures 4, 5 and 7) measures.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod file;
pub mod hints;
pub mod info;
pub mod meta;
pub mod profile;
pub mod realm;

pub use error::{IoError, Result};
pub use file::MpiFile;
pub use hints::{aggregator_ranks, Engine, ExchangeMode, Hints, PipelineDepth};
pub use info::hints_from_info;
pub use meta::ClientAccess;
pub use profile::Profile;
pub use realm::{AssignCtx, BalancedLoad, EvenAar, FileRealm, PersistentBlockCyclic, RealmAssigner};

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_pfs::{Pfs, PfsConfig, PfsCostModel};
    use flexio_sim::{run, CostModel};
    use flexio_types::Datatype;
    use std::sync::Arc;

    fn small_pfs() -> Arc<Pfs> {
        Pfs::new(PfsConfig {
            n_osts: 4,
            stripe_size: 256,
            page_size: 64,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::free(),
        })
    }

    /// Interleaved block write: rank r owns blocks r, r+P, r+2P, ...
    fn interleaved_write(engine: Engine, nprocs: usize, cb_nodes: Option<usize>) -> Vec<u8> {
        let pfs = small_pfs();
        let block = 48u64;
        let nblocks = 7u64;
        {
            let pfs = Arc::clone(&pfs);
            run(nprocs, CostModel::free(), move |rank| {
                let hints = Hints { engine, cb_nodes, cb_buffer_size: 128, ..Hints::default() };
                let mut f = MpiFile::open(rank, &pfs, "f", hints).unwrap();
                let bt = Datatype::bytes(block);
                let ft = Datatype::resized(0, nprocs as u64 * block, bt.clone());
                f.set_view(rank.rank() as u64 * block, &bt, &ft).unwrap();
                let data: Vec<u8> = (0..block * nblocks)
                    .map(|i| (rank.rank() as u64 * 100 + i % 97) as u8)
                    .collect();
                f.write_all(&data, &Datatype::bytes(block * nblocks), 1).unwrap();
                f.close().unwrap();
            });
        }
        let h = pfs.open("f", 999);
        let size = h.size();
        let mut out = vec![0u8; size as usize];
        h.read(0, 0, &mut out).unwrap();
        out
    }

    fn expected_interleaved(nprocs: usize) -> Vec<u8> {
        let block = 48u64;
        let nblocks = 7u64;
        let mut out = vec![0u8; (nprocs as u64 * block * nblocks) as usize];
        for r in 0..nprocs as u64 {
            for b in 0..nblocks {
                for i in 0..block {
                    let file_off = (b * nprocs as u64 + r) * block + i;
                    let data_i = b * block + i;
                    out[file_off as usize] = (r * 100 + data_i % 97) as u8;
                }
            }
        }
        out
    }

    #[test]
    fn flexible_interleaved_write_correct() {
        assert_eq!(interleaved_write(Engine::Flexible, 4, None), expected_interleaved(4));
    }

    #[test]
    fn romio_interleaved_write_correct() {
        assert_eq!(interleaved_write(Engine::Romio, 4, None), expected_interleaved(4));
    }

    #[test]
    fn engines_agree_with_fewer_aggregators() {
        let a = interleaved_write(Engine::Flexible, 6, Some(2));
        let b = interleaved_write(Engine::Romio, 6, Some(2));
        assert_eq!(a, b);
        assert_eq!(a, expected_interleaved(6));
    }

    #[test]
    fn single_rank_collective() {
        assert_eq!(interleaved_write(Engine::Flexible, 1, None), expected_interleaved(1));
    }

    fn roundtrip(engine: Engine, exchange: ExchangeMode) {
        let pfs = small_pfs();
        let outs = run(3, CostModel::free(), move |rank| {
            let hints = Hints {
                engine,
                exchange,
                cb_buffer_size: 96,
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "f", hints).unwrap();
            let bt = Datatype::bytes(16);
            let ft = Datatype::resized(0, 48, bt.clone());
            f.set_view(rank.rank() as u64 * 16, &bt, &ft).unwrap();
            let data: Vec<u8> = (0..160u32).map(|i| (rank.rank() * 80 + i as usize) as u8).collect();
            f.write_all(&data, &Datatype::bytes(160), 1).unwrap();
            let mut back = vec![0u8; 160];
            f.read_all(&mut back, &Datatype::bytes(160), 1).unwrap();
            f.close().unwrap();
            (data, back)
        });
        for (data, back) in outs {
            assert_eq!(data, back);
        }
    }

    #[test]
    fn write_then_read_all_flexible() {
        roundtrip(Engine::Flexible, ExchangeMode::Nonblocking);
    }

    #[test]
    fn write_then_read_all_alltoallw() {
        roundtrip(Engine::Flexible, ExchangeMode::Alltoallw);
    }

    #[test]
    fn write_then_read_all_romio() {
        roundtrip(Engine::Romio, ExchangeMode::Nonblocking);
    }

    #[test]
    fn noncontig_memory_type() {
        // Memory: 8 data bytes with a 8-byte hole between (extent 16).
        let pfs = small_pfs();
        let outs = run(2, CostModel::free(), move |rank| {
            let mut f = MpiFile::open(rank, &pfs, "f", Hints::default()).unwrap();
            let bt = Datatype::bytes(8);
            let ft = Datatype::resized(0, 16, bt.clone());
            f.set_view(rank.rank() as u64 * 8, &bt, &ft).unwrap();
            let memtype = Datatype::resized(0, 16, Datatype::bytes(8));
            let buf: Vec<u8> = (0..64u32).map(|i| (rank.rank() * 50 + i as usize) as u8).collect();
            f.write_all(&buf, &memtype, 4).unwrap(); // 32 data bytes
            let mut back = vec![0u8; 64];
            f.read_all(&mut back, &memtype, 4).unwrap();
            f.close().unwrap();
            (buf, back)
        });
        for (buf, back) in outs {
            // Only the data regions (every other 8 bytes) must match.
            for inst in 0..4 {
                let lo = inst * 16;
                assert_eq!(buf[lo..lo + 8], back[lo..lo + 8], "instance {inst}");
            }
        }
    }

    #[test]
    fn write_all_at_offset() {
        let pfs = small_pfs();
        let pfs2 = Arc::clone(&pfs);
        run(2, CostModel::free(), move |rank| {
            let mut f = MpiFile::open(rank, &pfs2, "f", Hints::default()).unwrap();
            let bt = Datatype::bytes(4);
            let ft = Datatype::resized(0, 8, bt.clone());
            f.set_view(rank.rank() as u64 * 4, &bt, &ft).unwrap();
            // Write 8 bytes at etype offset 2 (= data byte 8).
            let data = vec![rank.rank() as u8 + 1; 8];
            f.write_all_at(2, &data, &Datatype::bytes(8), 1).unwrap();
            f.close().unwrap();
        });
        let h = pfs.open("f", 9);
        let mut out = vec![0u8; h.size() as usize];
        h.read(0, 0, &mut out).unwrap();
        // Rank 0 data bytes 8..16 are file offsets 16..20 and 24..28;
        // rank 1 shifted by 4.
        assert_eq!(&out[16..20], &[1, 1, 1, 1]);
        assert_eq!(&out[20..24], &[2, 2, 2, 2]);
        assert_eq!(&out[24..28], &[1, 1, 1, 1]);
        assert_eq!(&out[28..32], &[2, 2, 2, 2]);
        assert!(out[..16].iter().all(|&b| b == 0));
    }

    #[test]
    fn independent_write_read() {
        let pfs = small_pfs();
        run(1, CostModel::free(), move |rank| {
            let mut f = MpiFile::open(rank, &pfs, "f", Hints::default()).unwrap();
            let bt = Datatype::bytes(4);
            let ft = Datatype::resized(0, 12, bt.clone());
            f.set_view(0, &bt, &ft).unwrap();
            let data: Vec<u8> = (1..=20).collect();
            f.write_at(0, &data, &Datatype::bytes(20), 1).unwrap();
            let mut back = vec![0u8; 20];
            f.read_at(0, &mut back, &Datatype::bytes(20), 1).unwrap();
            assert_eq!(back, data);
            // Offset read.
            let mut four = vec![0u8; 4];
            f.read_at(1, &mut four, &Datatype::bytes(4), 1).unwrap();
            assert_eq!(four, vec![5, 6, 7, 8]);
            f.close().unwrap();
        });
    }

    #[test]
    fn pfr_realms_stable_across_calls() {
        let pfs = small_pfs();
        let outs = run(2, CostModel::free(), move |rank| {
            let hints = Hints {
                persistent_file_realms: true,
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "f", hints).unwrap();
            let bt = Datatype::bytes(8);
            let ft = Datatype::resized(0, 16, bt.clone());
            f.set_view(rank.rank() as u64 * 8, &bt, &ft).unwrap();
            let mut sizes = Vec::new();
            for step in 0..3u8 {
                let data = vec![step + 1; 32];
                f.write_all_at(step as u64 * 4, &data, &Datatype::bytes(32), 1).unwrap();
                sizes.push(f.size());
            }
            let mut back = vec![0u8; 32];
            f.read_all_at(0, &mut back, &Datatype::bytes(32), 1).unwrap();
            f.close().unwrap();
            back
        });
        for back in outs {
            assert_eq!(back, vec![1u8; 32]);
        }
    }

    #[test]
    fn buffer_too_small_rejected() {
        let pfs = small_pfs();
        run(1, CostModel::free(), move |rank| {
            let f = MpiFile::open(rank, &pfs, "f", Hints::default()).unwrap();
            let err = f.write_all(&[0u8; 4], &Datatype::bytes(8), 1).unwrap_err();
            assert!(matches!(err, IoError::BufferTooSmall { needed: 8, got: 4 }));
        });
    }

    #[test]
    fn zero_count_participates() {
        // Rank 1 writes nothing but still participates collectively.
        let pfs = small_pfs();
        let pfs2 = Arc::clone(&pfs);
        run(2, CostModel::free(), move |rank| {
            let mut f = MpiFile::open(rank, &pfs2, "f", Hints::default()).unwrap();
            let bt = Datatype::bytes(4);
            f.set_view(0, &bt, &bt).unwrap();
            if rank.rank() == 0 {
                f.write_all(&[7u8; 12], &Datatype::bytes(12), 1).unwrap();
            } else {
                f.write_all(&[], &Datatype::bytes(1), 0).unwrap();
            }
            f.close().unwrap();
        });
        let h = pfs.open("f", 9);
        assert_eq!(h.size(), 12);
    }

    #[test]
    fn custom_realm_assigner_plugs_in() {
        // A deliberately skewed assigner: first aggregator owns everything.
        #[derive(Debug)]
        struct AllToFirst;
        impl RealmAssigner for AllToFirst {
            fn assign(&self, ctx: &AssignCtx<'_>) -> Vec<FileRealm> {
                let mut v = vec![FileRealm::contiguous(ctx.aar.0, ctx.aar.1)];
                for _ in 1..ctx.n_aggregators {
                    v.push(FileRealm::contiguous(ctx.aar.1, ctx.aar.1));
                }
                v
            }
            fn name(&self) -> &'static str {
                "all-to-first"
            }
        }
        let pfs = small_pfs();
        let pfs2 = Arc::clone(&pfs);
        run(3, CostModel::free(), move |rank| {
            let hints = Hints {
                realm_assigner: Some(Arc::new(AllToFirst)),
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs2, "f", hints).unwrap();
            let bt = Datatype::bytes(8);
            let ft = Datatype::resized(0, 24, bt.clone());
            f.set_view(rank.rank() as u64 * 8, &bt, &ft).unwrap();
            let data = vec![rank.rank() as u8 + 1; 24];
            f.write_all(&data, &Datatype::bytes(24), 1).unwrap();
            f.close().unwrap();
        });
        let h = pfs.open("f", 9);
        let mut out = vec![0u8; 72];
        h.read(0, 0, &mut out).unwrap();
        for blk in 0..9 {
            let want = (blk % 3 + 1) as u8;
            assert!(
                out[blk * 8..blk * 8 + 8].iter().all(|&b| b == want),
                "block {blk} wrong"
            );
        }
    }

    #[test]
    fn timing_flexible_vector_costs_more_pairs_than_struct() {
        // The Fig. 4 mechanism in miniature: an enumerated filetype makes
        // clients/aggregators evaluate many more offset/length pairs.
        let pfs = small_pfs();
        let nregions = 256u64;
        let region = 8u64;
        let spacing = 8u64;
        let pairs_for = |succinct: bool| {
            let pfs = Arc::clone(&pfs);
            let stats = run(4, CostModel::default(), move |rank| {
                let hints = Hints { cb_nodes: Some(2), ..Hints::default() };
                let mut f =
                    MpiFile::open(rank, &pfs, &format!("f{succinct}"), hints).unwrap();
                let bt = Datatype::bytes(region);
                let stride = (region + spacing) * 4;
                let ft = if succinct {
                    Datatype::resized(0, stride, bt.clone())
                } else {
                    Datatype::vector(nregions, 1, (stride / region) as i64, bt.clone())
                };
                f.set_view(rank.rank() as u64 * (region + spacing), &bt, &ft).unwrap();
                let total = nregions * region;
                let data = vec![rank.rank() as u8; total as usize];
                f.write_all(&data, &Datatype::bytes(total), 1).unwrap();
                f.close().unwrap();
                rank.stats().pairs_processed
            });
            stats.iter().sum::<u64>()
        };
        let succinct = pairs_for(true);
        let enumerated = pairs_for(false);
        assert!(
            enumerated > succinct * 2,
            "enumerated {enumerated} should dwarf succinct {succinct}"
        );
    }
}
