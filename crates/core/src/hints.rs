//! MPI-Info-style hints controlling the collective I/O machinery.

use crate::realm::RealmAssigner;
use flexio_io::IoMethod;
use std::sync::Arc;

/// Which two-phase engine services collective calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The paper's new flexible implementation: datatype-described file
    /// realms, flattened-filetype metadata exchange, pluggable buffer-to-
    /// file methods per cycle.
    #[default]
    Flexible,
    /// Faithful re-implementation of the original ROMIO code path: even
    /// aggregate-access-region partition, fully flattened access metadata,
    /// data sieving integrated with the collective buffer.
    Romio,
}

/// How the data exchange phase moves bytes (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Sparse non-blocking sends/receives, overlapped with address
    /// computation; packing/assembly copies are charged.
    #[default]
    Nonblocking,
    /// `MPI_Alltoallw`-style dense collective operating directly on user /
    /// collective buffers: no packing or assembly copies, but one message
    /// per peer pair regardless of sparsity.
    Alltoallw,
}

/// How many buffer cycles an engine keeps in flight
/// (`flexio_pipeline_depth`). Depth *d* means up to `d − 1` cycles of file
/// I/O outstanding while the next exchange runs: 1 is the strictly serial
/// engine, 2 the classic double buffering, deeper pipelines pay off when
/// one cycle's I/O takes longer than one cycle's exchange. Both engines
/// run on the same pipeline core, so the hint means the same thing under
/// the flexible engine and the ROMIO baseline (ROMIO's read-modify-write
/// pass still blocks inside each cycle; only the final write overlaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineDepth {
    /// Choose per buffer cycle from the measured I/O:exchange time ratio,
    /// clamped to `[2, 8]` and bounded by the aggregator's share of the
    /// file system's stripe width (outstanding I/O beyond that only
    /// queues on OSTs other aggregators are driving). Waiting on
    /// in-flight I/O is purely local, so each rank adapts independently
    /// without collective agreement.
    #[default]
    Auto,
    /// Exactly this many cycles in flight. `Fixed(1)` reproduces the
    /// serial engine and `Fixed(2)` the two-stage pipeline, charge for
    /// charge; values above 8 are clamped.
    Fixed(u32),
}

/// Tunables for collective and independent I/O, ROMIO-hint style.
#[derive(Clone)]
pub struct Hints {
    /// Number of I/O aggregators (`cb_nodes`). `None` = every rank.
    pub cb_nodes: Option<usize>,
    /// Collective buffer size per aggregator per cycle (`cb_buffer_size`).
    pub cb_buffer_size: usize,
    /// How aggregators move the collective buffer to/from the file
    /// (flexible engine only; the ROMIO engine always sieves, §5.1).
    pub io_method: IoMethod,
    /// Align file-realm boundaries to this many bytes (the paper's new
    /// alignment hint, §6.4). Typically the stripe or page size.
    pub fr_alignment: Option<u64>,
    /// Keep file realms fixed across collective calls, anchored at byte 0
    /// (persistent file realms, §5.2/§6.4).
    pub persistent_file_realms: bool,
    /// Data exchange flavour (§5.4).
    pub exchange: ExchangeMode,
    /// Cache the derived exchange schedule (windows + piece lists) across
    /// collective calls with identical inputs, replaying it on a hit
    /// instead of re-deriving every client↔realm intersection. On (the
    /// default) it pays for itself on any repeated call — the steady state
    /// under persistent file realms; off reproduces the pre-cache engine
    /// exactly (useful for ablations).
    pub schedule_cache: bool,
    /// Software-pipeline the buffer cycles (both engines): two collective
    /// buffers per aggregator, with the exchange for cycle *i+1*
    /// overlapping the file I/O of cycle *i* (the original ROMIO
    /// double-buffering the paper's §4 inherits). On by default; off
    /// reproduces the strictly serial per-cycle engine charge for charge.
    pub double_buffer: bool,
    /// Pipeline depth policy (`flexio_pipeline_depth`): how many buffer
    /// cycles may be in flight at once. Ignored (forced to 1) when
    /// [`Hints::double_buffer`] is off.
    pub pipeline_depth: PipelineDepth,
    /// How many times an aggregator retries a transiently failed file-
    /// system request before the collective gives up and agrees on an
    /// error (`flexio_io_retries`). 0 fails fast on the first fault.
    pub io_retries: u32,
    /// Base backoff before the first retry, microseconds
    /// (`flexio_retry_backoff_us`); doubles on each subsequent retry and
    /// is charged in virtual time like any other wait.
    pub retry_backoff_us: u64,
    /// Zero-copy datatype path (`flexio_zero_copy`): move user data as
    /// borrowed iovec-style segment runs through the exchange and the
    /// vectored PFS interface instead of packing it into intermediate
    /// buffers. On (the default) the steady-state collective path moves
    /// each byte once — pack, collective-buffer assembly, and
    /// distribution copies disappear from the charge stream and the
    /// [`flexio_sim::Stats::bytes_copied`] ledger; sieve-resolved groups
    /// still pack (the RMW patch needs a contiguous stream) and charge
    /// that one copy. Off reproduces the packed path byte- and
    /// charge-identically.
    pub zero_copy: bool,
    /// Prefetch the ROMIO engine's data-sieving RMW pre-read one pipeline
    /// cycle ahead (`flexio_sieve_prefetch`), overlapping it with the
    /// previous cycle instead of blocking inside `issue`. Off by default;
    /// the bytes are identical either way (cycle windows are disjoint per
    /// aggregator), only the virtual timing moves.
    pub sieve_prefetch: bool,
    /// Survive crash-stopped ranks (`flexio_crash_recovery`): when a rank
    /// dies mid-collective, survivors agree on the dead set, re-elect
    /// aggregators and re-partition realms over the shrunk group, and
    /// replay the interrupted call idempotently. Off (the default) the
    /// collective terminates with [`IoError::RanksFailed`] on every
    /// survivor instead of hanging.
    ///
    /// [`IoError::RanksFailed`]: crate::error::IoError::RanksFailed
    pub crash_recovery: bool,
    /// Failure-detection watchdog, microseconds of virtual time
    /// (`flexio_watchdog_us`): how long a rank waits at a collective
    /// boundary for a peer's heartbeat before suspecting it dead. Only
    /// consulted when the installed fault plan schedules crashes; must
    /// comfortably exceed per-cycle clock skew between ranks or a slow
    /// peer is falsely declared dead. Virtual-time cost only.
    pub watchdog_us: u64,
    /// Engine selection.
    pub engine: Engine,
    /// Custom file-realm assigner; overrides the built-in choice
    /// (even/aligned/persistent) when set. The paper's "plug in a new
    /// optimization function to determine the file realms" (§5.2).
    pub realm_assigner: Option<Arc<dyn RealmAssigner>>,
}

impl Default for Hints {
    fn default() -> Self {
        Hints {
            cb_nodes: None,
            cb_buffer_size: 4 << 20,
            io_method: IoMethod::default(),
            fr_alignment: None,
            persistent_file_realms: false,
            exchange: ExchangeMode::default(),
            schedule_cache: true,
            double_buffer: true,
            pipeline_depth: PipelineDepth::default(),
            io_retries: 4,
            retry_backoff_us: 100,
            zero_copy: true,
            sieve_prefetch: false,
            crash_recovery: false,
            watchdog_us: 200_000,
            engine: Engine::default(),
            realm_assigner: None,
        }
    }
}

impl std::fmt::Debug for Hints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hints")
            .field("cb_nodes", &self.cb_nodes)
            .field("cb_buffer_size", &self.cb_buffer_size)
            .field("io_method", &self.io_method)
            .field("fr_alignment", &self.fr_alignment)
            .field("persistent_file_realms", &self.persistent_file_realms)
            .field("exchange", &self.exchange)
            .field("schedule_cache", &self.schedule_cache)
            .field("double_buffer", &self.double_buffer)
            .field("pipeline_depth", &self.pipeline_depth)
            .field("io_retries", &self.io_retries)
            .field("retry_backoff_us", &self.retry_backoff_us)
            .field("zero_copy", &self.zero_copy)
            .field("sieve_prefetch", &self.sieve_prefetch)
            .field("crash_recovery", &self.crash_recovery)
            .field("watchdog_us", &self.watchdog_us)
            .field("engine", &self.engine)
            .field("realm_assigner", &self.realm_assigner.as_ref().map(|_| "custom"))
            .finish()
    }
}

impl Hints {
    /// Number of aggregators for a world of `nprocs` ranks.
    pub fn aggregators(&self, nprocs: usize) -> usize {
        self.cb_nodes.unwrap_or(nprocs).clamp(1, nprocs)
    }

    /// Validate hint consistency.
    pub fn validate(&self) -> crate::error::Result<()> {
        if self.cb_buffer_size == 0 {
            return Err(crate::error::IoError::BadHints("cb_buffer_size must be nonzero"));
        }
        if self.cb_nodes == Some(0) {
            return Err(crate::error::IoError::BadHints("cb_nodes must be nonzero"));
        }
        if self.fr_alignment == Some(0) {
            return Err(crate::error::IoError::BadHints("fr_alignment must be nonzero"));
        }
        if self.pipeline_depth == PipelineDepth::Fixed(0) {
            return Err(crate::error::IoError::BadHints(
                "flexio_pipeline_depth must be a positive integer or auto (0 disables nothing; \
                 use flexio_double_buffer=disable or depth 1 for the serial engine)",
            ));
        }
        if self.io_retries > 32 {
            return Err(crate::error::IoError::BadHints(
                "flexio_io_retries must be at most 32 (the backoff doubles per retry)",
            ));
        }
        if self.watchdog_us == 0 {
            return Err(crate::error::IoError::BadHints(
                "flexio_watchdog_us must be nonzero (a zero watchdog suspects every peer)",
            ));
        }
        Ok(())
    }

    /// Validate hint consistency against a concrete world size: everything
    /// [`Hints::validate`] checks, plus bounds that only make sense once
    /// `nprocs` is known. This is what `MpiFile::open`/`set_hints` use, so
    /// an oversized `cb_nodes` is a proper error at the API boundary
    /// instead of a silently clamped schedule.
    pub fn validate_for(&self, nprocs: usize) -> crate::error::Result<()> {
        self.validate()?;
        if let Some(n) = self.cb_nodes {
            if n > nprocs {
                return Err(crate::error::IoError::BadHints("cb_nodes exceeds world size"));
            }
        }
        Ok(())
    }
}

/// Evenly spread `a` aggregator ranks over `nprocs` ranks (ROMIO picks one
/// rank per node; we spread across the rank space).
pub fn aggregator_ranks(a: usize, nprocs: usize) -> Vec<usize> {
    assert!(a >= 1 && a <= nprocs);
    (0..a).map(|i| i * nprocs / a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hints_valid() {
        let h = Hints::default();
        h.validate().unwrap();
        assert_eq!(h.aggregators(16), 16);
    }

    #[test]
    fn cb_nodes_clamped() {
        // aggregators() still clamps defensively even though validate_for
        // rejects out-of-range cb_nodes at the API boundary.
        let h = Hints { cb_nodes: Some(100), ..Hints::default() };
        assert_eq!(h.aggregators(8), 8);
        let h = Hints { cb_nodes: Some(0), ..Hints::default() };
        assert_eq!(h.aggregators(8), 1);
    }

    #[test]
    fn bad_hints_rejected() {
        assert!(Hints { cb_buffer_size: 0, ..Hints::default() }.validate().is_err());
        assert!(Hints { fr_alignment: Some(0), ..Hints::default() }.validate().is_err());
        assert!(Hints { cb_nodes: Some(0), ..Hints::default() }.validate().is_err());
        assert!(
            Hints { pipeline_depth: PipelineDepth::Fixed(0), ..Hints::default() }
                .validate()
                .is_err()
        );
        // validate_for inherits the depth check.
        assert!(
            Hints { pipeline_depth: PipelineDepth::Fixed(0), ..Hints::default() }
                .validate_for(4)
                .is_err()
        );
        Hints { pipeline_depth: PipelineDepth::Fixed(1), ..Hints::default() }.validate().unwrap();
        Hints { pipeline_depth: PipelineDepth::Fixed(6), ..Hints::default() }
            .validate_for(4)
            .unwrap();
        assert!(Hints { io_retries: 33, ..Hints::default() }.validate().is_err());
        Hints { io_retries: 0, retry_backoff_us: 0, ..Hints::default() }.validate().unwrap();
        Hints { io_retries: 32, ..Hints::default() }.validate().unwrap();
    }

    #[test]
    fn validate_for_bounds_cb_nodes() {
        let h = Hints { cb_nodes: Some(8), ..Hints::default() };
        h.validate_for(8).unwrap();
        assert!(h.validate_for(7).is_err());
        assert!(Hints { cb_nodes: Some(0), ..Hints::default() }.validate_for(4).is_err());
        Hints::default().validate_for(1).unwrap();
    }

    #[test]
    fn validate_for_rejections_are_descriptive_bad_hints() {
        use crate::error::IoError;
        // Oversized cb_nodes names the actual constraint.
        match (Hints { cb_nodes: Some(5), ..Hints::default() }).validate_for(4) {
            Err(IoError::BadHints(msg)) => assert!(msg.contains("world size"), "got {msg:?}"),
            other => panic!("expected BadHints, got {other:?}"),
        }
        // World-free checks run first, so a doubly-bad hint set reports
        // the world-independent problem.
        match (Hints { cb_buffer_size: 0, cb_nodes: Some(100), ..Hints::default() }).validate_for(1)
        {
            Err(IoError::BadHints(msg)) => assert!(msg.contains("cb_buffer_size"), "got {msg:?}"),
            other => panic!("expected BadHints, got {other:?}"),
        }
        match (Hints { fr_alignment: Some(0), ..Hints::default() }).validate_for(2) {
            Err(IoError::BadHints(msg)) => assert!(msg.contains("fr_alignment"), "got {msg:?}"),
            other => panic!("expected BadHints, got {other:?}"),
        }
        // The boundary case passes: exactly one aggregator per rank.
        Hints { cb_nodes: Some(4), ..Hints::default() }.validate_for(4).unwrap();
    }

    #[test]
    fn crash_recovery_defaults_and_watchdog_bounds() {
        let h = Hints::default();
        assert!(!h.crash_recovery, "recovery must be opt-in");
        assert!(h.watchdog_us > 0);
        assert!(Hints { watchdog_us: 0, ..Hints::default() }.validate().is_err());
        Hints { crash_recovery: true, watchdog_us: 1, ..Hints::default() }.validate().unwrap();
    }

    #[test]
    fn aggregator_ranks_spread() {
        assert_eq!(aggregator_ranks(4, 8), vec![0, 2, 4, 6]);
        assert_eq!(aggregator_ranks(8, 8), (0..8).collect::<Vec<_>>());
        assert_eq!(aggregator_ranks(1, 5), vec![0]);
        assert_eq!(aggregator_ranks(3, 7), vec![0, 2, 4]);
    }
}
