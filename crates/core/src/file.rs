//! The MPI-IO-like file object: open, set_view, collective and
//! independent reads/writes, close.

use crate::engine::schedule::ExchangeSchedule;
use crate::engine::{self, DataBuf};
use crate::error::{IoError, Result};
use crate::hints::{Engine, Hints};
use crate::meta::ClientAccess;
use crate::realm::FileRealm;
use flexio_io::{read_packed, write_packed};
use flexio_pfs::{FileHandle, Pfs};
use flexio_sim::{Phase, Rank};
use flexio_types::{flatten_shared, Datatype, FileView, MemLayout};
use std::cell::RefCell;
use std::sync::Arc;

/// An open file with MPI-IO semantics, bound to one rank of a simulated
/// world. All `*_all` operations are collective: every rank of the world
/// must call them in the same order.
///
/// ```no_run
/// use flexio_core::{Hints, MpiFile};
/// use flexio_pfs::{Pfs, PfsConfig};
/// use flexio_sim::{run, CostModel};
/// use flexio_types::Datatype;
///
/// let pfs = Pfs::new(PfsConfig::default());
/// run(4, CostModel::default(), |rank| {
///     let mut f = MpiFile::open(rank, &pfs, "out", Hints::default()).unwrap();
///     // Interleave 64-byte blocks from the 4 ranks.
///     let block = Datatype::bytes(64);
///     let ftype = Datatype::resized(0, 4 * 64, block.clone());
///     f.set_view((rank.rank() * 64) as u64, &block, &ftype).unwrap();
///     let data = vec![rank.rank() as u8; 1024];
///     f.write_all(&data, &Datatype::bytes(1024), 1).unwrap();
///     f.close().unwrap();
/// });
/// ```
pub struct MpiFile<'r> {
    rank: &'r Rank,
    handle: FileHandle,
    view: FileView,
    hints: Hints,
    pfr_realms: RefCell<Option<Vec<FileRealm>>>,
    /// Last collective call's exchange schedule (flexible engine);
    /// invalidated by `set_view` and hint changes, revalidated per call by
    /// its input digest.
    sched_cache: RefCell<Option<ExchangeSchedule>>,
}

impl<'r> MpiFile<'r> {
    /// Collectively open (creating if necessary) `path`.
    pub fn open(rank: &'r Rank, pfs: &Arc<Pfs>, path: &str, hints: Hints) -> Result<Self> {
        hints.validate_for(rank.nprocs())?;
        let handle = pfs.open(path, rank.rank());
        rank.barrier();
        Ok(MpiFile {
            rank,
            handle,
            view: FileView::contiguous(0),
            hints,
            pfr_realms: RefCell::new(None),
            sched_cache: RefCell::new(None),
        })
    }

    /// The hints in effect.
    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    /// Replace the hints (e.g. to switch engine or I/O method mid-run).
    /// Drops the cached exchange schedule: hints shape realm assignment
    /// and data movement, so a schedule derived under the old hints must
    /// not be replayed under the new ones.
    pub fn set_hints(&mut self, hints: Hints) -> Result<()> {
        hints.validate_for(self.rank.nprocs())?;
        self.hints = hints;
        *self.sched_cache.borrow_mut() = None;
        Ok(())
    }

    /// The current file view.
    pub fn view(&self) -> &FileView {
        &self.view
    }

    /// Logical file size in bytes.
    pub fn size(&self) -> u64 {
        self.handle.size()
    }

    /// Collective `MPI_File_set_view`: tile `filetype` from byte `disp`.
    /// The etype defines the offset unit for the `*_at` operations.
    ///
    /// Flattening goes through the content-addressed cache: the first view
    /// of a datatype charges its full `D` pairs, repeat views of an equal
    /// type share the existing `Arc<FlatType>` and charge one probe pair.
    /// Any view change drops the cached exchange schedule.
    pub fn set_view(&mut self, disp: u64, etype: &Datatype, filetype: &Datatype) -> Result<()> {
        let (flat, hit) = flatten_shared(filetype);
        self.rank.note_flatten_cache(hit);
        self.rank.charge_pairs(if hit { 1 } else { flat.segs.len() as u64 });
        self.view = FileView::new(disp, flat, etype.size())?;
        *self.sched_cache.borrow_mut() = None;
        self.rank.barrier();
        Ok(())
    }

    fn access_for(&self, offset_etypes: u64, total: u64) -> ClientAccess {
        ClientAccess {
            view: self.view.clone(),
            data_start: offset_etypes * self.view.etype_size(),
            data_len: total,
        }
    }

    fn mem_layout(&self, buf_len: usize, memtype: &Datatype, count: u64) -> Result<MemLayout> {
        let (flat, hit) = flatten_shared(memtype);
        self.rank.note_flatten_cache(hit);
        let mem = MemLayout::new(flat, count);
        let needed = mem.span();
        if needed > buf_len as u64 {
            return Err(IoError::BufferTooSmall { needed, got: buf_len as u64 });
        }
        Ok(mem)
    }

    /// Collective write of `count` instances of `memtype` from `buf`,
    /// starting at the view's origin (etype offset 0).
    pub fn write_all(&self, buf: &[u8], memtype: &Datatype, count: u64) -> Result<()> {
        self.write_all_at(0, buf, memtype, count)
    }

    /// Collective write at an explicit etype offset into the view.
    pub fn write_all_at(
        &self,
        offset_etypes: u64,
        buf: &[u8],
        memtype: &Datatype,
        count: u64,
    ) -> Result<()> {
        let mem = self.mem_layout(buf.len(), memtype, count)?;
        let acc = self.access_for(offset_etypes, mem.total());
        self.run_engine(&acc, &mem, DataBuf::Write(buf))
    }

    /// Collective read of `count` instances of `memtype` into `buf`,
    /// starting at the view's origin.
    pub fn read_all(&self, buf: &mut [u8], memtype: &Datatype, count: u64) -> Result<()> {
        self.read_all_at(0, buf, memtype, count)
    }

    /// Collective read at an explicit etype offset into the view.
    pub fn read_all_at(
        &self,
        offset_etypes: u64,
        buf: &mut [u8],
        memtype: &Datatype,
        count: u64,
    ) -> Result<()> {
        let mem = self.mem_layout(buf.len(), memtype, count)?;
        let acc = self.access_for(offset_etypes, mem.total());
        self.run_engine(&acc, &mem, DataBuf::Read(buf))
    }

    fn run_engine(&self, acc: &ClientAccess, mem: &MemLayout, mut buf: DataBuf<'_>) -> Result<()> {
        match self.hints.engine {
            Engine::Flexible => {
                let mut pfr = self.pfr_realms.borrow_mut();
                let mut sched = self.sched_cache.borrow_mut();
                // Under a crash-scheduling fault plan the call runs inside
                // the recovery loop (entry detection + survivor replay);
                // without crashes the plain engine path is byte- and
                // charge-identical to before the crash machinery existed.
                let crashes =
                    self.handle.pfs().fault_plan().is_some_and(|p| !p.crashes.is_empty());
                if crashes {
                    engine::recovery::run(
                        self.rank,
                        &self.handle,
                        acc,
                        mem,
                        &mut buf,
                        &self.hints,
                        &mut pfr,
                        &mut sched,
                    )
                } else {
                    engine::flexible::run(
                        self.rank,
                        &self.handle,
                        acc,
                        mem,
                        &mut buf,
                        &self.hints,
                        &mut pfr,
                        &mut sched,
                    )
                }
            }
            Engine::Romio => {
                // The baseline engine has no crash checkpoints or recovery
                // protocol; running it under a crash schedule would let the
                // scheduled crashes silently never fire.
                if self.handle.pfs().fault_plan().is_some_and(|p| !p.crashes.is_empty()) {
                    return Err(IoError::BadHints(
                        "crash-stop fault plans require the flexible engine",
                    ));
                }
                engine::romio::run(self.rank, &self.handle, acc, mem, buf, &self.hints)
            }
        }
    }

    /// Independent (non-collective) write through the view at an etype
    /// offset, using the hinted independent I/O method (data sieving /
    /// naive / conditional).
    pub fn write_at(
        &self,
        offset_etypes: u64,
        buf: &[u8],
        memtype: &Datatype,
        count: u64,
    ) -> Result<()> {
        let mem = self.mem_layout(buf.len(), memtype, count)?;
        let total = mem.total();
        if total == 0 {
            return Ok(());
        }
        let (segs, packed) = self.flatten_access(offset_etypes, total, Some((buf, &mem)));
        let t0 = self.rank.now();
        let res = write_packed(
            &self.handle,
            t0,
            &segs,
            &packed,
            &self.hints.io_method,
            self.view.ftype().extent,
        );
        // Charge the op's full window whether or not it faulted (the error
        // carries the would-be completion time), then surface the fault —
        // independent I/O has no retry loop or collective agreement.
        let t = res.unwrap_or_else(|e| e.at);
        self.rank.advance_to(t);
        self.rank.note_phase(Phase::Io, t - t0);
        res.map(|_| ()).map_err(IoError::Pfs)
    }

    /// Independent read through the view at an etype offset.
    pub fn read_at(
        &self,
        offset_etypes: u64,
        buf: &mut [u8],
        memtype: &Datatype,
        count: u64,
    ) -> Result<()> {
        let mem = self.mem_layout(buf.len(), memtype, count)?;
        let total = mem.total();
        if total == 0 {
            return Ok(());
        }
        let (segs, mut packed) = self.flatten_access(offset_etypes, total, None);
        let t0 = self.rank.now();
        let res = read_packed(
            &self.handle,
            t0,
            &segs,
            &mut packed,
            &self.hints.io_method,
            self.view.ftype().extent,
        );
        let t = *res.as_ref().unwrap_or_else(|e| &e.at);
        self.rank.advance_to(t);
        self.rank.note_phase(Phase::Io, t - t0);
        if let Err(e) = res {
            // The packed bytes are exact even on a faulted request, but an
            // independent read has no retry loop: report it without
            // scattering, like a failed MPI_File_read_at.
            return Err(IoError::Pfs(e));
        }
        // Scatter the packed bytes into user memory piece by piece.
        let start = offset_etypes * self.view.etype_size();
        let mut cur = self.view.cursor(start);
        let mut pos = 0usize;
        while pos < packed.len() {
            let p = cur.take(total - pos as u64);
            mem.scatter(buf, p.data_pos - start, &packed[pos..pos + p.len as usize]);
            pos += p.len as usize;
        }
        self.rank.charge_memcpy(total);
        Ok(())
    }

    /// Flatten an access into sorted file segments; when `gather` is given,
    /// also pack the user data (write case).
    fn flatten_access(
        &self,
        offset_etypes: u64,
        total: u64,
        gather: Option<(&[u8], &MemLayout)>,
    ) -> (Vec<(u64, u64)>, Vec<u8>) {
        let start = offset_etypes * self.view.etype_size();
        let mut cur = self.view.cursor(start);
        let mut segs: Vec<(u64, u64)> = Vec::new();
        let mut packed = vec![0u8; total as usize];
        let mut done = 0u64;
        while done < total {
            let p = cur.take(total - done);
            match segs.last_mut() {
                Some(last) if last.0 + last.1 == p.file_off => last.1 += p.len,
                _ => segs.push((p.file_off, p.len)),
            }
            if let Some((buf, mem)) = gather {
                mem.gather(
                    buf,
                    p.data_pos - start,
                    &mut packed[done as usize..(done + p.len) as usize],
                );
            }
            done += p.len;
        }
        self.rank.charge_pairs(cur.evaluated());
        if gather.is_some() {
            self.rank.charge_memcpy(total);
        }
        (segs, packed)
    }

    /// Collective `MPI_File_set_size`: truncate or extend to `size` bytes.
    pub fn set_size(&self, size: u64) {
        // Collective: rank 0 performs the metadata operation.
        if self.rank.rank() == 0 {
            let t = self.handle.set_size(self.rank.now(), size);
            self.rank.advance_to(t);
        }
        self.rank.barrier();
    }

    /// Collective `MPI_File_preallocate`: ensure storage for `size` bytes.
    pub fn preallocate(&self, size: u64) {
        if self.rank.rank() == 0 {
            let t = self.handle.preallocate(self.rank.now(), size);
            self.rank.advance_to(t);
        }
        self.rank.barrier();
    }

    /// Flush this rank's cached pages (if client caching is on). Dirty
    /// pages always land even on a faulted flush request; the error
    /// reports the request outcome, as `MPI_File_sync` would.
    pub fn sync(&self) -> Result<()> {
        let res = self.handle.flush(self.rank.now());
        self.rank.advance_to(*res.as_ref().unwrap_or_else(|e| &e.at));
        res.map(|_| ()).map_err(IoError::Pfs)
    }

    /// Collective close: flush, release locks, barrier. The file is fully
    /// closed (locks released, cache invalidated) even when the final
    /// flush request faults.
    pub fn close(self) -> Result<()> {
        let res = self.handle.close(self.rank.now());
        self.rank.advance_to(*res.as_ref().unwrap_or_else(|e| &e.at));
        self.rank.barrier();
        res.map(|_| ()).map_err(IoError::Pfs)
    }
}
