//! MPI-style derived datatypes.
//!
//! A [`Datatype`] describes a (possibly non-contiguous) layout of bytes. It
//! mirrors the MPI type constructors that matter for file views and memory
//! buffers: contiguous, vector, hvector, indexed, hindexed, struct, and
//! resized. Elementary types are modelled as opaque byte runs of a given
//! size ([`Datatype::bytes`]); the library never interprets element values.
//!
//! Displacement conventions follow MPI:
//! * `Vector`/`Indexed` strides and displacements are in units of the
//!   *child extent*;
//! * `Hvector`/`Hindexed`/`Struct` displacements are in bytes;
//! * `Resized` overrides the lower bound and extent.

use std::sync::Arc;

/// Shared handle to a datatype. Cloning is O(1).
pub type Dt = Arc<Datatype>;

/// A derived datatype: a recipe for a typemap of byte segments.
///
/// `Hash`/`Eq` are structural, so a `Datatype` can key the content-addressed
/// flatten cache ([`crate::flatten::flatten_shared`]): two independently
/// constructed but identical type trees share one flattening.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Datatype {
    /// An elementary run of `0` or more bytes (e.g. 4 for an `MPI_INT`).
    Bytes(u64),
    /// `count` copies of `child`, tiled at the child's extent.
    Contiguous {
        /// Number of copies.
        count: u64,
        /// Replicated type.
        child: Dt,
    },
    /// `count` blocks of `blocklen` children; block `k` starts at
    /// `k * stride` child-extents.
    Vector {
        /// Number of blocks.
        count: u64,
        /// Children per block.
        blocklen: u64,
        /// Stride between block starts, in units of the child extent.
        stride: i64,
        /// Replicated type.
        child: Dt,
    },
    /// Like `Vector` but the stride is in bytes.
    Hvector {
        /// Number of blocks.
        count: u64,
        /// Children per block.
        blocklen: u64,
        /// Stride between block starts, in bytes.
        stride: i64,
        /// Replicated type.
        child: Dt,
    },
    /// Blocks of children at displacements given in child extents.
    Indexed {
        /// `(displacement_in_child_extents, blocklen)` per block.
        blocks: Vec<(i64, u64)>,
        /// Replicated type.
        child: Dt,
    },
    /// Blocks of children at byte displacements.
    Hindexed {
        /// `(displacement_in_bytes, blocklen)` per block.
        blocks: Vec<(i64, u64)>,
        /// Replicated type.
        child: Dt,
    },
    /// Heterogeneous blocks: `(byte_displacement, count, child)` per field.
    Struct {
        /// `(byte_displacement, count, child)` per field.
        fields: Vec<(i64, u64, Dt)>,
    },
    /// `child` with an explicit lower bound and extent.
    Resized {
        /// New lower bound in bytes.
        lb: i64,
        /// New extent in bytes.
        extent: u64,
        /// Wrapped type.
        child: Dt,
    },
}

impl Datatype {
    /// Elementary type: `n` contiguous bytes.
    pub fn bytes(n: u64) -> Dt {
        Arc::new(Datatype::Bytes(n))
    }

    /// `count` copies of `child` back to back (at the child's extent).
    pub fn contiguous(count: u64, child: Dt) -> Dt {
        Arc::new(Datatype::Contiguous { count, child })
    }

    /// Strided blocks; `stride` in child extents.
    pub fn vector(count: u64, blocklen: u64, stride: i64, child: Dt) -> Dt {
        Arc::new(Datatype::Vector { count, blocklen, stride, child })
    }

    /// Strided blocks; `stride` in bytes.
    pub fn hvector(count: u64, blocklen: u64, stride: i64, child: Dt) -> Dt {
        Arc::new(Datatype::Hvector { count, blocklen, stride, child })
    }

    /// Blocks at displacements measured in child extents.
    pub fn indexed(blocks: Vec<(i64, u64)>, child: Dt) -> Dt {
        Arc::new(Datatype::Indexed { blocks, child })
    }

    /// Blocks at byte displacements.
    pub fn hindexed(blocks: Vec<(i64, u64)>, child: Dt) -> Dt {
        Arc::new(Datatype::Hindexed { blocks, child })
    }

    /// Heterogeneous struct; fields are `(byte_displacement, count, child)`.
    pub fn structure(fields: Vec<(i64, u64, Dt)>) -> Dt {
        Arc::new(Datatype::Struct { fields })
    }

    /// Override lower bound and extent (MPI_Type_create_resized).
    pub fn resized(lb: i64, extent: u64, child: Dt) -> Dt {
        Arc::new(Datatype::Resized { lb, extent, child })
    }

    /// A 2-D subarray of an `rows x cols` array of `elem_size`-byte
    /// elements, selecting the block at (`row0`, `col0`) of shape
    /// (`sub_rows`, `sub_cols`), row-major. The resulting type is resized
    /// to the full array extent so it tiles correctly in a file view.
    pub fn subarray_2d(
        rows: u64,
        cols: u64,
        elem_size: u64,
        row0: u64,
        col0: u64,
        sub_rows: u64,
        sub_cols: u64,
    ) -> Dt {
        assert!(row0 + sub_rows <= rows && col0 + sub_cols <= cols, "subarray out of bounds");
        let row = Datatype::bytes(sub_cols * elem_size);
        let start = (row0 * cols + col0) * elem_size;
        let v = Datatype::hvector(sub_rows, 1, (cols * elem_size) as i64, row);
        let placed = Datatype::structure(vec![(start as i64, 1, v)]);
        Datatype::resized(0, rows * cols * elem_size, placed)
    }

    /// Total number of data bytes in one instance of the type.
    pub fn size(&self) -> u64 {
        match self {
            Datatype::Bytes(n) => *n,
            Datatype::Contiguous { count, child } => count * child.size(),
            Datatype::Vector { count, blocklen, child, .. }
            | Datatype::Hvector { count, blocklen, child, .. } => {
                count * blocklen * child.size()
            }
            Datatype::Indexed { blocks, child } | Datatype::Hindexed { blocks, child } => {
                blocks.iter().map(|(_, bl)| bl).sum::<u64>() * child.size()
            }
            Datatype::Struct { fields } => {
                fields.iter().map(|(_, c, ch)| c * ch.size()).sum()
            }
            Datatype::Resized { child, .. } => child.size(),
        }
    }

    /// `(lower_bound, upper_bound)` of the typemap, in bytes. The extent is
    /// `ub - lb`. Empty types report `(0, 0)`.
    pub fn bounds(&self) -> (i64, i64) {
        match self {
            Datatype::Bytes(n) => (0, *n as i64),
            Datatype::Contiguous { count, child } => {
                if *count == 0 {
                    return (0, 0);
                }
                let (lb, ub) = child.bounds();
                let ext = child.extent() as i64;
                (lb, (*count as i64 - 1) * ext + ub)
            }
            Datatype::Vector { count, blocklen, stride, child } => {
                let ext = child.extent() as i64;
                block_bounds(
                    (0..*count).map(|k| k as i64 * stride * ext),
                    *blocklen,
                    child,
                )
            }
            Datatype::Hvector { count, blocklen, stride, child } => block_bounds(
                (0..*count).map(|k| k as i64 * stride),
                *blocklen,
                child,
            ),
            Datatype::Indexed { blocks, child } => {
                let ext = child.extent() as i64;
                blocks
                    .iter()
                    .filter(|(_, bl)| *bl > 0)
                    .map(|(d, bl)| single_block_bounds(d * ext, *bl, child))
                    .fold(None, merge_bounds)
                    .unwrap_or((0, 0))
            }
            Datatype::Hindexed { blocks, child } => blocks
                .iter()
                .filter(|(_, bl)| *bl > 0)
                .map(|(d, bl)| single_block_bounds(*d, *bl, child))
                .fold(None, merge_bounds)
                .unwrap_or((0, 0)),
            Datatype::Struct { fields } => fields
                .iter()
                .filter(|(_, c, _)| *c > 0)
                .map(|(d, c, ch)| single_block_bounds(*d, *c, ch))
                .fold(None, merge_bounds)
                .unwrap_or((0, 0)),
            Datatype::Resized { lb, extent, .. } => (*lb, lb + *extent as i64),
        }
    }

    /// Lower bound of the typemap in bytes.
    pub fn lb(&self) -> i64 {
        self.bounds().0
    }

    /// Extent in bytes: the stride at which consecutive instances tile.
    pub fn extent(&self) -> u64 {
        let (lb, ub) = self.bounds();
        (ub - lb).max(0) as u64
    }

    /// True if one instance is a single gap-free run of bytes whose size
    /// equals its extent (so consecutive instances are also contiguous).
    pub fn is_contiguous(&self) -> bool {
        let f = crate::flatten::flatten(self);
        f.contiguous && f.size == f.extent
    }

    /// Number of leaf segments one instance flattens to (`D` in the paper).
    pub fn flat_count(&self) -> usize {
        crate::flatten::flatten(self).segs.len()
    }
}

fn single_block_bounds(displ: i64, blocklen: u64, child: &Dt) -> (i64, i64) {
    let (lb, ub) = child.bounds();
    let ext = child.extent() as i64;
    (displ + lb, displ + (blocklen as i64 - 1) * ext + ub)
}

fn block_bounds(
    displs: impl Iterator<Item = i64>,
    blocklen: u64,
    child: &Dt,
) -> (i64, i64) {
    if blocklen == 0 {
        return (0, 0);
    }
    displs
        .map(|d| single_block_bounds(d, blocklen, child))
        .fold(None, merge_bounds)
        .unwrap_or((0, 0))
}

fn merge_bounds(acc: Option<(i64, i64)>, b: (i64, i64)) -> Option<(i64, i64)> {
    Some(match acc {
        None => b,
        Some((lo, hi)) => (lo.min(b.0), hi.max(b.1)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_size_extent() {
        let t = Datatype::bytes(7);
        assert_eq!(t.size(), 7);
        assert_eq!(t.extent(), 7);
        assert_eq!(t.lb(), 0);
    }

    #[test]
    fn contiguous_of_bytes() {
        let t = Datatype::contiguous(5, Datatype::bytes(4));
        assert_eq!(t.size(), 20);
        assert_eq!(t.extent(), 20);
    }

    #[test]
    fn empty_contiguous() {
        let t = Datatype::contiguous(0, Datatype::bytes(4));
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
    }

    #[test]
    fn vector_size_and_extent() {
        // 3 blocks of 2 ints, stride 4 ints: |xx..xx..xx|
        let t = Datatype::vector(3, 2, 4, Datatype::bytes(4));
        assert_eq!(t.size(), 24);
        // last block starts at 2*4*4=32 bytes, ends at 32+8=40
        assert_eq!(t.extent(), 40);
    }

    #[test]
    fn vector_negative_stride() {
        let t = Datatype::vector(2, 1, -3, Datatype::bytes(4));
        // blocks at 0 and -12; lb=-12, ub=4
        assert_eq!(t.bounds(), (-12, 4));
        assert_eq!(t.extent(), 16);
        assert_eq!(t.size(), 8);
    }

    #[test]
    fn hvector_extent_in_bytes() {
        let t = Datatype::hvector(3, 1, 10, Datatype::bytes(4));
        assert_eq!(t.extent(), 24);
        assert_eq!(t.size(), 12);
    }

    #[test]
    fn indexed_bounds() {
        let t = Datatype::indexed(vec![(2, 1), (0, 2)], Datatype::bytes(4));
        // child extent 4: block A at 8 len 4; block B at 0 len 8
        assert_eq!(t.bounds(), (0, 12));
        assert_eq!(t.size(), 12);
    }

    #[test]
    fn hindexed_bounds() {
        let t = Datatype::hindexed(vec![(5, 2), (20, 1)], Datatype::bytes(3));
        assert_eq!(t.bounds(), (5, 23));
        assert_eq!(t.size(), 9);
    }

    #[test]
    fn struct_mixed_children() {
        let t = Datatype::structure(vec![
            (0, 1, Datatype::bytes(4)),
            (16, 2, Datatype::contiguous(2, Datatype::bytes(1))),
        ]);
        assert_eq!(t.size(), 8);
        assert_eq!(t.bounds(), (0, 20));
    }

    #[test]
    fn resized_overrides_extent() {
        let t = Datatype::resized(0, 100, Datatype::bytes(4));
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 100);
    }

    #[test]
    fn resized_negative_lb() {
        let t = Datatype::resized(-4, 12, Datatype::bytes(4));
        assert_eq!(t.bounds(), (-4, 8));
        assert_eq!(t.extent(), 12);
    }

    #[test]
    fn nested_vector_of_vector() {
        let inner = Datatype::vector(2, 1, 2, Datatype::bytes(4)); // extent 12, size 8
        assert_eq!(inner.extent(), 12);
        let outer = Datatype::vector(2, 1, 2, inner);
        // stride 2 * inner extent = 24; last block at 24, ub 24+12=36
        assert_eq!(outer.extent(), 36);
        assert_eq!(outer.size(), 16);
    }

    #[test]
    fn contiguity_detection() {
        assert!(Datatype::bytes(8).is_contiguous());
        assert!(Datatype::contiguous(4, Datatype::bytes(2)).is_contiguous());
        assert!(Datatype::vector(1, 3, 1, Datatype::bytes(4)).is_contiguous());
        assert!(!Datatype::vector(2, 1, 2, Datatype::bytes(4)).is_contiguous());
        // resized adds a trailing gap -> not contiguous for tiling
        assert!(!Datatype::resized(0, 10, Datatype::bytes(4)).is_contiguous());
    }

    #[test]
    fn subarray_2d_shape() {
        // 4x4 array of 1-byte elements, 2x2 block at (1,1)
        let t = Datatype::subarray_2d(4, 4, 1, 1, 1, 2, 2);
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 16);
        let f = crate::flatten::flatten(&t);
        let offs: Vec<(i64, u64)> = f.segs.iter().map(|s| (s.off, s.len)).collect();
        assert_eq!(offs, vec![(5, 2), (9, 2)]);
    }

    #[test]
    fn flat_count_reports_d() {
        let vector_like = Datatype::vector(4096, 1, 2, Datatype::bytes(64));
        assert_eq!(vector_like.flat_count(), 4096);
        let succinct = Datatype::resized(0, 64 + 128, Datatype::bytes(64));
        assert_eq!(succinct.flat_count(), 1);
    }
}
