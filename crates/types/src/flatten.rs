//! Flattening datatypes into offset/length segment lists.
//!
//! A [`FlatType`] is the "flattened datatype" of the paper's §5.3 / Fig. 3:
//! the `D` offset/length pairs of **one instance** of a datatype, together
//! with its extent so instances can be tiled without enumerating them. This
//! is the representation the flexible collective I/O engine ships between
//! clients and aggregators (instead of the fully flattened access of `M`
//! pairs the original ROMIO code ships).

use crate::datatype::Datatype;

/// One contiguous byte segment of a typemap, relative to the instance origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// Byte displacement from the instance origin (may be negative).
    pub off: i64,
    /// Length in bytes; always > 0 in a normalized `FlatType`.
    pub len: u64,
}

impl Seg {
    /// Construct a segment.
    pub fn new(off: i64, len: u64) -> Self {
        Seg { off, len }
    }

    /// Exclusive end offset.
    pub fn end(&self) -> i64 {
        self.off + self.len as i64
    }
}

/// A flattened datatype: ordered segments of one instance plus tiling info.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatType {
    /// Segments in typemap order. Adjacent order-neighbours are merged;
    /// zero-length segments are dropped.
    pub segs: Vec<Seg>,
    /// Lower bound of the typemap in bytes.
    pub lb: i64,
    /// Extent in bytes (tiling stride for consecutive instances).
    pub extent: u64,
    /// Total data bytes (sum of segment lengths).
    pub size: u64,
    /// True if segment offsets are monotonically non-decreasing (required
    /// of filetypes by the MPI standard).
    pub monotonic: bool,
    /// True if the instance is a single gap-free run.
    pub contiguous: bool,
    /// Prefix sums of segment lengths: `prefix[i]` = data bytes before
    /// segment `i`. Length = `segs.len() + 1`; last entry equals `size`.
    pub prefix: Vec<u64>,
}

impl FlatType {
    fn from_segs(mut segs: Vec<Seg>, lb: i64, extent: u64) -> Self {
        // Drop empties, merge order-adjacent contiguous runs.
        segs.retain(|s| s.len > 0);
        let mut merged: Vec<Seg> = Vec::with_capacity(segs.len());
        for s in segs {
            match merged.last_mut() {
                Some(last) if last.end() == s.off => last.len += s.len,
                _ => merged.push(s),
            }
        }
        let size: u64 = merged.iter().map(|s| s.len).sum();
        let monotonic = merged.windows(2).all(|w| w[0].end() <= w[1].off);
        let contiguous = merged.len() <= 1;
        let mut prefix = Vec::with_capacity(merged.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for s in &merged {
            acc += s.len;
            prefix.push(acc);
        }
        FlatType { segs: merged, lb, extent, size, monotonic, contiguous, prefix }
    }

    /// A single contiguous run of `len` bytes at displacement 0.
    pub fn contiguous_bytes(len: u64) -> Self {
        FlatType::from_segs(vec![Seg::new(0, len)], 0, len)
    }

    /// Map a data position (0 ≤ `d` < `size`) within one instance to the
    /// byte displacement from the instance origin. Returns the containing
    /// segment index and absolute displacement.
    pub fn data_to_displ(&self, d: u64) -> (usize, i64) {
        debug_assert!(d < self.size);
        // partition_point: first i with prefix[i] > d, minus one.
        let i = self.prefix.partition_point(|&p| p <= d) - 1;
        (i, self.segs[i].off + (d - self.prefix[i]) as i64)
    }

    /// Number of segments (`D` in the paper).
    pub fn d(&self) -> usize {
        self.segs.len()
    }

    /// Serialize to a compact wire format (for metadata exchange).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.segs.len() * 16);
        out.extend_from_slice(&(self.segs.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.lb.to_le_bytes());
        out.extend_from_slice(&self.extent.to_le_bytes());
        for s in &self.segs {
            out.extend_from_slice(&s.off.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`FlatType::to_wire`] output.
    pub fn from_wire(buf: &[u8]) -> Self {
        let rd_u64 = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap());
        let rd_i64 = |b: &[u8]| i64::from_le_bytes(b.try_into().unwrap());
        let n = rd_u64(&buf[0..8]) as usize;
        let lb = rd_i64(&buf[8..16]);
        let extent = rd_u64(&buf[16..24]);
        let mut segs = Vec::with_capacity(n);
        for i in 0..n {
            let base = 24 + i * 16;
            segs.push(Seg::new(rd_i64(&buf[base..base + 8]), rd_u64(&buf[base + 8..base + 16])));
        }
        FlatType::from_segs(segs, lb, extent)
    }
}

/// Flatten one instance of `dt` into a [`FlatType`].
///
/// Cost is proportional to the number of leaf segments (with a fast path
/// for contiguous children, so `contiguous(1<<30, bytes(1))` is O(1)).
pub fn flatten(dt: &Datatype) -> FlatType {
    let mut segs = Vec::new();
    emit(dt, 0, &mut segs);
    let (lb, ub) = dt.bounds();
    FlatType::from_segs(segs, lb, (ub - lb).max(0) as u64)
}

/// Cap on cached flattenings per scope; reaching it clears that scope's
/// cache rather than evicting, keeping the common steady-state (a handful
/// of types reused across many collective calls) cheap and the worst case
/// bounded.
const FLATTEN_CACHE_CAP: usize = 256;

std::thread_local! {
    static FLATTEN_SCOPE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static FLATTEN_CACHE: std::cell::RefCell<
        std::collections::HashMap<u64, std::collections::HashMap<Datatype, std::sync::Arc<FlatType>>>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Select the flatten-cache scope for the current thread.
///
/// The cache behind [`flatten_shared`] is partitioned into independent
/// scopes so hit/miss behaviour — and therefore the virtual-time charges
/// layered on top — stays per simulated rank regardless of how ranks map
/// onto host threads. The rank scheduler multiplexes many ranks onto
/// each host thread (all of them, sequentially, or one shard's worth
/// under the sharded pool) and calls this with the global rank id on
/// each context switch, so cache behaviour is identical at every shard
/// count. Plain (non-simulated) callers never need to touch it: they
/// use the default scope 0.
pub fn set_flatten_scope(scope: u64) {
    FLATTEN_SCOPE.with(|s| s.set(scope));
}

/// Drop every scope's cached flattenings on the current thread.
///
/// The rank scheduler calls this on each host thread when a world
/// starts (and again when it finishes), reproducing the cold cache a
/// fresh thread would have seen — without it, a second `run` on the
/// same host thread would observe warm caches and drift from the
/// per-world hit/miss counts every other shard layout produces.
pub fn reset_flatten_cache() {
    FLATTEN_CACHE.with(|c| c.borrow_mut().clear());
}

/// Content-addressed flatten cache: like [`flatten`], but memoized per
/// (thread, scope) and returning a shared `Arc<FlatType>` so repeated
/// `set_view`/`write_all` calls with an equal `Datatype` reuse one
/// flattening instead of re-walking the type tree and cloning segment
/// vectors (ROMIO keeps a flattened-datatype cache for the same reason).
///
/// The cache is keyed by structural equality, so two independently built
/// but identical trees hit. Each scope (see [`set_flatten_scope`] — one
/// per simulated rank) has its own map and its own capacity, so hit/miss
/// counters are deterministic per rank under both rank runtimes.
///
/// Returns the shared flattening and whether it was a cache hit.
pub fn flatten_shared(dt: &Datatype) -> (std::sync::Arc<FlatType>, bool) {
    let scope = FLATTEN_SCOPE.with(|s| s.get());
    FLATTEN_CACHE.with(|c| {
        let mut scopes = c.borrow_mut();
        let cache = scopes.entry(scope).or_default();
        if let Some(f) = cache.get(dt) {
            return (std::sync::Arc::clone(f), true);
        }
        if cache.len() >= FLATTEN_CACHE_CAP {
            cache.clear();
        }
        let f = std::sync::Arc::new(flatten(dt));
        cache.insert(dt.clone(), std::sync::Arc::clone(&f));
        (f, false)
    })
}

/// Append the segments of `count` children tiled at `child_extent` from
/// byte `base`, using a pre-flattened child.
fn emit_block(child_flat: &FlatType, child_extent: u64, base: i64, count: u64, out: &mut Vec<Seg>) {
    if count == 0 || child_flat.size == 0 {
        return;
    }
    // Fast path: child instances are contiguous and gap-free, so the whole
    // block is one run.
    if child_flat.contiguous && child_flat.size == child_extent {
        let off = base + child_flat.segs[0].off;
        out.push(Seg::new(off, child_flat.size * count));
        return;
    }
    for k in 0..count {
        let shift = base + (k * child_extent) as i64;
        for s in &child_flat.segs {
            out.push(Seg::new(shift + s.off, s.len));
        }
    }
}

fn emit(dt: &Datatype, base: i64, out: &mut Vec<Seg>) {
    match dt {
        Datatype::Bytes(n) => {
            if *n > 0 {
                out.push(Seg::new(base, *n));
            }
        }
        Datatype::Contiguous { count, child } => {
            let cf = flatten(child);
            emit_block(&cf, child.extent(), base, *count, out);
        }
        Datatype::Vector { count, blocklen, stride, child } => {
            let cf = flatten(child);
            let ext = child.extent();
            for k in 0..*count {
                let b = base + k as i64 * stride * ext as i64;
                emit_block(&cf, ext, b, *blocklen, out);
            }
        }
        Datatype::Hvector { count, blocklen, stride, child } => {
            let cf = flatten(child);
            let ext = child.extent();
            for k in 0..*count {
                emit_block(&cf, ext, base + k as i64 * stride, *blocklen, out);
            }
        }
        Datatype::Indexed { blocks, child } => {
            let cf = flatten(child);
            let ext = child.extent();
            for (d, bl) in blocks {
                emit_block(&cf, ext, base + d * ext as i64, *bl, out);
            }
        }
        Datatype::Hindexed { blocks, child } => {
            let cf = flatten(child);
            let ext = child.extent();
            for (d, bl) in blocks {
                emit_block(&cf, ext, base + d, *bl, out);
            }
        }
        Datatype::Struct { fields } => {
            for (d, c, ch) in fields {
                let cf = flatten(ch);
                emit_block(&cf, ch.extent(), base + d, *c, out);
            }
        }
        Datatype::Resized { child, .. } => emit(child, base, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::{Datatype, Dt};

    fn segs(dt: &Dt) -> Vec<(i64, u64)> {
        flatten(dt).segs.iter().map(|s| (s.off, s.len)).collect()
    }

    #[test]
    fn flatten_bytes() {
        assert_eq!(segs(&Datatype::bytes(8)), vec![(0, 8)]);
        assert_eq!(segs(&Datatype::bytes(0)), vec![]);
    }

    #[test]
    fn flatten_contiguous_merges() {
        let t = Datatype::contiguous(1 << 30, Datatype::bytes(1));
        let f = flatten(&t);
        assert_eq!(f.segs, vec![Seg::new(0, 1 << 30)]);
        assert!(f.contiguous);
    }

    #[test]
    fn flatten_vector() {
        let t = Datatype::vector(3, 2, 4, Datatype::bytes(4));
        assert_eq!(segs(&t), vec![(0, 8), (16, 8), (32, 8)]);
        let f = flatten(&t);
        assert_eq!(f.size, 24);
        assert_eq!(f.extent, 40);
        assert!(f.monotonic);
        assert!(!f.contiguous);
    }

    #[test]
    fn flatten_vector_unit_stride_merges() {
        let t = Datatype::vector(3, 2, 2, Datatype::bytes(4));
        assert_eq!(segs(&t), vec![(0, 24)]);
    }

    #[test]
    fn flatten_hvector_gap() {
        let t = Datatype::hvector(2, 1, 10, Datatype::bytes(4));
        assert_eq!(segs(&t), vec![(0, 4), (10, 4)]);
    }

    #[test]
    fn flatten_struct_fig3() {
        // Fig. 3: vector count=2 stride=2 blocklen=1 of 1-byte elements
        // -> offsets [0,2], lens [1,1]
        let t = Datatype::vector(2, 1, 2, Datatype::bytes(1));
        assert_eq!(segs(&t), vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn flatten_nonmonotonic_indexed() {
        let t = Datatype::indexed(vec![(2, 1), (0, 1)], Datatype::bytes(4));
        let f = flatten(&t);
        assert_eq!(f.segs, vec![Seg::new(8, 4), Seg::new(0, 4)]);
        assert!(!f.monotonic);
    }

    #[test]
    fn flatten_resized_keeps_extent() {
        let t = Datatype::resized(0, 192, Datatype::bytes(64));
        let f = flatten(&t);
        assert_eq!(f.segs, vec![Seg::new(0, 64)]);
        assert_eq!(f.extent, 192);
        assert!(!f.contiguous || f.size != f.extent);
    }

    #[test]
    fn prefix_and_data_to_displ() {
        let t = Datatype::vector(3, 1, 3, Datatype::bytes(4));
        let f = flatten(&t);
        assert_eq!(f.prefix, vec![0, 4, 8, 12]);
        assert_eq!(f.data_to_displ(0), (0, 0));
        assert_eq!(f.data_to_displ(3), (0, 3));
        assert_eq!(f.data_to_displ(4), (1, 12));
        assert_eq!(f.data_to_displ(11), (2, 27));
    }

    #[test]
    fn wire_roundtrip() {
        let t = Datatype::vector(5, 2, 3, Datatype::bytes(4));
        let f = flatten(&t);
        let w = f.to_wire();
        let g = FlatType::from_wire(&w);
        assert_eq!(f, g);
    }

    #[test]
    fn struct_field_counts_tile() {
        let t = Datatype::structure(vec![(0, 3, Datatype::resized(0, 8, Datatype::bytes(4)))]);
        assert_eq!(segs(&t), vec![(0, 4), (8, 4), (16, 4)]);
    }

    #[test]
    fn nested_noncontig_in_noncontig() {
        let inner = Datatype::vector(2, 1, 2, Datatype::bytes(1)); // x.x. extent 3
        assert_eq!(inner.extent(), 3);
        let outer = Datatype::vector(2, 1, 2, inner); // stride 6 bytes
        assert_eq!(segs(&outer), vec![(0, 1), (2, 1), (6, 1), (8, 1)]);
    }

    #[test]
    fn size_matches_flat_sum() {
        let t = Datatype::structure(vec![
            (3, 2, Datatype::vector(2, 2, 3, Datatype::bytes(2))),
            (100, 1, Datatype::bytes(10)),
        ]);
        let f = flatten(&t);
        assert_eq!(f.size, t.size());
    }

    #[test]
    fn shared_flatten_hits_on_equal_types() {
        // Structurally equal but independently constructed trees share one
        // flattening.
        let a = Datatype::vector(907, 2, 5, Datatype::bytes(3));
        let b = Datatype::vector(907, 2, 5, Datatype::bytes(3));
        let (fa, _) = flatten_shared(&a);
        let (fb, hit_b) = flatten_shared(&b);
        assert!(hit_b, "equal type must hit the cache");
        assert!(std::sync::Arc::ptr_eq(&fa, &fb), "hit must share the Arc");
        assert_eq!(*fa, flatten(&a));
        // A different type misses.
        let c = Datatype::vector(907, 2, 6, Datatype::bytes(3));
        let (fc, hit_c) = flatten_shared(&c);
        assert!(!hit_c);
        assert_eq!(*fc, flatten(&c));
    }

    #[test]
    fn shared_flatten_cap_resets_not_breaks() {
        for i in 0..(super::FLATTEN_CACHE_CAP as u64 + 50) {
            let t = Datatype::contiguous(i + 1, Datatype::bytes(1));
            let (f, _) = flatten_shared(&t);
            assert_eq!(f.size, i + 1);
        }
    }
}
