//! File views and streaming cursors over tiled datatypes.
//!
//! A [`FileView`] is the MPI `MPI_File_set_view` abstraction: a flattened
//! filetype tiled forever from a byte displacement (Fig. 1 of the paper).
//! Accessible bytes form a *data space*: data byte `d` of the view maps to a
//! unique, increasing file offset.
//!
//! [`ViewCursor`] streams `(file_offset, data_pos, len)` pieces in file
//! order and supports the paper's "skip full datatypes" optimization
//! (§6.2): advancing to a target file offset skips whole filetype instances
//! in O(1) but must *scan* offset/length pairs within an instance, counting
//! each pair it evaluates. A succinct filetype (small `D`, many tiles) skips
//! cheaply; a filetype that enumerates the entire access (`D = M`, one tile)
//! pays a linear scan — exactly the `new+struct` vs `new+vector` asymmetry
//! of Fig. 4.

use crate::flatten::FlatType;
use std::sync::Arc;

/// Errors from view construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// Filetype has no data bytes.
    EmptyFiletype,
    /// Filetype displacements must be monotonically non-decreasing.
    NotMonotonic,
    /// Filetype typemap has a negative displacement.
    NegativeDispl,
    /// Filetype extent is smaller than its upper bound: tiles would overlap.
    OverlappingTiles,
    /// Filetype size is not a multiple of the etype size.
    EtypeMismatch,
    /// Zero etype size.
    ZeroEtype,
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViewError::EmptyFiletype => "filetype has zero size",
            ViewError::NotMonotonic => "filetype displacements are not monotonic",
            ViewError::NegativeDispl => "filetype has a negative displacement",
            ViewError::OverlappingTiles => "filetype extent smaller than upper bound",
            ViewError::EtypeMismatch => "filetype size is not a multiple of etype size",
            ViewError::ZeroEtype => "etype size is zero",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ViewError {}

/// A file view: flattened filetype tiled forever from `disp`.
#[derive(Debug, Clone)]
pub struct FileView {
    disp: u64,
    ftype: Arc<FlatType>,
    etype_size: u64,
}

impl FileView {
    /// Construct a view. Enforces the MPI filetype rules: non-negative
    /// monotonic displacements, non-zero size, size a multiple of the etype
    /// size, and extent ≥ upper bound so tiles never overlap.
    pub fn new(disp: u64, ftype: Arc<FlatType>, etype_size: u64) -> Result<Self, ViewError> {
        if etype_size == 0 {
            return Err(ViewError::ZeroEtype);
        }
        if ftype.size == 0 {
            return Err(ViewError::EmptyFiletype);
        }
        if !ftype.monotonic {
            return Err(ViewError::NotMonotonic);
        }
        if ftype.segs.first().map(|s| s.off < 0).unwrap_or(false) {
            return Err(ViewError::NegativeDispl);
        }
        let ub = ftype.segs.last().map(|s| s.end()).unwrap_or(0);
        if (ftype.extent as i64) < ub {
            return Err(ViewError::OverlappingTiles);
        }
        if !ftype.size.is_multiple_of(etype_size) {
            return Err(ViewError::EtypeMismatch);
        }
        Ok(FileView { disp, ftype, etype_size })
    }

    /// A fully contiguous byte view starting at `disp`.
    pub fn contiguous(disp: u64) -> Self {
        FileView {
            disp,
            ftype: Arc::new(FlatType::contiguous_bytes(1 << 40)),
            etype_size: 1,
        }
    }

    /// View displacement in bytes.
    pub fn disp(&self) -> u64 {
        self.disp
    }

    /// The flattened filetype.
    pub fn ftype(&self) -> &Arc<FlatType> {
        &self.ftype
    }

    /// Etype size in bytes.
    pub fn etype_size(&self) -> u64 {
        self.etype_size
    }

    /// `D`: offset/length pairs per filetype instance.
    pub fn d(&self) -> usize {
        self.ftype.segs.len()
    }

    /// True if the view is an unbroken byte stream (no holes between data).
    pub fn is_contiguous(&self) -> bool {
        self.ftype.contiguous && self.ftype.size == self.ftype.extent
    }

    /// File offset of data byte `d`.
    pub fn data_to_file(&self, d: u64) -> u64 {
        let tile = d / self.ftype.size;
        let within = d % self.ftype.size;
        let (_, rel) = self.ftype.data_to_displ(within);
        self.disp + tile * self.ftype.extent + rel as u64
    }

    /// Smallest data position whose file offset is ≥ `off` (O(log D)).
    pub fn file_to_data_lower(&self, off: u64) -> u64 {
        if off <= self.disp {
            return 0;
        }
        let rel = off - self.disp;
        let tile = rel / self.ftype.extent;
        let within = (rel % self.ftype.extent) as i64;
        let base = tile * self.ftype.size;
        // First segment whose end is > within.
        let i = self.ftype.segs.partition_point(|s| s.end() <= within);
        if i == self.ftype.segs.len() {
            // `off` lands in the trailing gap: next data is the next tile.
            return base + self.ftype.size;
        }
        let s = self.ftype.segs[i];
        if within <= s.off {
            base + self.ftype.prefix[i]
        } else {
            base + self.ftype.prefix[i] + (within - s.off) as u64
        }
    }

    /// Exclusive end file offset of an access covering data bytes
    /// `[0, nbytes)` starting at data position `start`.
    pub fn access_range(&self, start: u64, nbytes: u64) -> (u64, u64) {
        assert!(nbytes > 0);
        let first = self.data_to_file(start);
        let last = self.data_to_file(start + nbytes - 1);
        (first, last + 1)
    }

    /// Make a cursor positioned at data byte `pos`.
    pub fn cursor(&self, pos: u64) -> ViewCursor<'_> {
        let mut c = ViewCursor {
            view: self,
            tile: 0,
            seg: 0,
            within: 0,
            evaluated: 0,
        };
        c.seek_data(pos);
        c
    }
}

/// One streamed piece of an access: a contiguous file run plus the data
/// position it corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// Absolute file offset.
    pub file_off: u64,
    /// Position in the view's data space.
    pub data_pos: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Streaming cursor over a [`FileView`]'s data space, in file order.
#[derive(Debug, Clone)]
pub struct ViewCursor<'a> {
    view: &'a FileView,
    tile: u64,
    seg: usize,
    /// Bytes consumed within the current segment.
    within: u64,
    /// Offset/length pairs examined so far (the paper's processing cost).
    evaluated: u64,
}

impl<'a> ViewCursor<'a> {
    fn ft(&self) -> &FlatType {
        &self.view.ftype
    }

    /// Current data position.
    pub fn data_pos(&self) -> u64 {
        self.tile * self.ft().size + self.ft().prefix[self.seg] + self.within
    }

    /// File offset of the next data byte.
    pub fn file_off(&self) -> u64 {
        let s = self.ft().segs[self.seg];
        self.view.disp + self.tile * self.ft().extent + (s.off as u64) + self.within
    }

    /// Number of offset/length pairs evaluated by this cursor so far.
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Reposition at data byte `pos` (O(log D); charges one evaluation).
    pub fn seek_data(&mut self, pos: u64) {
        let ft = &self.view.ftype;
        let tile = pos / ft.size;
        let within_tile = pos % ft.size;
        let (seg, within) = if within_tile == 0 {
            (0, 0)
        } else {
            let (i, _) = ft.data_to_displ(within_tile);
            (i, within_tile - ft.prefix[i])
        };
        self.tile = tile;
        self.seg = seg;
        self.within = within;
        self.evaluated += 1;
    }

    /// Consume up to `max` bytes from the current segment and return the
    /// piece. Pieces never span segments, so repeated calls yield the
    /// natural contiguous runs of the view.
    pub fn take(&mut self, max: u64) -> Piece {
        debug_assert!(max > 0);
        if self.within == 0 {
            self.evaluated += 1;
        }
        let piece = Piece {
            file_off: self.file_off(),
            data_pos: self.data_pos(),
            len: max.min(self.ft().segs[self.seg].len - self.within),
        };
        self.within += piece.len;
        if self.within == self.ft().segs[self.seg].len {
            self.seg += 1;
            self.within = 0;
            if self.seg == self.ft().segs.len() {
                self.seg = 0;
                self.tile += 1;
            }
        }
        piece
    }

    /// Advance (monotonically) until the next data byte has file offset
    /// ≥ `off`. Whole filetype instances are skipped in O(1) ("skip full
    /// datatypes"); within an instance pairs are scanned linearly, each
    /// scan step counted in [`ViewCursor::evaluated`].
    pub fn advance_to_file(&mut self, off: u64) {
        if self.file_off() >= off {
            return;
        }
        let extent = self.view.ftype.extent;
        // O(1) whole-tile skip: jump to the tile containing (or preceding) off.
        let rel = off.saturating_sub(self.view.disp);
        let target_tile = rel / extent;
        if target_tile > self.tile {
            self.tile = target_tile;
            self.seg = 0;
            self.within = 0;
            self.evaluated += 1;
        }
        // Linear scan within the tile, as ROMIO's flattened representation
        // requires: every pair examined is charged.
        loop {
            if self.seg == self.view.ftype.segs.len() {
                self.seg = 0;
                self.within = 0;
                self.tile += 1;
                continue;
            }
            let origin = self.view.disp + self.tile * extent;
            let s = self.view.ftype.segs[self.seg];
            let seg_end = origin + s.end() as u64;
            if seg_end <= off {
                self.seg += 1;
                self.within = 0;
                self.evaluated += 1;
                continue;
            }
            let seg_start = origin + s.off as u64 + self.within;
            if seg_start < off {
                self.within += off - seg_start;
            }
            break;
        }
    }

    /// Yield the next piece whose file offset is `< file_end`, at most
    /// `max` bytes. Returns `None` when the next data byte is at or past
    /// `file_end`. The piece is clipped to `file_end`.
    pub fn take_below(&mut self, file_end: u64, max: u64) -> Option<Piece> {
        let fo = self.file_off();
        if fo >= file_end {
            return None;
        }
        let room = file_end - fo;
        Some(self.take(max.min(room)))
    }
}

/// A memory buffer layout: `count` instances of a flattened memory type
/// tiled at its extent. Unlike file views, memory types may be
/// non-monotonic; mapping is always done through data positions.
#[derive(Debug, Clone)]
pub struct MemLayout {
    flat: Arc<FlatType>,
    count: u64,
}

impl MemLayout {
    /// Layout of `count` instances of `flat`.
    pub fn new(flat: Arc<FlatType>, count: u64) -> Self {
        assert!(flat.size > 0 || count == 0, "empty memory type with nonzero count");
        MemLayout { flat, count }
    }

    /// Contiguous layout of `n` bytes.
    pub fn contiguous(n: u64) -> Self {
        MemLayout { flat: Arc::new(FlatType::contiguous_bytes(n)), count: 1 }
    }

    /// Total data bytes described.
    pub fn total(&self) -> u64 {
        self.count * self.flat.size
    }

    /// Minimum buffer length in bytes needed to hold the layout.
    pub fn span(&self) -> u64 {
        if self.count == 0 || self.flat.size == 0 {
            return 0;
        }
        let ub = self.flat.segs.iter().map(|s| s.end()).max().unwrap_or(0);
        ((self.count - 1) * self.flat.extent) + ub.max(0) as u64
    }

    fn for_each_run(&self, data_start: u64, len: u64, mut f: impl FnMut(u64, u64, u64)) {
        // f(buffer_offset, data_pos, run_len)
        for (buf_off, d, run) in self.run_offsets(data_start, len) {
            f(buf_off, d, run);
        }
    }

    /// Iterate the `(buffer_offset, data_pos, run_len)` segment runs
    /// covering `len` data bytes from data position `data_start` — the
    /// flattened view's decomposition of the range into maximal
    /// contiguous buffer stretches, without touching any bytes.
    pub fn run_offsets(&self, data_start: u64, len: u64) -> RunOffsets {
        assert!(data_start + len <= self.total(), "data range outside layout");
        RunOffsets { flat: Arc::clone(&self.flat), d: data_start, remaining: len }
    }

    /// Iterate borrowed segment runs of `buf` covering `len` data bytes
    /// from `data_start`: each item is a maximal contiguous `&[u8]` slice
    /// of the user buffer tagged with its data position. This is the
    /// zero-copy gather — an iovec-style run list straight off the
    /// flattened view, no intermediate packed `Vec<u8>`. The runs borrow
    /// `buf` immutably and never overlap in data space; callers pair them
    /// with file offsets from the file view's pieces.
    pub fn runs<'a>(&self, buf: &'a [u8], data_start: u64, len: u64) -> MemRuns<'a> {
        MemRuns { offsets: self.run_offsets(data_start, len), buf }
    }

    /// Copy `len` data bytes starting at data position `data_start` out of
    /// `buf` into `out` (gather, for sends from user memory).
    pub fn gather(&self, buf: &[u8], data_start: u64, out: &mut [u8]) {
        let len = out.len() as u64;
        let mut o = 0usize;
        self.for_each_run(data_start, len, |buf_off, _d, run| {
            out[o..o + run as usize]
                .copy_from_slice(&buf[buf_off as usize..(buf_off + run) as usize]);
            o += run as usize;
        });
    }

    /// Copy `src` into the buffer at data position `data_start` (scatter,
    /// for receives into user memory).
    pub fn scatter(&self, buf: &mut [u8], data_start: u64, src: &[u8]) {
        let len = src.len() as u64;
        let mut o = 0usize;
        self.for_each_run(data_start, len, |buf_off, _d, run| {
            buf[buf_off as usize..(buf_off + run) as usize]
                .copy_from_slice(&src[o..o + run as usize]);
            o += run as usize;
        });
    }
}

/// Iterator over the `(buffer_offset, data_pos, run_len)` runs of a
/// [`MemLayout`] range (see [`MemLayout::run_offsets`]).
#[derive(Debug, Clone)]
pub struct RunOffsets {
    flat: Arc<FlatType>,
    d: u64,
    remaining: u64,
}

impl Iterator for RunOffsets {
    type Item = (u64, u64, u64);

    fn next(&mut self) -> Option<(u64, u64, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let tile = self.d / self.flat.size;
        let within = self.d % self.flat.size;
        let (i, rel) = self.flat.data_to_displ(within);
        let seg_room = self.flat.segs[i].len - (within - self.flat.prefix[i]);
        let run = seg_room.min(self.remaining);
        let buf_off = (tile * self.flat.extent) as i64 + rel;
        debug_assert!(buf_off >= 0, "memory layout with negative buffer offset");
        let item = (buf_off as u64, self.d, run);
        self.d += run;
        self.remaining -= run;
        Some(item)
    }
}

/// One borrowed segment run of user memory (see [`MemLayout::runs`]).
#[derive(Debug, Clone, Copy)]
pub struct MemRun<'a> {
    /// Data position (packed-stream offset) of the run's first byte.
    pub data_pos: u64,
    /// The run's bytes, borrowed straight from the user buffer.
    pub bytes: &'a [u8],
}

/// Iterator over borrowed segment runs of a user buffer (see
/// [`MemLayout::runs`]).
#[derive(Debug, Clone)]
pub struct MemRuns<'a> {
    offsets: RunOffsets,
    buf: &'a [u8],
}

impl<'a> Iterator for MemRuns<'a> {
    type Item = MemRun<'a>;

    fn next(&mut self) -> Option<MemRun<'a>> {
        let (buf_off, data_pos, run) = self.offsets.next()?;
        Some(MemRun { data_pos, bytes: &self.buf[buf_off as usize..(buf_off + run) as usize] })
    }
}

/// Pack `count` instances of a (flattened) datatype from `buf` into a
/// contiguous byte vector — `MPI_Pack` for our byte-oriented types.
pub fn pack(flat: &Arc<FlatType>, count: u64, buf: &[u8]) -> Vec<u8> {
    let m = MemLayout::new(Arc::clone(flat), count);
    let mut out = vec![0u8; m.total() as usize];
    m.gather(buf, 0, &mut out);
    out
}

/// Unpack a contiguous byte vector into `count` instances of a datatype
/// laid out in `buf` — `MPI_Unpack`.
pub fn unpack(flat: &Arc<FlatType>, count: u64, packed: &[u8], buf: &mut [u8]) {
    let m = MemLayout::new(Arc::clone(flat), count);
    assert_eq!(packed.len() as u64, m.total(), "packed size mismatch");
    m.scatter(buf, 0, packed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::Datatype;
    use crate::flatten::flatten;

    fn view(disp: u64, dt: &Datatype) -> FileView {
        FileView::new(disp, Arc::new(flatten(dt)), 1).unwrap()
    }

    #[test]
    fn view_rejects_bad_filetypes() {
        let nonmono = Datatype::indexed(vec![(2, 1), (0, 1)], Datatype::bytes(4));
        assert_eq!(
            FileView::new(0, Arc::new(flatten(&nonmono)), 1).unwrap_err(),
            ViewError::NotMonotonic
        );
        let empty = Datatype::bytes(0);
        assert_eq!(
            FileView::new(0, Arc::new(flatten(&empty)), 1).unwrap_err(),
            ViewError::EmptyFiletype
        );
        let overlap = Datatype::resized(0, 2, Datatype::bytes(4));
        assert_eq!(
            FileView::new(0, Arc::new(flatten(&overlap)), 1).unwrap_err(),
            ViewError::OverlappingTiles
        );
        let ok = Datatype::bytes(4);
        assert_eq!(
            FileView::new(0, Arc::new(flatten(&ok)), 3).unwrap_err(),
            ViewError::EtypeMismatch
        );
    }

    #[test]
    fn data_to_file_tiles() {
        // filetype: 4 data, 4 gap (extent 8), disp 100
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let v = view(100, &dt);
        assert_eq!(v.data_to_file(0), 100);
        assert_eq!(v.data_to_file(3), 103);
        assert_eq!(v.data_to_file(4), 108);
        assert_eq!(v.data_to_file(9), 117);
    }

    #[test]
    fn file_to_data_lower_inverse() {
        let dt = Datatype::vector(2, 1, 2, Datatype::bytes(4)); // x...x... wait: blocks at 0 and 8, len 4; extent 12
        let v = view(10, &dt);
        assert_eq!(v.file_to_data_lower(0), 0);
        assert_eq!(v.file_to_data_lower(10), 0);
        assert_eq!(v.file_to_data_lower(12), 2);
        assert_eq!(v.file_to_data_lower(14), 4); // gap [14,18) -> next data at 18 = data 4
        assert_eq!(v.file_to_data_lower(18), 4);
        assert_eq!(v.file_to_data_lower(22), 8); // start of next tile
    }

    #[test]
    fn file_to_data_roundtrip_many() {
        let dt = Datatype::vector(3, 2, 5, Datatype::bytes(2));
        let v = view(7, &dt);
        for d in 0..200u64 {
            let off = v.data_to_file(d);
            assert_eq!(v.file_to_data_lower(off), d, "data byte {d} at off {off}");
        }
    }

    #[test]
    fn runs_reassemble_to_gather() {
        // 3 segs per tile (lens 2, at buffer displs 0, 5, 9), 4 tiles:
        // the borrowed runs concatenated must equal the packed gather,
        // from any starting data position and length.
        let dt = Datatype::indexed(vec![(0, 2), (5, 2), (9, 2)], Datatype::bytes(1));
        let flat = Arc::new(flatten(&dt));
        let m = MemLayout::new(Arc::clone(&flat), 4);
        let buf: Vec<u8> = (0..m.span()).map(|i| (i % 251) as u8).collect();
        for start in 0..m.total() {
            for len in 0..=(m.total() - start) {
                let mut want = vec![0u8; len as usize];
                m.gather(&buf, start, &mut want);
                let mut got = Vec::new();
                let mut d = start;
                for run in m.runs(&buf, start, len) {
                    assert_eq!(run.data_pos, d, "runs must be dense in data space");
                    d += run.bytes.len() as u64;
                    got.extend_from_slice(run.bytes);
                }
                assert_eq!(got, want, "start {start} len {len}");
            }
        }
    }

    #[test]
    fn run_offsets_are_maximal_and_bounded() {
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let flat = Arc::new(flatten(&dt));
        let m = MemLayout::new(flat, 3);
        let runs: Vec<_> = m.run_offsets(2, 8).collect();
        // 2 bytes left in tile 0's segment, the full 4 of tile 1, 2 of
        // tile 2 — each run maximal within its segment.
        assert_eq!(runs, vec![(2, 2, 2), (8, 4, 4), (16, 8, 2)]);
        assert_eq!(m.run_offsets(0, 0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "data range outside layout")]
    fn run_offsets_reject_out_of_range() {
        let m = MemLayout::contiguous(4);
        let _ = m.run_offsets(2, 3);
    }

    #[test]
    fn run_offsets_zero_count_and_boundary_edges() {
        // A zero-count layout is fully degenerate: no span, no data, no
        // runs, and gather/scatter accept the empty slices that implies.
        let flat = Arc::new(flatten(&Datatype::bytes(4)));
        let empty = MemLayout::new(Arc::clone(&flat), 0);
        assert_eq!(empty.span(), 0);
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.run_offsets(0, 0).count(), 0);
        empty.gather(&[], 0, &mut []);
        empty.scatter(&mut [], 0, &[]);
        // Zero-length ranges are fine anywhere in [0, total] — including
        // the exclusive end — and the final byte is reachable alone.
        let m = MemLayout::new(flat, 3);
        assert_eq!(m.run_offsets(12, 0).count(), 0);
        assert_eq!(m.run_offsets(11, 1).collect::<Vec<_>>(), vec![(11, 11, 1)]);
    }

    #[test]
    fn single_byte_segments_yield_single_byte_runs() {
        // 1-byte segments with holes: every run is exactly one byte and
        // the borrowed runs still reassemble to the packed gather.
        let dt = Datatype::indexed(vec![(0, 1), (3, 1), (6, 1)], Datatype::bytes(1));
        let m = MemLayout::new(Arc::new(flatten(&dt)), 2);
        let runs: Vec<_> = m.run_offsets(0, m.total()).collect();
        assert_eq!(runs.len(), m.total() as usize);
        assert!(runs.iter().all(|&(_, _, len)| len == 1));
        let buf: Vec<u8> = (0..m.span()).map(|i| i as u8).collect();
        let mut want = vec![0u8; m.total() as usize];
        m.gather(&buf, 0, &mut want);
        let got: Vec<u8> = m.runs(&buf, 0, m.total()).flat_map(|r| r.bytes.to_vec()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn runs_split_at_tile_boundaries_even_when_buffer_contiguous() {
        // A contiguous type tiled at its own size: the mapping is the
        // identity, but runs are emitted per tile — callers own any
        // cross-tile coalescing (the zero-copy path's iovec builder does).
        let m = MemLayout::new(Arc::new(flatten(&Datatype::bytes(4))), 3);
        let runs: Vec<_> = m.run_offsets(0, 12).collect();
        assert_eq!(runs, vec![(0, 0, 4), (4, 4, 4), (8, 8, 4)]);
    }

    #[test]
    fn runs_cover_non_monotonic_memory_types() {
        // Memory types may place later data at earlier buffer offsets
        // (file views reject that; memory layouts must not). Runs follow
        // data order and still reassemble to the packed gather.
        let dt = Datatype::indexed(vec![(4, 2), (0, 2)], Datatype::bytes(1));
        let m = MemLayout::new(Arc::new(flatten(&dt)), 2);
        let buf: Vec<u8> = (10..10 + m.span() as u8).collect();
        let runs: Vec<_> = m.run_offsets(0, m.total()).collect();
        // Data order within each tile: the displ-4 segment first.
        assert_eq!(runs[0].0, 4, "first run must sit at buffer offset 4");
        assert_eq!(runs[1].0, 0, "second run wraps back to buffer offset 0");
        let mut want = vec![0u8; m.total() as usize];
        m.gather(&buf, 0, &mut want);
        let got: Vec<u8> = m.runs(&buf, 0, m.total()).flat_map(|r| r.bytes.to_vec()).collect();
        assert_eq!(got, want);
        // Scatter is gather's inverse on the touched bytes.
        let mut back = vec![0u8; m.span() as usize];
        m.scatter(&mut back, 0, &want);
        let mut expect = vec![0u8; m.span() as usize];
        for (buf_off, _, len) in m.run_offsets(0, m.total()) {
            let (o, l) = (buf_off as usize, len as usize);
            expect[o..o + l].copy_from_slice(&buf[o..o + l]);
        }
        assert_eq!(back, expect);
    }

    #[test]
    fn cursor_streams_pieces() {
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let v = view(0, &dt);
        let mut c = v.cursor(0);
        assert_eq!(c.take(100), Piece { file_off: 0, data_pos: 0, len: 4 });
        assert_eq!(c.take(2), Piece { file_off: 8, data_pos: 4, len: 2 });
        assert_eq!(c.take(100), Piece { file_off: 10, data_pos: 6, len: 2 });
        assert_eq!(c.take(1), Piece { file_off: 16, data_pos: 8, len: 1 });
    }

    #[test]
    fn cursor_seek_mid_segment() {
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let v = view(0, &dt);
        let mut c = v.cursor(6);
        assert_eq!(c.data_pos(), 6);
        assert_eq!(c.file_off(), 10);
        assert_eq!(c.take(100).len, 2);
    }

    #[test]
    fn advance_to_file_skips_tiles_cheaply() {
        // Succinct: 1 seg/tile, 1000 tiles to skip -> O(1) evals.
        let dt = Datatype::resized(0, 192, Datatype::bytes(64));
        let v = view(0, &dt);
        let mut c = v.cursor(0);
        c.advance_to_file(192 * 1000);
        let e_succinct = c.evaluated();
        assert!(e_succinct < 8, "tile skip should be O(1), got {e_succinct}");
        assert_eq!(c.file_off(), 192 * 1000);

        // Enumerated: 1000 segs in one tile -> linear scan.
        let enumerated = Datatype::vector(1000, 1, 3, Datatype::bytes(64));
        let v2 = view(0, &enumerated);
        let mut c2 = v2.cursor(0);
        c2.advance_to_file(192 * 999);
        assert!(c2.evaluated() > 900, "enumerated type must scan, got {}", c2.evaluated());
        assert_eq!(c2.file_off(), 192 * 999);
    }

    #[test]
    fn advance_to_file_lands_mid_segment() {
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let v = view(0, &dt);
        let mut c = v.cursor(0);
        c.advance_to_file(10);
        assert_eq!(c.file_off(), 10);
        assert_eq!(c.data_pos(), 6);
    }

    #[test]
    fn advance_to_file_gap_lands_next_segment() {
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let v = view(0, &dt);
        let mut c = v.cursor(0);
        c.advance_to_file(5); // inside the gap [4,8)
        assert_eq!(c.file_off(), 8);
        assert_eq!(c.data_pos(), 4);
    }

    #[test]
    fn take_below_clips() {
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let v = view(0, &dt);
        let mut c = v.cursor(0);
        let p = c.take_below(2, 100).unwrap();
        assert_eq!(p.len, 2);
        let p = c.take_below(3, 100).unwrap();
        assert_eq!(p.len, 1);
        let p = c.take_below(100, 100).unwrap(); // finish first segment
        assert_eq!((p.file_off, p.len), (3, 1));
        assert!(c.take_below(8, 100).is_none()); // next data at 8
        let p = c.take_below(9, 100).unwrap();
        assert_eq!((p.file_off, p.len), (8, 1));
    }

    #[test]
    fn contiguous_view() {
        let v = FileView::contiguous(50);
        assert!(v.is_contiguous());
        assert_eq!(v.data_to_file(10), 60);
        assert_eq!(v.file_to_data_lower(60), 10);
    }

    #[test]
    fn access_range() {
        let dt = Datatype::resized(0, 8, Datatype::bytes(4));
        let v = view(100, &dt);
        assert_eq!(v.access_range(0, 4), (100, 104));
        assert_eq!(v.access_range(0, 5), (100, 109));
        assert_eq!(v.access_range(2, 4), (102, 110));
    }

    #[test]
    fn memlayout_gather_scatter_contig() {
        let m = MemLayout::contiguous(8);
        let buf = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut out = [0u8; 4];
        m.gather(&buf, 2, &mut out);
        assert_eq!(out, [3, 4, 5, 6]);
        let mut buf2 = [0u8; 8];
        m.scatter(&mut buf2, 3, &[9, 9]);
        assert_eq!(buf2, [0, 0, 0, 9, 9, 0, 0, 0]);
    }

    #[test]
    fn memlayout_noncontig() {
        // memtype: x..x (4 data bytes at 0..2 and 3..5? no: segs (0,2),(3,2)), extent 5
        let dt = Datatype::hindexed(vec![(0, 2), (3, 2)], Datatype::bytes(1));
        let flat = Arc::new(flatten(&dt));
        let m = MemLayout::new(flat, 2);
        assert_eq!(m.total(), 8);
        assert_eq!(m.span(), 10);
        let buf: Vec<u8> = (0..10).collect();
        let mut out = [0u8; 8];
        m.gather(&buf, 0, &mut out);
        assert_eq!(out, [0, 1, 3, 4, 5, 6, 8, 9]);
        let mut buf2 = vec![0u8; 10];
        m.scatter(&mut buf2, 0, &[10, 11, 12, 13, 14, 15, 16, 17]);
        assert_eq!(buf2, vec![10, 11, 0, 12, 13, 14, 15, 0, 16, 17]);
    }

    #[test]
    fn memlayout_nonmonotonic_ok() {
        // memory type visiting bytes out of order: (4,2) then (0,2)
        let dt = Datatype::hindexed(vec![(4, 2), (0, 2)], Datatype::bytes(1));
        let flat = Arc::new(flatten(&dt));
        let m = MemLayout::new(flat, 1);
        let buf = [0u8, 1, 2, 3, 4, 5];
        let mut out = [0u8; 4];
        m.gather(&buf, 0, &mut out);
        assert_eq!(out, [4, 5, 0, 1]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let dt = Datatype::hindexed(vec![(1, 3), (6, 2)], Datatype::bytes(1));
        let flat = Arc::new(flatten(&dt));
        let src: Vec<u8> = (0..20).collect();
        let packed = pack(&flat, 2, &src);
        // extent = 7 (lb 1, ub 8): instance 1 starts at byte 7.
        assert_eq!(packed, vec![1, 2, 3, 6, 7, 8, 9, 10, 13, 14]);
        let mut dst = vec![0u8; 20];
        unpack(&flat, 2, &packed, &mut dst);
        let repacked = pack(&flat, 2, &dst);
        assert_eq!(repacked, packed);
    }

    #[test]
    #[should_panic(expected = "packed size mismatch")]
    fn unpack_size_checked() {
        let flat = Arc::new(crate::flatten::FlatType::contiguous_bytes(4));
        unpack(&flat, 1, &[1, 2, 3], &mut [0u8; 4]);
    }

    #[test]
    fn memlayout_gather_partial_ranges() {
        let dt = Datatype::hindexed(vec![(0, 2), (3, 2)], Datatype::bytes(1));
        let flat = Arc::new(flatten(&dt));
        let m = MemLayout::new(flat, 2);
        let buf: Vec<u8> = (0..10).collect();
        let mut out = [0u8; 3];
        m.gather(&buf, 3, &mut out);
        assert_eq!(out, [4, 5, 6]);
    }
}
