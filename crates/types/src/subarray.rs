//! N-dimensional subarray and distributed-array datatype constructors —
//! the `MPI_Type_create_subarray` / `MPI_Type_create_darray` conveniences
//! that scientific applications use to describe tiles and block-cyclic
//! decompositions of global arrays.

use crate::datatype::{Datatype, Dt};

/// Build the datatype selecting an N-dimensional subarray of a global
/// array (row-major order, like `MPI_ORDER_C`).
///
/// * `sizes` — global array extent per dimension (elements);
/// * `subsizes` — selected block extent per dimension;
/// * `starts` — block origin per dimension;
/// * `elem_size` — bytes per element.
///
/// The result is resized to the full array extent, so tiling it in a file
/// view leaves the rest of the array untouched.
pub fn subarray(sizes: &[u64], subsizes: &[u64], starts: &[u64], elem_size: u64) -> Dt {
    assert!(!sizes.is_empty(), "subarray needs at least one dimension");
    assert_eq!(sizes.len(), subsizes.len());
    assert_eq!(sizes.len(), starts.len());
    for d in 0..sizes.len() {
        assert!(
            starts[d] + subsizes[d] <= sizes[d],
            "subarray out of bounds in dimension {d}"
        );
        assert!(subsizes[d] > 0, "empty subarray dimension {d}");
    }
    // Innermost dimension: a contiguous run of elements.
    let ndims = sizes.len();
    let mut dt = Datatype::bytes(subsizes[ndims - 1] * elem_size);
    // Row stride of the innermost dimension in bytes.
    let mut row_bytes = sizes[ndims - 1] * elem_size;
    // Wrap outward: each outer dimension strides by the global row size.
    for d in (0..ndims - 1).rev() {
        dt = Datatype::hvector(subsizes[d], 1, row_bytes as i64, dt);
        row_bytes *= sizes[d];
    }
    // Shift to the block origin.
    let mut origin = 0u64;
    let mut stride = elem_size;
    for d in (0..ndims).rev() {
        origin += starts[d] * stride;
        stride *= sizes[d];
    }
    let placed = Datatype::structure(vec![(origin as i64, 1, dt)]);
    let total: u64 = sizes.iter().product::<u64>() * elem_size;
    Datatype::resized(0, total, placed)
}

/// Distribution kinds for [`darray`] dimensions (a subset of
/// `MPI_Type_create_darray`'s options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// `MPI_DISTRIBUTE_BLOCK`: contiguous blocks of `ceil(n/p)` elements.
    Block,
    /// `MPI_DISTRIBUTE_CYCLIC(k)`: round-robin blocks of `k` elements.
    Cyclic(u64),
    /// `MPI_DISTRIBUTE_NONE`: the dimension is not distributed.
    None,
}

/// Build the datatype selecting one process's portion of a block/cyclic
/// distributed global array (row-major). `psizes` is the process grid;
/// `coords` this process's grid coordinates.
pub fn darray(
    sizes: &[u64],
    distribs: &[Distribution],
    psizes: &[u64],
    coords: &[u64],
    elem_size: u64,
) -> Dt {
    let ndims = sizes.len();
    assert!(ndims > 0);
    assert_eq!(distribs.len(), ndims);
    assert_eq!(psizes.len(), ndims);
    assert_eq!(coords.len(), ndims);
    for d in 0..ndims {
        assert!(coords[d] < psizes[d], "coordinate out of grid in dimension {d}");
        if matches!(distribs[d], Distribution::None) {
            assert_eq!(psizes[d], 1, "DISTRIBUTE_NONE requires a 1-wide grid dimension");
        }
    }

    // Per-dimension list of (start, len) element ranges owned by this rank.
    let owned: Vec<Vec<(u64, u64)>> = (0..ndims)
        .map(|d| match distribs[d] {
            Distribution::None => vec![(0, sizes[d])],
            Distribution::Block => {
                let b = sizes[d].div_ceil(psizes[d]);
                let start = (coords[d] * b).min(sizes[d]);
                let end = ((coords[d] + 1) * b).min(sizes[d]);
                if start < end {
                    vec![(start, end - start)]
                } else {
                    vec![]
                }
            }
            Distribution::Cyclic(k) => {
                assert!(k > 0, "cyclic block size must be positive");
                let mut v = Vec::new();
                let mut s = coords[d] * k;
                while s < sizes[d] {
                    v.push((s, k.min(sizes[d] - s)));
                    s += k * psizes[d];
                }
                v
            }
        })
        .collect();

    // Innermost dimension first: blocks of contiguous elements.
    let ndim_last = ndims - 1;
    let mut dt = blocks_to_type(
        &owned[ndim_last],
        elem_size,
        Datatype::bytes(elem_size),
        elem_size,
    );
    let mut row_bytes = sizes[ndim_last] * elem_size;
    for d in (0..ndim_last).rev() {
        dt = blocks_to_type(&owned[d], row_bytes, dt, row_bytes);
        row_bytes *= sizes[d];
    }
    let total: u64 = sizes.iter().product::<u64>() * elem_size;
    Datatype::resized(0, total, dt)
}

/// Hindexed wrapper placing `child` at each `(start, len)` block scaled by
/// `unit` bytes; `child_stride` is the byte stride between consecutive
/// child instances inside a block.
fn blocks_to_type(blocks: &[(u64, u64)], unit: u64, child: Dt, child_stride: u64) -> Dt {
    if blocks.is_empty() {
        // Own nothing in this dimension: an empty type.
        return Datatype::bytes(0);
    }
    let per_block: Vec<(i64, u64, Dt)> = blocks
        .iter()
        .map(|&(start, len)| {
            let inner = if len == 1 {
                child.clone()
            } else {
                Datatype::hvector(len, 1, child_stride as i64, child.clone())
            };
            ((start * unit) as i64, 1u64, inner)
        })
        .collect();
    Datatype::structure(per_block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten;

    fn segs(dt: &Dt) -> Vec<(i64, u64)> {
        flatten(dt).segs.iter().map(|s| (s.off, s.len)).collect()
    }

    #[test]
    fn subarray_1d() {
        let t = subarray(&[10], &[4], &[3], 2);
        assert_eq!(segs(&t), vec![(6, 8)]);
        assert_eq!(t.extent(), 20);
    }

    #[test]
    fn subarray_2d_matches_helper() {
        let a = subarray(&[4, 4], &[2, 2], &[1, 1], 1);
        let b = Datatype::subarray_2d(4, 4, 1, 1, 1, 2, 2);
        assert_eq!(segs(&a), segs(&b));
        assert_eq!(a.extent(), b.extent());
    }

    #[test]
    fn subarray_3d() {
        // 2x3x4 array of 1-byte elements; select [1..2, 1..3, 1..3].
        let t = subarray(&[2, 3, 4], &[1, 2, 2], &[1, 1, 1], 1);
        // plane 1 (offset 12), rows 1..3 (offsets 4, 8), cols 1..3.
        assert_eq!(segs(&t), vec![(12 + 4 + 1, 2), (12 + 8 + 1, 2)]);
        assert_eq!(t.extent(), 24);
        assert_eq!(t.size(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subarray_bounds_checked() {
        let _ = subarray(&[4, 4], &[2, 2], &[3, 1], 1);
    }

    #[test]
    fn darray_block_1d() {
        // 10 elements over 3 procs, block: ceil(10/3)=4 -> 4,4,2.
        let t0 = darray(&[10], &[Distribution::Block], &[3], &[0], 1);
        let t1 = darray(&[10], &[Distribution::Block], &[3], &[1], 1);
        let t2 = darray(&[10], &[Distribution::Block], &[3], &[2], 1);
        assert_eq!(segs(&t0), vec![(0, 4)]);
        assert_eq!(segs(&t1), vec![(4, 4)]);
        assert_eq!(segs(&t2), vec![(8, 2)]);
        // Every element owned exactly once.
        let total: u64 = [&t0, &t1, &t2].iter().map(|t| t.size()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn darray_cyclic_1d() {
        // 10 elements, cyclic(2) over 2 procs.
        let t0 = darray(&[10], &[Distribution::Cyclic(2)], &[2], &[0], 1);
        let t1 = darray(&[10], &[Distribution::Cyclic(2)], &[2], &[1], 1);
        assert_eq!(segs(&t0), vec![(0, 2), (4, 2), (8, 2)]);
        assert_eq!(segs(&t1), vec![(2, 2), (6, 2)]);
    }

    #[test]
    fn darray_2d_block_block() {
        // 4x4 over a 2x2 grid: quadrants.
        for (coords, want) in [
            ([0u64, 0u64], vec![(0i64, 2u64), (4, 2)]),
            ([0, 1], vec![(2, 2), (6, 2)]),
            ([1, 0], vec![(8, 2), (12, 2)]),
            ([1, 1], vec![(10, 2), (14, 2)]),
        ] {
            let t = darray(
                &[4, 4],
                &[Distribution::Block, Distribution::Block],
                &[2, 2],
                &coords,
                1,
            );
            assert_eq!(segs(&t), want, "coords {coords:?}");
            assert_eq!(t.extent(), 16);
        }
    }

    #[test]
    fn darray_none_dimension() {
        // Rows distributed, columns whole.
        let t = darray(
            &[4, 4],
            &[Distribution::Block, Distribution::None],
            &[2, 1],
            &[1, 0],
            1,
        );
        assert_eq!(segs(&t), vec![(8, 8)]);
    }

    #[test]
    fn darray_partition_complete_2d_cyclic() {
        // Full coverage check: every byte of a 6x6 array owned by exactly
        // one rank of a 2x3 grid under cyclic(1) x cyclic(2).
        let mut owner = vec![0u32; 36];
        for pr in 0..2u64 {
            for pc in 0..3u64 {
                let t = darray(
                    &[6, 6],
                    &[Distribution::Cyclic(1), Distribution::Cyclic(2)],
                    &[2, 3],
                    &[pr, pc],
                    1,
                );
                for s in flatten(&t).segs {
                    for b in s.off..s.end() {
                        owner[b as usize] += 1;
                    }
                }
            }
        }
        assert!(owner.iter().all(|&c| c == 1), "ownership not a partition: {owner:?}");
    }

    #[test]
    fn darray_more_procs_than_blocks() {
        // 3 elements over 4 procs, block size ceil(3/4)=1: proc 3 owns none.
        let t3 = darray(&[3], &[Distribution::Block], &[4], &[3], 1);
        assert_eq!(t3.size(), 0);
    }
}
