//! # flexio-types — MPI-style derived datatypes for collective I/O
//!
//! This crate provides the data-description layer of the flexio stack:
//!
//! * [`Datatype`] — recursive MPI type constructors (contiguous, vector,
//!   hvector, indexed, hindexed, struct, resized);
//! * [`FlatType`] — the *flattened datatype* of the paper's §5.3: the `D`
//!   offset/length pairs of one instance plus extent, the representation
//!   exchanged between clients and aggregators;
//! * [`FileView`] / [`ViewCursor`] — `MPI_File_set_view` semantics with a
//!   streaming cursor that implements the "skip full datatypes"
//!   optimization and counts offset/length-pair evaluations, so the
//!   compute cost of datatype processing is measurable;
//! * [`MemLayout`] — gather/scatter between user buffers described by
//!   (possibly non-monotonic) memory datatypes and packed byte streams.

#![warn(missing_docs)]

pub mod datatype;
pub mod flatten;
pub mod subarray;
pub mod view;

pub use datatype::{Datatype, Dt};
pub use flatten::{flatten, flatten_shared, FlatType, Seg};
pub use subarray::{darray, subarray, Distribution};
pub use view::{
    pack, unpack, FileView, MemLayout, MemRun, MemRuns, Piece, RunOffsets, ViewCursor, ViewError,
};

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    /// Recursive strategy for arbitrary datatypes with bounded size.
    fn arb_dt() -> impl Strategy<Value = Dt> {
        let leaf = (1u64..16).prop_map(Datatype::bytes);
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                (1u64..5, inner.clone()).prop_map(|(c, ch)| Datatype::contiguous(c, ch)),
                (1u64..4, 1u64..3, 1i64..5, inner.clone())
                    .prop_map(|(c, b, s, ch)| Datatype::vector(c, b, s.max(b as i64), ch)),
                (1u64..4, 1u64..3, inner.clone()).prop_map(|(c, b, ch)| {
                    let ext = ch.extent() as i64;
                    Datatype::hvector(c, b, (b as i64 * ext).max(1) + 3, ch)
                }),
                proptest::collection::vec((0i64..6, 1u64..3), 1..4).prop_map(|mut blocks| {
                    // Keep displacements monotonic & non-overlapping so the
                    // result is view-compatible.
                    blocks.sort_unstable();
                    let mut cur = 0i64;
                    let fixed: Vec<(i64, u64)> = blocks
                        .into_iter()
                        .map(|(d, bl)| {
                            let place = cur.max(d);
                            cur = place + bl as i64;
                            (place, bl)
                        })
                        .collect();
                    Datatype::indexed(fixed, Datatype::bytes(2))
                }),
            ]
        })
    }

    proptest! {
        /// size() always equals the sum of flattened segment lengths.
        #[test]
        fn size_matches_flatten(dt in arb_dt()) {
            let f = flatten(&dt);
            prop_assert_eq!(f.size, dt.size());
        }

        /// All flattened segments lie within [lb, ub).
        #[test]
        fn segs_within_bounds(dt in arb_dt()) {
            let (lb, ub) = dt.bounds();
            let f = flatten(&dt);
            for s in &f.segs {
                prop_assert!(s.off >= lb, "seg {:?} below lb {}", s, lb);
                prop_assert!(s.end() <= ub, "seg {:?} above ub {}", s, ub);
            }
        }

        /// Wire round-trip is lossless.
        #[test]
        fn wire_roundtrip(dt in arb_dt()) {
            let f = flatten(&dt);
            prop_assert_eq!(FlatType::from_wire(&f.to_wire()), f);
        }

        /// data_to_file is strictly increasing and file_to_data_lower inverts it.
        #[test]
        fn view_mapping_bijective(dt in arb_dt(), disp in 0u64..64) {
            let f = flatten(&dt);
            prop_assume!(f.size > 0 && f.monotonic);
            prop_assume!(f.segs.first().map(|s| s.off >= 0).unwrap_or(true));
            let ub = f.segs.last().map(|s| s.end()).unwrap_or(0);
            prop_assume!(f.extent as i64 >= ub);
            let v = FileView::new(disp, Arc::new(f), 1).unwrap();
            let mut prev = None;
            for d in 0..64u64 {
                let off = v.data_to_file(d);
                if let Some(p) = prev {
                    prop_assert!(off > p, "offsets must be strictly increasing");
                }
                prev = Some(off);
                prop_assert_eq!(v.file_to_data_lower(off), d);
            }
        }

        /// Cursor streaming visits exactly the bytes data_to_file enumerates.
        #[test]
        fn cursor_agrees_with_mapping(dt in arb_dt(), start in 0u64..32, chunk in 1u64..7) {
            let f = flatten(&dt);
            prop_assume!(f.size > 0 && f.monotonic);
            prop_assume!(f.segs.first().map(|s| s.off >= 0).unwrap_or(true));
            let ub = f.segs.last().map(|s| s.end()).unwrap_or(0);
            prop_assume!(f.extent as i64 >= ub);
            let v = FileView::new(3, Arc::new(f), 1).unwrap();
            let mut c = v.cursor(start);
            let mut d = start;
            for _ in 0..40 {
                let p = c.take(chunk);
                prop_assert_eq!(p.data_pos, d);
                for k in 0..p.len {
                    prop_assert_eq!(v.data_to_file(d + k), p.file_off + k);
                }
                d += p.len;
            }
        }

        /// advance_to_file positions exactly at file_to_data_lower's answer.
        #[test]
        fn advance_matches_lower_bound(dt in arb_dt(), target in 0u64..512) {
            let f = flatten(&dt);
            prop_assume!(f.size > 0 && f.monotonic);
            prop_assume!(f.segs.first().map(|s| s.off >= 0).unwrap_or(true));
            let ub = f.segs.last().map(|s| s.end()).unwrap_or(0);
            prop_assume!(f.extent as i64 >= ub);
            let v = FileView::new(0, Arc::new(f), 1).unwrap();
            let mut c = v.cursor(0);
            c.advance_to_file(target);
            prop_assert_eq!(c.data_pos(), v.file_to_data_lower(target));
        }

        /// Gather followed by scatter into a fresh buffer restores data bytes.
        #[test]
        fn gather_scatter_roundtrip(dt in arb_dt(), count in 1u64..4) {
            let f = flatten(&dt);
            prop_assume!(f.size > 0);
            prop_assume!(f.segs.iter().all(|s| s.off >= 0));
            let m = MemLayout::new(Arc::new(f), count);
            let span = m.span() as usize;
            let buf: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
            let total = m.total() as usize;
            let mut packed = vec![0u8; total];
            m.gather(&buf, 0, &mut packed);
            let mut restored = vec![0u8; span];
            m.scatter(&mut restored, 0, &packed);
            let mut packed2 = vec![0u8; total];
            m.gather(&restored, 0, &mut packed2);
            prop_assert_eq!(packed, packed2);
        }
    }
}
