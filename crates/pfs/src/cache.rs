//! Client-side write-back page cache.
//!
//! Pages are cached only under held locks; the [`crate::fs`] layer flushes
//! and invalidates a client's pages when its lock is revoked, which is what
//! makes the cache coherent — and what makes lock ping-pong expensive. In a
//! write-only workload with persistent file realms every byte has a single
//! writer, so locks are never revoked and dirty pages accumulate cheaply
//! (§6.4's "usefulness of an incoherent client-side cache").

use std::collections::HashMap;

/// One cached page.
#[derive(Debug, Clone)]
struct Page {
    data: Box<[u8]>,
    dirty: bool,
}

/// A page-granular write-back cache for one (client, file) pair.
#[derive(Debug, Default)]
pub struct ClientCache {
    pages: HashMap<u64, Page>,
    page_size: u64,
    hits: u64,
    misses: u64,
}

/// A contiguous dirty run ready to be written back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyRun {
    /// Absolute file offset of the run start (page aligned).
    pub off: u64,
    /// The bytes to write.
    pub data: Vec<u8>,
}

impl ClientCache {
    /// New cache with the given page size.
    pub fn new(page_size: u64) -> Self {
        ClientCache { pages: HashMap::new(), page_size, hits: 0, misses: 0 }
    }

    /// Is the page containing `off` cached?
    pub fn has_page(&self, page_idx: u64) -> bool {
        self.pages.contains_key(&page_idx)
    }

    /// Page index of `off`.
    pub fn page_of(&self, off: u64) -> u64 {
        off / self.page_size
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// `(cache_hits, cache_misses)` counted by [`ClientCache::read`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Insert a clean page fetched from the server.
    pub fn fill(&mut self, page_idx: u64, data: Vec<u8>) {
        debug_assert_eq!(data.len() as u64, self.page_size);
        self.pages
            .entry(page_idx)
            .or_insert(Page { data: data.into_boxed_slice(), dirty: false });
    }

    /// Page indices in `[off, off+len)` that are *not* cached (and would
    /// need filling before a partial write or a read).
    pub fn missing_pages(&self, off: u64, len: u64) -> Vec<u64> {
        if len == 0 {
            return Vec::new();
        }
        let first = off / self.page_size;
        let last = (off + len - 1) / self.page_size;
        (first..=last).filter(|p| !self.pages.contains_key(p)).collect()
    }

    /// Write `data` at `off` into the cache, marking pages dirty. Pages
    /// that are fully overwritten are created on demand; partially
    /// overwritten pages must already be cached (fill them first via
    /// [`ClientCache::missing_pages`] + [`ClientCache::fill`]).
    pub fn write(&mut self, off: u64, data: &[u8]) {
        let ps = self.page_size;
        let mut pos = 0u64;
        let len = data.len() as u64;
        while pos < len {
            let abs = off + pos;
            let page_idx = abs / ps;
            let in_page = abs % ps;
            let n = (ps - in_page).min(len - pos);
            let page = self.pages.entry(page_idx).or_insert_with(|| {
                debug_assert!(
                    in_page == 0 && n == ps,
                    "partial write to uncached page {page_idx}; fill it first"
                );
                Page { data: vec![0u8; ps as usize].into_boxed_slice(), dirty: false }
            });
            page.data[in_page as usize..(in_page + n) as usize]
                .copy_from_slice(&data[pos as usize..(pos + n) as usize]);
            page.dirty = true;
            pos += n;
        }
    }

    /// Read `buf.len()` bytes at `off`. Every page must be cached (fill
    /// misses first). Returns the number of page hits counted.
    pub fn read(&mut self, off: u64, buf: &mut [u8]) {
        let ps = self.page_size;
        let mut pos = 0u64;
        let len = buf.len() as u64;
        while pos < len {
            let abs = off + pos;
            let page_idx = abs / ps;
            let in_page = abs % ps;
            let n = (ps - in_page).min(len - pos);
            let page = self.pages.get(&page_idx).expect("read of uncached page; fill first");
            buf[pos as usize..(pos + n) as usize]
                .copy_from_slice(&page.data[in_page as usize..(in_page + n) as usize]);
            self.hits += 1;
            pos += n;
        }
    }

    /// Record a miss (the fs layer calls this when it has to fetch).
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Collect dirty pages intersecting `[start, end)` as coalesced runs,
    /// marking them clean. Runs are page-aligned and sorted.
    pub fn take_dirty(&mut self, start: u64, end: u64) -> Vec<DirtyRun> {
        let ps = self.page_size;
        let mut idxs: Vec<u64> = self
            .pages
            .iter()
            .filter(|(idx, p)| {
                let p_start = **idx * ps;
                p.dirty && p_start < end && p_start + ps > start
            })
            .map(|(idx, _)| *idx)
            .collect();
        idxs.sort_unstable();
        let mut runs: Vec<DirtyRun> = Vec::new();
        for idx in idxs {
            let page = self.pages.get_mut(&idx).unwrap();
            page.dirty = false;
            let bytes = page.data.to_vec();
            match runs.last_mut() {
                Some(r) if r.off + r.data.len() as u64 == idx * ps => r.data.extend(bytes),
                _ => runs.push(DirtyRun { off: idx * ps, data: bytes }),
            }
        }
        runs
    }

    /// Collect *all* dirty pages as coalesced runs, marking them clean.
    pub fn take_all_dirty(&mut self) -> Vec<DirtyRun> {
        self.take_dirty(0, u64::MAX)
    }

    /// Drop (invalidate) every page intersecting `[start, end)`. Dirty
    /// pages must have been flushed first.
    pub fn invalidate(&mut self, start: u64, end: u64) {
        let ps = self.page_size;
        self.pages.retain(|idx, p| {
            let p_start = idx * ps;
            let inside = p_start < end && p_start + ps > start;
            debug_assert!(!(inside && p.dirty), "invalidating dirty page {idx}");
            !inside
        });
    }

    /// Count of dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_page_write_then_read() {
        let mut c = ClientCache::new(16);
        c.write(16, &[7u8; 16]);
        let mut buf = [0u8; 16];
        c.read(16, &mut buf);
        assert_eq!(buf, [7u8; 16]);
        assert_eq!(c.dirty_pages(), 1);
    }

    #[test]
    fn write_spanning_pages() {
        let mut c = ClientCache::new(16);
        c.write(0, &[1u8; 48]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dirty_pages(), 3);
        let mut buf = [0u8; 48];
        c.read(0, &mut buf);
        assert_eq!(buf, [1u8; 48]);
    }

    #[test]
    fn partial_write_requires_fill() {
        let mut c = ClientCache::new(16);
        assert_eq!(c.missing_pages(4, 8), vec![0]);
        c.fill(0, vec![9u8; 16]);
        c.write(4, &[1, 2, 3]);
        let mut buf = [0u8; 16];
        c.read(0, &mut buf);
        assert_eq!(&buf[..8], &[9, 9, 9, 9, 1, 2, 3, 9]);
    }

    #[test]
    fn take_dirty_coalesces() {
        let mut c = ClientCache::new(16);
        c.write(0, &[1u8; 16]);
        c.write(16, &[2u8; 16]);
        c.write(64, &[3u8; 16]);
        let runs = c.take_all_dirty();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].off, 0);
        assert_eq!(runs[0].data.len(), 32);
        assert_eq!(runs[1].off, 64);
        assert_eq!(c.dirty_pages(), 0);
        // Pages remain cached (clean) after flush.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn take_dirty_range_limited() {
        let mut c = ClientCache::new(16);
        c.write(0, &[1u8; 16]);
        c.write(32, &[2u8; 16]);
        let runs = c.take_dirty(0, 16);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].off, 0);
        assert_eq!(c.dirty_pages(), 1);
    }

    #[test]
    fn invalidate_drops_clean_pages() {
        let mut c = ClientCache::new(16);
        c.write(0, &[1u8; 32]);
        let _ = c.take_all_dirty();
        c.invalidate(0, 16);
        assert_eq!(c.len(), 1);
        assert!(!c.has_page(0));
        assert!(c.has_page(1));
    }

    #[test]
    fn missing_pages_reports_gaps() {
        let mut c = ClientCache::new(16);
        c.fill(1, vec![0u8; 16]);
        assert_eq!(c.missing_pages(0, 64), vec![0, 2, 3]);
        assert_eq!(c.missing_pages(16, 16), Vec::<u64>::new());
        assert_eq!(c.missing_pages(0, 0), Vec::<u64>::new());
    }
}
