//! Extent-lock manager: a miniature Lustre DLM.
//!
//! Locks are held per client as sets of disjoint byte extents (the caller
//! rounds requests outward — the file system expands lock requests to
//! stripe boundaries, which is how unaligned file realms come to ping-pong
//! boundary stripes between aggregators, §6.4).
//!
//! Acquiring a range that another client holds *revokes* the overlap: the
//! victim's overlapping extent is shrunk and the caller learns which ranges
//! were taken so it can flush/invalidate the victim's cached pages. A
//! request fully covered by locks the client already holds is free — the
//! persistent-file-realm win.

use crate::extent::ExtentSet;
use std::collections::HashMap;

/// Lock state for one file.
#[derive(Debug)]
pub struct LockTable {
    held: HashMap<usize, ExtentSet>,
    grants: u64,
    revocations: u64,
    /// Lustre-style lock expansion: grow each grant into the free space
    /// around it (up to the nearest other holder, or 0 / ∞). This is what
    /// makes an uncontended writer own `[0, ∞)` after one request — and
    /// what makes *shifting* realm assignments revoke locks every
    /// collective call (§6.4).
    expand: bool,
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable::new(true)
    }
}

/// Result of a lock acquisition.
#[derive(Debug, PartialEq, Eq)]
pub struct Acquire {
    /// The request was already fully covered by this client's locks.
    pub already_held: bool,
    /// `(victim_client, start, end)` ranges revoked from other clients,
    /// whose cached pages must be flushed and invalidated.
    pub revoked: Vec<(usize, u64, u64)>,
}

impl LockTable {
    /// New table; `expand` enables Lustre-style grant expansion.
    pub fn new(expand: bool) -> Self {
        LockTable { held: HashMap::new(), grants: 0, revocations: 0, expand }
    }

    /// Acquire `[start, end)` for `client`, revoking conflicting holders.
    /// With expansion on, the granted extent grows into the free space
    /// around the request.
    pub fn acquire(&mut self, client: usize, start: u64, end: u64) -> Acquire {
        debug_assert!(start < end);
        if self.held.get(&client).map(|s| s.covers(start, end)).unwrap_or(false) {
            return Acquire { already_held: true, revoked: Vec::new() };
        }
        let mut revoked = Vec::new();
        for (&other, set) in self.held.iter_mut() {
            if other == client {
                continue;
            }
            if self.expand {
                // Lustre-style whole-lock cancellation: a conflicting lock
                // is cancelled in its entirety, not trimmed.
                let overlapping: Vec<(u64, u64)> = set
                    .ranges()
                    .iter()
                    .copied()
                    .filter(|&(s, e)| s < end && e > start)
                    .collect();
                for (s, e) in overlapping {
                    set.remove(s, e);
                    revoked.push((other, s, e));
                }
            } else {
                // Precise mode: shrink only the overlap.
                for (s, e) in set.intersect(start, end) {
                    set.remove(s, e);
                    revoked.push((other, s, e));
                }
            }
        }
        revoked.sort_unstable();
        self.revocations += revoked.len() as u64;
        self.grants += 1;
        let (mut lo, mut hi) = (start, end);
        if self.expand && revoked.is_empty() {
            // Uncontended: expand into the free gap around the request, up
            // to the nearest extent of any other client (Lustre grants a
            // sole writer `[0, ∞)` after one request). Contended grants
            // stay exact — re-expanding over a peer we just cancelled
            // would ping-pong forever.
            lo = 0;
            hi = u64::MAX;
            for (&other, set) in self.held.iter() {
                if other == client {
                    continue;
                }
                for &(s, e) in set.ranges() {
                    if e <= start {
                        lo = lo.max(e);
                    }
                    if s >= end {
                        hi = hi.min(s);
                    }
                }
            }
        }
        self.held.entry(client).or_default().insert(lo, hi);
        Acquire { already_held: false, revoked }
    }

    /// Does `client` currently hold all of `[start, end)`?
    pub fn holds(&self, client: usize, start: u64, end: u64) -> bool {
        self.held.get(&client).map(|s| s.covers(start, end)).unwrap_or(start >= end)
    }

    /// Drop all locks held by `client` (file close).
    pub fn release_all(&mut self, client: usize) {
        self.held.remove(&client);
    }

    /// Total grants processed (new lock acquisitions, not cache hits).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total revocations performed.
    pub fn revocations(&self) -> u64 {
        self.revocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_acquire_grants() {
        let mut t = LockTable::new(false);
        let a = t.acquire(0, 0, 100);
        assert!(!a.already_held);
        assert!(a.revoked.is_empty());
        assert!(t.holds(0, 0, 100));
        assert_eq!(t.grants(), 1);
    }

    #[test]
    fn covered_reacquire_is_free() {
        let mut t = LockTable::new(false);
        t.acquire(0, 0, 100);
        let a = t.acquire(0, 10, 50);
        assert!(a.already_held);
        assert_eq!(t.grants(), 1, "no second grant charged");
    }

    #[test]
    fn conflict_revokes_overlap_only() {
        let mut t = LockTable::new(false);
        t.acquire(0, 0, 100);
        let a = t.acquire(1, 50, 150);
        assert!(!a.already_held);
        assert_eq!(a.revoked, vec![(0, 50, 100)]);
        assert!(t.holds(1, 50, 150));
        assert!(t.holds(0, 0, 50));
        assert!(!t.holds(0, 0, 51));
        assert_eq!(t.revocations(), 1);
    }

    #[test]
    fn revokes_multiple_victims() {
        let mut t = LockTable::new(false);
        t.acquire(0, 0, 10);
        t.acquire(1, 10, 20);
        t.acquire(2, 20, 30);
        let a = t.acquire(3, 5, 25);
        assert_eq!(a.revoked, vec![(0, 5, 10), (1, 10, 20), (2, 20, 25)]);
    }

    #[test]
    fn ping_pong_counts_revocations() {
        let mut t = LockTable::new(false);
        for _ in 0..5 {
            t.acquire(0, 0, 10);
            t.acquire(1, 0, 10);
        }
        assert_eq!(t.revocations(), 9); // all but the very first acquire
    }

    #[test]
    fn release_all_clears() {
        let mut t = LockTable::new(false);
        t.acquire(0, 0, 100);
        t.release_all(0);
        assert!(!t.holds(0, 0, 1));
        let a = t.acquire(1, 0, 100);
        assert!(a.revoked.is_empty());
    }

    #[test]
    fn disjoint_clients_no_conflict() {
        let mut t = LockTable::new(false);
        t.acquire(0, 0, 50);
        let a = t.acquire(1, 50, 100);
        assert!(a.revoked.is_empty());
        assert_eq!(t.revocations(), 0);
    }

    #[test]
    fn expansion_grows_to_infinity_when_uncontended() {
        let mut t = LockTable::default();
        t.acquire(0, 100, 200);
        assert!(t.holds(0, 0, 1 << 60), "uncontended grant must expand");
        // A covered reacquire anywhere is free.
        let a = t.acquire(0, 1 << 40, (1 << 40) + 1);
        assert!(a.already_held);
        assert_eq!(t.grants(), 1);
    }

    #[test]
    fn contended_grant_cancels_whole_lock_and_stays_exact() {
        let mut t = LockTable::default();
        t.acquire(0, 0, 100); // expands to [0, MAX)
        let a = t.acquire(1, 200, 300); // cancels 0's whole lock
        assert_eq!(a.revoked, vec![(0, 0, u64::MAX)]);
        // Client 0 lost everything; client 1 got exactly the request.
        assert!(!t.holds(0, 0, 1));
        assert!(t.holds(1, 200, 300));
        assert!(!t.holds(1, 199, 300));
        assert!(!t.holds(1, 200, 301));
    }

    #[test]
    fn expansion_steady_state_no_traffic() {
        // Two clients repeatedly touching their own halves: after warm-up
        // the lock layout stabilizes and no further grants or revocations
        // happen — the PFR + aligned-realm regime.
        let mut t = LockTable::default();
        t.acquire(0, 0, 100); // [0, MAX)
        t.acquire(1, 1000, 1100); // cancels 0, exact grant
        t.acquire(0, 0, 100); // regrant, expands to [0, 1000)
        let (g, r) = (t.grants(), t.revocations());
        for k in 0..10u64 {
            let a = t.acquire(0, k * 10, k * 10 + 10);
            assert!(a.already_held, "step {k} client 0");
            let a = t.acquire(1, 1000 + k * 10, 1010 + k * 10);
            assert!(a.already_held, "step {k} client 1");
        }
        assert_eq!((t.grants(), t.revocations()), (g, r));
    }

    #[test]
    fn uncontended_regrant_expands_into_gap() {
        let mut t = LockTable::default();
        t.acquire(0, 0, 100);
        t.acquire(1, 1000, 1100); // cancels 0
        let a = t.acquire(0, 50, 60); // uncontended now
        assert!(!a.already_held);
        assert!(a.revoked.is_empty());
        assert!(t.holds(0, 0, 1000), "should expand up to the neighbour");
        assert!(!t.holds(0, 0, 1001));
    }
}
