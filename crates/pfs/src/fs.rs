//! The striped file system: OST timing, data storage, lock/cache coherence.
//!
//! Data is stored exactly (a growable byte image per file) so correctness
//! is always byte-accurate; *time* is modelled per OST with per-request,
//! seek, per-byte and page read-modify-write charges. All operations take
//! the caller's virtual `now` and return the virtual completion time — the
//! sim rank advances its own clock with the result.

use crate::cache::ClientCache;
use crate::config::PfsConfig;
use crate::fault::{FaultInjector, FaultPlan, PfsError, PfsErrorKind};
use crate::lock::LockTable;
use std::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global file-system counters (all monotonically increasing).
#[derive(Debug, Default)]
pub struct PfsStats {
    /// OST requests issued (one per stripe chunk).
    pub ost_requests: AtomicU64,
    /// Requests that paid the seek charge.
    pub seeks: AtomicU64,
    /// Payload bytes written (excluding RMW page reads).
    pub bytes_written: AtomicU64,
    /// Payload bytes read.
    pub bytes_read: AtomicU64,
    /// Page reads forced by unaligned write edges.
    pub rmw_page_reads: AtomicU64,
    /// Lock grants (excluding already-held fast paths).
    pub lock_grants: AtomicU64,
    /// Lock revocations.
    pub lock_revocations: AtomicU64,
    /// Bytes flushed from client caches (revocation + explicit flush).
    pub flush_bytes: AtomicU64,
    /// Page fills into client caches.
    pub cache_fills: AtomicU64,
    /// High-water mark of nonblocking ops outstanding on any one handle
    /// (see [`FileHandle::nb_issued`]) — how deep callers actually queue
    /// the nb API, e.g. the collective engine's pipeline depth.
    pub nb_inflight_peak: AtomicU64,
    /// Transient OST request errors injected by the fault plan.
    pub faults_injected: AtomicU64,
    /// Torn writes injected by the fault plan (prefix persisted).
    pub torn_writes: AtomicU64,
    /// Extra service ns charged by straggler-OST windows.
    pub straggler_ns: AtomicU64,
}

/// Plain-value snapshot of [`PfsStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// OST requests issued.
    pub ost_requests: u64,
    /// Requests that paid the seek charge.
    pub seeks: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Payload bytes read.
    pub bytes_read: u64,
    /// Page reads forced by unaligned write edges.
    pub rmw_page_reads: u64,
    /// Lock grants.
    pub lock_grants: u64,
    /// Lock revocations.
    pub lock_revocations: u64,
    /// Bytes flushed from client caches.
    pub flush_bytes: u64,
    /// Page fills into client caches.
    pub cache_fills: u64,
    /// High-water mark of nonblocking ops outstanding on any one handle.
    pub nb_inflight_peak: u64,
    /// Transient OST request errors injected by the fault plan.
    pub faults_injected: u64,
    /// Torn writes injected by the fault plan (prefix persisted).
    pub torn_writes: u64,
    /// Extra service ns charged by straggler-OST windows.
    pub straggler_ns: u64,
}

struct OstState {
    clock: u64,
    /// Last byte-end serviced per file, for seek detection.
    last_end: HashMap<u64, u64>,
}

/// Lock table + client caches for one file, under a single mutex so that
/// revocation (which flushes a *victim's* pages) is atomic with respect to
/// the victim's own cache operations.
struct Coherency {
    table: LockTable,
    caches: HashMap<usize, ClientCache>,
}

/// One file: exact byte image, logical size, coherence state.
pub struct FileObj {
    id: u64,
    content: RwLock<Vec<u8>>,
    size: AtomicU64,
    coherency: Mutex<Coherency>,
    /// Serializes whole read-modify-write cycles (data sieving) against
    /// other clients' writes — the fcntl byte-range lock ROMIO takes
    /// around sieving writes. Plain reads/writes hold it briefly; a sieve
    /// chunk commit holds it across its read + patch + write.
    serial: Mutex<()>,
}

impl FileObj {
    /// Logical file size (highest byte ever written + 1).
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::SeqCst)
    }
}

/// The shared file system.
pub struct Pfs {
    cfg: PfsConfig,
    osts: Vec<Mutex<OstState>>,
    files: Mutex<HashMap<String, Arc<FileObj>>>,
    next_id: AtomicU64,
    stats: PfsStats,
    /// Installed fault injector; `None` (the default) is the fault-free
    /// fast path, charge-identical to a file system built before fault
    /// injection existed.
    fault: Option<FaultInjector>,
}

impl Pfs {
    /// Create a fault-free file system with the given configuration.
    pub fn new(cfg: PfsConfig) -> Arc<Pfs> {
        Self::build(cfg, None)
    }

    /// Create a file system with a seeded fault plan installed.
    pub fn with_faults(cfg: PfsConfig, plan: FaultPlan) -> Arc<Pfs> {
        let inj = FaultInjector::new(plan, cfg.n_osts);
        Self::build(cfg, Some(inj))
    }

    fn build(cfg: PfsConfig, fault: Option<FaultInjector>) -> Arc<Pfs> {
        cfg.validate();
        Arc::new(Pfs {
            cfg,
            osts: (0..cfg.n_osts)
                .map(|_| Mutex::new(OstState { clock: 0, last_end: HashMap::new() }))
                .collect(),
            files: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: PfsStats::default(),
            fault,
        })
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| f.plan())
    }

    /// The configuration.
    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Open (creating if needed) `path` on behalf of `client`.
    pub fn open(self: &Arc<Self>, path: &str, client: usize) -> FileHandle {
        let file = {
            let mut files = self.files.lock().unwrap();
            Arc::clone(files.entry(path.to_string()).or_insert_with(|| {
                Arc::new(FileObj {
                    id: self.next_id.fetch_add(1, Ordering::SeqCst),
                    content: RwLock::new(Vec::new()),
                    size: AtomicU64::new(0),
                    coherency: Mutex::new(Coherency {
                        table: LockTable::new(self.cfg.lock_expansion),
                        caches: HashMap::new(),
                    }),
                    serial: Mutex::new(()),
                })
            }))
        };
        FileHandle { pfs: Arc::clone(self), file, client, nb_inflight: Arc::new(AtomicU64::new(0)) }
    }

    /// Delete a file (for test isolation).
    pub fn unlink(&self, path: &str) {
        self.files.lock().unwrap().remove(path);
    }

    /// Snapshot of the global counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.stats;
        StatsSnapshot {
            ost_requests: s.ost_requests.load(Ordering::SeqCst),
            seeks: s.seeks.load(Ordering::SeqCst),
            bytes_written: s.bytes_written.load(Ordering::SeqCst),
            bytes_read: s.bytes_read.load(Ordering::SeqCst),
            rmw_page_reads: s.rmw_page_reads.load(Ordering::SeqCst),
            lock_grants: s.lock_grants.load(Ordering::SeqCst),
            lock_revocations: s.lock_revocations.load(Ordering::SeqCst),
            flush_bytes: s.flush_bytes.load(Ordering::SeqCst),
            cache_fills: s.cache_fills.load(Ordering::SeqCst),
            nb_inflight_peak: s.nb_inflight_peak.load(Ordering::SeqCst),
            faults_injected: s.faults_injected.load(Ordering::SeqCst),
            torn_writes: s.torn_writes.load(Ordering::SeqCst),
            straggler_ns: s.straggler_ns.load(Ordering::SeqCst),
        }
    }

    /// Time one OST chunk (a request confined to a single stripe) and
    /// update that OST's pipeline clock. Returns the completion time at
    /// the client, or the injected fault detected at that time. A failed
    /// request still occupies the server for its full service time (the
    /// OST did the work and lost the reply, or failed at commit), so OST
    /// clocks advance identically either way.
    fn ost_chunk(
        &self,
        file: &FileObj,
        now: u64,
        off: u64,
        len: u64,
        is_write: bool,
        rmw_pages: u64,
    ) -> Result<u64, PfsError> {
        let c = &self.cfg.cost;
        let ost_idx = self.cfg.ost_of(off);
        let send_bytes = if is_write { len } else { 0 };
        let arrival = now + c.net_ns + (send_bytes as f64 * c.net_ns_per_byte) as u64;
        let span = self.cfg.page_ceil(off + len) - self.cfg.page_floor(off);
        let mut ost = self.osts[ost_idx].lock().unwrap();
        let start = ost.clock.max(arrival);
        let last = ost.last_end.get(&file.id).copied();
        let seek = if last == Some(self.cfg.page_floor(off)) { 0 } else { c.seek_ns };
        if seek > 0 {
            self.stats.seeks.fetch_add(1, Ordering::Relaxed);
        }
        let rmw_ns = (rmw_pages * self.cfg.page_size) as f64 * c.ns_per_byte;
        let dur = c.request_ns + seek + (span as f64 * c.ns_per_byte) as u64 + rmw_ns as u64;
        ost.clock = start + dur;
        ost.last_end.insert(file.id, self.cfg.page_ceil(off + len));
        let done = ost.clock;
        drop(ost);
        self.stats.ost_requests.fetch_add(1, Ordering::Relaxed);
        self.stats.rmw_page_reads.fetch_add(rmw_pages, Ordering::Relaxed);
        let recv_bytes = if is_write { 0 } else { len };
        let mut client_done = done + c.net_ns + (recv_bytes as f64 * c.net_ns_per_byte) as u64;
        if let Some(inj) = &self.fault {
            // A straggler window models elevated per-request latency at a
            // degraded target (RAID rebuild, congested OSS reply path):
            // the requester waits multiplier x the service time, but the
            // target's internal pipeline is not occupied for the extra
            // span, so requests from *different* aggregators still
            // overlap. That overlap is precisely what realm rebalancing
            // exploits to route around a straggler.
            let extra = inj.straggler_extra(ost_idx, start, dur);
            if extra > 0 {
                self.stats.straggler_ns.fetch_add(extra, Ordering::Relaxed);
                client_done += extra;
            }
        }
        if let Some(inj) = &self.fault {
            if inj.roll_transient(ost_idx) {
                self.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
                return Err(PfsError {
                    kind: PfsErrorKind::TransientOst,
                    ost: ost_idx,
                    at: client_done,
                });
            }
        }
        Ok(client_done)
    }

    /// RMW page reads needed for a direct write of `[off, off+len)`:
    /// unaligned edges whose pages already contain file data.
    fn rmw_pages_for(&self, file: &FileObj, off: u64, len: u64) -> u64 {
        let size = file.size();
        let end = off + len;
        let mut n = 0;
        let first_page = self.cfg.page_floor(off);
        if !off.is_multiple_of(self.cfg.page_size) && first_page < size {
            n += 1;
        }
        let last_page = self.cfg.page_floor(end);
        if !end.is_multiple_of(self.cfg.page_size) && last_page < size && last_page != first_page {
            n += 1;
        }
        // A single partial page counts once (handled by the first test).
        if !off.is_multiple_of(self.cfg.page_size)
            && !end.is_multiple_of(self.cfg.page_size)
            && last_page == first_page
        {
            // already counted once above
        }
        n
    }

    /// Issue a raw (uncached) I/O spanning stripes; returns completion or
    /// the first injected fault. Every stripe chunk is issued regardless —
    /// the op's data and server-side time are fully committed either way,
    /// so a retry of the whole op is idempotent — and a returned error
    /// carries the op's would-be completion time in [`PfsError::at`].
    fn raw_io(
        &self,
        file: &FileObj,
        now: u64,
        off: u64,
        len: u64,
        is_write: bool,
    ) -> Result<u64, PfsError> {
        if len == 0 {
            return Ok(now);
        }
        let mut finish = now;
        let mut err: Option<PfsError> = None;
        let mut pos = off;
        let end = off + len;
        while pos < end {
            let stripe_end = (pos / self.cfg.stripe_size + 1) * self.cfg.stripe_size;
            let chunk_end = end.min(stripe_end);
            let rmw = if is_write { self.rmw_pages_for(file, pos, chunk_end - pos) } else { 0 };
            match self.ost_chunk(file, now, pos, chunk_end - pos, is_write, rmw) {
                Ok(t) => finish = finish.max(t),
                Err(e) => {
                    finish = finish.max(e.at);
                    err.get_or_insert(e);
                }
            }
            pos = chunk_end;
        }
        if is_write {
            self.stats.bytes_written.fetch_add(len, Ordering::Relaxed);
        } else {
            self.stats.bytes_read.fetch_add(len, Ordering::Relaxed);
        }
        match err {
            Some(e) => Err(PfsError { at: finish, ..e }),
            None => Ok(finish),
        }
    }

    /// [`Pfs::raw_io`] for internal coherence traffic (lock-revocation
    /// victim flushes): the lock manager retries transient errors
    /// internally, so only the time matters to the caller.
    fn raw_io_infallible(&self, file: &FileObj, now: u64, off: u64, len: u64, is_write: bool) -> u64 {
        match self.raw_io(file, now, off, len, is_write) {
            Ok(t) => t,
            Err(e) => e.at,
        }
    }

    fn store(&self, file: &FileObj, off: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = off as usize + data.len();
        let mut content = file.content.write().unwrap();
        if content.len() < end {
            content.resize(end, 0);
        }
        content[off as usize..end].copy_from_slice(data);
        drop(content);
        file.size.fetch_max(end as u64, Ordering::SeqCst);
    }

    fn load(&self, file: &FileObj, off: u64, buf: &mut [u8]) {
        let content = file.content.read().unwrap();
        let flen = content.len();
        for (i, b) in buf.iter_mut().enumerate() {
            let p = off as usize + i;
            *b = if p < flen { content[p] } else { 0 };
        }
    }
}

/// A nonblocking PFS operation in flight. The data movement has already
/// happened (file contents are byte-exact the moment the op is issued —
/// this is a virtual-time model, not a concurrency model); only the op's
/// *time* — and, under fault injection, its *outcome* — is pending. The
/// handle carries the virtual window the op occupies so callers can
/// overlap it with other work and charge `max(windows)` instead of the
/// sum; an injected fault is reported when the op is waited on.
#[must_use = "a nonblocking op must be waited on to charge its virtual time"]
#[derive(Debug, Clone)]
pub struct NbOp {
    issued_at: u64,
    done_at: u64,
    err: Option<PfsError>,
}

impl NbOp {
    fn from_result(issued_at: u64, res: Result<u64, PfsError>) -> NbOp {
        match res {
            Ok(done_at) => NbOp { issued_at, done_at, err: None },
            Err(e) => NbOp { issued_at, done_at: e.at, err: Some(e) },
        }
    }

    /// Virtual time the op was issued at.
    pub fn issued_at(&self) -> u64 {
        self.issued_at
    }

    /// Virtual time the op completes at (successfully or with an error).
    pub fn done_at(&self) -> u64 {
        self.done_at
    }

    /// The op's virtual duration.
    pub fn duration(&self) -> u64 {
        self.done_at.saturating_sub(self.issued_at)
    }

    /// The fault this op will report at completion, if any.
    pub fn error(&self) -> Option<PfsError> {
        self.err
    }

    /// Block until the op completes: the later of `now` and the op's
    /// completion time, or the op's injected fault. Consumes the op, so a
    /// double wait is a compile error rather than a silent double charge.
    pub fn wait(self, now: u64) -> Result<u64, PfsError> {
        match self.err {
            Some(e) => Err(PfsError { at: now.max(e.at), ..e }),
            None => Ok(now.max(self.done_at)),
        }
    }
}

/// RAII tally of one outstanding nonblocking op, handed out by
/// [`FileHandle::nb_issued`]. Dropping it retires the op from the
/// handle's inflight count — including drops on early-exit/error paths
/// that never reach an explicit wait, which used to leak
/// [`PfsStats::nb_inflight_peak`] accounting.
#[derive(Debug)]
pub struct NbGuard {
    inflight: Arc<AtomicU64>,
}

impl Drop for NbGuard {
    fn drop(&mut self) {
        let prev = self.inflight.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "NbGuard dropped with zero inflight");
    }
}

/// A per-client handle to an open file.
pub struct FileHandle {
    pfs: Arc<Pfs>,
    file: Arc<FileObj>,
    client: usize,
    /// Nonblocking ops issued on this handle and not yet retired. The data
    /// already landed at issue time, so this bounds nothing — it is pure
    /// telemetry a caller maintains by holding the [`NbGuard`]s from
    /// [`FileHandle::nb_issued`] so queueing depth shows up in
    /// [`PfsStats`].
    nb_inflight: Arc<AtomicU64>,
}

impl FileHandle {
    /// The client id this handle belongs to.
    pub fn client(&self) -> usize {
        self.client
    }

    /// Logical file size.
    pub fn size(&self) -> u64 {
        self.file.size()
    }

    /// The file system.
    pub fn pfs(&self) -> &Arc<Pfs> {
        &self.pfs
    }

    /// Acquire coherence locks for `[off, off+len)` (stripe-expanded, as
    /// Lustre does), flushing and invalidating conflicting clients' cached
    /// pages. Returns the new virtual time.
    fn acquire_locks(&self, now: u64, off: u64, len: u64) -> u64 {
        if !self.pfs.cfg.locking || len == 0 {
            return now;
        }
        let ss = self.pfs.cfg.stripe_size;
        let lstart = off / ss * ss;
        let lend = (off + len).div_ceil(ss) * ss;
        let mut t = now;
        let mut coh = self.file.coherency.lock().unwrap();
        let acq = coh.table.acquire(self.client, lstart, lend);
        if acq.already_held {
            return t;
        }
        self.pfs.stats.lock_grants.fetch_add(1, Ordering::Relaxed);
        if std::env::var_os("FLEXIO_LOCK_DEBUG").is_some() && !acq.revoked.is_empty() {
            eprintln!(
                "lock: client {} acquiring [{lstart},{lend}) revokes {:?}",
                self.client, acq.revoked
            );
        }
        for (victim, s, e) in &acq.revoked {
            self.pfs.stats.lock_revocations.fetch_add(1, Ordering::Relaxed);
            t += self.pfs.cfg.cost.lock_revoke_ns;
            if let Some(cache) = coh.caches.get_mut(victim) {
                let runs = cache.take_dirty(*s, *e);
                for run in runs {
                    self.pfs
                        .stats
                        .flush_bytes
                        .fetch_add(run.data.len() as u64, Ordering::Relaxed);
                    let fin = self
                        .pfs
                        .raw_io_infallible(&self.file, t, run.off, run.data.len() as u64, true);
                    self.pfs.store(&self.file, run.off, &run.data);
                    t = t.max(fin);
                }
                cache.invalidate(*s, *e);
            }
        }
        t += self.pfs.cfg.cost.lock_grant_ns;
        if let Some(inj) = &self.pfs.fault {
            t += inj.lock_stall();
        }
        t
    }

    /// Explicitly acquire coherence locks covering `[off, off+len)`, as
    /// ROMIO does around a data-sieving read-modify-write. Subsequent
    /// reads/writes inside the range find the lock already held. Returns
    /// the virtual completion time (a no-op without locking). Lock
    /// traffic is retried internally and never surfaces a fault, but the
    /// signature is fallible for uniformity with the data path.
    pub fn lock_range(&self, now: u64, off: u64, len: u64) -> Result<u64, PfsError> {
        Ok(self.acquire_locks(now, off, len))
    }

    /// Write `data` at `off`, starting at virtual time `now`; returns the
    /// completion time. Under fault injection a transient OST error is
    /// returned instead; the data still lands (the server committed it and
    /// lost the reply), so retrying the same write is idempotent, and
    /// [`PfsError::at`] carries the failed op's completion time so the
    /// caller's clock advances identically either way.
    pub fn write(&self, now: u64, off: u64, data: &[u8]) -> Result<u64, PfsError> {
        let _serial = self.file.serial.lock().unwrap();
        self.write_locked(now, off, data)
    }

    fn write_locked(&self, now: u64, off: u64, data: &[u8]) -> Result<u64, PfsError> {
        if data.is_empty() {
            return Ok(now);
        }
        let mut t = self.acquire_locks(now, off, data.len() as u64);
        if self.pfs.cfg.client_cache {
            let mut coh = self.file.coherency.lock().unwrap();
            let ps = self.pfs.cfg.page_size;
            let size_before = self.file.size();
            let cache = coh
                .caches
                .entry(self.client)
                .or_insert_with(|| ClientCache::new(ps));
            // Fill partially-overwritten pages that hold existing data.
            let end = off + data.len() as u64;
            let mut fills: Vec<u64> = Vec::new();
            if !off.is_multiple_of(ps) || !end.is_multiple_of(ps) {
                for page in cache.missing_pages(off, data.len() as u64) {
                    let p_start = page * ps;
                    let p_covered = off <= p_start && end >= p_start + ps;
                    if !p_covered && p_start < size_before {
                        fills.push(page);
                    }
                }
            }
            let mut err: Option<PfsError> = None;
            for page in fills {
                let p_start = page * ps;
                let fin = match self.pfs.raw_io(&self.file, t, p_start, ps, false) {
                    Ok(fin) => fin,
                    Err(e) => {
                        err.get_or_insert(e);
                        e.at
                    }
                };
                let mut buf = vec![0u8; ps as usize];
                self.pfs.load(&self.file, p_start, &mut buf);
                let cache = coh.caches.get_mut(&self.client).unwrap();
                cache.fill(page, buf);
                cache.note_miss();
                self.pfs.stats.cache_fills.fetch_add(1, Ordering::Relaxed);
                t = t.max(fin);
            }
            let cache = coh.caches.get_mut(&self.client).unwrap();
            // Zero-fill pages that are partial but beyond EOF.
            for page in cache.missing_pages(off, data.len() as u64) {
                let p_start = page * ps;
                let p_covered = off <= p_start && end >= p_start + ps;
                if !p_covered {
                    cache.fill(page, vec![0u8; ps as usize]);
                }
            }
            cache.write(off, data);
            t += (data.len() as f64 * self.pfs.cfg.cost.cache_copy_ns_per_byte) as u64;
            self.file.size.fetch_max(end, Ordering::SeqCst);
            match err {
                Some(e) => Err(PfsError { at: t, ..e }),
                None => Ok(t),
            }
        } else {
            let res = self.pfs.raw_io(&self.file, t, off, data.len() as u64, true);
            // Torn-write injection applies to the direct (uncached) write
            // path only — the path durable collective data and epoch
            // headers take. Cached writes land in volatile client memory
            // where tearing has no durable meaning (coherence flushes are
            // lock-manager traffic, retried internally). On a tear the OST
            // persisted a deterministically drawn prefix and failed the
            // request: a full rewrite of the same range is the idempotent
            // heal. The OST index reported is the request's first stripe
            // chunk.
            if let Some(inj) = &self.pfs.fault {
                let ost = self.pfs.cfg.ost_of(off);
                if let Some(frac) = inj.roll_torn(ost) {
                    let keep = (data.len() as f64 * frac) as usize;
                    self.pfs.store(&self.file, off, &data[..keep]);
                    self.pfs.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
                    let at = match &res {
                        Ok(fin) => t.max(*fin),
                        Err(e) => t.max(e.at),
                    };
                    return Err(PfsError { kind: PfsErrorKind::TornWrite, ost, at });
                }
            }
            self.pfs.store(&self.file, off, data);
            res.map(|fin| t.max(fin))
        }
    }

    /// Read into `buf` at `off`, starting at virtual time `now`; returns
    /// the completion time. Reads beyond EOF yield zeros. Under fault
    /// injection a transient OST error is returned instead; `buf` is
    /// still filled correctly (the contents are exact, the *request*
    /// failed), so retrying is idempotent.
    pub fn read(&self, now: u64, off: u64, buf: &mut [u8]) -> Result<u64, PfsError> {
        let _serial = self.file.serial.lock().unwrap();
        self.read_locked(now, off, buf)
    }

    fn read_locked(&self, now: u64, off: u64, buf: &mut [u8]) -> Result<u64, PfsError> {
        if buf.is_empty() {
            return Ok(now);
        }
        let mut t = self.acquire_locks(now, off, buf.len() as u64);
        if self.pfs.cfg.client_cache {
            let mut coh = self.file.coherency.lock().unwrap();
            let ps = self.pfs.cfg.page_size;
            let cache = coh
                .caches
                .entry(self.client)
                .or_insert_with(|| ClientCache::new(ps));
            let missing = cache.missing_pages(off, buf.len() as u64);
            let mut err: Option<PfsError> = None;
            // Fetch missing pages as coalesced runs.
            let mut i = 0;
            while i < missing.len() {
                let mut j = i;
                while j + 1 < missing.len() && missing[j + 1] == missing[j] + 1 {
                    j += 1;
                }
                let run_off = missing[i] * ps;
                let run_len = (missing[j] + 1) * ps - run_off;
                let fin = match self.pfs.raw_io(&self.file, t, run_off, run_len, false) {
                    Ok(fin) => fin,
                    Err(e) => {
                        err.get_or_insert(e);
                        e.at
                    }
                };
                t = t.max(fin);
                let mut data = vec![0u8; run_len as usize];
                self.pfs.load(&self.file, run_off, &mut data);
                let cache = coh.caches.get_mut(&self.client).unwrap();
                for (k, page) in (missing[i]..=missing[j]).enumerate() {
                    cache.fill(page, data[k * ps as usize..(k + 1) * ps as usize].to_vec());
                    cache.note_miss();
                    self.pfs.stats.cache_fills.fetch_add(1, Ordering::Relaxed);
                }
                i = j + 1;
            }
            let cache = coh.caches.get_mut(&self.client).unwrap();
            cache.read(off, buf);
            t += (buf.len() as f64 * self.pfs.cfg.cost.cache_copy_ns_per_byte) as u64;
            match err {
                Some(e) => Err(PfsError { at: t, ..e }),
                None => Ok(t),
            }
        } else {
            let res = self.pfs.raw_io(&self.file, t, off, buf.len() as u64, false);
            self.pfs.load(&self.file, off, buf);
            res.map(|fin| t.max(fin))
        }
    }

    /// Atomic data-sieving chunk commit (read-modify-write): read
    /// `[off, off+len)`, overlay the caller's packed segments, and write
    /// the whole range back — all while holding the file's RMW lock, so no
    /// other client's write can interleave between the pre-read and the
    /// write-back (ROMIO wraps sieving writes in an fcntl lock for exactly
    /// this reason). `segs` are absolute `(offset, len)` runs inside the
    /// chunk, `packed` their concatenated bytes. When `covered` the
    /// pre-read is skipped.
    pub fn sieve_chunk_write(
        &self,
        now: u64,
        off: u64,
        len: u64,
        segs: &[(u64, u64)],
        packed: &[u8],
        covered: bool,
    ) -> Result<u64, PfsError> {
        let _serial = self.file.serial.lock().unwrap();
        let mut buf = vec![0u8; len as usize];
        let mut t = now;
        let mut err: Option<PfsError> = None;
        if !covered {
            t = match self.read_locked(t, off, &mut buf) {
                Ok(t) => t,
                Err(e) => {
                    err = Some(e);
                    e.at
                }
            };
        }
        let mut pos = 0usize;
        for &(so, sl) in segs {
            debug_assert!(so >= off && so + sl <= off + len, "segment outside chunk");
            buf[(so - off) as usize..(so - off + sl) as usize]
                .copy_from_slice(&packed[pos..pos + sl as usize]);
            pos += sl as usize;
        }
        match self.write_locked(t, off, &buf) {
            Ok(t) => match err {
                Some(e) => Err(PfsError { at: t, ..e }),
                None => Ok(t),
            },
            Err(e) => Err(PfsError { at: e.at, ..err.unwrap_or(e) }),
        }
    }

    /// Record that one more nonblocking op is outstanding on this handle
    /// (call when queueing an [`NbOp`]/completion for later waiting, not
    /// when waiting immediately); feeds [`PfsStats::nb_inflight_peak`].
    /// The returned guard retires the op when dropped — hold it while the
    /// op is queued, drop it when the op is waited on (or when an error
    /// path abandons the queue; the drop keeps the count honest either
    /// way).
    pub fn nb_issued(&self) -> NbGuard {
        let depth = self.nb_inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.pfs.stats.nb_inflight_peak.fetch_max(depth, Ordering::SeqCst);
        NbGuard { inflight: Arc::clone(&self.nb_inflight) }
    }

    /// Nonblocking ops currently outstanding on this handle.
    pub fn nb_inflight(&self) -> u64 {
        self.nb_inflight.load(Ordering::SeqCst)
    }

    /// Nonblocking [`FileHandle::write`]: issues the write at `now` and
    /// returns a completion handle instead of blocking the caller's clock
    /// until `done_at`. Contents are stored immediately; an injected
    /// fault is carried in the handle and reported by [`NbOp::wait`].
    pub fn pwrite_nb(&self, now: u64, off: u64, data: &[u8]) -> NbOp {
        NbOp::from_result(now, self.write(now, off, data))
    }

    /// Nonblocking [`FileHandle::read`]: issues the read at `now`; `buf`
    /// is filled immediately, the returned handle carries the virtual
    /// completion time (and any injected fault).
    pub fn pread_nb(&self, now: u64, off: u64, buf: &mut [u8]) -> NbOp {
        NbOp::from_result(now, self.read(now, off, buf))
    }

    /// Gathered nonblocking write: the concatenation of `bufs` lands at
    /// `off` as one request — the PFS client ships an iovec run list, so
    /// callers holding scattered source runs (borrowed user-buffer or
    /// received-payload slices) need no intermediate packed copy. Charged
    /// exactly like a [`FileHandle::pwrite_nb`] of the same span; the
    /// assembly below is wire representation, not modeled data movement.
    pub fn pwritev_nb(&self, now: u64, off: u64, bufs: &[&[u8]]) -> NbOp {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let mut joined = Vec::with_capacity(total);
        for b in bufs {
            joined.extend_from_slice(b);
        }
        NbOp::from_result(now, self.write(now, off, &joined))
    }

    /// Scattered nonblocking read: one request for the span starting at
    /// `off`, delivered straight into the caller's run list (`dests`
    /// filled in order) — the read-side iovec twin of
    /// [`FileHandle::pwritev_nb`], charged exactly like a
    /// [`FileHandle::pread_nb`] of the same span.
    pub fn preadv_nb(&self, now: u64, off: u64, dests: &mut [&mut [u8]]) -> NbOp {
        let total: usize = dests.iter().map(|d| d.len()).sum();
        let mut span = vec![0u8; total];
        let op = NbOp::from_result(now, self.read(now, off, &mut span));
        let mut pos = 0usize;
        for d in dests.iter_mut() {
            d.copy_from_slice(&span[pos..pos + d.len()]);
            pos += d.len();
        }
        op
    }

    /// Nonblocking [`FileHandle::sieve_chunk_write`]: the whole
    /// read-modify-write commits atomically at issue time; the handle
    /// carries its virtual window (and any injected fault).
    pub fn sieve_chunk_write_nb(
        &self,
        now: u64,
        off: u64,
        len: u64,
        segs: &[(u64, u64)],
        packed: &[u8],
        covered: bool,
    ) -> NbOp {
        NbOp::from_result(now, self.sieve_chunk_write(now, off, len, segs, packed, covered))
    }

    /// Truncate or extend the file to exactly `size` bytes. Shrinking
    /// discards content and invalidates every client's cached pages beyond
    /// the new end; extending is a metadata-only operation (reads of the
    /// new region return zeros).
    pub fn set_size(&self, now: u64, size: u64) -> u64 {
        let _serial = self.file.serial.lock().unwrap();
        let mut coh = self.file.coherency.lock().unwrap();
        let old = self.file.size();
        if size < old {
            let mut content = self.file.content.write().unwrap();
            content.truncate(size as usize);
            for cache in coh.caches.values_mut() {
                // Dirty pages past the new end are discarded, not flushed.
                let _ = cache.take_dirty(size, u64::MAX);
                cache.invalidate(size, u64::MAX);
            }
        }
        drop(coh);
        self.file.size.store(size, Ordering::SeqCst);
        now + self.pfs.cfg.cost.request_ns
    }

    /// Preallocate storage up to `size` bytes (never shrinks). Charged as
    /// one OST pass over the newly allocated span.
    pub fn preallocate(&self, now: u64, size: u64) -> u64 {
        let old = self.file.size();
        if size <= old {
            return now + self.pfs.cfg.cost.request_ns;
        }
        self.file.size.fetch_max(size, Ordering::SeqCst);
        {
            let mut content = self.file.content.write().unwrap();
            if content.len() < size as usize {
                content.resize(size as usize, 0);
            }
        }
        // Allocation cost: one request per stripe in the new span.
        let c = &self.pfs.cfg.cost;
        let stripes = (size - old).div_ceil(self.pfs.cfg.stripe_size);
        now + c.request_ns * stripes.max(1)
    }

    /// Flush this client's dirty pages to storage; returns completion
    /// time. Data always lands even when a transient fault is reported
    /// (so a failed flush cannot lose dirty pages); the error tells the
    /// caller the *request* outcome.
    pub fn flush(&self, now: u64) -> Result<u64, PfsError> {
        let mut t = now;
        if !self.pfs.cfg.client_cache {
            return Ok(t);
        }
        let mut err: Option<PfsError> = None;
        let mut coh = self.file.coherency.lock().unwrap();
        if let Some(cache) = coh.caches.get_mut(&self.client) {
            for run in cache.take_all_dirty() {
                self.pfs
                    .stats
                    .flush_bytes
                    .fetch_add(run.data.len() as u64, Ordering::Relaxed);
                let fin = match self.pfs.raw_io(&self.file, t, run.off, run.data.len() as u64, true)
                {
                    Ok(fin) => fin,
                    Err(e) => {
                        err.get_or_insert(e);
                        e.at
                    }
                };
                self.pfs.store(&self.file, run.off, &run.data);
                t = t.max(fin);
            }
        }
        match err {
            Some(e) => Err(PfsError { at: t, ..e }),
            None => Ok(t),
        }
    }

    /// Flush, invalidate the cache, and release this client's locks.
    pub fn close(&self, now: u64) -> Result<u64, PfsError> {
        let res = self.flush(now);
        let mut coh = self.file.coherency.lock().unwrap();
        if let Some(cache) = coh.caches.get_mut(&self.client) {
            cache.invalidate(0, u64::MAX);
        }
        coh.table.release_all(self.client);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PfsCostModel;

    fn tiny() -> Arc<Pfs> {
        Pfs::new(PfsConfig::test_tiny())
    }

    #[test]
    fn write_read_roundtrip() {
        let pfs = tiny();
        let h = pfs.open("f", 0);
        let data: Vec<u8> = (0..200).map(|i| (i % 256) as u8).collect();
        h.write(0, 13, &data).unwrap();
        let mut buf = vec![0u8; 200];
        h.read(0, 13, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(h.size(), 213);
    }

    #[test]
    fn read_beyond_eof_zeros() {
        let pfs = tiny();
        let h = pfs.open("f", 0);
        h.write(0, 0, &[1, 2, 3]).unwrap();
        let mut buf = [9u8; 6];
        h.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 0, 0, 0]);
    }

    #[test]
    fn two_handles_share_file() {
        let pfs = tiny();
        let a = pfs.open("f", 0);
        let b = pfs.open("f", 1);
        a.write(0, 0, b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn unlink_resets() {
        let pfs = tiny();
        let a = pfs.open("f", 0);
        a.write(0, 0, b"x").unwrap();
        pfs.unlink("f");
        let b = pfs.open("f", 0);
        assert_eq!(b.size(), 0);
    }

    #[test]
    fn striped_write_hits_multiple_osts() {
        let pfs = Pfs::new(PfsConfig {
            cost: PfsCostModel::default(),
            ..PfsConfig::test_tiny()
        });
        let h = pfs.open("f", 0);
        // stripe=64: a 200-byte write spans 4 chunks
        h.write(0, 0, &[7u8; 200]).unwrap();
        assert_eq!(pfs.stats().ost_requests, 4);
        let mut buf = vec![0u8; 200];
        h.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 200]);
    }

    #[test]
    fn sequential_access_avoids_seeks() {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 1,
            stripe_size: 1 << 20,
            page_size: 16,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::default(),
        });
        let h = pfs.open("f", 0);
        let mut t = 0;
        for i in 0..10u64 {
            t = h.write(t, i * 16, &[0u8; 16]).unwrap();
        }
        // First write seeks, the rest are sequential.
        assert_eq!(pfs.stats().seeks, 1);
        // Now a discontiguous write.
        h.write(t, 1000, &[0u8; 16]).unwrap();
        assert_eq!(pfs.stats().seeks, 2);
    }

    #[test]
    fn unaligned_write_pays_rmw() {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 1,
            stripe_size: 1 << 20,
            page_size: 16,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::default(),
        });
        let h = pfs.open("f", 0);
        // Pre-extend the file so pages exist.
        h.write(0, 0, &vec![0u8; 256]).unwrap();
        let before = pfs.stats().rmw_page_reads;
        h.write(0, 5, &[1u8; 6]).unwrap(); // one partial page
        assert_eq!(pfs.stats().rmw_page_reads - before, 1);
        h.write(0, 5, &[1u8; 30]).unwrap(); // two partial edges
        assert_eq!(pfs.stats().rmw_page_reads - before, 3);
        h.write(0, 16, &[1u8; 32]).unwrap(); // fully aligned
        assert_eq!(pfs.stats().rmw_page_reads - before, 3);
    }

    #[test]
    fn fresh_file_extension_no_rmw() {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 1,
            stripe_size: 1 << 20,
            page_size: 16,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::default(),
        });
        let h = pfs.open("f", 0);
        h.write(0, 5, &[1u8; 6]).unwrap(); // unaligned but beyond EOF
        assert_eq!(pfs.stats().rmw_page_reads, 0);
    }

    #[test]
    fn io_advances_time() {
        let pfs = Pfs::new(PfsConfig {
            cost: PfsCostModel::default(),
            ..PfsConfig::test_tiny()
        });
        let h = pfs.open("f", 0);
        let t = h.write(1000, 0, &[0u8; 32]).unwrap();
        assert!(t > 1000 + 50_000, "write too fast: {t}");
    }

    #[test]
    fn ost_pipeline_serializes() {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 1,
            stripe_size: 1 << 20,
            page_size: 16,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::default(),
        });
        let h = pfs.open("f", 0);
        let t1 = h.write(0, 0, &[0u8; 16]).unwrap();
        // Second request issued at time 0 on another handle must queue
        // behind the first on the same OST.
        let h2 = pfs.open("f", 1);
        let t2 = h2.write(0, 16, &[0u8; 16]).unwrap();
        assert!(t2 > t1, "second op did not queue: {t2} vs {t1}");
    }

    // ---- locking & caching ------------------------------------------------

    fn locking_cfg(cache: bool) -> PfsConfig {
        PfsConfig {
            n_osts: 2,
            stripe_size: 64,
            page_size: 16,
            locking: true,
            lock_expansion: false,
            client_cache: cache,
            cost: PfsCostModel::default(),
        }
    }

    #[test]
    fn nb_ops_carry_blocking_window() {
        let pfs = Pfs::new(PfsConfig {
            cost: PfsCostModel::default(),
            ..PfsConfig::test_tiny()
        });
        let h = pfs.open("f", 0);
        let op = h.pwrite_nb(1000, 0, &[7u8; 64]);
        assert_eq!(op.issued_at(), 1000);
        assert!(op.done_at() > 1000);
        assert_eq!(op.duration(), op.done_at() - 1000);
        // Data is visible before the op is waited on.
        let mut buf = [0u8; 64];
        let r = h.pread_nb(op.done_at(), 0, &mut buf);
        assert_eq!(buf, [7u8; 64]);
        // wait() is max(now, done_at) in both directions; it consumes the
        // op (double-wait is a compile error), so probe via a clone.
        let done = r.done_at();
        assert_eq!(r.clone().wait(0).unwrap(), done);
        assert_eq!(r.wait(done + 5).unwrap(), done + 5);
    }

    #[test]
    fn nb_matches_blocking_times() {
        // Same op sequence on two identically-configured file systems: the
        // nonblocking variants must report the exact completion times the
        // blocking calls return.
        let mk = || {
            Pfs::new(PfsConfig {
                cost: PfsCostModel::default(),
                ..PfsConfig::test_tiny()
            })
        };
        let (pa, pb) = (mk(), mk());
        let (a, b) = (pa.open("f", 0), pb.open("f", 0));
        let t1 = a.write(500, 3, &[1u8; 100]).unwrap();
        let o1 = b.pwrite_nb(500, 3, &[1u8; 100]);
        assert_eq!(t1, o1.done_at());
        let mut ba = [0u8; 100];
        let mut bb = [0u8; 100];
        let t2 = a.read(t1, 3, &mut ba).unwrap();
        let o2 = b.pread_nb(o1.done_at(), 3, &mut bb);
        assert_eq!(t2, o2.done_at());
        assert_eq!(ba, bb);
        let segs = [(8u64, 16u64)];
        let t3 = a.sieve_chunk_write(t2, 0, 64, &segs, &[9u8; 16], false).unwrap();
        let o3 = b.sieve_chunk_write_nb(o2.done_at(), 0, 64, &segs, &[9u8; 16], false);
        assert_eq!(t3, o3.done_at());
    }

    #[test]
    fn nb_inflight_tracks_peak_per_handle() {
        let pfs = tiny();
        let a = pfs.open("f", 0);
        let b = pfs.open("f", 1);
        assert_eq!(pfs.stats().nb_inflight_peak, 0);
        let ops: Vec<(NbOp, NbGuard)> = (0..3)
            .map(|i| {
                let op = a.pwrite_nb(0, i * 64, &[1u8; 64]);
                (op, a.nb_issued())
            })
            .collect();
        assert_eq!(a.nb_inflight(), 3);
        // A second handle's queue is independent.
        let _op = b.pwrite_nb(0, 512, &[2u8; 64]);
        let bg = b.nb_issued();
        assert_eq!(b.nb_inflight(), 1);
        drop(bg);
        for (op, guard) in ops {
            let _ = op.wait(0).unwrap();
            drop(guard);
        }
        assert_eq!(a.nb_inflight(), 0);
        assert_eq!(pfs.stats().nb_inflight_peak, 3, "peak is the deepest single-handle queue");
    }

    #[test]
    fn nb_guard_drop_retires_without_wait() {
        // Early-exit paths that abandon queued ops (e.g. an engine error
        // return) must not leak the inflight count: dropping the guards —
        // without ever waiting on the ops — retires them.
        let pfs = tiny();
        let a = pfs.open("f", 0);
        let guards: Vec<NbGuard> = (0..4)
            .map(|i| {
                let _op = a.pwrite_nb(0, i * 64, &[1u8; 64]);
                a.nb_issued()
            })
            .collect();
        assert_eq!(a.nb_inflight(), 4);
        drop(guards); // simulate bailing out of the pipeline early
        assert_eq!(a.nb_inflight(), 0, "guard drop must retire the counter");
        assert_eq!(pfs.stats().nb_inflight_peak, 4, "peak still records the high-water mark");
        // A later queue ramp starts from zero, not from the leaked base.
        let g = a.nb_issued();
        assert_eq!(a.nb_inflight(), 1);
        drop(g);
    }

    // ---- fault injection --------------------------------------------------

    #[test]
    fn disabled_faults_charge_identical() {
        // A Pfs without a fault plan and one with an all-zero plan must
        // produce identical completion times and counters (the fault-free
        // fast path is the charge-identity contract).
        let mk_plain = || Pfs::new(PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() });
        let mk_noop = || {
            Pfs::with_faults(
                PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() },
                FaultPlan::default(),
            )
        };
        let (pa, pb) = (mk_plain(), mk_noop());
        assert!(pa.fault_plan().is_none());
        assert!(pb.fault_plan().is_some());
        let (a, b) = (pa.open("f", 0), pb.open("f", 0));
        let mut ta = 0;
        let mut tb = 0;
        for i in 0..6u64 {
            ta = a.write(ta, i * 100, &[i as u8; 90]).unwrap();
            tb = b.write(tb, i * 100, &[i as u8; 90]).unwrap();
        }
        let mut ba = [0u8; 300];
        let mut bb = [0u8; 300];
        ta = a.read(ta, 50, &mut ba).unwrap();
        tb = b.read(tb, 50, &mut bb).unwrap();
        assert_eq!(ta, tb, "a no-op plan must not perturb time");
        assert_eq!(ba, bb);
        assert_eq!(pa.stats(), pb.stats());
        assert_eq!(pb.stats().faults_injected, 0);
        assert_eq!(pb.stats().straggler_ns, 0);
    }

    #[test]
    fn transient_fault_reported_but_data_lands() {
        let pfs = Pfs::with_faults(
            PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() },
            FaultPlan::transient(11, 1.0),
        );
        let h = pfs.open("f", 0);
        let err = h.write(0, 0, &[3u8; 32]).unwrap_err();
        assert_eq!(err.kind, crate::fault::PfsErrorKind::TransientOst);
        assert!(err.at > 0, "error carries the op's completion time");
        assert!(pfs.stats().faults_injected >= 1);
        // The data landed anyway: a retry is idempotent and a reader (on a
        // fault-free mirror decision path) sees the bytes.
        let mut buf = [0u8; 32];
        let res = h.read(err.at, 0, &mut buf);
        assert_eq!(buf, [3u8; 32]);
        assert!(res.is_err(), "rate-1.0 plan fails reads too");
    }

    #[test]
    fn nb_op_carries_fault_to_wait() {
        let pfs = Pfs::with_faults(
            PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() },
            FaultPlan::transient(5, 1.0),
        );
        let h = pfs.open("f", 0);
        let op = h.pwrite_nb(100, 0, &[9u8; 16]);
        assert!(op.error().is_some(), "error known at issue in virtual time");
        let done = op.done_at();
        let err = op.wait(0).unwrap_err();
        assert_eq!(err.at, done, "wait surfaces the fault at completion time");
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let pfs = Pfs::with_faults(
            PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() },
            FaultPlan { seed: 9, torn_rate: 1.0, ..FaultPlan::default() },
        );
        let h = pfs.open("f", 0);
        let data: Vec<u8> = (1..=40).collect();
        let err = h.write(0, 0, &data).unwrap_err();
        assert_eq!(err.kind, crate::fault::PfsErrorKind::TornWrite);
        assert!(err.at > 0, "error carries the op's completion time");
        assert_eq!(pfs.stats().torn_writes, 1);
        // Only a strict prefix landed: file size tells us how much.
        let keep = h.size() as usize;
        assert!(keep < data.len(), "a torn write must not persist fully");
        let mut buf = vec![0u8; data.len()];
        // Reads don't tear; rate-1.0 torn plans leave reads fault-free.
        h.read(err.at, 0, &mut buf).unwrap();
        assert_eq!(&buf[..keep], &data[..keep]);
        assert_eq!(&buf[keep..], &vec![0u8; data.len() - keep][..], "suffix must be unwritten");
    }

    #[test]
    fn torn_write_heals_on_retry() {
        // With a sub-1.0 rate the torn stream is deterministic per request
        // index, so retrying the identical write eventually persists it in
        // full — the idempotent-heal contract the engine retry loop needs.
        let pfs = Pfs::with_faults(
            PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() },
            FaultPlan { seed: 3, torn_rate: 0.5, ..FaultPlan::default() },
        );
        let h = pfs.open("f", 0);
        let data: Vec<u8> = (0..100u32).map(|i| (i % 251) as u8 + 1).collect();
        let mut t = 0u64;
        let mut tears = 0;
        let healed = (0..20).any(|_| match h.write(t, 0, &data) {
            Ok(fin) => {
                t = fin;
                true
            }
            Err(e) => {
                assert_eq!(e.kind, crate::fault::PfsErrorKind::TornWrite);
                tears += 1;
                t = e.at;
                false
            }
        });
        assert!(healed, "20 retries at rate 0.5 should heal (seeded, deterministic)");
        let mut buf = vec![0u8; data.len()];
        h.read(t, 0, &mut buf).unwrap();
        assert_eq!(buf, data, "full rewrite must heal the tear");
        assert_eq!(pfs.stats().torn_writes, tears);
    }

    #[test]
    fn straggler_slows_only_its_ost_and_window() {
        let cfg = PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() };
        // stripe 64, 4 OSTs: offset 0 → OST 0, offset 64 → OST 1.
        let plain = Pfs::new(cfg);
        let slow = Pfs::with_faults(
            cfg,
            FaultPlan {
                stragglers: vec![crate::fault::StragglerSpec {
                    ost: 0,
                    multiplier: 4.0,
                    from_ns: 0,
                    until_ns: u64::MAX,
                }],
                ..FaultPlan::default()
            },
        );
        let (hp, hs) = (plain.open("f", 0), slow.open("f", 0));
        let tp0 = hp.write(0, 0, &[1u8; 64]).unwrap();
        let ts0 = hs.write(0, 0, &[1u8; 64]).unwrap();
        assert!(ts0 > tp0, "straggler OST must be slower: {ts0} vs {tp0}");
        assert!(slow.stats().straggler_ns > 0);
        let extra = slow.stats().straggler_ns;
        // OST 1 is unaffected: same service time on both file systems.
        let tp1 = hp.write(tp0, 64, &[2u8; 64]).unwrap();
        let ts1 = hs.write(ts0, 64, &[2u8; 64]).unwrap();
        assert_eq!(tp1 - tp0, ts1 - ts0, "other OSTs must be unaffected");
        assert_eq!(slow.stats().straggler_ns, extra);
    }

    #[test]
    fn lock_stall_charged_on_grant() {
        let mk = |stall| {
            let pfs = if stall > 0 {
                Pfs::with_faults(
                    locking_cfg(false),
                    FaultPlan { lock_stall_ns: stall, ..FaultPlan::default() },
                )
            } else {
                Pfs::new(locking_cfg(false))
            };
            let h = pfs.open("f", 0);
            h.write(0, 0, &[1u8; 16]).unwrap()
        };
        let base = mk(0);
        let stalled = mk(10_000);
        assert_eq!(stalled, base + 10_000, "stall charged once per grant");
    }

    #[test]
    fn set_size_truncates_and_extends() {
        let pfs = tiny();
        let h = pfs.open("f", 0);
        h.write(0, 0, &[7u8; 100]).unwrap();
        h.set_size(0, 40);
        assert_eq!(h.size(), 40);
        let mut buf = [9u8; 60];
        h.read(0, 0, &mut buf).unwrap();
        assert_eq!(&buf[..40], &[7u8; 40]);
        assert_eq!(&buf[40..], &[0u8; 20], "truncated region must read zero");
        h.set_size(0, 200);
        assert_eq!(h.size(), 200);
    }

    #[test]
    fn truncate_discards_cached_dirty_pages() {
        let pfs = Pfs::new(locking_cfg(true));
        let h = pfs.open("f", 0);
        h.write(0, 0, &[5u8; 64]).unwrap(); // cached dirty
        h.set_size(0, 16);
        h.flush(0).unwrap();
        let g = pfs.open("f", 1);
        let mut buf = [1u8; 64];
        g.read(0, 0, &mut buf).unwrap();
        assert_eq!(&buf[..16], &[5u8; 16]);
        assert_eq!(&buf[16..], &[0u8; 48], "dirty pages past EOF must not resurrect");
    }

    #[test]
    fn preallocate_extends_without_shrinking() {
        let pfs = tiny();
        let h = pfs.open("f", 0);
        h.write(0, 0, &[3u8; 32]).unwrap();
        h.preallocate(0, 512);
        assert_eq!(h.size(), 512);
        h.preallocate(0, 100); // never shrinks
        assert_eq!(h.size(), 512);
        let mut buf = [9u8; 8];
        h.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 8]);
    }

    #[test]
    fn lock_reacquire_free() {
        let pfs = Pfs::new(locking_cfg(false));
        let h = pfs.open("f", 0);
        h.write(0, 0, &[0u8; 64]).unwrap();
        assert_eq!(pfs.stats().lock_grants, 1);
        h.write(0, 0, &[0u8; 64]).unwrap();
        assert_eq!(pfs.stats().lock_grants, 1, "covered reacquire must be free");
    }

    #[test]
    fn conflicting_clients_revoke() {
        let pfs = Pfs::new(locking_cfg(false));
        let a = pfs.open("f", 0);
        let b = pfs.open("f", 1);
        a.write(0, 0, &[1u8; 32]).unwrap();
        b.write(0, 32, &[2u8; 32]).unwrap(); // same stripe -> conflict
        assert_eq!(pfs.stats().lock_revocations, 1);
        // Different stripes -> no new conflict.
        let before = pfs.stats().lock_revocations;
        a.write(0, 64, &[1u8; 16]).unwrap();
        assert_eq!(pfs.stats().lock_revocations, before);
    }

    #[test]
    fn cached_write_read_roundtrip() {
        let pfs = Pfs::new(locking_cfg(true));
        let h = pfs.open("f", 0);
        let data: Vec<u8> = (0..100u32).map(|i| (i % 251) as u8).collect();
        h.write(0, 7, &data).unwrap();
        let mut buf = vec![0u8; 100];
        h.read(0, 7, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn cached_writes_defer_ost_io() {
        let pfs = Pfs::new(locking_cfg(true));
        let h = pfs.open("f", 0);
        h.write(0, 0, &[1u8; 64]).unwrap(); // page-aligned, fresh file: no OST traffic
        assert_eq!(pfs.stats().ost_requests, 0);
        let t = h.flush(0).unwrap();
        assert!(pfs.stats().ost_requests > 0);
        assert!(t > 0);
        assert_eq!(pfs.stats().flush_bytes, 64);
    }

    #[test]
    fn revocation_flushes_victim_cache() {
        let pfs = Pfs::new(locking_cfg(true));
        let a = pfs.open("f", 0);
        let b = pfs.open("f", 1);
        a.write(0, 0, &[5u8; 32]).unwrap(); // cached dirty in a
        // b reads the same stripe: revokes a's lock, forcing the flush.
        let mut buf = [0u8; 32];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 32]);
        assert_eq!(pfs.stats().lock_revocations, 1);
        assert_eq!(pfs.stats().flush_bytes, 32);
    }

    #[test]
    fn close_flushes_and_releases() {
        let pfs = Pfs::new(locking_cfg(true));
        let a = pfs.open("f", 0);
        a.write(0, 0, &[3u8; 16]).unwrap();
        a.close(0).unwrap();
        // Data persisted.
        let b = pfs.open("f", 1);
        let mut buf = [0u8; 16];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 16]);
        // No revocation needed: a's locks were released.
        assert_eq!(pfs.stats().lock_revocations, 0);
    }

    #[test]
    fn cached_partial_page_fill_reads_existing_data() {
        let pfs = Pfs::new(locking_cfg(true));
        let a = pfs.open("f", 0);
        a.write(0, 0, &[9u8; 64]).unwrap();
        a.close(0).unwrap();
        let before = pfs.stats().cache_fills;
        let b = pfs.open("f", 1);
        b.write(0, 4, &[1u8; 4]).unwrap(); // partial page over existing data
        assert_eq!(pfs.stats().cache_fills - before, 1);
        let mut buf = [0u8; 16];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[9, 9, 9, 9, 1, 1, 1, 1]);
    }

    #[test]
    fn pfr_style_repeat_writes_no_lock_traffic() {
        // Two clients each repeatedly writing their own stripe-aligned
        // region: one grant each, zero revocations — the PFR+align regime.
        let pfs = Pfs::new(locking_cfg(true));
        let a = pfs.open("f", 0);
        let b = pfs.open("f", 1);
        for step in 0..10u64 {
            a.write(step, 0, &[1u8; 64]).unwrap();
            b.write(step, 64, &[2u8; 64]).unwrap();
        }
        assert_eq!(pfs.stats().lock_grants, 2);
        assert_eq!(pfs.stats().lock_revocations, 0);
    }

    #[test]
    fn shifting_regions_cause_lock_ping_pong() {
        // The no-PFR, no-alignment regime: each step the two clients'
        // regions shift so they land on each other's previous stripes.
        let pfs = Pfs::new(locking_cfg(true));
        let a = pfs.open("f", 0);
        let b = pfs.open("f", 1);
        for step in 0..6u64 {
            let base = step * 32; // shifts across the 64-byte stripes
            a.write(step, base, &[1u8; 64]).unwrap();
            b.write(step, base + 64, &[2u8; 64]).unwrap();
        }
        assert!(
            pfs.stats().lock_revocations >= 5,
            "expected ping-pong, got {} revocations",
            pfs.stats().lock_revocations
        );
    }
}
