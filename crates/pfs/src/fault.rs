//! Deterministic fault injection for the PFS simulator.
//!
//! A [`FaultPlan`] describes *what can go wrong* — transient per-OST
//! request errors, straggler OSTs (a service-time multiplier over a
//! virtual-time window), and lock-manager stalls — and a seed. The
//! [`FaultInjector`] built from it makes every decision from
//! `hash(seed, ost, per-OST request index)`, so a plan is reproducible
//! for a given sequence of requests regardless of wall-clock effects:
//! the same rank issuing the same requests sees the same faults.
//!
//! Faults only perturb *time* and *outcomes*, never data: a request that
//! fails moves no bytes, so a retry of the same request is idempotent.

use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of PFS failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PfsErrorKind {
    /// A transient per-request OST error (dropped RPC, brief target
    /// failover): the request moved no data and may be retried.
    TransientOst,
    /// A torn write: the OST persisted only a prefix of the request
    /// before failing it (client crash mid-RPC, target power loss). A
    /// retry — a full idempotent rewrite — heals the tear; a crash before
    /// the retry leaves the prefix on disk, which is exactly what the
    /// epoch-commit protocol ([`crate::epoch`]) exists to mask.
    TornWrite,
}

/// An injected PFS failure, surfaced by fallible [`crate::FileHandle`]
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfsError {
    /// The failure class.
    pub kind: PfsErrorKind,
    /// Index of the OST whose request failed.
    pub ost: usize,
    /// Virtual time (ns) the failure was detected at the client.
    pub at: u64,
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            PfsErrorKind::TransientOst => {
                write!(f, "transient error from OST {} at t={} ns", self.ost, self.at)
            }
            PfsErrorKind::TornWrite => {
                write!(f, "torn write on OST {} at t={} ns (prefix persisted)", self.ost, self.at)
            }
        }
    }
}

impl std::error::Error for PfsError {}

/// A straggler window: requests *starting* inside `[from_ns, until_ns)`
/// on `ost` take `multiplier`× their normal service time *as observed by
/// the requester*. The extra span is reply latency at a degraded target,
/// not pipeline occupancy, so concurrent requests from different clients
/// still overlap — spreading a slow realm over more aggregators hides
/// the penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// The slow OST.
    pub ost: usize,
    /// Service-time multiplier (≥ 1.0; 1.0 is a no-op).
    pub multiplier: f64,
    /// Window start (virtual ns, inclusive).
    pub from_ns: u64,
    /// Window end (virtual ns, exclusive). `u64::MAX` = persistent.
    pub until_ns: u64,
}

/// A seeded crash-stop event: kill `rank` at its first crash checkpoint
/// at or past `at_ns` of virtual time. The sim layer enforces it
/// (`flexio_sim::run_crashable` + `Rank::maybe_crash`); the plan carries
/// it so one seeded description names everything that goes wrong in a
/// run, and so engines can see whether crash recovery must be armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// World-frame rank to kill.
    pub rank: usize,
    /// Virtual time (ns) past which the rank's next checkpoint is fatal.
    pub at_ns: u64,
}

/// Seeded description of the faults to inject. An empty default plan
/// injects nothing (and [`crate::Pfs::new`] doesn't even install one, so
/// the fault-free fast path stays charge-identical).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed (xorshift64*-style hashing; 0 is remapped internally).
    pub seed: u64,
    /// Probability in `[0, 1]` that any one OST request fails
    /// transiently.
    pub transient_rate: f64,
    /// Probability in `[0, 1]` that a write request tears: a
    /// deterministically drawn prefix persists, the request fails with
    /// [`PfsErrorKind::TornWrite`].
    pub torn_rate: f64,
    /// Straggler OST windows.
    pub stragglers: Vec<StragglerSpec>,
    /// Extra lock-manager stall charged on each lock grant, ns (models a
    /// congested DLM); 0 disables.
    pub lock_stall_ns: u64,
    /// Crash-stop rank failures (enforced by the sim layer; carried here
    /// so engines know recovery must be armed).
    pub crashes: Vec<CrashSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            transient_rate: 0.0,
            torn_rate: 0.0,
            stragglers: Vec::new(),
            lock_stall_ns: 0,
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan with only a transient per-request error rate.
    pub fn transient(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan { seed, transient_rate: rate, ..FaultPlan::default() }
    }

    /// A plan with a single persistent straggler OST.
    pub fn straggler(ost: usize, multiplier: f64) -> FaultPlan {
        FaultPlan {
            stragglers: vec![StragglerSpec { ost, multiplier, from_ns: 0, until_ns: u64::MAX }],
            ..FaultPlan::default()
        }
    }

    /// A plan with a single crash-stop rank failure.
    pub fn crash(rank: usize, at_ns: u64) -> FaultPlan {
        FaultPlan { crashes: vec![CrashSpec { rank, at_ns }], ..FaultPlan::default() }
    }

    /// The sim-layer crash schedule this plan implies, in
    /// `flexio_sim::run_crashable` form.
    pub fn crash_schedule(&self) -> Vec<(usize, u64)> {
        self.crashes.iter().map(|c| (c.rank, c.at_ns)).collect()
    }
}

/// Runtime state evaluating a [`FaultPlan`]: per-OST request counters
/// plus the precomputed decision threshold.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Transient-rate threshold scaled to u64 space.
    threshold: u64,
    /// Torn-write-rate threshold scaled to u64 space.
    torn_threshold: u64,
    /// Per-OST count of requests seen, indexing the decision hash.
    req_counts: Vec<AtomicU64>,
    /// Per-OST count of torn-write rolls — a separate stream so adding
    /// `torn_rate` to a plan never perturbs the transient decisions.
    torn_counts: Vec<AtomicU64>,
}

/// One round of the splitmix64 finalizer — a strong 64-bit mix used to
/// turn `(seed, ost, request-index)` into an i.i.d.-looking decision
/// stream (same family as the repo's xorshift64* PRNG).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Build an injector for `n_osts` OSTs.
    pub fn new(plan: FaultPlan, n_osts: usize) -> FaultInjector {
        assert!(
            (0.0..=1.0).contains(&plan.transient_rate),
            "transient_rate must be in [0, 1]"
        );
        assert!((0.0..=1.0).contains(&plan.torn_rate), "torn_rate must be in [0, 1]");
        for s in &plan.stragglers {
            assert!(s.ost < n_osts, "straggler OST {} out of range", s.ost);
            assert!(s.multiplier >= 1.0, "straggler multiplier must be >= 1");
        }
        let to_threshold = |rate: f64| {
            if rate >= 1.0 {
                u64::MAX
            } else {
                (rate * u64::MAX as f64) as u64
            }
        };
        let seed = if plan.seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { plan.seed };
        FaultInjector {
            threshold: to_threshold(plan.transient_rate),
            torn_threshold: to_threshold(plan.torn_rate),
            req_counts: (0..n_osts).map(|_| AtomicU64::new(0)).collect(),
            torn_counts: (0..n_osts).map(|_| AtomicU64::new(0)).collect(),
            plan: FaultPlan { seed, ..plan },
        }
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide whether the next request on `ost` fails transiently.
    /// Deterministic in (seed, ost, per-OST request index).
    pub fn roll_transient(&self, ost: usize) -> bool {
        if self.plan.transient_rate <= 0.0 {
            return false;
        }
        if self.plan.transient_rate >= 1.0 {
            self.req_counts[ost].fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let idx = self.req_counts[ost].fetch_add(1, Ordering::Relaxed);
        let h = mix64(self.plan.seed ^ mix64(ost as u64 + 1).wrapping_add(mix64(idx)));
        h < self.threshold
    }

    /// Decide whether the next write on `ost` tears, and if so how much
    /// of it persists: returns the surviving prefix fraction in
    /// `[0, 1)`. A separate decision stream from [`roll_transient`], so
    /// plans that add tearing reproduce their transient faults exactly.
    ///
    /// [`roll_transient`]: FaultInjector::roll_transient
    pub fn roll_torn(&self, ost: usize) -> Option<f64> {
        if self.plan.torn_rate <= 0.0 {
            return None;
        }
        let idx = self.torn_counts[ost].fetch_add(1, Ordering::Relaxed);
        // Distinct salt (the leading xor) keeps this stream independent
        // of the transient one at the same (seed, ost, idx).
        let h = mix64(self.plan.seed ^ 0x7065 ^ mix64(ost as u64 + 1).wrapping_add(mix64(idx)));
        if self.plan.torn_rate < 1.0 && h >= self.torn_threshold {
            return None;
        }
        // Re-mix for the prefix draw so it's independent of the fire/no-
        // fire decision.
        Some((mix64(h) >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Extra service ns for a request of duration `dur` starting at
    /// virtual time `start` on `ost` (0 outside any straggler window).
    /// Overlapping windows on one OST do not stack: the request observes
    /// the *worst* covering multiplier — a degraded target is one device
    /// with one (slowest) service rate, not several penalties in series.
    pub fn straggler_extra(&self, ost: usize, start: u64, dur: u64) -> u64 {
        let mut worst = 1.0f64;
        for s in &self.plan.stragglers {
            if s.ost == ost && start >= s.from_ns && start < s.until_ns {
                worst = worst.max(s.multiplier);
            }
        }
        ((worst - 1.0) * dur as f64) as u64
    }

    /// Extra lock-manager stall on a grant, ns.
    pub fn lock_stall(&self) -> u64 {
        self.plan.lock_stall_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let inj = FaultInjector::new(FaultPlan::default(), 4);
        for _ in 0..1000 {
            assert!(!inj.roll_transient(0));
        }
    }

    #[test]
    fn full_rate_always_fires() {
        let inj = FaultInjector::new(FaultPlan::transient(7, 1.0), 2);
        for _ in 0..100 {
            assert!(inj.roll_transient(1));
        }
    }

    #[test]
    fn rate_roughly_respected_and_deterministic() {
        let count = |seed| {
            let inj = FaultInjector::new(FaultPlan::transient(seed, 0.25), 1);
            (0..4000).filter(|_| inj.roll_transient(0)).count()
        };
        let n = count(42);
        assert!((700..1300).contains(&n), "0.25 rate fired {n}/4000 times");
        assert_eq!(n, count(42), "same seed must reproduce the same stream");
        assert_ne!(n, count(43), "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn straggler_window_scales_duration() {
        let inj = FaultInjector::new(
            FaultPlan {
                stragglers: vec![StragglerSpec {
                    ost: 1,
                    multiplier: 3.0,
                    from_ns: 100,
                    until_ns: 200,
                }],
                ..FaultPlan::default()
            },
            4,
        );
        assert_eq!(inj.straggler_extra(1, 150, 1000), 2000);
        assert_eq!(inj.straggler_extra(1, 50, 1000), 0, "before window");
        assert_eq!(inj.straggler_extra(1, 200, 1000), 0, "window end exclusive");
        assert_eq!(inj.straggler_extra(0, 150, 1000), 0, "other OST unaffected");
    }

    #[test]
    fn persistent_straggler_helper() {
        let inj = FaultInjector::new(FaultPlan::straggler(2, 2.0), 4);
        assert_eq!(inj.straggler_extra(2, u64::MAX / 2, 500), 500);
    }

    #[test]
    fn lock_stall_passthrough() {
        let inj =
            FaultInjector::new(FaultPlan { lock_stall_ns: 77, ..FaultPlan::default() }, 1);
        assert_eq!(inj.lock_stall(), 77);
    }

    #[test]
    #[should_panic(expected = "transient_rate")]
    fn bad_rate_rejected() {
        FaultInjector::new(FaultPlan::transient(1, 1.5), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_straggler_ost_rejected() {
        FaultInjector::new(FaultPlan::straggler(9, 2.0), 4);
    }

    #[test]
    fn error_display() {
        let e = PfsError { kind: PfsErrorKind::TransientOst, ost: 3, at: 42 };
        let s = e.to_string();
        assert!(s.contains("OST 3") && s.contains("42"), "{s}");
        let t = PfsError { kind: PfsErrorKind::TornWrite, ost: 1, at: 9 }.to_string();
        assert!(t.contains("torn") && t.contains("OST 1"), "{t}");
    }

    /// Overlapping windows on one OST observe the worst multiplier, not
    /// the sum of penalties: two 3× windows are a 3× device, not 5×.
    #[test]
    fn overlapping_straggler_windows_take_max_not_sum() {
        let win = |multiplier, from_ns, until_ns| StragglerSpec {
            ost: 0,
            multiplier,
            from_ns,
            until_ns,
        };
        let inj = FaultInjector::new(
            FaultPlan {
                stragglers: vec![win(3.0, 0, 1000), win(3.0, 500, 2000), win(2.0, 0, 2000)],
                ..FaultPlan::default()
            },
            1,
        );
        // t=700 is inside all three windows: worst is 3x => extra 2*dur.
        assert_eq!(inj.straggler_extra(0, 700, 100), 200, "max, not sum");
        // t=1500 is covered by the 3x and 2x windows only: still 3x.
        assert_eq!(inj.straggler_extra(0, 1500, 100), 200);
        // t=100 is covered by 3x and 2x.
        assert_eq!(inj.straggler_extra(0, 100, 100), 200);
    }

    #[test]
    fn torn_zero_rate_never_fires() {
        let inj = FaultInjector::new(FaultPlan::default(), 2);
        for _ in 0..500 {
            assert!(inj.roll_torn(0).is_none());
        }
    }

    #[test]
    fn torn_full_rate_always_fires_with_valid_fraction() {
        let inj = FaultInjector::new(
            FaultPlan { seed: 11, torn_rate: 1.0, ..FaultPlan::default() },
            2,
        );
        for _ in 0..200 {
            let frac = inj.roll_torn(1).expect("rate 1.0 must always tear");
            assert!((0.0..1.0).contains(&frac), "prefix fraction {frac} out of range");
        }
    }

    #[test]
    fn torn_rate_roughly_respected_and_deterministic() {
        let draws = |seed| {
            let inj = FaultInjector::new(
                FaultPlan { seed, torn_rate: 0.25, ..FaultPlan::default() },
                1,
            );
            (0..4000).filter_map(|_| inj.roll_torn(0)).collect::<Vec<f64>>()
        };
        let d = draws(42);
        assert!((700..1300).contains(&d.len()), "0.25 rate fired {}/4000 times", d.len());
        assert_eq!(d, draws(42), "same seed must reproduce the same tears");
        assert_ne!(d, draws(43));
    }

    /// The torn stream is independent: adding `torn_rate` to a plan must
    /// not change which requests fail transiently.
    #[test]
    fn torn_stream_does_not_perturb_transient_stream() {
        let transients = |torn_rate| {
            let inj = FaultInjector::new(
                FaultPlan { seed: 5, transient_rate: 0.3, torn_rate, ..FaultPlan::default() },
                1,
            );
            (0..1000)
                .map(|_| {
                    let _ = inj.roll_torn(0); // interleave the streams
                    inj.roll_transient(0)
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(transients(0.0), transients(0.5));
    }

    #[test]
    fn crash_plan_round_trips_to_sim_schedule() {
        let plan = FaultPlan::crash(3, 1_000_000);
        assert_eq!(plan.crashes, vec![CrashSpec { rank: 3, at_ns: 1_000_000 }]);
        assert_eq!(plan.crash_schedule(), vec![(3, 1_000_000)]);
        assert!(FaultPlan::default().crash_schedule().is_empty());
    }

    #[test]
    #[should_panic(expected = "torn_rate")]
    fn bad_torn_rate_rejected() {
        FaultInjector::new(
            FaultPlan { torn_rate: -0.1, ..FaultPlan::default() },
            1,
        );
    }
}
