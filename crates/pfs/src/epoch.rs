//! Crash-consistent epoch commits: double-slot checkpoint headers.
//!
//! A checkpoint *family* is a pair of shadow data files plus one tiny
//! header file. Epoch generation `g` writes its data into slot file
//! `g % 2` (never touching the previously committed slot), then — only
//! after every writer's data is durably down — publishes the epoch by
//! writing a checksummed 16-byte record into the header at slot offset
//! `(g % 2) * 16`. A reader picks the record with a valid checksum and
//! the highest generation, so at every instant the family reads as
//! *old-or-new, never torn*:
//!
//! - crash before the header write: the header still names `g - 1`,
//!   whose slot file is untouched;
//! - torn header write (the OST persisted only a prefix of the record):
//!   the checksum no longer matches the generation bytes, the record is
//!   ignored, and the other slot — holding `g - 1` — wins;
//! - crash after the header write: `g` is fully durable by protocol
//!   order, so naming it is safe.
//!
//! The header record is `[gen: u64 LE][gen ^ MAGIC: u64 LE]`. An
//! all-zero (never-written) slot is invalid because `0 ^ MAGIC != 0`.
//! The engine layer decides *when* to commit (after all aggregators'
//! cycles complete plus a barrier, rank 0 writing); this module only
//! provides the naming scheme and the commit/recover primitives.

use crate::fault::PfsError;
use crate::fs::FileHandle;

/// Checksum salt for header records. Any fixed odd-ish constant works;
/// this one is the splitmix64 increment, consistent with the fault
/// injector's hashing family.
pub const EPOCH_MAGIC: u64 = 0x9e37_79b9_7f4a_7c15;

/// Bytes per header slot record.
pub const SLOT_BYTES: u64 = 16;

/// Path of a family's header file.
pub fn header_path(base: &str) -> String {
    format!("{base}.epoch")
}

/// Path of the shadow data file epoch `gen` writes into.
pub fn slot_path(base: &str, gen: u64) -> String {
    format!("{base}.slot{}", gen % 2)
}

fn encode_slot(gen: u64) -> [u8; SLOT_BYTES as usize] {
    let mut rec = [0u8; SLOT_BYTES as usize];
    rec[..8].copy_from_slice(&gen.to_le_bytes());
    rec[8..].copy_from_slice(&(gen ^ EPOCH_MAGIC).to_le_bytes());
    rec
}

fn decode_slot(rec: &[u8]) -> Option<u64> {
    let gen = u64::from_le_bytes(rec[..8].try_into().unwrap());
    let sum = u64::from_le_bytes(rec[8..16].try_into().unwrap());
    (gen ^ EPOCH_MAGIC == sum).then_some(gen)
}

/// Publish epoch `gen` on the family's header handle: write the
/// checksummed record into slot `(gen % 2) * 16` via the nonblocking
/// path. Call only after the epoch's data is durably down on
/// [`slot_path`]`(base, gen)`. Returns the completion time; a
/// [`PfsErrorKind::TornWrite`] means the record may be half-persisted —
/// which the checksum masks for readers — and a retry re-publishes it.
///
/// [`PfsErrorKind::TornWrite`]: crate::PfsErrorKind::TornWrite
pub fn commit_epoch(hdr: &FileHandle, now: u64, gen: u64) -> Result<u64, PfsError> {
    let rec = encode_slot(gen);
    let guard = hdr.nb_issued();
    let op = hdr.pwrite_nb(now, (gen % 2) * SLOT_BYTES, &rec);
    let res = op.wait(now);
    drop(guard);
    res
}

/// Recover the committed generation from a family's header handle: the
/// valid-checksum record with the highest generation, or `None` if no
/// epoch was ever committed. Never reports a torn epoch — an invalid
/// record is skipped, not an error.
pub fn read_committed(hdr: &FileHandle, now: u64) -> Result<(u64, Option<u64>), PfsError> {
    let mut buf = [0u8; 2 * SLOT_BYTES as usize];
    let t = hdr.read(now, 0, &mut buf)?;
    let a = decode_slot(&buf[..SLOT_BYTES as usize]);
    let b = decode_slot(&buf[SLOT_BYTES as usize..]);
    let gen = match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, y) => x.or(y),
    };
    Ok((t, gen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PfsConfig;
    use crate::fault::FaultPlan;
    use crate::fs::Pfs;

    #[test]
    fn fresh_header_reads_uncommitted() {
        let pfs = Pfs::new(PfsConfig::test_tiny());
        let h = pfs.open(&header_path("ckpt"), 0);
        let (_, gen) = read_committed(&h, 0).unwrap();
        assert_eq!(gen, None, "all-zero slots must not decode as gen 0");
    }

    #[test]
    fn commit_sequence_alternates_slots_and_reads_latest() {
        let pfs = Pfs::new(PfsConfig::test_tiny());
        let h = pfs.open(&header_path("ckpt"), 0);
        let mut t = 0;
        for gen in 0..5u64 {
            t = commit_epoch(&h, t, gen).unwrap();
            let (t2, got) = read_committed(&h, t).unwrap();
            assert_eq!(got, Some(gen), "latest committed epoch must win");
            t = t2;
        }
        assert_eq!(slot_path("ckpt", 4), "ckpt.slot0");
        assert_eq!(slot_path("ckpt", 5), "ckpt.slot1");
    }

    #[test]
    fn gen_zero_is_a_valid_commit() {
        let pfs = Pfs::new(PfsConfig::test_tiny());
        let h = pfs.open(&header_path("ckpt"), 0);
        commit_epoch(&h, 0, 0).unwrap();
        let (_, gen) = read_committed(&h, 0).unwrap();
        assert_eq!(gen, Some(0));
    }

    #[test]
    fn torn_header_write_falls_back_to_previous_epoch() {
        // Publish epochs under a 50% torn-write plan. A torn publish of
        // gen g scribbles a checksum-invalid prefix over gen g-2's slot,
        // so readers must still see gen g-1 — old-or-new, never torn.
        let pfs = Pfs::with_faults(
            PfsConfig::test_tiny(),
            FaultPlan { seed: 7, torn_rate: 0.5, ..FaultPlan::default() },
        );
        let h = pfs.open(&header_path("ckpt"), 0);
        // Establish gen 0 durably (retrying a torn publish heals it).
        let mut t = 0u64;
        let mut landed = false;
        for _ in 0..64 {
            match commit_epoch(&h, t, 0) {
                Ok(fin) => {
                    t = fin;
                    landed = true;
                    break;
                }
                Err(e) => t = e.at,
            }
        }
        assert!(landed, "gen 0 should heal within 64 retries at rate 0.5");
        let mut committed = 0u64;
        let mut saw_tear = false;
        for gen in 1..40u64 {
            match commit_epoch(&h, t, gen) {
                Ok(fin) => {
                    t = fin;
                    committed = gen;
                    let (t2, got) = read_committed(&h, t).unwrap();
                    assert_eq!(got, Some(gen));
                    t = t2;
                }
                Err(e) => {
                    assert_eq!(e.kind, crate::fault::PfsErrorKind::TornWrite);
                    saw_tear = true;
                    let (_, got) = read_committed(&h, e.at).unwrap();
                    assert_eq!(
                        got,
                        Some(committed),
                        "torn publish of gen {gen} must fall back to gen {committed}"
                    );
                    break;
                }
            }
        }
        assert!(saw_tear, "rate 0.5 must tear within 40 publishes");
    }

    #[test]
    fn corrupt_slot_is_skipped_not_fatal() {
        let pfs = Pfs::new(PfsConfig::test_tiny());
        let h = pfs.open(&header_path("ckpt"), 0);
        let mut t = commit_epoch(&h, 0, 2).unwrap();
        t = commit_epoch(&h, t, 3).unwrap();
        // Scribble over gen 3's slot (offset 16): simulated partial record.
        t = h.write(t, SLOT_BYTES, &[0xde, 0xad]).unwrap();
        let (_, gen) = read_committed(&h, t).unwrap();
        assert_eq!(gen, Some(2), "corrupt slot must yield the surviving epoch");
    }
}
