//! Sorted, disjoint extent sets: the interval arithmetic beneath the lock
//! manager and the client cache.

/// A set of disjoint, sorted, half-open byte ranges `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentSet {
    ranges: Vec<(u64, u64)>,
}

impl ExtentSet {
    /// Empty set.
    pub fn new() -> Self {
        ExtentSet::default()
    }

    /// The ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// True if no bytes are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Insert `[start, end)`, merging with touching/overlapping ranges.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Find all ranges overlapping or touching [start, end].
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let mut hi = lo;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            new_start = new_start.min(self.ranges[hi].0);
            new_end = new_end.max(self.ranges[hi].1);
            hi += 1;
        }
        self.ranges.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Remove `[start, end)`; splits partially covered ranges.
    pub fn remove(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            if e <= start || s >= end {
                out.push((s, e));
                continue;
            }
            if s < start {
                out.push((s, start));
            }
            if e > end {
                out.push((end, e));
            }
        }
        self.ranges = out;
    }

    /// True if every byte of `[start, end)` is covered.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        match self.ranges.get(i) {
            Some(&(s, e)) => s <= start && end <= e,
            None => false,
        }
    }

    /// The portions of `[start, end)` that overlap this set.
    pub fn intersect(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if start >= end {
            return out;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        for &(s, e) in &self.ranges[i..] {
            if s >= end {
                break;
            }
            out.push((s.max(start), e.min(end)));
        }
        out
    }

    /// True if any byte of `[start, end)` is covered.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        self.ranges.get(i).map(|&(s, _)| s < end).unwrap_or(false)
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(rs: &[(u64, u64)]) -> ExtentSet {
        let mut s = ExtentSet::new();
        for &(a, b) in rs {
            s.insert(a, b);
        }
        s
    }

    #[test]
    fn insert_disjoint_sorted() {
        let s = set(&[(10, 20), (0, 5), (30, 40)]);
        assert_eq!(s.ranges(), &[(0, 5), (10, 20), (30, 40)]);
        assert_eq!(s.covered(), 25);
    }

    #[test]
    fn insert_merges_overlap_and_touch() {
        let s = set(&[(0, 10), (10, 20)]);
        assert_eq!(s.ranges(), &[(0, 20)]);
        let s = set(&[(0, 10), (5, 25), (40, 50), (24, 41)]);
        assert_eq!(s.ranges(), &[(0, 50)]);
    }

    #[test]
    fn insert_empty_noop() {
        let mut s = set(&[(0, 10)]);
        s.insert(5, 5);
        assert_eq!(s.ranges(), &[(0, 10)]);
    }

    #[test]
    fn remove_splits() {
        let mut s = set(&[(0, 100)]);
        s.remove(20, 30);
        assert_eq!(s.ranges(), &[(0, 20), (30, 100)]);
        s.remove(0, 20);
        assert_eq!(s.ranges(), &[(30, 100)]);
        s.remove(90, 200);
        assert_eq!(s.ranges(), &[(30, 90)]);
    }

    #[test]
    fn covers_and_overlaps() {
        let s = set(&[(10, 20), (30, 40)]);
        assert!(s.covers(10, 20));
        assert!(s.covers(12, 18));
        assert!(!s.covers(15, 25));
        assert!(!s.covers(20, 30)); // gap
        assert!(s.overlaps(15, 35));
        assert!(!s.overlaps(20, 30));
        assert!(!s.overlaps(0, 10));
        assert!(s.overlaps(0, 11));
    }

    #[test]
    fn intersect_clips() {
        let s = set(&[(10, 20), (30, 40), (50, 60)]);
        assert_eq!(s.intersect(15, 55), vec![(15, 20), (30, 40), (50, 55)]);
        assert_eq!(s.intersect(20, 30), vec![]);
        assert_eq!(s.intersect(0, 100), vec![(10, 20), (30, 40), (50, 60)]);
    }

    #[test]
    fn covers_empty_range_trivially() {
        let s = ExtentSet::new();
        assert!(s.covers(5, 5));
        assert!(!s.covers(5, 6));
    }
}
