//! # flexio-pfs — a striped parallel file system simulator
//!
//! Substitute for the paper's Lustre testbed. Files are striped round-robin
//! over OSTs; every OST has a virtual-time pipeline (per-request overhead,
//! seek charges on discontiguity, per-byte streaming, page-granular
//! read-modify-write for unaligned writes). A distributed-lock-manager
//! analogue hands out stripe-expanded extent locks and revokes conflicting
//! holders — flushing their client-side write-back page caches — which is
//! the mechanism behind the paper's persistent-file-realm and file-realm-
//! alignment results (§6.4) and the 4 KiB alignment spikes of Fig. 5.
//!
//! Data contents are always byte-exact; only *time* is modelled.
//!
//! Operations are fallible: an installed [`FaultPlan`] can inject
//! transient per-OST request errors, straggler-OST service-time windows
//! and lock-manager stalls, all deterministically from a seed. Without a
//! plan, ops never fail and the timing is charge-identical to the
//! pre-fault simulator.
//!
//! ```
//! use flexio_pfs::{Pfs, PfsConfig};
//!
//! let pfs = Pfs::new(PfsConfig::test_tiny());
//! let h = pfs.open("demo", 0);
//! let t = h.write(0, 10, b"hello").unwrap();
//! let mut buf = [0u8; 5];
//! let _t2 = h.read(t, 10, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod epoch;
pub mod extent;
pub mod fault;
pub mod fs;
pub mod lock;

pub use cache::{ClientCache, DirtyRun};
pub use config::{PfsConfig, PfsCostModel};
pub use extent::ExtentSet;
pub use fault::{CrashSpec, FaultInjector, FaultPlan, PfsError, PfsErrorKind, StragglerSpec};
pub use fs::{FileHandle, FileObj, NbGuard, NbOp, Pfs, PfsStats, StatsSnapshot};
pub use lock::{Acquire, LockTable};

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Op {
        write: bool,
        off: u64,
        len: usize,
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            (any::<bool>(), 0u64..600, 1usize..120)
                .prop_map(|(write, off, len)| Op { write, off, len }),
            1..40,
        )
    }

    fn check_against_reference(cfg: PfsConfig, ops: Vec<Op>) {
        let pfs = Pfs::new(cfg);
        let h = pfs.open("f", 0);
        let mut reference = vec![0u8; 1024];
        let mut t = 0u64;
        let mut stamp = 1u8;
        for op in &ops {
            if op.write {
                let data: Vec<u8> = (0..op.len).map(|i| stamp.wrapping_add(i as u8)).collect();
                stamp = stamp.wrapping_add(17);
                t = h.write(t, op.off, &data).unwrap();
                reference[op.off as usize..op.off as usize + op.len].copy_from_slice(&data);
            } else {
                let mut buf = vec![0u8; op.len];
                t = h.read(t, op.off, &mut buf).unwrap();
                assert_eq!(
                    buf,
                    &reference[op.off as usize..op.off as usize + op.len],
                    "read mismatch at {:?}",
                    op
                );
            }
        }
        let t2 = h.close(t).unwrap();
        assert!(t2 >= t);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Uncached path matches a flat byte-array reference model.
        #[test]
        fn uncached_matches_reference(ops in arb_ops()) {
            check_against_reference(PfsConfig::test_tiny(), ops);
        }

        /// Cached+locked path matches the same reference model.
        #[test]
        fn cached_matches_reference(ops in arb_ops()) {
            let cfg = PfsConfig {
                locking: true,
                client_cache: true,
                ..PfsConfig::test_tiny()
            };
            check_against_reference(cfg, ops);
        }

        /// Two clients with disjoint halves, cached: flush order can't
        /// corrupt; final contents exact after closes.
        #[test]
        fn two_client_disjoint_cached(seed in 0u64..500) {
            let cfg = PfsConfig {
                locking: true,
                client_cache: true,
                ..PfsConfig::test_tiny()
            };
            let pfs = Pfs::new(cfg);
            let a = pfs.open("f", 0);
            let b = pfs.open("f", 1);
            // Client 0 owns [0, 512), client 1 owns [512, 1024).
            for i in 0..8u64 {
                let o = (seed + i * 37) % 448;
                a.write(i, o, &[i as u8 + 1; 64]).unwrap();
                b.write(i, 512 + o, &[i as u8 + 101; 64]).unwrap();
            }
            a.close(100).unwrap();
            b.close(100).unwrap();
            let c = pfs.open("f", 2);
            let mut buf = vec![0u8; 1024];
            c.read(0, 0, &mut buf).unwrap();
            // Every written byte must be one of the stamps from the correct half.
            for (i, &v) in buf.iter().enumerate() {
                if v != 0 {
                    if i < 512 {
                        prop_assert!((1..=8).contains(&v), "byte {i} = {v}");
                    } else {
                        prop_assert!((101..=108).contains(&v), "byte {i} = {v}");
                    }
                }
            }
        }

        /// Virtual completion times are monotone in `now`.
        #[test]
        fn time_monotone(now in 0u64..10_000_000, len in 1usize..200) {
            let pfs = Pfs::new(PfsConfig { cost: PfsCostModel::default(), ..PfsConfig::test_tiny() });
            let h = pfs.open("f", 0);
            let t = h.write(now, 0, &vec![1u8; len]).unwrap();
            prop_assert!(t > now);
            let t2 = h.read(t, 0, &mut vec![0u8; len]).unwrap();
            prop_assert!(t2 > t);
        }
    }
}
