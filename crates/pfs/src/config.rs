//! Configuration and cost model for the striped parallel file system.

/// Service-time model for the file system, all durations in virtual ns.
///
/// Defaults are scaled to the paper's shared-Lustre testbed: per-request
/// overheads dominate small accesses, streaming dominates large ones, and
/// lock traffic is expensive enough that avoiding it (PFR + aligned file
/// realms, §6.4) is visible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfsCostModel {
    /// Fixed overhead per OST request (RPC handling + block lookup).
    pub request_ns: u64,
    /// Extra charge when a request is discontiguous with the previous one
    /// on the same OST for the same file (disk seek / readahead miss).
    pub seek_ns: u64,
    /// OST streaming time per byte (3.3 ns/B ≈ 300 MB/s per OST).
    pub ns_per_byte: f64,
    /// One-way client↔server network latency.
    pub net_ns: u64,
    /// Client↔server transfer time per byte.
    pub net_ns_per_byte: f64,
    /// Distributed-lock-manager grant latency (uncontended).
    pub lock_grant_ns: u64,
    /// Lock revocation round-trip (callback + owner ack), excluding the
    /// flush of the owner's dirty pages, which is charged at OST rates.
    pub lock_revoke_ns: u64,
    /// Per-byte cost of copying into/out of the client page cache.
    pub cache_copy_ns_per_byte: f64,
}

impl Default for PfsCostModel {
    fn default() -> Self {
        // Calibration notes (see DESIGN.md): with these values a chained
        // per-segment write costs ~90 µs fixed + 4.3 ns/B (+ ~27 µs RMW when
        // unaligned), while data sieving costs ~8.6 ns per *extent* byte —
        // which puts the naive-vs-sieve crossover of Fig. 5 near a 16 KiB
        // datatype extent, as the paper reports.
        PfsCostModel {
            request_ns: 50_000,
            seek_ns: 20_000,
            ns_per_byte: 3.3,
            net_ns: 10_000,
            net_ns_per_byte: 1.0,
            lock_grant_ns: 150_000,
            lock_revoke_ns: 1_500_000,
            cache_copy_ns_per_byte: 0.5,
        }
    }
}

impl PfsCostModel {
    /// A zero-cost model for data-correctness tests.
    pub fn free() -> Self {
        PfsCostModel {
            request_ns: 0,
            seek_ns: 0,
            ns_per_byte: 0.0,
            net_ns: 0,
            net_ns_per_byte: 0.0,
            lock_grant_ns: 0,
            lock_revoke_ns: 0,
            cache_copy_ns_per_byte: 0.0,
        }
    }
}

/// Static layout and feature configuration of the file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfsConfig {
    /// Number of object storage targets files are striped over.
    pub n_osts: usize,
    /// Stripe size in bytes (Lustre default in the paper: 2 MiB).
    pub stripe_size: u64,
    /// Page size in bytes (4 KiB in the paper; drives RMW and alignment).
    pub page_size: u64,
    /// Enable the extent-lock manager (coherence protocol).
    pub locking: bool,
    /// Lustre-style lock expansion: grants grow into free space (see
    /// [`crate::lock::LockTable`]). Meaningful only with `locking`.
    pub lock_expansion: bool,
    /// Enable the client-side write-back page cache.
    pub client_cache: bool,
    /// Service-time model.
    pub cost: PfsCostModel,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            n_osts: 8,
            stripe_size: 2 << 20,
            page_size: 4096,
            locking: true,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::default(),
        }
    }
}

impl PfsConfig {
    /// Zero-cost, lock-free, cache-free config for data-correctness tests.
    pub fn test_tiny() -> Self {
        PfsConfig {
            n_osts: 4,
            stripe_size: 64,
            page_size: 16,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::free(),
        }
    }

    /// Validate invariants (stripe a multiple of page, nonzero sizes).
    pub fn validate(&self) {
        assert!(self.n_osts > 0, "need at least one OST");
        assert!(self.page_size > 0, "page size must be nonzero");
        assert!(
            self.stripe_size.is_multiple_of(self.page_size),
            "stripe size must be a multiple of the page size"
        );
        assert!(
            !self.client_cache || self.locking,
            "client cache requires locking for coherence"
        );
    }

    /// Round `off` down to a page boundary.
    pub fn page_floor(&self, off: u64) -> u64 {
        off - off % self.page_size
    }

    /// Round `off` up to a page boundary.
    pub fn page_ceil(&self, off: u64) -> u64 {
        off.div_ceil(self.page_size) * self.page_size
    }

    /// OST index serving the stripe containing `off`.
    pub fn ost_of(&self, off: u64) -> usize {
        ((off / self.stripe_size) % self.n_osts as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PfsConfig::default().validate();
        PfsConfig::test_tiny().validate();
    }

    #[test]
    #[should_panic(expected = "multiple of the page size")]
    fn stripe_page_mismatch_rejected() {
        PfsConfig { stripe_size: 100, page_size: 64, ..PfsConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "requires locking")]
    fn cache_without_locking_rejected() {
        PfsConfig { client_cache: true, locking: false, ..PfsConfig::default() }.validate();
    }

    #[test]
    fn page_rounding() {
        let c = PfsConfig { page_size: 16, stripe_size: 64, ..PfsConfig::test_tiny() };
        assert_eq!(c.page_floor(0), 0);
        assert_eq!(c.page_floor(17), 16);
        assert_eq!(c.page_ceil(17), 32);
        assert_eq!(c.page_ceil(32), 32);
    }

    #[test]
    fn ost_round_robin() {
        let c = PfsConfig::test_tiny(); // stripe 64, 4 osts
        assert_eq!(c.ost_of(0), 0);
        assert_eq!(c.ost_of(63), 0);
        assert_eq!(c.ost_of(64), 1);
        assert_eq!(c.ost_of(64 * 4), 0);
    }
}
