//! Materialize a [`WorkloadSpec`] against a simulated PFS.
//!
//! One simulated world per phase — phases may have *different* rank
//! counts (restart W→R, scans) — all sharing one [`Pfs`] instance, so the
//! file written by phase `k` is exactly what phase `k+1` opens. The
//! engine, copy path, and fault axis are the run's [`RunConfig`], not the
//! spec's: the differential fuzz suite runs one spec under several
//! configs and compares.

use crate::spec::{PhaseOp, WorkloadSpec};
use crate::tiled::read_file;
use flexio_core::{Engine, Hints, IoError, MpiFile};
use flexio_pfs::{FaultPlan, Pfs, PfsConfig, PfsCostModel};
use flexio_sim::{run_on, Backend, CostModel, Stats};
use flexio_types::Datatype;
use std::sync::Arc;

/// The axes a spec is run under (everything the spec itself leaves open).
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Collective engine.
    pub engine: Engine,
    /// Zero-copy datatype path on/off.
    pub zero_copy: bool,
    /// Inject the spec's transient-fault plan.
    pub faulted: bool,
    /// Host-thread shards driving each phase's world: 0 defers to
    /// `FLEXIO_SIM_SHARDS` (the [`Backend::from_env`] default), 1 pins
    /// the sequential event loop, n >= 2 pins the sharded pool. Results
    /// are bit-identical either way; the fuzz suite still runs both to
    /// prove it.
    pub shards: usize,
}

impl RunConfig {
    /// The sim backend this config pins (see [`RunConfig::shards`]).
    pub fn backend(&self) -> Backend {
        match self.shards {
            0 => Backend::from_env(),
            1 => Backend::EventLoop,
            n => Backend::Sharded(n),
        }
    }
}

/// Everything one phase produced, rank-indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseResult {
    /// Final virtual clock per rank.
    pub clocks: Vec<u64>,
    /// Per-rank counters.
    pub stats: Vec<Stats>,
    /// Per-rank collective outcomes, one per step.
    pub outcomes: Vec<Vec<Result<(), IoError>>>,
    /// Per-rank read buffers (empty for write phases).
    pub read_backs: Vec<Vec<u8>>,
}

/// A full run: the final file image plus every phase's results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Raw bytes of the shared file after the last phase.
    pub image: Vec<u8>,
    /// Reported file size (may exceed the oracle image only by zeros).
    pub file_size: u64,
    /// Per-phase results, in spec order.
    pub phases: Vec<PhaseResult>,
}

/// Run every phase of `spec` under `cfg` on a fresh PFS.
pub fn run_spec(spec: &WorkloadSpec, cfg: RunConfig) -> RunOutcome {
    let pfs_cfg = PfsConfig {
        n_osts: spec.pfs.n_osts,
        stripe_size: spec.pfs.stripe,
        page_size: spec.pfs.page,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    };
    let pfs = if cfg.faulted {
        Pfs::with_faults(pfs_cfg, FaultPlan::transient(spec.fault_seed, spec.fault_rate))
    } else {
        Pfs::new(pfs_cfg)
    };
    let mut phases = Vec::with_capacity(spec.phases.len());
    for phase in &spec.phases {
        let hints = Hints {
            engine: cfg.engine,
            cb_nodes: Some(phase.aggs),
            cb_buffer_size: spec.cb,
            exchange: spec.exchange,
            persistent_file_realms: spec.pfr,
            schedule_cache: spec.cache,
            pipeline_depth: spec.depth,
            zero_copy: cfg.zero_copy,
            io_retries: 12,
            retry_backoff_us: 20,
            ..Hints::default()
        };
        let inner = Arc::clone(&pfs);
        let ph = phase.clone();
        let per_rank = run_on(cfg.backend(), phase.nprocs, CostModel::default(), move |rank| {
            let plan = &ph.plans[rank.rank()];
            let mut f = MpiFile::open(rank, &inner, "workload", hints.clone())
                .expect("hints validated by construction");
            f.set_view(plan.disp, &Datatype::bytes(1), &plan.filetype)
                .expect("plan filetype must be a valid view");
            let mut outcomes = Vec::new();
            let mut back = Vec::new();
            match ph.op {
                PhaseOp::Write => {
                    for s in 0..ph.steps {
                        let buf = plan.step_buffer(s);
                        outcomes.push(f.write_all_at(
                            plan.offset_etypes,
                            &buf,
                            &plan.memtype,
                            plan.mem_count,
                        ));
                    }
                }
                PhaseOp::Read => {
                    back = vec![0u8; plan.buf_len()];
                    outcomes.push(f.read_all_at(
                        plan.offset_etypes,
                        &mut back,
                        &plan.memtype,
                        plan.mem_count,
                    ));
                }
            }
            let _ = f.close();
            (rank.now(), rank.stats(), outcomes, back)
        });
        let mut res = PhaseResult {
            clocks: Vec::new(),
            stats: Vec::new(),
            outcomes: Vec::new(),
            read_backs: Vec::new(),
        };
        for (now, stats, outcomes, back) in per_rank {
            res.clocks.push(now);
            res.stats.push(stats);
            res.outcomes.push(outcomes);
            res.read_backs.push(back);
        }
        phases.push(res);
    }
    let image = read_file(&pfs, "workload");
    let file_size = pfs.open("workload", usize::MAX - 1).size();
    RunOutcome { image, file_size, phases }
}

/// Assert the uniform run invariants on every rank of every phase:
/// phase-time buckets sum to the rank's clock, the copy ledger never
/// exceeds charged memcpy traffic, and collective outcomes agree across
/// the world step by step.
pub fn check_invariants(out: &RunOutcome, label: &str) {
    for (pi, ph) in out.phases.iter().enumerate() {
        for (r, st) in ph.stats.iter().enumerate() {
            assert_eq!(
                st.phase_ns.iter().sum::<u64>(),
                ph.clocks[r],
                "{label}: phase {pi} rank {r}: phase buckets must sum to the clock"
            );
            assert!(
                st.bytes_copied <= st.memcpy_bytes,
                "{label}: phase {pi} rank {r}: copy ledger {} exceeds charged memcpy {}",
                st.bytes_copied,
                st.memcpy_bytes
            );
        }
        for step in 0..ph.outcomes[0].len() {
            let ok0 = ph.outcomes[0][step].is_ok();
            for (r, o) in ph.outcomes.iter().enumerate() {
                assert_eq!(
                    o[step].is_ok(),
                    ok0,
                    "{label}: phase {pi} step {step}: rank {r} broke collective agreement"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{eq_padded, Oracle};
    use crate::spec::checkpoint_spec;

    #[test]
    fn checkpoint_roundtrip_matches_oracle() {
        let spec = checkpoint_spec(11, 3, 8, 2, 2);
        let cfg = RunConfig { engine: Engine::Flexible, zero_copy: true, faulted: false, shards: 0 };
        let out = run_spec(&spec, cfg);
        let o = Oracle::from_spec(&spec);
        assert!(eq_padded(&out.image, o.image()), "image diverged from oracle");
        check_invariants(&out, "checkpoint");
        let read = &out.phases[1];
        for (r, plan) in spec.phases[1].plans.iter().enumerate() {
            assert_eq!(read.read_backs[r], o.expected_read(plan), "rank {r} read-back");
        }
    }
}
