//! The strided rank-shifted workload of `tests/engine_equivalence.rs`,
//! promoted from a private test struct to a shared spec so other suites
//! (and the proptest strategies that wrap it) describe it once.

use flexio_types::{Datatype, Dt};

/// A randomized per-rank access pattern: strided blocks, rank-shifted.
#[derive(Debug, Clone)]
pub struct StridedSpec {
    /// World size.
    pub nprocs: usize,
    /// Data bytes per filetype block.
    pub block: u64,
    /// Hole after each block.
    pub gap: u64,
    /// Filetype instances written per rank.
    pub count: u64,
    /// Per-rank view displacement unit (usually `block + gap`).
    pub disp_unit: u64,
}

impl StridedSpec {
    /// The shared filetype: one `block` every `(block+gap)*nprocs` bytes.
    pub fn filetype(&self) -> Dt {
        let unit = (self.block + self.gap) * self.nprocs as u64;
        Datatype::resized(0, unit, Datatype::bytes(self.block))
    }

    /// Rank `r`'s view displacement.
    pub fn disp(&self, rank: usize) -> u64 {
        rank as u64 * self.disp_unit
    }

    /// Data bytes each rank writes.
    pub fn bytes_per_rank(&self) -> u64 {
        self.block * self.count
    }

    /// Rank `r`'s deterministic payload (the historic byte formula of the
    /// equivalence suite — pinned proptest regressions depend on it).
    pub fn data(&self, rank: usize) -> Vec<u8> {
        (0..self.bytes_per_rank())
            .map(|i| ((rank as u64 * 89 + i * 13 + 5) % 247) as u8)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filetype_tiles_do_not_overlap_across_ranks() {
        let w = StridedSpec { nprocs: 3, block: 4, gap: 2, count: 5, disp_unit: 6 };
        // Rank tiles land at disp + k*unit: byte ranges must be disjoint.
        let unit = (w.block + w.gap) * w.nprocs as u64;
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..w.nprocs {
            for k in 0..w.count {
                for b in 0..w.block {
                    assert!(seen.insert(w.disp(r) + k * unit + b), "overlap at rank {r}");
                }
            }
        }
    }

    #[test]
    fn data_formula_is_pinned() {
        let w = StridedSpec { nprocs: 2, block: 3, gap: 0, count: 1, disp_unit: 3 };
        assert_eq!(w.data(0), vec![5, 18, 31]);
        assert_eq!(w.data(1), vec![94, 107, 120]);
    }
}
