//! Random scenario generation on the property harness's PRNG.
//!
//! Every draw is `lo + next_u64() % faces`, so the harness's greedy case
//! shrinking — which right-shifts raw draws toward zero — lands every
//! parameter near its floor: fewer ranks, smaller blocks, shorter runs.
//! A shrunk `cc <seed> s<level>` regression line therefore replays a
//! *simpler* member of the same family, not an unrelated case.

use crate::spec::{
    checkpoint_spec, many_task_spec, mixed_subarray_spec, read_scan_spec, restart_spec, PfsShape,
    PhaseOp, PhaseSpec, RankPlan, ScenarioKind, WorkloadSpec,
};
use flexio_core::{ExchangeMode, PipelineDepth};
use flexio_sim::XorShift64Star;
use flexio_types::Datatype;

/// One draw in `[lo, lo + faces)`; shrunk generators land near `lo`.
pub fn range(rng: &mut XorShift64Star, lo: u64, faces: u64) -> u64 {
    lo + rng.next_u64() % faces
}

/// One coin flip (both faces stay reachable at every shrink level).
pub fn coin(rng: &mut XorShift64Star) -> bool {
    rng.next_u64() % 2 == 1
}

/// Mixed irregular views: a byte unit is chopped into small chunks,
/// chunks are dealt randomly across ranks (some ranks may end up empty),
/// and each rank's filetype is the indexed selection of its chunks,
/// resized to the unit so the per-rank tiles interleave without
/// conflicting. Memory is either packed or a single-byte strided type.
pub fn mixed_irregular_spec(rng: &mut XorShift64Star, seed: u64, nprocs: usize) -> WorkloadSpec {
    let nchunks = nprocs + range(rng, 0, 16) as usize;
    let mut assign: Vec<Vec<(i64, u64)>> = vec![Vec::new(); nprocs];
    let mut off = 0u64;
    for _ in 0..nchunks {
        let len = range(rng, 1, 8);
        assign[(rng.next_u64() as usize) % nprocs].push((off as i64, len));
        off += len;
    }
    let unit = off + range(rng, 0, 16);
    let reps = range(rng, 1, 4);
    let strided_mem = coin(rng);
    let pad = range(rng, 2, 3);
    let plans: Vec<RankPlan> = (0..nprocs)
        .map(|r| {
            if assign[r].is_empty() {
                return RankPlan::empty();
            }
            let per_tile: u64 = assign[r].iter().map(|&(_, l)| l).sum();
            let total = per_tile * reps;
            let filetype =
                Datatype::resized(0, unit, Datatype::indexed(assign[r].clone(), Datatype::bytes(1)));
            let (memtype, mem_count) = if strided_mem {
                (Datatype::resized(0, pad, Datatype::bytes(1)), total)
            } else {
                (Datatype::bytes(total), 1)
            };
            RankPlan {
                disp: 0,
                filetype,
                memtype,
                mem_count,
                offset_etypes: 0,
                data_seed: seed ^ ((r as u64) << 32),
            }
        })
        .collect();
    WorkloadSpec::new(
        ScenarioKind::Mixed,
        vec![
            PhaseSpec::new(PhaseOp::Write, 1, plans.clone()),
            PhaseSpec::new(PhaseOp::Read, 1, plans),
        ],
    )
}

/// Draw one complete [`WorkloadSpec`]: a family, its shape parameters,
/// then the shared knobs (PFS geometry, hints, per-phase aggregator
/// counts, fault plan).
pub fn generate(rng: &mut XorShift64Star) -> WorkloadSpec {
    let kind = ScenarioKind::ALL[(rng.next_u64() % 5) as usize];
    let seed = rng.next_u64();
    let mut spec = match kind {
        ScenarioKind::Checkpoint => {
            let nprocs = range(rng, 2, 6) as usize;
            let block = 8 * range(rng, 1, 8);
            let reps = range(rng, 1, 12);
            let epochs = range(rng, 1, 3);
            checkpoint_spec(seed, nprocs, block, reps, epochs)
        }
        ScenarioKind::Restart => {
            let writers = range(rng, 2, 6) as usize;
            let mut readers = range(rng, 1, 8) as usize;
            if readers == writers {
                readers = if readers > 1 { readers - 1 } else { readers + 1 };
            }
            let es = range(rng, 1, 4);
            let elems = range(rng, 1, 700);
            let extra = if coin(rng) { range(rng, 0, elems + 1) } else { 0 };
            restart_spec(seed, writers, readers, elems, es, extra)
        }
        ScenarioKind::ManyTask => {
            let tasks = range(rng, 2, 7) as usize;
            let region = 4 * range(rng, 1, 32);
            let reps = range(rng, 1, 6);
            let gap = range(rng, 0, 128);
            let epochs = range(rng, 1, 2);
            many_task_spec(seed, tasks, region, reps, gap, epochs)
        }
        ScenarioKind::ReadScan => {
            let writers = range(rng, 2, 6) as usize;
            let readers = range(rng, 1, 8) as usize;
            let block = 8 * range(rng, 1, 8);
            let reps = range(rng, 1, 8);
            let scans = range(rng, 2, 3);
            read_scan_spec(seed, writers, readers, block, reps, scans)
        }
        ScenarioKind::Mixed => {
            if coin(rng) {
                let pr = range(rng, 1, 3) as usize;
                let pc = range(rng, 1, 3) as usize;
                let tr = range(rng, 1, 6);
                let tc = range(rng, 1, 9);
                let readers = range(rng, 1, 8) as usize;
                mixed_subarray_spec(seed, pr, pc, tr, tc, readers)
            } else {
                let nprocs = range(rng, 2, 5) as usize;
                mixed_irregular_spec(rng, seed, nprocs)
            }
        }
    };
    spec.pfs = PfsShape {
        n_osts: range(rng, 1, 4) as usize,
        stripe: [128, 256, 512, 1024][(rng.next_u64() % 4) as usize],
        page: [16, 32, 64][(rng.next_u64() % 3) as usize],
    };
    spec.cb = [128, 256, 512, 1024, 4096][(rng.next_u64() % 5) as usize];
    spec.exchange =
        if coin(rng) { ExchangeMode::Alltoallw } else { ExchangeMode::Nonblocking };
    spec.pfr = coin(rng);
    spec.cache = coin(rng);
    spec.depth = match rng.next_u64() % 6 {
        0..=3 => PipelineDepth::Fixed(1 + (rng.next_u64() % 5) as u32),
        _ => PipelineDepth::Auto,
    };
    for i in 0..spec.phases.len() {
        let n = spec.phases[i].nprocs;
        spec.phases[i].aggs = 1 + (rng.next_u64() as usize) % n;
    }
    spec.fault_seed = rng.next_u64();
    spec.fault_rate = (rng.next_u64() % 41) as f64 / 1000.0;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut XorShift64Star::new(99));
        let b = generate(&mut XorShift64Star::new(99));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn all_families_reachable() {
        let mut rng = XorShift64Star::new(0x00F1_E810);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(generate(&mut rng).kind);
        }
        assert_eq!(seen.len(), ScenarioKind::ALL.len(), "missing families: saw {seen:?}");
    }

    #[test]
    fn shrunk_specs_are_smaller_members_of_the_family() {
        // Individual draws can tie, but in aggregate the fully-shrunk
        // generator must produce far smaller cases than the raw one.
        let (mut full_bytes, mut tiny_bytes) = (0u64, 0u64);
        for seed in 1..40u64 {
            full_bytes += generate(&mut XorShift64Star::new(seed)).bytes_written();
            tiny_bytes += generate(&mut XorShift64Star::with_shrink(
                seed,
                flexio_sim::prng::MAX_SHRINK,
            ))
            .bytes_written();
        }
        assert!(
            tiny_bytes * 4 < full_bytes,
            "shrunk specs are not smaller: {tiny_bytes} vs {full_bytes}"
        );
    }

    #[test]
    fn aggs_stay_within_world() {
        let mut rng = XorShift64Star::new(5);
        for _ in 0..40 {
            let s = generate(&mut rng);
            for p in &s.phases {
                assert!(p.aggs >= 1 && p.aggs <= p.nprocs);
                assert_eq!(p.plans.len(), p.nprocs);
            }
        }
    }
}
