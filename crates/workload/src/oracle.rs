//! Engine-free expected-image oracle.
//!
//! Walks each write phase's datatypes directly — gather the memtype into
//! a packed stream, then stream the file view's pieces into a growable
//! byte image — so differential suites get a referee that shares *no*
//! code with either collective engine. Reads past the image's end see
//! zeros, matching PFS semantics for reads past EOF.

use crate::spec::{PhaseOp, PhaseSpec, RankPlan, WorkloadSpec};
use flexio_types::{flatten_shared, FileView};

/// The expected byte image of the shared file, plus expected read-backs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Oracle {
    image: Vec<u8>,
}

impl Oracle {
    /// An empty (zero-length) file.
    pub fn new() -> Oracle {
        Oracle::default()
    }

    /// The image after applying every write phase of `spec` in order.
    pub fn from_spec(spec: &WorkloadSpec) -> Oracle {
        let mut o = Oracle::new();
        for phase in &spec.phases {
            o.apply_phase(phase);
        }
        o
    }

    /// Apply one phase (reads are no-ops on the image).
    pub fn apply_phase(&mut self, phase: &PhaseSpec) {
        if phase.op != PhaseOp::Write {
            return;
        }
        for step in 0..phase.steps {
            for plan in &phase.plans {
                self.apply_write(plan, step);
            }
        }
    }

    /// Apply one rank's write of one step.
    pub fn apply_write(&mut self, plan: &RankPlan, step: u64) {
        let total = plan.total_bytes();
        if total == 0 {
            return;
        }
        let mut packed = vec![0u8; total as usize];
        plan.mem_layout().gather(&plan.step_buffer(step), 0, &mut packed);
        let view = FileView::new(plan.disp, flatten_shared(&plan.filetype).0, 1)
            .expect("plan filetype must form a valid view");
        let mut cur = view.cursor(plan.offset_etypes);
        let mut consumed = 0u64;
        while consumed < total {
            let p = cur.take(total - consumed);
            let end = (p.file_off + p.len) as usize;
            if self.image.len() < end {
                self.image.resize(end, 0);
            }
            self.image[p.file_off as usize..end]
                .copy_from_slice(&packed[consumed as usize..(consumed + p.len) as usize]);
            consumed += p.len;
        }
    }

    /// The buffer a rank must see after collectively reading `plan`
    /// against the current image: mapped bytes from the image (zeros past
    /// its end), holes in the memtype left zero.
    pub fn expected_read(&self, plan: &RankPlan) -> Vec<u8> {
        let total = plan.total_bytes();
        let mut buffer = vec![0u8; plan.buf_len()];
        if total == 0 {
            return buffer;
        }
        let mut packed = vec![0u8; total as usize];
        let view = FileView::new(plan.disp, flatten_shared(&plan.filetype).0, 1)
            .expect("plan filetype must form a valid view");
        let mut cur = view.cursor(plan.offset_etypes);
        let mut consumed = 0u64;
        while consumed < total {
            let p = cur.take(total - consumed);
            let fo = p.file_off as usize;
            let have = self.image.len().saturating_sub(fo).min(p.len as usize);
            if have > 0 {
                packed[consumed as usize..consumed as usize + have]
                    .copy_from_slice(&self.image[fo..fo + have]);
            }
            consumed += p.len;
        }
        plan.mem_layout().scatter(&mut buffer, 0, &packed);
        buffer
    }

    /// The expected image bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }
}

/// Byte equality up to trailing zeros: a file image and its oracle may
/// legitimately differ in length (page-granular sieve writes, reads past
/// EOF), but never in content.
pub fn eq_padded(a: &[u8], b: &[u8]) -> bool {
    let n = a.len().max(b.len());
    (0..n).all(|i| a.get(i).copied().unwrap_or(0) == b.get(i).copied().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{checkpoint_spec, restart_spec};

    #[test]
    fn checkpoint_image_interleaves_tiles() {
        let spec = checkpoint_spec(3, 2, 4, 2, 1);
        let o = Oracle::from_spec(&spec);
        // 2 ranks × 2 reps of 4-byte tiles → 16-byte image; rank 0 owns
        // bytes [0,4) and [8,12), rank 1 the rest.
        assert_eq!(o.image().len(), 16);
        let p0 = &spec.phases[0].plans[0];
        let p1 = &spec.phases[0].plans[1];
        let b0 = p0.step_buffer(0);
        let b1 = p1.step_buffer(0);
        assert_eq!(&o.image()[0..4], &b0[0..4]);
        assert_eq!(&o.image()[4..8], &b1[0..4]);
        assert_eq!(&o.image()[8..12], &b0[4..8]);
        assert_eq!(&o.image()[12..16], &b1[4..8]);
    }

    #[test]
    fn later_epochs_overwrite_earlier_ones() {
        let spec = checkpoint_spec(3, 2, 4, 2, 3);
        let o = Oracle::from_spec(&spec);
        let last = spec.phases[0].plans[0].step_buffer(2);
        assert_eq!(&o.image()[0..4], &last[0..4]);
    }

    #[test]
    fn expected_read_zero_fills_past_eof() {
        let spec = restart_spec(9, 2, 3, 10, 1, 6);
        let o = Oracle::from_spec(&spec);
        assert_eq!(o.image().len(), 10);
        // The read partition covers 16 elements; its tail crosses EOF.
        let tail = spec.phases[1].plans.last().unwrap();
        let got = o.expected_read(tail);
        assert!(!got.is_empty());
        // Reconstructing the full read side must reproduce image + zeros.
        let mut all = Vec::new();
        for p in &spec.phases[1].plans {
            all.extend(o.expected_read(p));
        }
        assert_eq!(&all[..10], o.image());
        assert!(all[10..].iter().all(|&b| b == 0));
    }

    #[test]
    fn eq_padded_ignores_only_trailing_zeros() {
        assert!(eq_padded(&[1, 2], &[1, 2, 0, 0]));
        assert!(eq_padded(&[], &[0; 4]));
        assert!(!eq_padded(&[1, 2], &[1, 2, 3]));
        assert!(!eq_padded(&[1], &[2]));
    }
}
