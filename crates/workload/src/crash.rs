//! Crash-checkpoint scenario family: seeded rank crashes inside an
//! epoch-committed checkpoint sequence, plus its verification battery.
//!
//! The scenario is the checkpoint/restart loop an epoch-commit protocol
//! exists for. `clean_epochs` generations write the interleaved tile
//! image into alternating shadow slot files ([`epoch::slot_path`]) and
//! publish each one through the double-slot header
//! ([`epoch::commit_epoch`], rank 0, after a barrier proves every
//! writer's data is durably down). Then one more generation runs with a
//! seeded crash armed: the victim rank dies at its first crash
//! checkpoint at or past the drawn virtual time.
//!
//! * With `flexio_crash_recovery=enable`, the survivors detect the
//!   death, re-form, replay, and complete; the epoch is published as a
//!   *survivor checkpoint* — its survivor tiles byte-identical to a
//!   fault-free run over the surviving ranks (the victim's tile range is
//!   dead state and is masked out of every comparison).
//! * With recovery disabled, every survivor returns the *same*
//!   [`IoError::RanksFailed`] verdict — collective error agreement, not
//!   a hang — the epoch is never published, and the header still names
//!   the previous generation, whose slot file the crashed run never
//!   touched.
//!
//! Either way a restart family — a fresh world over the survivors —
//! reads the header, opens the named slot, and sees a complete old or
//! new checkpoint, never a torn mix. That is the property the
//! crash-point fuzz axis (`tests/workload_fuzz.rs`) drives across drawn
//! crash times, victims, world sizes, and torn-header rates.

use crate::gen::{coin, range};
use crate::oracle::{eq_padded, Oracle};
use crate::spec::{partition_plans, tile_plans};
use crate::tiled::read_file;
use flexio_core::{Engine, Hints, IoError, MpiFile};
use flexio_pfs::{
    epoch, CrashSpec, FaultPlan, FileHandle, Pfs, PfsConfig, PfsCostModel, PfsErrorKind,
};
use flexio_sim::{run_crashable, CostModel, Phase, Stats, XorShift64Star};
use flexio_types::Datatype;
use std::sync::Arc;

/// Checkpoint-family base name; slots are `ckpt.slot{0,1}`, the header
/// is `ckpt.epoch`.
const BASE: &str = "ckpt";
/// Client id of the out-of-world commit/probe handle on the header file
/// (far above any rank id; `usize::MAX - 1` is taken by [`read_file`]).
const COMMIT_CLIENT: usize = usize::MAX - 2;
/// Base client id for per-rank header reads in the restart world.
const HDR_CLIENT_BASE: usize = 1 << 40;

/// One drawn crash-checkpoint case: the checkpoint shape, the crash
/// event, and the recovery switches.
#[derive(Debug, Clone)]
pub struct CrashScenario {
    /// Seed for tile data (and the PFS fault plan).
    pub seed: u64,
    /// World size of every write generation.
    pub nprocs: usize,
    /// Bytes per interleaved tile.
    pub block: u64,
    /// Tiles per rank per generation.
    pub reps: u64,
    /// Generations committed cleanly before the crash generation.
    pub clean_epochs: u64,
    /// `cb_nodes` for every collective.
    pub aggs: usize,
    /// Rank killed in the crash generation.
    pub victim: usize,
    /// Virtual time past which the victim's next crash checkpoint is
    /// fatal (a time past the run's end means the victim survives).
    pub at_ns: u64,
    /// `flexio_crash_recovery`.
    pub recovery: bool,
    /// `flexio_watchdog_us`.
    pub watchdog_us: u64,
    /// Torn-write rate for the PFS plan (tears the header publishes and
    /// the data path; retries heal both).
    pub torn_rate: f64,
}

impl CrashScenario {
    /// Total data bytes of one generation's tile image.
    pub fn image_bytes(&self) -> u64 {
        self.nprocs as u64 * self.block * self.reps
    }

    fn hints(&self) -> Hints {
        Hints {
            engine: Engine::Flexible,
            cb_nodes: Some(self.aggs),
            cb_buffer_size: 1024,
            crash_recovery: self.recovery,
            watchdog_us: self.watchdog_us,
            io_retries: 12,
            retry_backoff_us: 20,
            ..Hints::default()
        }
    }

    fn fault_plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            torn_rate: self.torn_rate,
            crashes: vec![CrashSpec { rank: self.victim, at_ns: self.at_ns }],
            ..FaultPlan::default()
        }
    }
}

/// What one rank of one world produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankRecord {
    /// Final virtual clock.
    pub clock: u64,
    /// Counter snapshot.
    pub stats: Stats,
    /// The collective's outcome.
    pub outcome: Result<(), IoError>,
}

/// One generation's per-rank records; `None` marks a crash-stopped rank.
pub type WorldResult = Vec<Option<RankRecord>>;

/// The restart family's results: per-rank header verdicts, records, and
/// the slot bytes each reader brought back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartResult {
    /// Committed generation each reader recovered from the header.
    pub gens: Vec<Option<u64>>,
    /// Per-rank clock/stats/outcome.
    pub records: Vec<RankRecord>,
    /// Per-rank slot read-backs (contiguous partition, in rank order).
    pub read_backs: Vec<Vec<u8>>,
}

/// Everything one crash-checkpoint run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashOutcome {
    /// Per-generation worlds, the crash generation last.
    pub epochs: Vec<WorldResult>,
    /// Ranks alive after the crash generation, ascending.
    pub survivors: Vec<usize>,
    /// Generation the header names after everything settled.
    pub committed: Option<u64>,
    /// Raw bytes of the committed generation's slot file (empty when no
    /// generation was ever committed).
    pub committed_image: Vec<u8>,
    /// The restart family's results.
    pub restart: RestartResult,
}

/// `FLEXIO_CRASH_RECOVERY` override for the fuzz axis' recovery coin:
/// `enable`/`1`/`on` pins it true, `disable`/`0`/`off` pins it false,
/// unset leaves the drawn value (CI runs the pinned matrix).
pub fn env_crash_recovery() -> Option<bool> {
    match std::env::var("FLEXIO_CRASH_RECOVERY").as_deref() {
        Ok("enable") | Ok("1") | Ok("on") => Some(true),
        Ok("disable") | Ok("0") | Ok("off") => Some(false),
        _ => None,
    }
}

/// Draw one crash-checkpoint case. Shrinking lands near the floors:
/// fewer ranks, smaller tiles, zero clean epochs, an entry-time crash.
pub fn generate_crash(rng: &mut XorShift64Star) -> CrashScenario {
    let nprocs = range(rng, 2, 6) as usize;
    CrashScenario {
        seed: rng.next_u64(),
        nprocs,
        block: 8 * range(rng, 1, 8),
        reps: range(rng, 1, 8),
        clean_epochs: range(rng, 0, 3),
        aggs: 1 + (rng.next_u64() as usize) % nprocs,
        victim: (rng.next_u64() as usize) % nprocs,
        at_ns: range(rng, 0, 2_000_000),
        recovery: env_crash_recovery().unwrap_or_else(|| coin(rng)),
        watchdog_us: 200_000,
        torn_rate: if coin(rng) { (rng.next_u64() % 200) as f64 / 1000.0 } else { 0.0 },
    }
}

/// The engine-free expected tile image of generation `gen`, restricted
/// to the given writers (pass all ranks for a full checkpoint, the
/// survivors for a survivor checkpoint).
pub fn expected_epoch_image(scn: &CrashScenario, gen: u64, writers: &[usize]) -> Vec<u8> {
    let plans = tile_plans(scn.seed, scn.nprocs, scn.block, scn.reps);
    let mut o = Oracle::new();
    for &r in writers {
        o.apply_write(&plans[r], gen);
    }
    o.image().to_vec()
}

/// Publish `gen` on the header, retrying torn publishes until the
/// record lands whole. Returns the completion time.
fn commit_retrying(hdr: &FileHandle, mut t: u64, gen: u64) -> u64 {
    for _ in 0..64 {
        match epoch::commit_epoch(hdr, t, gen) {
            Ok(fin) => return fin,
            Err(e) => {
                assert_eq!(e.kind, PfsErrorKind::TornWrite, "header path only tears");
                t = e.at;
            }
        }
    }
    panic!("epoch {gen} publish failed to land within 64 retries");
}

/// Run one crash-checkpoint case end to end: clean generations, the
/// crash generation, the commit decision, and the restart family.
pub fn run_crash_checkpoint(scn: &CrashScenario) -> CrashOutcome {
    assert!(scn.victim < scn.nprocs, "victim must be a world rank");
    let pfs = Pfs::with_faults(
        PfsConfig {
            n_osts: 4,
            stripe_size: 512,
            page_size: 64,
            locking: false,
            lock_expansion: false,
            client_cache: false,
            cost: PfsCostModel::default(),
        },
        scn.fault_plan(),
    );
    let plans = Arc::new(tile_plans(scn.seed, scn.nprocs, scn.block, scn.reps));
    let hints = scn.hints();

    let mut epochs: Vec<WorldResult> = Vec::new();
    let mut committed: Option<u64> = None;
    for gen in 0..=scn.clean_epochs {
        let crash_world = gen == scn.clean_epochs;
        let schedule = if crash_world { scn.fault_plan().crash_schedule() } else { Vec::new() };
        let path = epoch::slot_path(BASE, gen);
        let inner = Arc::clone(&pfs);
        let plans = Arc::clone(&plans);
        let hints = hints.clone();
        let per = run_crashable(scn.nprocs, CostModel::default(), &schedule, move |rank| {
            let p = &plans[rank.rank()];
            let mut f = MpiFile::open(rank, &inner, &path, hints.clone())
                .expect("hints validated by construction");
            f.set_view(p.disp, &Datatype::bytes(1), &p.filetype)
                .expect("tile filetype must form a valid view");
            let outcome = f.write_all_at(0, &p.step_buffer(gen), &p.memtype, p.mem_count);
            // Clean generations publish in-world: the barrier proves
            // every writer's data is durably down, then rank 0 commits.
            // The crash world must not barrier — a dead peer would hang
            // it — so its commit decision moves to the driver, over the
            // survivor verdict. (No `close()` either: it barriers too.)
            if !crash_world {
                outcome.as_ref().expect("clean generation writes must succeed");
                rank.barrier();
                if rank.rank() == 0 {
                    let hdr = inner.open(&epoch::header_path(BASE), COMMIT_CLIENT);
                    let t0 = rank.now();
                    rank.advance_to(commit_retrying(&hdr, t0, gen));
                    rank.note_phase(Phase::Io, rank.now() - t0);
                }
            }
            (rank.now(), rank.stats(), outcome)
        });
        if !crash_world {
            committed = Some(gen);
        }
        epochs.push(
            per.into_iter()
                .map(|r| r.map(|(clock, stats, outcome)| RankRecord { clock, stats, outcome }))
                .collect(),
        );
    }

    let gen = scn.clean_epochs;
    let last = epochs.last().expect("at least the crash generation ran");
    let survivors: Vec<usize> = (0..scn.nprocs).filter(|&r| last[r].is_some()).collect();
    let all_ok = survivors
        .iter()
        .all(|&r| matches!(last[r], Some(RankRecord { outcome: Ok(()), .. })));
    if all_ok {
        // Every rank that finished, finished clean — either nobody died
        // (full checkpoint) or the survivors recovered and completed
        // (survivor checkpoint). Publish the generation.
        let hdr = pfs.open(&epoch::header_path(BASE), COMMIT_CLIENT);
        let t0 = survivors
            .iter()
            .map(|&r| last[r].as_ref().expect("survivor record").clock)
            .max()
            .unwrap_or(0);
        commit_retrying(&hdr, t0, gen);
        committed = Some(gen);
    }

    // Restart family: a fresh world over the survivors recovers the
    // committed generation from the header and collectively reads its
    // slot file with a contiguous partition.
    let readers = survivors.len();
    let rplans =
        Arc::new(partition_plans(0, readers, scn.image_bytes().max(1), 1));
    let inner = Arc::clone(&pfs);
    // The reader world may be smaller than the writer world: clamp the
    // aggregator hint to it (cb_nodes must not exceed the world size).
    let hints2 = Hints { cb_nodes: Some(scn.aggs.min(readers)), ..hints.clone() };
    let per = run_crashable(readers, CostModel::default(), &[], move |rank| {
        let hdr = inner.open(&epoch::header_path(BASE), HDR_CLIENT_BASE + rank.rank());
        let t0 = rank.now();
        let (t, hdr_gen) = epoch::read_committed(&hdr, t0).expect("header reads are fault-free");
        rank.advance_to(t);
        rank.note_phase(Phase::Io, rank.now() - t0);
        let (outcome, back) = match hdr_gen {
            None => (Ok(()), Vec::new()),
            Some(g) => {
                let p = &rplans[rank.rank()];
                let mut f =
                    MpiFile::open(rank, &inner, &epoch::slot_path(BASE, g), hints2.clone())
                        .expect("hints validated by construction");
                f.set_view(p.disp, &Datatype::bytes(1), &p.filetype)
                    .expect("partition filetype must form a valid view");
                let mut back = vec![0u8; p.buf_len()];
                let outcome = f.read_all_at(0, &mut back, &p.memtype, p.mem_count);
                (outcome, back)
            }
        };
        (rank.now(), rank.stats(), outcome, hdr_gen, back)
    });
    let mut restart =
        RestartResult { gens: Vec::new(), records: Vec::new(), read_backs: Vec::new() };
    for r in per {
        let (clock, stats, outcome, hdr_gen, back) = r.expect("no crashes in the restart world");
        restart.gens.push(hdr_gen);
        restart.records.push(RankRecord { clock, stats, outcome });
        restart.read_backs.push(back);
    }

    let committed_image =
        committed.map(|g| read_file(&pfs, &epoch::slot_path(BASE, g))).unwrap_or_default();
    CrashOutcome { epochs, survivors, committed, committed_image, restart }
}

/// Assert `image` carries generation `gen`'s tile bytes for every rank
/// in `writers` (other ranks' tile ranges are dead state and ignored).
pub fn assert_writer_tiles(scn: &CrashScenario, gen: u64, writers: &[usize], image: &[u8]) {
    let plans = tile_plans(scn.seed, scn.nprocs, scn.block, scn.reps);
    for &r in writers {
        let data = plans[r].step_buffer(gen);
        for k in 0..scn.reps {
            let off = (k * scn.nprocs as u64 * scn.block + r as u64 * scn.block) as usize;
            let want = &data[(k * scn.block) as usize..((k + 1) * scn.block) as usize];
            let got: Vec<u8> = (0..scn.block as usize)
                .map(|i| image.get(off + i).copied().unwrap_or(0))
                .collect();
            assert_eq!(got, want, "rank {r} tile {k} diverged (gen {gen})");
        }
    }
}

/// Run one case twice and check the full battery: determinism, phase-sum
/// invariants, survivor byte-identity (masked to survivor tiles),
/// counter agreement, collective error agreement with recovery off, and
/// the old-or-new-never-torn restart property.
pub fn verify_crash_checkpoint(scn: &CrashScenario) -> CrashOutcome {
    let out = run_crash_checkpoint(scn);
    assert_eq!(out, run_crash_checkpoint(scn), "crash scenario must be deterministic");

    let gen = scn.clean_epochs;
    let last = &out.epochs[gen as usize];
    let victim_died = last[scn.victim].is_none();
    let everyone: Vec<usize> = (0..scn.nprocs).collect();

    // Phase buckets sum to the clock on every record of every world —
    // detection timeouts and commit publishes included.
    for (wi, world) in out.epochs.iter().enumerate() {
        for (r, rec) in world.iter().enumerate() {
            let Some(rec) = rec else {
                assert!(wi as u64 == gen && r == scn.victim, "only the victim may die");
                continue;
            };
            assert_eq!(
                rec.stats.phase_ns.iter().sum::<u64>(),
                rec.clock,
                "gen {wi} rank {r}: phase buckets must sum to the clock"
            );
        }
    }

    if victim_died {
        let expect_survivors: Vec<usize> =
            everyone.iter().copied().filter(|&r| r != scn.victim).collect();
        assert_eq!(out.survivors, expect_survivors);
        if scn.recovery {
            assert_eq!(out.committed, Some(gen), "recovered generation must publish");
            let mut counters = None;
            for &r in &out.survivors {
                let rec = last[r].as_ref().expect("survivor record");
                assert_eq!(rec.outcome, Ok(()), "survivor {r} must complete after recovery");
                assert_eq!(rec.stats.ranks_recovered, 1, "survivor {r} must count the dead peer");
                assert!(rec.stats.realms_rebalanced >= 1, "survivor {r} must re-partition");
                let pair = (rec.stats.ranks_recovered, rec.stats.realms_rebalanced);
                assert_eq!(
                    *counters.get_or_insert(pair),
                    pair,
                    "survivor {r}: recovery counters must agree across survivors"
                );
            }
            // Survivor byte-identity: the committed slot carries exactly
            // what a fault-free run over the survivors would have written
            // in every survivor-owned range.
            assert_writer_tiles(scn, gen, &out.survivors, &out.committed_image);
        } else {
            for &r in &out.survivors {
                let rec = last[r].as_ref().expect("survivor record");
                assert_eq!(
                    rec.outcome,
                    Err(IoError::RanksFailed(vec![scn.victim])),
                    "survivor {r}: same agreed verdict everywhere, not a hang"
                );
                assert_eq!(rec.stats.ranks_recovered, 0, "recovery is off");
            }
            assert_eq!(out.committed, gen.checked_sub(1), "crashed generation never publishes");
            if let Some(old) = out.committed {
                // Old-or-new: the previous generation's slot file was
                // never touched by the crashed run; it reads complete.
                let want = expected_epoch_image(scn, old, &everyone);
                assert!(eq_padded(&out.committed_image, &want), "old epoch read torn");
            }
        }
    } else {
        // The drawn crash time lay past the run's last checkpoint: a
        // clean run, published in full.
        assert_eq!(out.survivors, everyone);
        assert_eq!(out.committed, Some(gen));
        let want = expected_epoch_image(scn, gen, &everyone);
        assert!(eq_padded(&out.committed_image, &want), "clean generation diverged");
    }

    // Restart: every reader recovers the same committed generation, the
    // collective read succeeds, and the reassembled partition matches
    // the committed slot byte for byte (zeros past EOF) — so a restart
    // observes a complete old or new checkpoint, never a torn mix.
    for (r, g) in out.restart.gens.iter().enumerate() {
        assert_eq!(*g, out.committed, "restart rank {r}: header verdict");
    }
    for (r, rec) in out.restart.records.iter().enumerate() {
        assert_eq!(rec.outcome, Ok(()), "restart rank {r} read failed");
        assert_eq!(
            rec.stats.phase_ns.iter().sum::<u64>(),
            rec.clock,
            "restart rank {r}: phase buckets must sum to the clock"
        );
    }
    if out.committed.is_some() {
        let reassembled: Vec<u8> = out.restart.read_backs.concat();
        assert!(
            eq_padded(&reassembled, &out.committed_image),
            "restart readers must see the committed slot exactly"
        );
        if victim_died && scn.recovery {
            assert_writer_tiles(scn, gen, &out.survivors, &reassembled);
        }
    } else {
        assert!(out.restart.read_backs.concat().is_empty());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_scenario() -> CrashScenario {
        CrashScenario {
            seed: 0xC4A5,
            nprocs: 4,
            block: 32,
            reps: 3,
            clean_epochs: 2,
            aggs: 2,
            victim: 1,
            at_ns: 0,
            recovery: true,
            watchdog_us: 200_000,
            torn_rate: 0.0,
        }
    }

    #[test]
    fn entry_crash_recovers_and_publishes_survivor_checkpoint() {
        let out = verify_crash_checkpoint(&base_scenario());
        assert_eq!(out.committed, Some(2));
        assert_eq!(out.survivors, vec![0, 2, 3]);
    }

    #[test]
    fn entry_crash_without_recovery_keeps_the_old_epoch() {
        let scn = CrashScenario { recovery: false, ..base_scenario() };
        let out = verify_crash_checkpoint(&scn);
        assert_eq!(out.committed, Some(1), "crashed generation must not publish");
    }

    #[test]
    fn crash_past_the_run_end_is_a_clean_run() {
        let scn = CrashScenario { at_ns: u64::MAX / 2, ..base_scenario() };
        let out = verify_crash_checkpoint(&scn);
        assert_eq!(out.survivors.len(), 4);
        assert_eq!(out.committed, Some(2));
    }

    #[test]
    fn first_ever_epoch_crash_without_recovery_leaves_nothing_committed() {
        let scn = CrashScenario { clean_epochs: 0, recovery: false, ..base_scenario() };
        let out = verify_crash_checkpoint(&scn);
        assert_eq!(out.committed, None);
        assert!(out.committed_image.is_empty());
    }

    #[test]
    fn torn_header_publishes_heal_under_retry() {
        let scn = CrashScenario { torn_rate: 0.3, ..base_scenario() };
        let out = verify_crash_checkpoint(&scn);
        assert_eq!(out.committed, Some(2));
    }

    #[test]
    fn generator_is_deterministic_and_in_bounds() {
        let a = generate_crash(&mut XorShift64Star::new(7));
        let b = generate_crash(&mut XorShift64Star::new(7));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        for seed in 0..32 {
            let s = generate_crash(&mut XorShift64Star::new(seed));
            assert!(s.victim < s.nprocs);
            assert!(s.aggs >= 1 && s.aggs <= s.nprocs);
            assert!((0.0..1.0).contains(&s.torn_rate));
        }
    }
}
