//! # flexio-workload — seeded, structured workload generation
//!
//! The benches and hand-written suites exercise HPIO's *regular* strided
//! patterns; the flexible engine exists precisely for everything else.
//! This crate turns "everything else" into a first-class, reusable layer
//! (the ViPIOS stance from PAPERS.md): a typed [`WorkloadSpec`] names a
//! scenario family from the loosely-coupled many-task world of Zhang et
//! al. — N-to-1 shared-file checkpoint, N-to-N restart with *shifted*
//! rank counts, many-task independent-region writes, read-heavy analysis
//! scans, and randomized mixed subarray / irregular views — and carries
//! everything needed to run it: per-phase rank counts, per-rank datatypes
//! and displacements, hint knobs, PFS geometry, and a fault plan.
//!
//! The pipeline is `spec → materialization → oracle`:
//!
//! * [`gen::generate`] draws a spec from the property harness's
//!   [`XorShift64Star`](flexio_sim::XorShift64Star), so specs shrink with
//!   the harness's greedy case shrinking and replay from `cc` regression
//!   lines;
//! * [`runner::run_spec`] materializes the spec against a real
//!   [`Pfs`](flexio_pfs::Pfs) under a chosen engine / copy-path / fault
//!   axis, one simulated world per phase (rank counts may differ phase to
//!   phase — that is the restart scenario's point), returning images,
//!   clocks, stats, and read-backs;
//! * [`oracle::Oracle`] computes the expected file image and expected
//!   read-backs engine-free, straight from the datatypes, so differential
//!   suites have an independent referee.
//!
//! The crate also hosts the shared generator/runner helpers that
//! `tests/engine_pipeline_parity.rs` and `tests/fault_injection.rs`
//! previously copy-pasted ([`tiled`]), and the strided workload shape of
//! `tests/engine_equivalence.rs` ([`strided`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crash;
pub mod gen;
pub mod oracle;
pub mod runner;
pub mod spec;
pub mod strided;
pub mod tiled;

pub use crash::{
    assert_writer_tiles, env_crash_recovery, expected_epoch_image, generate_crash,
    run_crash_checkpoint, verify_crash_checkpoint, CrashOutcome, CrashScenario, RankRecord,
    RestartResult,
};
pub use gen::generate;
pub use oracle::{eq_padded, Oracle};
pub use runner::{check_invariants, run_spec, PhaseResult, RunConfig, RunOutcome};
pub use spec::{
    checkpoint_spec, many_task_spec, mixed_subarray_spec, read_scan_spec, restart_spec, PfsShape,
    PhaseOp, PhaseSpec, RankPlan, ScenarioKind, WorkloadSpec,
};
pub use strided::StridedSpec;
pub use tiled::{env_zero_copy, read_file, run_tiled, step_data, RankOutcome, TiledShape};
