//! Shared tiled-interleave harness helpers.
//!
//! `tests/engine_pipeline_parity.rs` and `tests/fault_injection.rs` used
//! to carry private copies of the same seeded data generator, file-image
//! probe, zero-copy env gate, and tiled collective world; this module is
//! the single home for all of them. The byte streams and world bodies are
//! kept *exactly* as the suites had them, so pinned regression seeds and
//! harvested charge fixtures replay identically.

use flexio_core::{Hints, IoError, MpiFile};
use flexio_pfs::Pfs;
use flexio_sim::{run, CostModel, Stats, XorShift64Star};
use flexio_types::Datatype;
use std::sync::Arc;

/// Each rank's `(elapsed, stats, per-call outcomes, read-back)`.
pub type RankOutcome = (u64, Stats, Vec<Result<(), IoError>>, Vec<u8>);

/// CI's `zerocopy` matrix leg sweeps the differential suites on both
/// sides of the `flexio_zero_copy` hint with the same seeds:
/// `FLEXIO_ZERO_COPY=disable` (or `0`/`off`) forces the packed staging
/// path; anything else (and unset) keeps the zero-copy default.
pub fn env_zero_copy() -> bool {
    !matches!(std::env::var("FLEXIO_ZERO_COPY").as_deref(), Ok("disable") | Ok("0") | Ok("off"))
}

/// Seeded per-rank, per-step data: deterministic across platforms and
/// identical to what the differential suites have always written.
pub fn step_data(rank: usize, step: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift64Star::new((rank as u64) << 32 | (step + 1));
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Raw file image via an out-of-world probe handle (the probe itself may
/// draw a fault; the bytes are exact either way).
pub fn read_file(pfs: &Arc<Pfs>, path: &str) -> Vec<u8> {
    let h = pfs.open(path, usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    let _ = h.read(0, 0, &mut out);
    out
}

/// Geometry of one tiled interleave workload: rank `r` of `nprocs` owns
/// the `block`-byte tile at `r*block` of every `nprocs*block` stripe and
/// issues `steps` collective writes of `reps` tiles each.
#[derive(Debug, Clone, Copy)]
pub struct TiledShape {
    /// World size.
    pub nprocs: usize,
    /// Bytes per filetype block.
    pub block: u64,
    /// Filetype repetitions per collective call.
    pub reps: u64,
    /// Collective writes before the optional final collective read.
    pub steps: u64,
}

/// Run the tiled workload on `pfs` under `hints`: `steps` collective
/// writes, then (if `read_back`) one collective read appended to each
/// rank's outcome list.
pub fn run_tiled(
    pfs: &Arc<Pfs>,
    path: &str,
    shape: TiledShape,
    hints: &Hints,
    read_back: bool,
) -> Vec<RankOutcome> {
    let inner = Arc::clone(pfs);
    let hints = hints.clone();
    let path = path.to_string();
    run(shape.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &inner, &path, hints.clone()).unwrap();
        let ftype =
            Datatype::resized(0, shape.nprocs as u64 * shape.block, Datatype::bytes(shape.block));
        f.set_view(rank.rank() as u64 * shape.block, &Datatype::bytes(1), &ftype).unwrap();
        let len = (shape.reps * shape.block) as usize;
        let mut results = Vec::new();
        for s in 0..shape.steps {
            let data = step_data(rank.rank(), s, len);
            results.push(f.write_all(&data, &Datatype::bytes(len as u64), 1));
        }
        let mut back = Vec::new();
        if read_back {
            back = vec![0u8; len];
            results.push(f.read_all(&mut back, &Datatype::bytes(len as u64), 1));
        }
        // The close-time flush has no retry loop; a faulted close still
        // releases everything, so the outcome is not part of any property.
        let _ = f.close();
        (rank.now(), rank.stats(), results, back)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_pfs::{PfsConfig, PfsCostModel};

    #[test]
    fn step_data_matches_the_historic_stream() {
        // The pinned regression seeds in the differential suites encode
        // this exact byte stream; guard it against accidental reseeding.
        let mut rng = XorShift64Star::new(1u64 << 32 | 3);
        let mut want = vec![0u8; 24];
        rng.fill_bytes(&mut want);
        assert_eq!(step_data(1, 2, 24), want);
        assert_ne!(step_data(1, 2, 24), step_data(1, 3, 24));
        assert_ne!(step_data(1, 2, 24), step_data(2, 2, 24));
    }

    #[test]
    fn tiled_roundtrip_reads_back_what_it_wrote() {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 2,
            stripe_size: 256,
            page_size: 32,
            locking: false,
            lock_expansion: false,
            client_cache: false,
            cost: PfsCostModel::default(),
        });
        let shape = TiledShape { nprocs: 3, block: 16, reps: 4, steps: 2 };
        let out = run_tiled(&pfs, "t", shape, &Hints::default(), true);
        for (r, (_, _, results, back)) in out.iter().enumerate() {
            assert_eq!(results.len(), 3);
            assert!(results.iter().all(|x| x.is_ok()));
            assert_eq!(back, &step_data(r, shape.steps - 1, back.len()));
        }
        assert_eq!(read_file(&pfs, "t").len(), 3 * 16 * 4);
    }
}
