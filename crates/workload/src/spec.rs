//! Typed workload specifications and the deterministic scenario builders.
//!
//! A [`WorkloadSpec`] is data, not code: phases with per-rank
//! [`RankPlan`]s (displacement, filetype, memtype, count, seed), hint
//! knobs, PFS geometry, and a fault plan. Everything downstream — the
//! [runner](crate::runner), the [oracle](crate::oracle), the bench bin —
//! consumes the same spec, so a scenario is described exactly once.

use flexio_core::{ExchangeMode, PipelineDepth};
use flexio_sim::XorShift64Star;
use flexio_types::{flatten_shared, subarray, Datatype, Dt, MemLayout};

/// The five scenario families (Zhang et al.'s loosely-coupled shapes plus
/// a randomized mixed-view family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScenarioKind {
    /// N-to-1 shared-file checkpoint: every rank owns an interleaved tile
    /// of one file, overwritten each epoch, then read back.
    Checkpoint,
    /// N-to-N restart with shifted rank counts: W ranks write a contiguous
    /// block partition, R ≠ W ranks read it back — possibly past the last
    /// writer's extent.
    Restart,
    /// Many-task independent-region writes: each task owns a disjoint
    /// contiguous region separated by holes.
    ManyTask,
    /// Read-heavy analysis scans: one checkpoint write, then repeated
    /// contiguous partition scans at small shifted offsets.
    ReadScan,
    /// Randomized mixed views: 2D subarray tiles or irregular indexed
    /// chunk assignments, with optionally strided memory types.
    Mixed,
}

impl ScenarioKind {
    /// Every family, in generator draw order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Checkpoint,
        ScenarioKind::Restart,
        ScenarioKind::ManyTask,
        ScenarioKind::ReadScan,
        ScenarioKind::Mixed,
    ];

    /// Stable lower-case name (CLI `--scenario` values).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Checkpoint => "checkpoint",
            ScenarioKind::Restart => "restart",
            ScenarioKind::ManyTask => "many-task",
            ScenarioKind::ReadScan => "read-scan",
            ScenarioKind::Mixed => "mixed",
        }
    }

    /// Parse a [`ScenarioKind::name`] back into a kind.
    pub fn from_name(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Direction of one collective phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOp {
    /// `steps` collective writes (each step gets fresh seeded data).
    Write,
    /// One collective read into a zeroed buffer.
    Read,
}

/// Per-rank materialization for one phase: where the rank's view starts,
/// what it looks like, and how the rank's memory is shaped.
#[derive(Debug, Clone)]
pub struct RankPlan {
    /// View displacement in bytes (`MPI_File_set_view` disp).
    pub disp: u64,
    /// Filetype; the etype is always one byte.
    pub filetype: Dt,
    /// Memory datatype of one count.
    pub memtype: Dt,
    /// Memtype instances per collective call (0 = participate empty).
    pub mem_count: u64,
    /// Etype (= byte) offset of the collective call into the view.
    pub offset_etypes: u64,
    /// Seed for this rank's data; combined with the step number so every
    /// write step carries distinct bytes.
    pub data_seed: u64,
}

impl RankPlan {
    /// A rank that participates in the collective but moves no data
    /// (trailing ranks of an uneven partition).
    pub fn empty() -> RankPlan {
        RankPlan {
            disp: 0,
            filetype: Datatype::bytes(1),
            memtype: Datatype::bytes(1),
            mem_count: 0,
            offset_etypes: 0,
            data_seed: 0,
        }
    }

    /// Data bytes this rank moves per collective call.
    pub fn total_bytes(&self) -> u64 {
        self.memtype.size() * self.mem_count
    }

    /// The memory layout of one collective call's buffer.
    pub fn mem_layout(&self) -> MemLayout {
        MemLayout::new(flatten_shared(&self.memtype).0, self.mem_count)
    }

    /// Buffer length in bytes (the memtype span, holes included).
    pub fn buf_len(&self) -> usize {
        self.mem_layout().span() as usize
    }

    /// The seeded buffer this rank writes in `step` (holes are filled
    /// too — only the layout's runs reach the file).
    pub fn step_buffer(&self, step: u64) -> Vec<u8> {
        let mut buf = vec![0u8; self.buf_len()];
        let mut rng =
            XorShift64Star::new(self.data_seed ^ (step + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rng.fill_bytes(&mut buf);
        buf
    }
}

/// One collective phase: a world of `nprocs` ranks issuing `steps`
/// identical-shape collective calls.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Write or read.
    pub op: PhaseOp,
    /// World size for this phase (phases of one spec may differ — that is
    /// the restart scenario's point).
    pub nprocs: usize,
    /// Collective calls in this phase (reads always use 1).
    pub steps: u64,
    /// `cb_nodes` for this phase (≤ `nprocs`).
    pub aggs: usize,
    /// One plan per rank (`plans.len() == nprocs`).
    pub plans: Vec<RankPlan>,
}

impl PhaseSpec {
    pub(crate) fn new(op: PhaseOp, steps: u64, plans: Vec<RankPlan>) -> PhaseSpec {
        let nprocs = plans.len();
        PhaseSpec { op, nprocs, steps, aggs: nprocs.div_ceil(2), plans }
    }
}

/// PFS geometry for a spec.
#[derive(Debug, Clone, Copy)]
pub struct PfsShape {
    /// Object storage targets.
    pub n_osts: usize,
    /// Stripe size in bytes.
    pub stripe: u64,
    /// Sieve/lock page size in bytes.
    pub page: u64,
}

impl Default for PfsShape {
    fn default() -> Self {
        PfsShape { n_osts: 4, stripe: 512, page: 64 }
    }
}

/// A complete scenario: phases plus every knob needed to run them.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which family this spec belongs to.
    pub kind: ScenarioKind,
    /// PFS geometry.
    pub pfs: PfsShape,
    /// `cb_buffer_size` in bytes.
    pub cb: usize,
    /// Aggregator exchange mode.
    pub exchange: ExchangeMode,
    /// Persistent file realms.
    pub pfr: bool,
    /// Exchange-schedule cache.
    pub cache: bool,
    /// Pipeline depth.
    pub depth: PipelineDepth,
    /// Seed for the transient-fault plan (faulted axis only).
    pub fault_seed: u64,
    /// Transient-fault rate in `[0, 1)` (faulted axis only).
    pub fault_rate: f64,
    /// The phases, run in order against one shared PFS.
    pub phases: Vec<PhaseSpec>,
}

impl WorkloadSpec {
    pub(crate) fn new(kind: ScenarioKind, phases: Vec<PhaseSpec>) -> WorkloadSpec {
        WorkloadSpec {
            kind,
            pfs: PfsShape::default(),
            cb: 1024,
            exchange: ExchangeMode::default(),
            pfr: false,
            cache: true,
            depth: PipelineDepth::default(),
            fault_seed: 1,
            fault_rate: 0.01,
            phases,
        }
    }

    /// Total data bytes written across all write phases and steps.
    pub fn bytes_written(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.op == PhaseOp::Write)
            .map(|p| p.steps * p.plans.iter().map(RankPlan::total_bytes).sum::<u64>())
            .sum()
    }
}

/// Interleaved-tile plans: rank `r` of `nprocs` owns the `block`-byte tile
/// at `r*block` of every `nprocs*block` stripe, `reps` tiles per call.
pub(crate) fn tile_plans(seed: u64, nprocs: usize, block: u64, reps: u64) -> Vec<RankPlan> {
    (0..nprocs)
        .map(|r| RankPlan {
            disp: r as u64 * block,
            filetype: Datatype::resized(0, nprocs as u64 * block, Datatype::bytes(block)),
            memtype: Datatype::bytes(reps * block),
            mem_count: 1,
            offset_etypes: 0,
            data_seed: seed ^ ((r as u64) << 32),
        })
        .collect()
}

/// Contiguous ceil-partition of `elems` `es`-byte elements over `nprocs`
/// ranks; trailing ranks of an uneven split participate empty.
pub(crate) fn partition_plans(seed: u64, nprocs: usize, elems: u64, es: u64) -> Vec<RankPlan> {
    let per = elems.div_ceil(nprocs as u64).max(1);
    (0..nprocs)
        .map(|r| {
            let start = (r as u64 * per).min(elems);
            let len = per.min(elems - start);
            if len == 0 {
                RankPlan::empty()
            } else {
                RankPlan {
                    disp: start * es,
                    filetype: Datatype::bytes(len * es),
                    memtype: Datatype::bytes(len * es),
                    mem_count: 1,
                    offset_etypes: 0,
                    data_seed: seed ^ ((r as u64) << 32),
                }
            }
        })
        .collect()
}

/// N-to-1 shared-file checkpoint: `nprocs` ranks interleave `block`-byte
/// tiles (`reps` per call), overwrite the file for `epochs` epochs, then
/// collectively read it back.
pub fn checkpoint_spec(seed: u64, nprocs: usize, block: u64, reps: u64, epochs: u64) -> WorkloadSpec {
    let plans = tile_plans(seed, nprocs, block, reps);
    WorkloadSpec::new(
        ScenarioKind::Checkpoint,
        vec![
            PhaseSpec::new(PhaseOp::Write, epochs, plans.clone()),
            PhaseSpec::new(PhaseOp::Read, 1, plans),
        ],
    )
}

/// N-to-N restart with shifted rank counts: `writers` ranks write a
/// contiguous partition of `elems` `es`-byte elements; `readers` ranks
/// (usually ≠ `writers`) read back a partition of `elems + extra`
/// elements — `extra > 0` reads past the last writer's extent and must
/// see zeros.
pub fn restart_spec(
    seed: u64,
    writers: usize,
    readers: usize,
    elems: u64,
    es: u64,
    extra: u64,
) -> WorkloadSpec {
    WorkloadSpec::new(
        ScenarioKind::Restart,
        vec![
            PhaseSpec::new(PhaseOp::Write, 1, partition_plans(seed, writers, elems, es)),
            PhaseSpec::new(PhaseOp::Read, 1, partition_plans(seed, readers, elems + extra, es)),
        ],
    )
}

/// Many-task independent regions: each of `tasks` ranks owns a private
/// contiguous region of `reps * region` bytes, regions separated by
/// `gap`-byte holes, overwritten for `epochs` epochs then read back.
pub fn many_task_spec(
    seed: u64,
    tasks: usize,
    region: u64,
    reps: u64,
    gap: u64,
    epochs: u64,
) -> WorkloadSpec {
    let seg = reps * region + gap;
    let plans: Vec<RankPlan> = (0..tasks)
        .map(|r| RankPlan {
            disp: r as u64 * seg,
            filetype: Datatype::bytes(region),
            memtype: Datatype::bytes(reps * region),
            mem_count: 1,
            offset_etypes: 0,
            data_seed: seed ^ ((r as u64) << 32),
        })
        .collect();
    WorkloadSpec::new(
        ScenarioKind::ManyTask,
        vec![
            PhaseSpec::new(PhaseOp::Write, epochs, plans.clone()),
            PhaseSpec::new(PhaseOp::Read, 1, plans),
        ],
    )
}

/// Read-heavy analysis scans: `writers` ranks checkpoint one tiled image,
/// then `scans` read phases of `readers` ranks each sweep a contiguous
/// partition, scan `s` shifted `s` bytes into the stream (the tail rank's
/// final scan crosses EOF and must see zeros).
pub fn read_scan_spec(
    seed: u64,
    writers: usize,
    readers: usize,
    block: u64,
    reps: u64,
    scans: u64,
) -> WorkloadSpec {
    let mut phases = vec![PhaseSpec::new(PhaseOp::Write, 1, tile_plans(seed, writers, block, reps))];
    let total = writers as u64 * block * reps;
    for s in 0..scans {
        let mut plans = partition_plans(0, readers, total, 1);
        for plan in &mut plans {
            if plan.mem_count > 0 {
                plan.offset_etypes = s;
            }
        }
        phases.push(PhaseSpec::new(PhaseOp::Read, 1, plans));
    }
    WorkloadSpec::new(ScenarioKind::ReadScan, phases)
}

/// Mixed 2D-subarray views: a `pr × pc` process grid writes `tr × tc`
/// tiles of a `(pr*tr) × (pc*tc)` byte array; `readers` ranks read back
/// row stripes of the same array.
pub fn mixed_subarray_spec(
    seed: u64,
    pr: usize,
    pc: usize,
    tr: u64,
    tc: u64,
    readers: usize,
) -> WorkloadSpec {
    let rows = pr as u64 * tr;
    let cols = pc as u64 * tc;
    let write_plans: Vec<RankPlan> = (0..pr * pc)
        .map(|k| {
            let i = (k / pc) as u64;
            let j = (k % pc) as u64;
            RankPlan {
                disp: 0,
                filetype: subarray(&[rows, cols], &[tr, tc], &[i * tr, j * tc], 1),
                memtype: Datatype::bytes(tr * tc),
                mem_count: 1,
                offset_etypes: 0,
                data_seed: seed ^ ((k as u64) << 32),
            }
        })
        .collect();
    let h = rows.div_ceil(readers as u64).max(1);
    let read_plans: Vec<RankPlan> = (0..readers)
        .map(|r| {
            let r0 = (r as u64 * h).min(rows);
            let hh = h.min(rows - r0);
            if hh == 0 {
                RankPlan::empty()
            } else {
                RankPlan {
                    disp: 0,
                    filetype: subarray(&[rows, cols], &[hh, cols], &[r0, 0], 1),
                    memtype: Datatype::bytes(hh * cols),
                    mem_count: 1,
                    offset_etypes: 0,
                    data_seed: 0,
                }
            }
        })
        .collect();
    WorkloadSpec::new(
        ScenarioKind::Mixed,
        vec![
            PhaseSpec::new(PhaseOp::Write, 1, write_plans),
            PhaseSpec::new(PhaseOp::Read, 1, read_plans),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_roundtrip() {
        for k in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ScenarioKind::from_name("nope"), None);
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = RankPlan::empty();
        assert_eq!(p.total_bytes(), 0);
        assert_eq!(p.buf_len(), 0);
        assert!(p.step_buffer(0).is_empty());
    }

    #[test]
    fn step_buffers_differ_by_step_and_rank() {
        let s = checkpoint_spec(7, 2, 16, 2, 2);
        let p0 = &s.phases[0].plans[0];
        let p1 = &s.phases[0].plans[1];
        assert_ne!(p0.step_buffer(0), p0.step_buffer(1));
        assert_ne!(p0.step_buffer(0), p1.step_buffer(0));
        assert_eq!(p0.step_buffer(1), p0.step_buffer(1));
    }

    #[test]
    fn restart_partition_covers_elems_without_overlap() {
        let s = restart_spec(1, 3, 5, 10, 4, 7);
        let w = &s.phases[0];
        let total: u64 = w.plans.iter().map(RankPlan::total_bytes).sum();
        assert_eq!(total, 10 * 4);
        let r = &s.phases[1];
        assert_eq!(r.nprocs, 5);
        let rtotal: u64 = r.plans.iter().map(RankPlan::total_bytes).sum();
        assert_eq!(rtotal, 17 * 4);
        // A split with more ranks than elements leaves trailing ranks
        // participating empty.
        let tiny = restart_spec(1, 3, 6, 4, 4, 0);
        assert!(tiny.phases[1].plans.iter().filter(|p| p.mem_count == 0).count() >= 2);
    }

    #[test]
    fn read_scan_shifts_offsets() {
        let s = read_scan_spec(1, 2, 3, 8, 2, 3);
        assert_eq!(s.phases.len(), 4);
        assert_eq!(s.phases[2].plans[0].offset_etypes, 1);
        assert_eq!(s.phases[3].plans[0].offset_etypes, 2);
    }

    #[test]
    fn subarray_tiles_cover_the_array_once() {
        let s = mixed_subarray_spec(1, 2, 2, 3, 4, 3);
        let w = &s.phases[0];
        assert_eq!(w.nprocs, 4);
        let total: u64 = w.plans.iter().map(RankPlan::total_bytes).sum();
        assert_eq!(total, 6 * 8);
    }
}
