//! Virtual-time cost model.
//!
//! All simulated durations are in nanoseconds. The defaults are calibrated
//! to the paper's testbed scale (MPICH2 over TCP on Myrinet hardware,
//! shared Lustre): they are not claims about any real system, only a
//! consistent ruler so that byte counts, message counts, offset/length-pair
//! processing and buffer copies — the quantities the paper's deltas come
//! from — translate into comparable times.

/// Cost model for communication and computation charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message network latency (the "alpha" term), ns.
    pub net_latency_ns: u64,
    /// Per-byte network transfer time (the "beta" term), ns/byte.
    /// 10 ns/B = 100 MB/s, the paper's TCP-over-Myrinet regime.
    pub net_ns_per_byte: f64,
    /// CPU overhead to post a send, ns.
    pub send_overhead_ns: u64,
    /// CPU overhead to complete a receive, ns.
    pub recv_overhead_ns: u64,
    /// Cost of evaluating one offset/length pair (the paper's datatype
    /// processing cost, §5.3/§6.2), ns.
    pub pair_process_ns: u64,
    /// Per-byte cost of a local buffer copy (double-buffering charge,
    /// §5.1/§6.2), ns/byte. 0.5 ns/B = 2 GB/s.
    pub memcpy_ns_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            net_latency_ns: 60_000,
            net_ns_per_byte: 10.0,
            send_overhead_ns: 4_000,
            recv_overhead_ns: 4_000,
            pair_process_ns: 120,
            memcpy_ns_per_byte: 0.5,
        }
    }
}

impl CostModel {
    /// A zero-cost model: useful for tests that only check data movement.
    pub fn free() -> Self {
        CostModel {
            net_latency_ns: 0,
            net_ns_per_byte: 0.0,
            send_overhead_ns: 0,
            recv_overhead_ns: 0,
            pair_process_ns: 0,
            memcpy_ns_per_byte: 0.0,
        }
    }

    /// Wire time of an `n`-byte message (latency + transfer).
    pub fn msg_ns(&self, n: usize) -> u64 {
        self.net_latency_ns + (n as f64 * self.net_ns_per_byte) as u64
    }

    /// Charge for copying `n` bytes between local buffers.
    pub fn memcpy_ns(&self, n: u64) -> u64 {
        (n as f64 * self.memcpy_ns_per_byte) as u64
    }

    /// Charge for evaluating `n` offset/length pairs.
    pub fn pairs_ns(&self, n: u64) -> u64 {
        n * self.pair_process_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_time_scales_with_size() {
        let c = CostModel::default();
        assert_eq!(c.msg_ns(0), 60_000);
        assert_eq!(c.msg_ns(1000), 60_000 + 10_000);
        assert!(c.msg_ns(1 << 20) > c.msg_ns(1 << 10));
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::free();
        assert_eq!(c.msg_ns(1 << 20), 0);
        assert_eq!(c.memcpy_ns(1 << 20), 0);
        assert_eq!(c.pairs_ns(1000), 0);
    }

    #[test]
    fn pair_charge_linear() {
        let c = CostModel::default();
        assert_eq!(c.pairs_ns(10), 1200);
    }
}
