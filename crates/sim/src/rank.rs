//! Per-rank handle: point-to-point messaging, collectives, virtual clock.
//!
//! Each rank owns a virtual clock (ns) and runs as a fiber of the rank
//! scheduler — one host thread, or a sharded pool of them with identical
//! results (see [`crate::Backend`]).
//! Message timing follows an alpha/beta model; computation is charged
//! explicitly by the layers above (offset/length-pair processing, buffer
//! copies, file-system service times). A receive completes at
//! `max(local_now, message_available_at) + recv_overhead`, which is what
//! makes communication/computation overlap (§5.4 of the paper) fall out
//! naturally: work done while a message is in flight hides its latency.

use crate::cost::CostModel;
use crate::world::{Msg, World};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

/// Tag space reserved for internal collective traffic.
const INTERNAL_BASE: u64 = 1 << 40;

/// Execution phases, for MPE-style attribution (§6.2 uses MPE logging to
/// find where time goes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Datatype processing / address computation.
    Compute,
    /// Network communication.
    Comm,
    /// File-system I/O.
    Io,
}

/// Per-rank counters, owned by the rank itself (no sharing).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Messages sent (point-to-point, including collective internals).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Offset/length pairs charged via [`Rank::charge_pairs`].
    pub pairs_processed: u64,
    /// Bytes charged via [`Rank::charge_memcpy`].
    pub memcpy_bytes: u64,
    /// Bytes the collective engine moved through intermediate staging
    /// buffers on the data path (pack, collective-buffer assembly,
    /// distribution slicing, sieve double-buffering). Recorded via
    /// [`Rank::note_bytes_copied`] — a pure ledger, no virtual time. The
    /// zero-copy datatype path exists to drive this down; the counter
    /// makes the elimination measurable rather than asserted.
    pub bytes_copied: u64,
    /// Virtual ns attributed to compute / comm / io phases.
    pub phase_ns: [u64; 3],
    /// Exchange-schedule cache hits (collective-engine layer).
    pub schedule_cache_hits: u64,
    /// Exchange-schedule cache misses (probes that had to re-derive).
    pub schedule_cache_misses: u64,
    /// Cached schedules patched in place after a straggler realm
    /// rebalance (windows re-cut against the new realms without
    /// re-parsing wire metadata) — a rebalance no longer costs a full
    /// miss on the next call.
    pub schedule_cache_patches: u64,
    /// Flatten-cache hits (datatype layer).
    pub flatten_cache_hits: u64,
    /// Flatten-cache misses.
    pub flatten_cache_misses: u64,
    /// Virtual ns of in-flight operation time hidden behind other work
    /// (overlapped windows completed via [`Rank::overlap_complete`]).
    pub overlap_saved_ns: u64,
    /// Virtual ns of schedule-derivation compute hidden behind other work
    /// (windows opened with [`Rank::charge_pairs_overlapped`] and completed
    /// via [`Rank::overlap_complete_derive`]). Kept separate from
    /// [`Stats::overlap_saved_ns`] so I/O-pipelining and derive-overlap
    /// savings can be attributed independently.
    pub derive_overlap_saved_ns: u64,
    /// High-water mark of buffer cycles concurrently active in the
    /// collective engine's pipeline (1 = strictly serial). Recorded via
    /// [`Rank::note_pipeline_depth`]; a watermark, not an accumulator.
    pub pipeline_depth_used: u64,
    /// File-system requests this rank re-issued after a transient fault
    /// (collective-engine retry loops; [`Rank::note_io_retry`]).
    pub io_retries: u64,
    /// Buffer cycles during which the engine observed a straggling
    /// aggregator (EWMA service time ≥ 2× the others' average).
    pub degraded_cycles: u64,
    /// Times the flexible engine rebalanced persistent file realms away
    /// from a straggling aggregator for subsequent collective calls.
    pub realms_rebalanced: u64,
    /// Crash-stopped peers this rank agreed dead and recovered past
    /// (collective membership shrink + replay; [`Rank::note_ranks_recovered`]).
    pub ranks_recovered: u64,
}

impl Stats {
    /// [`Stats::overlap_saved_ns`] in microseconds — the virtual time the
    /// engine's exchange/I-O pipelining saved versus running the same
    /// operations back to back.
    pub fn overlap_saved_us(&self) -> u64 {
        self.overlap_saved_ns / 1_000
    }
}

/// A handle to one simulated MPI rank — either the world communicator or
/// a sub-communicator made with [`Rank::subgroup`]. Group handles share
/// the clock, collective sequence, and counters of the rank they were
/// split from (`Rc`), so a collective run over a subgroup charges the
/// same physical rank; only the id frame changes.
pub struct Rank {
    world: Arc<World>,
    /// World-frame id: mailbox identity and scheduler slot.
    global: usize,
    /// Group-relative id (equals `global` on the world communicator).
    rank: usize,
    /// Sorted world-frame ids of the group (`None` = whole world).
    group: Option<Arc<Vec<usize>>>,
    clock: Rc<Cell<u64>>,
    seq: Rc<Cell<u64>>,
    stats: Rc<std::cell::RefCell<Stats>>,
}

/// Handle for a posted non-blocking receive.
#[must_use = "irecv does nothing until waited on"]
pub struct RecvReq {
    src: usize,
    tag: u64,
}

/// An in-flight operation of known virtual completion time (e.g. a
/// non-blocking file write) that runs without occupying this rank's CPU.
/// Opened with [`Rank::overlap_begin`], harvested with
/// [`Rank::overlap_complete`]: any clock advance between the two hides an
/// equal amount of the operation's duration, so a begin/work/complete
/// window charges `max(op, work)` instead of their sum.
#[must_use = "an overlapped operation must be completed to charge its time"]
pub struct OverlapWindow {
    issued_at: u64,
    done_at: u64,
    phase: Phase,
}

impl OverlapWindow {
    /// Virtual time the operation was issued at.
    pub fn issued_at(&self) -> u64 {
        self.issued_at
    }

    /// Virtual time the operation completes at.
    pub fn done_at(&self) -> u64 {
        self.done_at
    }

    /// The operation's full virtual duration.
    pub fn duration(&self) -> u64 {
        self.done_at.saturating_sub(self.issued_at)
    }
}

impl Rank {
    pub(crate) fn new(world: Arc<World>, rank: usize) -> Self {
        Rank {
            world,
            global: rank,
            rank,
            group: None,
            clock: Rc::new(Cell::new(0)),
            seq: Rc::new(Cell::new(0)),
            stats: Default::default(),
        }
    }

    /// This rank's id in its communicator (group-relative for a
    /// [`Rank::subgroup`] handle).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn nprocs(&self) -> usize {
        match &self.group {
            None => self.world.nprocs(),
            Some(g) => g.len(),
        }
    }

    /// Translate a communicator-relative id to its world-frame id.
    fn global_of(&self, r: usize) -> usize {
        match &self.group {
            None => r,
            Some(g) => g[r],
        }
    }

    /// Split off a sub-communicator over `members` (ids relative to THIS
    /// handle's frame, strictly ascending, containing the caller). The
    /// returned handle shares this rank's clock, sequence, and counters;
    /// its `rank()`/`nprocs()` are group-relative, so collectives — and
    /// whole engines — run over the subgroup unchanged. This is how
    /// survivors re-form the world after agreeing a peer is dead:
    /// aggregator re-election and realm re-partition fall out of
    /// re-deriving schedules over the shrunk `nprocs()`.
    pub fn subgroup(&self, members: &[usize]) -> Rank {
        assert!(!members.is_empty(), "subgroup needs at least one member");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "subgroup members must be strictly ascending"
        );
        let globals: Vec<usize> = members.iter().map(|&m| self.global_of(m)).collect();
        let rank = globals
            .iter()
            .position(|&g| g == self.global)
            .expect("subgroup must contain the calling rank");
        Rank {
            world: Arc::clone(&self.world),
            global: self.global,
            rank,
            group: Some(Arc::new(globals)),
            clock: Rc::clone(&self.clock),
            seq: Rc::clone(&self.seq),
            stats: Rc::clone(&self.stats),
        }
    }

    /// Crash checkpoint: if this rank's scheduled crash time (see
    /// [`crate::world::run_crashable`]) has been reached, the rank
    /// crash-stops — its fiber unwinds (running destructors, releasing
    /// nb-op guards), its mailbox is reaped, and it never communicates
    /// again. Call at points where dying is survivable for the rest of
    /// the world, i.e. *between* collectives, never inside one.
    pub fn maybe_crash(&self) {
        if self.now() >= self.world.crash_time(self.global) && !self.world.is_dead(self.global) {
            std::panic::panic_any(crate::world::CrashStop);
        }
    }

    /// Whether this rank has a crash scheduled at any time (dead or not).
    pub fn crash_scheduled(&self) -> bool {
        self.world.crash_time(self.global) != u64::MAX
    }

    /// The world's cost model.
    pub fn cost(&self) -> &CostModel {
        self.world.cost()
    }

    /// Current virtual time, ns.
    pub fn now(&self) -> u64 {
        self.clock.get()
    }

    /// Advance the virtual clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.clock.set(self.clock.get() + ns);
    }

    /// Move the clock forward to `t` if `t` is later.
    pub fn advance_to(&self, t: u64) {
        if t > self.clock.get() {
            self.clock.set(t);
        }
    }

    /// Charge the processing of `n` offset/length pairs (Compute phase).
    pub fn charge_pairs(&self, n: u64) {
        let ns = self.cost().pairs_ns(n);
        self.advance(ns);
        let mut s = self.stats.borrow_mut();
        s.pairs_processed += n;
        s.phase_ns[Phase::Compute as usize] += ns;
    }

    /// Charge a local buffer copy of `bytes` (Compute phase).
    pub fn charge_memcpy(&self, bytes: u64) {
        let ns = self.cost().memcpy_ns(bytes);
        self.advance(ns);
        let mut s = self.stats.borrow_mut();
        s.memcpy_bytes += bytes;
        s.phase_ns[Phase::Compute as usize] += ns;
    }

    /// Attribute `ns` of already-elapsed virtual time to a phase.
    pub fn note_phase(&self, phase: Phase, ns: u64) {
        self.stats.borrow_mut().phase_ns[phase as usize] += ns;
    }

    /// Record `bytes` moved through an intermediate staging buffer on the
    /// collective data path ([`Stats::bytes_copied`]). A ledger entry
    /// only: callers charge the copy's virtual time separately (usually
    /// via [`Rank::charge_memcpy`]) when the exchange mode models it.
    pub fn note_bytes_copied(&self, bytes: u64) {
        self.stats.borrow_mut().bytes_copied += bytes;
    }

    /// Record an in-place patch of the cached exchange schedule after a
    /// realm rebalance ([`Stats::schedule_cache_patches`]).
    pub fn note_schedule_cache_patch(&self) {
        self.stats.borrow_mut().schedule_cache_patches += 1;
    }

    /// Record an exchange-schedule cache probe outcome.
    pub fn note_schedule_cache(&self, hit: bool) {
        let mut s = self.stats.borrow_mut();
        if hit {
            s.schedule_cache_hits += 1;
        } else {
            s.schedule_cache_misses += 1;
        }
    }

    /// Open an overlapped window for an operation issued at the current
    /// virtual time that will complete at `done_at` without occupying this
    /// rank's CPU (a non-blocking file request already in the device
    /// queue). The clock does not move; work performed before
    /// [`Rank::overlap_complete`] runs concurrently with the operation.
    pub fn overlap_begin(&self, done_at: u64, phase: Phase) -> OverlapWindow {
        OverlapWindow { issued_at: self.now(), done_at, phase }
    }

    /// Complete an overlapped operation: advance the clock to its
    /// completion time and attribute only the *un-hidden* remainder to the
    /// window's phase — clock advances made since [`Rank::overlap_begin`]
    /// (which carried their own attribution) hide an equal share of the
    /// operation. The pair therefore charges `max(op, work)` rather than
    /// `op + work`, while per-phase buckets still sum to elapsed time.
    /// Returns the hidden ns, also accumulated in
    /// [`Stats::overlap_saved_ns`].
    pub fn overlap_complete(&self, w: OverlapWindow) -> u64 {
        let hidden = self.finish_window(w);
        self.stats.borrow_mut().overlap_saved_ns += hidden;
        hidden
    }

    /// Advance to a window's completion, attribute the un-hidden remainder
    /// to its phase, and return the hidden ns — shared by the two public
    /// completion flavours, which differ only in which savings counter the
    /// hidden time lands in.
    fn finish_window(&self, w: OverlapWindow) -> u64 {
        let duration = w.duration();
        let remainder = w.done_at.saturating_sub(self.now());
        self.advance_to(w.done_at);
        self.stats.borrow_mut().phase_ns[w.phase as usize] += remainder;
        duration - remainder
    }

    /// Open an overlapped window for the processing of `n` offset/length
    /// pairs: the pairs are counted immediately (the derivation work is
    /// logically done the moment the window opens, like a non-blocking
    /// file op's data movement), but the clock does not move — the
    /// compute time is pending until [`Rank::overlap_complete_derive`],
    /// so exchange or I/O performed in between hides it.
    pub fn charge_pairs_overlapped(&self, n: u64) -> OverlapWindow {
        self.stats.borrow_mut().pairs_processed += n;
        OverlapWindow { issued_at: self.now(), done_at: self.now() + self.cost().pairs_ns(n), phase: Phase::Compute }
    }

    /// Complete a window opened with [`Rank::charge_pairs_overlapped`]:
    /// identical accounting to [`Rank::overlap_complete`] except the
    /// hidden ns accumulate in [`Stats::derive_overlap_saved_ns`].
    pub fn overlap_complete_derive(&self, w: OverlapWindow) -> u64 {
        let hidden = self.finish_window(w);
        self.stats.borrow_mut().derive_overlap_saved_ns += hidden;
        hidden
    }

    /// Record that `depth` buffer cycles were concurrently active in the
    /// engine's pipeline; keeps the per-rank high-water mark.
    pub fn note_pipeline_depth(&self, depth: u64) {
        let mut s = self.stats.borrow_mut();
        s.pipeline_depth_used = s.pipeline_depth_used.max(depth);
    }

    /// Record one retried file-system request.
    pub fn note_io_retry(&self) {
        self.stats.borrow_mut().io_retries += 1;
    }

    /// Record a buffer cycle run while an aggregator straggled.
    pub fn note_degraded_cycle(&self) {
        self.stats.borrow_mut().degraded_cycles += 1;
    }

    /// Record a persistent-file-realm rebalance away from a straggler.
    pub fn note_realms_rebalanced(&self) {
        self.stats.borrow_mut().realms_rebalanced += 1;
    }

    /// Record `n` crash-stopped peers agreed dead and recovered past.
    pub fn note_ranks_recovered(&self, n: u64) {
        self.stats.borrow_mut().ranks_recovered += n;
    }

    /// Record a flatten-cache probe outcome.
    pub fn note_flatten_cache(&self, hit: bool) {
        let mut s = self.stats.borrow_mut();
        if hit {
            s.flatten_cache_hits += 1;
        } else {
            s.flatten_cache_misses += 1;
        }
    }

    /// Snapshot of this rank's counters.
    pub fn stats(&self) -> Stats {
        self.stats.borrow().clone()
    }

    // ----- point to point ------------------------------------------------

    /// Eager send: never blocks. The message becomes available at the
    /// destination after latency + transfer time.
    pub fn send(&self, dst: usize, tag: u64, data: &[u8]) {
        debug_assert!(tag < INTERNAL_BASE, "user tags must stay below 2^40");
        self.send_tagged(dst, tag, data);
    }

    fn send_tagged(&self, dst: usize, tag: u64, data: &[u8]) {
        let c = self.cost();
        self.advance(c.send_overhead_ns);
        let avail_at = self.now() + c.msg_ns(data.len());
        {
            let mut s = self.stats.borrow_mut();
            s.msgs_sent += 1;
            s.bytes_sent += data.len() as u64;
            s.phase_ns[Phase::Comm as usize] += c.send_overhead_ns;
        }
        // Mailbox identity is world-frame: group ids translate here and in
        // `recv_tagged`, nowhere else.
        self.world
            .deliver(self.global_of(dst), self.global, tag, Msg { data: data.to_vec(), avail_at });
    }

    /// Blocking receive of the next message from `src` with `tag`.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<u8> {
        debug_assert!(tag < INTERNAL_BASE, "user tags must stay below 2^40");
        self.recv_tagged(src, tag)
    }

    fn recv_tagged(&self, src: usize, tag: u64) -> Vec<u8> {
        let m = self.world.take(self.global, self.global_of(src), tag, self.now());
        let before = self.now();
        self.advance_to(m.avail_at);
        self.advance(self.cost().recv_overhead_ns);
        self.stats.borrow_mut().phase_ns[Phase::Comm as usize] += self.now() - before;
        m.data
    }

    /// Blocking receive with a virtual-time watchdog: returns `None` when
    /// no matching message has arrived by `deadline` (absolute virtual
    /// ns), advancing the clock to the deadline — the timed-out wait was
    /// real (Comm) time. The timer is a deterministic scheduler event, so
    /// a timeout is as reproducible as a delivery. Event-loop backend
    /// only; this is the primitive under crash-stop failure detection.
    pub fn recv_timeout(&self, src: usize, tag: u64, deadline: u64) -> Option<Vec<u8>> {
        let before = self.now();
        match self.world.take_deadline(self.global, self.global_of(src), tag, before, deadline) {
            Some(m) => {
                self.advance_to(m.avail_at);
                self.advance(self.cost().recv_overhead_ns);
                self.stats.borrow_mut().phase_ns[Phase::Comm as usize] += self.now() - before;
                Some(m.data)
            }
            None => {
                self.advance_to(deadline);
                self.stats.borrow_mut().phase_ns[Phase::Comm as usize] += self.now() - before;
                None
            }
        }
    }

    /// Post a non-blocking receive; complete it with [`Rank::wait`].
    pub fn irecv(&self, src: usize, tag: u64) -> RecvReq {
        RecvReq { src, tag }
    }

    /// Complete a posted receive.
    pub fn wait(&self, req: RecvReq) -> Vec<u8> {
        self.recv_tagged(req.src, req.tag)
    }

    /// Complete many receives; the result order matches the request order.
    pub fn waitall(&self, reqs: Vec<RecvReq>) -> Vec<Vec<u8>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    // ----- collectives ----------------------------------------------------

    fn next_coll_tag(&self, op: u64, round: u64) -> u64 {
        INTERNAL_BASE + self.seq.get() * 64 + op * 8 + round
    }

    fn finish_coll(&self) {
        self.seq.set(self.seq.get() + 1);
    }

    /// Dissemination barrier; also synchronizes virtual clocks to a common
    /// lower bound (every rank ends at ≥ the max participant clock).
    pub fn barrier(&self) {
        let p = self.nprocs();
        if p == 1 {
            self.finish_coll();
            return;
        }
        let mut k = 0u64;
        let mut dist = 1usize;
        while dist < p {
            let tag = self.next_coll_tag(0, k);
            let dst = (self.rank + dist) % p;
            let src = (self.rank + p - dist) % p;
            self.send_tagged(dst, tag, &[]);
            let _ = self.recv_tagged(src, tag);
            dist *= 2;
            k += 1;
        }
        self.finish_coll();
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast(&self, root: usize, data: Vec<u8>) -> Vec<u8> {
        let p = self.nprocs();
        if p == 1 {
            self.finish_coll();
            return data;
        }
        let vrank = (self.rank + p - root) % p;
        let tag = self.next_coll_tag(1, 0);
        let mut buf = data;
        // MPICH-style binomial tree: scan up to the lowest set bit to find
        // the parent, then send to children at descending bit positions.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = ((vrank - mask) + root) % p;
                buf = self.recv_tagged(parent, tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let child = ((vrank + mask) + root) % p;
                self.send_tagged(child, tag, &buf);
            }
            mask >>= 1;
        }
        self.finish_coll();
        buf
    }

    /// Ring allgather of variable-size blocks; result indexed by rank.
    pub fn allgatherv(&self, mine: &[u8]) -> Vec<Vec<u8>> {
        let p = self.nprocs();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
        out[self.rank] = mine.to_vec();
        if p == 1 {
            self.finish_coll();
            return out;
        }
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        for step in 0..p - 1 {
            let tag = self.next_coll_tag(2, step as u64);
            // Send the block received in the previous step (or own block);
            // `send_tagged` copies into the message, no local clone needed.
            let send_idx = (self.rank + p - step) % p;
            self.send_tagged(right, tag, &out[send_idx]);
            let recv_idx = (self.rank + p - step - 1) % p;
            out[recv_idx] = self.recv_tagged(left, tag);
        }
        self.finish_coll();
        out
    }

    /// Pairwise-exchange all-to-all of variable-size blocks. Always sends
    /// one message per peer (including empty blocks), like a true
    /// `MPI_Alltoallv`. For sparse exchanges prefer [`Rank::exchange`].
    pub fn alltoallv(&self, blocks: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let p = self.nprocs();
        assert_eq!(blocks.len(), p, "alltoallv needs one block per rank");
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
        // Self block: local copy charge.
        self.charge_memcpy(blocks[self.rank].len() as u64);
        out[self.rank] = blocks[self.rank].clone();
        for step in 1..p {
            let tag = self.next_coll_tag(3, step as u64);
            let dst = (self.rank + step) % p;
            let src = (self.rank + p - step) % p;
            self.send_tagged(dst, tag, &blocks[dst]);
            out[src] = self.recv_tagged(src, tag);
        }
        self.finish_coll();
        out
    }

    /// Sparse exchange: send `sends` (rank, payload) pairs, receive one
    /// message from every rank in `recv_from`. All participants must call
    /// this the same number of times with consistent expectations. Returns
    /// `(src, payload)` pairs in `recv_from` order.
    pub fn exchange(
        &self,
        sends: &[(usize, Vec<u8>)],
        recv_from: &[usize],
    ) -> Vec<(usize, Vec<u8>)> {
        let tag = self.next_coll_tag(4, 0);
        let mut self_payloads = std::collections::VecDeque::new();
        for (dst, payload) in sends {
            if *dst == self.rank {
                self_payloads.push_back(payload.clone());
            } else {
                self.send_tagged(*dst, tag, payload);
            }
        }
        let mut out = Vec::with_capacity(recv_from.len());
        for &src in recv_from {
            if src == self.rank {
                // Local delivery without the network.
                let payload = self_payloads
                    .pop_front()
                    .expect("recv_from lists self but no send targets self");
                self.charge_memcpy(payload.len() as u64);
                out.push((self.rank, payload));
            } else {
                out.push((src, self.recv_tagged(src, tag)));
            }
        }
        debug_assert!(
            self_payloads.is_empty(),
            "send to self without matching self in recv_from"
        );
        self.finish_coll();
        out
    }

    /// Gather variable-size blocks at `root` (binomial tree). Non-roots
    /// receive an empty vector.
    pub fn gatherv(&self, root: usize, mine: &[u8]) -> Vec<Vec<u8>> {
        let p = self.nprocs();
        let tag = self.next_coll_tag(5, 0);
        // Binomial gather on virtual ranks relative to root: each node
        // accumulates its subtree's blocks, then forwards to its parent.
        let vrank = (self.rank + p - root) % p;
        let mut acc: Vec<(usize, Vec<u8>)> = vec![(self.rank, mine.to_vec())];
        let mut mask = 1usize;
        // Collect children while ascending to this node's lowest set bit;
        // children past the world size simply don't exist.
        while vrank & mask == 0 && mask < p {
            if vrank + mask < p {
                let child = ((vrank + mask) + root) % p;
                let payload = self.recv_tagged(child, tag);
                acc.extend(decode_blocks(&payload));
            }
            mask <<= 1;
        }
        if vrank != 0 {
            let parent = ((vrank - mask) + root) % p;
            self.send_tagged(parent, tag, &encode_blocks(&acc));
            self.finish_coll();
            return Vec::new();
        }
        self.finish_coll();
        let mut out = vec![Vec::new(); p];
        for (src, data) in acc {
            out[src] = data;
        }
        out
    }

    /// Scatter per-rank blocks from `root` (binomial tree). Only the root
    /// provides `blocks`; every rank returns its own block.
    pub fn scatterv(&self, root: usize, blocks: Vec<Vec<u8>>) -> Vec<u8> {
        let p = self.nprocs();
        let tag = self.next_coll_tag(6, 0);
        let vrank = (self.rank + p - root) % p;
        // Receive this subtree's blocks from the parent (non-roots).
        let mut subtree: Vec<(usize, Vec<u8>)> = if vrank == 0 {
            assert_eq!(blocks.len(), p, "root must provide one block per rank");
            blocks.into_iter().enumerate().collect()
        } else {
            let mut mask = 1usize;
            while vrank & mask == 0 {
                mask <<= 1;
            }
            let parent = ((vrank - mask) + root) % p;
            decode_blocks(&self.recv_tagged(parent, tag))
        };
        // Forward sub-subtrees to children, keeping our own block.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                break;
            }
            if vrank + mask < p {
                // Children's virtual ranks are in [vrank+mask, vrank+2*mask).
                let lo = vrank + mask;
                let hi = (vrank + 2 * mask).min(p);
                let in_range = |r: usize| {
                    let vr = (r + p - root) % p;
                    vr >= lo && vr < hi
                };
                let (theirs, ours): (Vec<_>, Vec<_>) =
                    subtree.into_iter().partition(|(r, _)| in_range(*r));
                subtree = ours;
                let child = ((vrank + mask) + root) % p;
                self.send_tagged(child, tag, &encode_blocks(&theirs));
            }
            mask <<= 1;
        }
        self.finish_coll();
        debug_assert_eq!(subtree.len(), 1);
        debug_assert_eq!(subtree[0].0, self.rank);
        subtree.pop().expect("scatterv: own block must remain after tree forwarding").1
    }

    /// Allreduce over `u64` with a binary operator (gather + local fold).
    pub fn allreduce_u64(&self, val: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let parts = self.allgatherv(&val.to_le_bytes());
        parts
            .iter()
            .map(|b| {
                u64::from_le_bytes(
                    b.as_slice()
                        .try_into()
                        .expect("allreduce_u64: every contribution must be exactly 8 bytes"),
                )
            })
            .reduce(op)
            .expect("allreduce_u64: a world always has at least one rank")
    }

    /// Maximum of `val` across ranks.
    pub fn allreduce_max(&self, val: u64) -> u64 {
        self.allreduce_u64(val, u64::max)
    }

    /// Minimum of `val` across ranks.
    pub fn allreduce_min(&self, val: u64) -> u64 {
        self.allreduce_u64(val, u64::min)
    }

    /// Sum of `val` across ranks.
    pub fn allreduce_sum(&self, val: u64) -> u64 {
        self.allreduce_u64(val, |a, b| a + b)
    }
}

/// Encode `(rank, payload)` blocks for tree forwarding.
fn encode_blocks(blocks: &[(usize, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
    for (r, b) in blocks {
        out.extend_from_slice(&(*r as u64).to_le_bytes());
        out.extend_from_slice(&(b.len() as u64).to_le_bytes());
        out.extend_from_slice(b);
    }
    out
}

fn decode_blocks(buf: &[u8]) -> Vec<(usize, Vec<u8>)> {
    let rd = |i: usize| {
        u64::from_le_bytes(
            buf[i..i + 8].try_into().expect("decode_blocks: truncated scatterv header"),
        )
    };
    let n = rd(0) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 8usize;
    for _ in 0..n {
        let r = rd(pos) as usize;
        let len = rd(pos + 8) as usize;
        out.push((r, buf[pos + 16..pos + 16 + len].to_vec()));
        pos += 16 + len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run;

    #[test]
    fn p2p_roundtrip() {
        let out = run(2, CostModel::default(), |r| {
            if r.rank() == 0 {
                r.send(1, 7, b"hello");
                r.recv(1, 8)
            } else {
                let m = r.recv(0, 7);
                r.send(0, 8, &m);
                m
            }
        });
        assert_eq!(out[0], b"hello");
        assert_eq!(out[1], b"hello");
    }

    #[test]
    fn p2p_fifo_per_tag() {
        let out = run(2, CostModel::free(), |r| {
            if r.rank() == 0 {
                for i in 0..10u8 {
                    r.send(1, 3, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| r.recv(0, 3)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn recv_waits_for_transfer_time() {
        let out = run(2, CostModel::default(), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0u8; 1000]);
                r.now()
            } else {
                let _ = r.recv(0, 1);
                r.now()
            }
        });
        // Receiver time >= alpha + 1000 * beta.
        assert!(out[1] >= 60_000 + 10_000, "recv time {} too small", out[1]);
        // Sender only pays the send overhead.
        assert!(out[0] < 10_000);
    }

    #[test]
    fn overlap_hides_latency() {
        let out = run(2, CostModel::default(), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0u8; 1000]);
                0
            } else {
                let req = r.irecv(0, 1);
                r.advance(10_000_000); // compute while in flight
                let t0 = r.now();
                let _ = r.wait(req);
                r.now() - t0 // only recv overhead remains
            }
        });
        assert!(out[1] <= 5_000, "latency not hidden: {}", out[1]);
    }

    #[test]
    fn barrier_syncs_clocks() {
        let out = run(4, CostModel::default(), |r| {
            if r.rank() == 2 {
                r.advance(1_000_000_000);
            }
            r.barrier();
            r.now()
        });
        for t in &out {
            assert!(*t >= 1_000_000_000, "clock {} below slowest rank", t);
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..5 {
            let out = run(5, CostModel::default(), |r| {
                let data = if r.rank() == root { vec![42u8, 1, 2, 3] } else { vec![] };
                r.bcast(root, data)
            });
            for v in out {
                assert_eq!(v, vec![42u8, 1, 2, 3]);
            }
        }
    }

    #[test]
    fn allgatherv_collects_all() {
        let out = run(6, CostModel::default(), |r| {
            let mine = vec![r.rank() as u8; r.rank() + 1];
            r.allgatherv(&mine)
        });
        for v in out {
            for (i, blk) in v.iter().enumerate() {
                assert_eq!(blk, &vec![i as u8; i + 1]);
            }
        }
    }

    #[test]
    fn alltoallv_exchanges() {
        let p = 5;
        let out = run(p, CostModel::default(), |r| {
            let blocks: Vec<Vec<u8>> =
                (0..p).map(|d| vec![(r.rank() * 10 + d) as u8; d + 1]).collect();
            r.alltoallv(blocks)
        });
        for (dst, v) in out.iter().enumerate() {
            for (src, blk) in v.iter().enumerate() {
                assert_eq!(blk, &vec![(src * 10 + dst) as u8; dst + 1]);
            }
        }
    }

    #[test]
    fn exchange_sparse() {
        // Rank 0 sends to 1 and 2; ranks 1,2 send back to 0.
        let out = run(3, CostModel::default(), |r| match r.rank() {
            0 => {
                let got = r.exchange(
                    &[(1, vec![1]), (2, vec![2])],
                    &[1, 2],
                );
                got.iter().map(|(s, d)| (*s, d.clone())).collect::<Vec<_>>()
            }
            me => {
                let got = r.exchange(&[(0, vec![me as u8 * 10])], &[0]);
                got.iter().map(|(s, d)| (*s, d.clone())).collect::<Vec<_>>()
            }
        });
        assert_eq!(out[0], vec![(1, vec![10]), (2, vec![20])]);
        assert_eq!(out[1], vec![(0, vec![1])]);
        assert_eq!(out[2], vec![(0, vec![2])]);
    }

    #[test]
    fn exchange_self_delivery() {
        let out = run(2, CostModel::free(), |r| {
            let got = r.exchange(&[(r.rank(), vec![9, 9])], &[r.rank()]);
            got[0].1.clone()
        });
        assert_eq!(out[0], vec![9, 9]);
        assert_eq!(out[1], vec![9, 9]);
    }

    #[test]
    fn allreduce_ops() {
        let out = run(4, CostModel::default(), |r| {
            let v = (r.rank() + 1) as u64;
            (r.allreduce_max(v), r.allreduce_min(v), r.allreduce_sum(v))
        });
        for (mx, mn, sm) in out {
            assert_eq!((mx, mn, sm), (4, 1, 10));
        }
    }

    #[test]
    fn collectives_back_to_back_do_not_cross_talk() {
        let out = run(3, CostModel::free(), |r| {
            let mut acc = Vec::new();
            for i in 0..20u8 {
                let v = r.allgatherv(&[r.rank() as u8, i]);
                acc.push(v);
            }
            acc
        });
        for v in out {
            for (i, round) in v.iter().enumerate() {
                for (src, blk) in round.iter().enumerate() {
                    assert_eq!(blk, &vec![src as u8, i as u8]);
                }
            }
        }
    }

    #[test]
    fn gatherv_collects_at_root() {
        for root in 0..5 {
            let out = run(5, CostModel::default(), move |r| {
                let mine = vec![r.rank() as u8; r.rank() + 1];
                r.gatherv(root, &mine)
            });
            for (rank, v) in out.iter().enumerate() {
                if rank == root {
                    for (src, blk) in v.iter().enumerate() {
                        assert_eq!(blk, &vec![src as u8; src + 1], "root {root} src {src}");
                    }
                } else {
                    assert!(v.is_empty());
                }
            }
        }
    }

    #[test]
    fn scatterv_distributes_from_root() {
        for root in 0..5 {
            let out = run(5, CostModel::default(), move |r| {
                let blocks = if r.rank() == root {
                    (0..5).map(|i| vec![i as u8 * 3; i + 2]).collect()
                } else {
                    Vec::new()
                };
                r.scatterv(root, blocks)
            });
            for (rank, blk) in out.iter().enumerate() {
                assert_eq!(blk, &vec![rank as u8 * 3; rank + 2], "root {root}");
            }
        }
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let out = run(4, CostModel::free(), |r| {
            let mine = vec![r.rank() as u8 + 40; 3];
            let gathered = r.gatherv(0, &mine);
            let blocks = if r.rank() == 0 { gathered } else { Vec::new() };
            r.scatterv(0, blocks)
        });
        for (rank, blk) in out.iter().enumerate() {
            assert_eq!(blk, &vec![rank as u8 + 40; 3]);
        }
    }

    #[test]
    fn overlap_charges_max_not_sum() {
        // A 10 µs I/O overlapped with 4 µs of exchange must elapse 10 µs
        // (max), not 14 µs (sum), and the buckets must still sum to the
        // elapsed time: 4 µs Comm + 6 µs Io.
        let out = run(1, CostModel::default(), |r| {
            let t0 = r.now();
            let io = r.overlap_begin(t0 + 10_000, Phase::Io);
            r.advance(4_000);
            r.note_phase(Phase::Comm, 4_000);
            let hidden = r.overlap_complete(io);
            (r.now() - t0, hidden, r.stats())
        });
        let (elapsed, hidden, s) = &out[0];
        assert_eq!(*elapsed, 10_000, "overlap must charge the max window");
        assert_eq!(*hidden, 4_000);
        assert_eq!(s.overlap_saved_ns, 4_000);
        assert_eq!(s.phase_ns[Phase::Io as usize], 6_000);
        assert_eq!(s.phase_ns[Phase::Comm as usize], 4_000);
        assert_eq!(
            s.phase_ns.iter().sum::<u64>(),
            *elapsed,
            "trace buckets must sum to elapsed time"
        );
    }

    #[test]
    fn overlap_fully_hidden_op() {
        // Work longer than the in-flight op: elapsed = work, the whole op
        // duration is hidden, and zero ns land in the op's phase.
        let out = run(1, CostModel::default(), |r| {
            let io = r.overlap_begin(r.now() + 3_000, Phase::Io);
            r.advance(9_000);
            r.note_phase(Phase::Compute, 9_000);
            let hidden = r.overlap_complete(io);
            (r.now(), hidden, r.stats())
        });
        let (now, hidden, s) = &out[0];
        assert_eq!(*now, 9_000);
        assert_eq!(*hidden, 3_000);
        assert_eq!(s.overlap_saved_ns, 3_000);
        assert_eq!(s.phase_ns[Phase::Io as usize], 0);
        assert_eq!(s.phase_ns.iter().sum::<u64>(), *now);
    }

    #[test]
    fn overlap_immediate_complete_matches_blocking() {
        // begin + complete with no interleaved work is exactly a blocking
        // charge: full duration in the phase, nothing saved.
        let out = run(1, CostModel::default(), |r| {
            let io = r.overlap_begin(r.now() + 5_000, Phase::Io);
            let hidden = r.overlap_complete(io);
            (r.now(), hidden, r.stats())
        });
        let (now, hidden, s) = &out[0];
        assert_eq!(*now, 5_000);
        assert_eq!(*hidden, 0);
        assert_eq!(s.overlap_saved_ns, 0);
        assert_eq!(s.phase_ns[Phase::Io as usize], 5_000);
        assert_eq!(s.overlap_saved_us(), 0);
    }

    #[test]
    fn derive_overlap_separate_counter() {
        // A derive window hides behind comm work: pairs are counted at
        // begin, hidden time lands in derive_overlap_saved_ns (not
        // overlap_saved_ns), and phase buckets still sum to elapsed.
        let out = run(1, CostModel::default(), |r| {
            let w = r.charge_pairs_overlapped(100); // 12_000 ns pending
            assert_eq!(r.stats().pairs_processed, 100);
            r.advance(5_000);
            r.note_phase(Phase::Comm, 5_000);
            let hidden = r.overlap_complete_derive(w);
            (r.now(), hidden, r.stats())
        });
        let (now, hidden, s) = &out[0];
        assert_eq!(*now, 12_000);
        assert_eq!(*hidden, 5_000);
        assert_eq!(s.derive_overlap_saved_ns, 5_000);
        assert_eq!(s.overlap_saved_ns, 0);
        assert_eq!(s.phase_ns[Phase::Compute as usize], 7_000);
        assert_eq!(s.phase_ns.iter().sum::<u64>(), *now);
    }

    #[test]
    fn derive_overlap_immediate_complete_matches_blocking() {
        // begin + complete with no interleaved work must equal a plain
        // charge_pairs call, charge for charge.
        let out = run(1, CostModel::default(), |r| {
            let w = r.charge_pairs_overlapped(50);
            let hidden = r.overlap_complete_derive(w);
            (r.now(), hidden, r.stats())
        });
        let blocking = run(1, CostModel::default(), |r| {
            r.charge_pairs(50);
            (r.now(), 0u64, r.stats())
        });
        let ((now, hidden, s), (bnow, _, bs)) = (&out[0], &blocking[0]);
        assert_eq!(now, bnow);
        assert_eq!(*hidden, 0);
        assert_eq!(s.pairs_processed, bs.pairs_processed);
        assert_eq!(s.phase_ns, bs.phase_ns);
        assert_eq!(s.derive_overlap_saved_ns, 0);
    }

    #[test]
    fn pipeline_depth_is_a_watermark() {
        let out = run(1, CostModel::default(), |r| {
            r.note_pipeline_depth(2);
            r.note_pipeline_depth(5);
            r.note_pipeline_depth(3);
            r.stats().pipeline_depth_used
        });
        assert_eq!(out[0], 5);
    }

    #[test]
    fn overlap_interleavings_keep_phase_buckets_consistent() {
        // Property (ISSUE 3 satellite): for arbitrary interleavings of
        // charges, overlap_begin and (out-of-order) overlap_complete —
        // including windows completed long after done_at and derive
        // windows — the phase buckets always sum to elapsed virtual time,
        // every window's hidden time is bounded by its duration, and the
        // two savings counters equal the sums of their windows' hidden
        // time (never underflowing).
        crate::prop::Runner::new("overlap_interleavings").cases(64).run(
            |rng| {
                let n = 4 + rng.next_below(28);
                (0..n).map(|_| (rng.next_u64(), rng.next_below(20_000))).collect::<Vec<_>>()
            },
            |ops| {
                let ops = ops.clone();
                run(1, CostModel::default(), move |r| {
                    let mut open: Vec<(bool, OverlapWindow)> = Vec::new();
                    let mut hidden_io = 0u64;
                    let mut hidden_derive = 0u64;
                    let mut rng = crate::prng::XorShift64Star::new(ops.len() as u64 + 1);
                    let mut complete_one =
                        |open: &mut Vec<(bool, OverlapWindow)>, r: &Rank, io: &mut u64, de: &mut u64| {
                            if open.is_empty() {
                                return;
                            }
                            let idx = rng.next_below(open.len() as u64) as usize;
                            let (is_derive, w) = open.swap_remove(idx);
                            let dur = w.duration();
                            let hidden = if is_derive {
                                r.overlap_complete_derive(w)
                            } else {
                                r.overlap_complete(w)
                            };
                            assert!(hidden <= dur, "hidden {hidden} exceeds duration {dur}");
                            if is_derive {
                                *de += hidden;
                            } else {
                                *io += hidden;
                            }
                        };
                    for &(sel, amt) in &ops {
                        match sel % 6 {
                            0 => r.charge_pairs(1 + amt / 256),
                            1 => r.charge_memcpy(1 + amt),
                            2 => {
                                r.advance(amt);
                                r.note_phase(Phase::Comm, amt);
                            }
                            3 => open.push((false, r.overlap_begin(r.now() + amt, Phase::Io))),
                            4 => open.push((true, r.charge_pairs_overlapped(amt / 64))),
                            _ => complete_one(&mut open, r, &mut hidden_io, &mut hidden_derive),
                        }
                    }
                    while !open.is_empty() {
                        complete_one(&mut open, r, &mut hidden_io, &mut hidden_derive);
                    }
                    let s = r.stats();
                    assert_eq!(
                        s.phase_ns.iter().sum::<u64>(),
                        r.now(),
                        "phase buckets must sum to elapsed virtual time"
                    );
                    assert_eq!(s.overlap_saved_ns, hidden_io);
                    assert_eq!(s.derive_overlap_saved_ns, hidden_derive);
                });
            },
        );
    }

    #[test]
    fn stats_count_messages() {
        let out = run(2, CostModel::default(), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0u8; 64]);
                r.send(1, 1, &[0u8; 36]);
            } else {
                let _ = r.recv(0, 1);
                let _ = r.recv(0, 1);
            }
            r.stats()
        });
        assert_eq!(out[0].msgs_sent, 2);
        assert_eq!(out[0].bytes_sent, 100);
    }

    #[test]
    fn charge_pairs_advances_clock() {
        let out = run(1, CostModel::default(), |r| {
            r.charge_pairs(1000);
            (r.now(), r.stats().pairs_processed)
        });
        assert_eq!(out[0], (120_000, 1000));
    }

    #[test]
    fn subgroup_collectives_translate_ids() {
        // World of 4; ranks {0, 2, 3} form a subgroup and run collectives
        // over it while rank 1 sits out. Group-relative ids drive the
        // algorithms; only the mailbox identity stays world-frame.
        let out = run(4, CostModel::default(), |r| {
            if r.rank() == 1 {
                return (usize::MAX, Vec::new(), 0);
            }
            let comm = r.subgroup(&[0, 2, 3]);
            let gathered = comm.allgatherv(&[r.rank() as u8]);
            comm.barrier();
            let sum = comm.allreduce_sum(r.rank() as u64);
            (comm.rank(), gathered.concat(), sum)
        });
        for (i, world_rank) in [(0usize, 0usize), (1, 2), (2, 3)] {
            let (grank, gathered, sum) = &out[world_rank];
            assert_eq!(*grank, i, "group-relative id");
            assert_eq!(gathered, &vec![0u8, 2, 3], "allgatherv over the subgroup");
            assert_eq!(*sum, 5, "allreduce over the subgroup");
        }
    }

    #[test]
    fn nested_subgroup_translates_through_frames() {
        // A subgroup of a subgroup: member ids are relative to the parent
        // frame, so [0, 2] of {0, 2, 3} is world ranks {0, 3}.
        let out = run(4, CostModel::free(), |r| {
            if r.rank() == 1 || r.rank() == 2 {
                return 0;
            }
            let mid = r.subgroup(&[0, 2, 3]); // needs all three present? no:
            // only the *members of the inner group* communicate below.
            let inner = mid.subgroup(&[0, 2]);
            inner.allreduce_sum(r.rank() as u64)
        });
        assert_eq!(out[0], 3);
        assert_eq!(out[3], 3);
    }

    #[test]
    fn subgroup_shares_clock_and_stats() {
        let out = run(2, CostModel::default(), |r| {
            let comm = r.subgroup(&[0, 1]);
            comm.barrier();
            assert_eq!(comm.now(), r.now(), "clock is shared");
            r.charge_pairs(10);
            (r.now(), comm.stats().pairs_processed)
        });
        for (now, pairs) in out {
            assert!(now > 0);
            assert_eq!(pairs, 10, "stats are shared across group handles");
        }
    }

    #[test]
    fn single_rank_collectives() {
        let out = run(1, CostModel::default(), |r| {
            r.barrier();
            let b = r.bcast(0, vec![5]);
            let g = r.allgatherv(&[7]);
            let a = r.alltoallv(vec![vec![9]]);
            (b, g, a)
        });
        let (b, g, a) = &out[0];
        assert_eq!(b, &vec![5]);
        assert_eq!(g, &vec![vec![7]]);
        assert_eq!(a, &vec![vec![9]]);
    }
}
