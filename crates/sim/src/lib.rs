//! # flexio-sim — an in-process message-passing runtime with virtual time
//!
//! Substitute for the paper's MPICH2-over-TCP substrate. Each rank owns a
//! virtual clock in nanoseconds; all ranks of a world run as
//! cooperatively-scheduled fibers, resumed lowest virtual clock first
//! (deterministic by construction, and cheap enough to drive tens of
//! thousands of ranks per process) — on one host thread by default, or on
//! a sharded pool of host threads behind `FLEXIO_SIM_SHARDS=n` (see
//! [`Backend`]); both produce bit-identical results. Point-to-point and
//! collective operations charge an alpha/beta network model; higher layers
//! charge computation explicitly (offset/length-pair processing, buffer
//! copies). The paper's performance deltas are driven by *counts* — bytes
//! moved, messages sent, pairs processed, copies made — so charging those
//! counts against a consistent ruler preserves relative orderings and
//! crossovers even though absolute MB/s are model outputs.
//!
//! ```
//! use flexio_sim::{run, CostModel};
//!
//! let totals = run(4, CostModel::default(), |rank| {
//!     let sum = rank.allreduce_sum(rank.rank() as u64);
//!     rank.barrier();
//!     sum
//! });
//! assert!(totals.iter().all(|&s| s == 6));
//! ```

#![warn(missing_docs)]

pub mod cost;
#[cfg(target_arch = "x86_64")]
mod fiber;
pub mod prng;
pub mod prop;
pub mod rank;
#[cfg(target_arch = "x86_64")]
mod sched;
pub mod world;

/// Stub for architectures without the fiber layer: `run`/`run_on` assert
/// [`Backend::event_loop_supported`] before ever reaching these, so they
/// only have to keep the crate compiling.
#[cfg(not(target_arch = "x86_64"))]
mod sched {
    use crate::rank::Rank;
    use crate::world::{Msg, World};
    use std::sync::Arc;

    pub(crate) enum ParkWake {
        #[allow(dead_code)]
        Delivered(Msg),
        #[allow(dead_code)]
        Spurious,
        #[allow(dead_code)]
        TimedOut,
    }

    pub(crate) fn scheduler_active_for(_world: &World) -> bool {
        false
    }

    pub(crate) fn park_for_recv(
        _w: &World,
        _dst: usize,
        _src: usize,
        _tag: u64,
        _now: u64,
        _deadline: Option<u64>,
    ) -> ParkWake {
        unreachable!("the fiber rank runtime is unsupported on this architecture")
    }

    pub(crate) fn try_handoff(
        _w: &World,
        _dst: usize,
        _src: usize,
        _tag: u64,
        msg: Msg,
    ) -> Option<Msg> {
        Some(msg)
    }

    pub(crate) fn run_event_loop<R, F>(_world: Arc<World>, _f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Rank) -> R + Sync,
    {
        unreachable!("the fiber rank runtime is unsupported on this architecture")
    }

    pub(crate) fn run_event_loop_partial<R, F>(_world: Arc<World>, _f: F) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(&Rank) -> R + Sync,
    {
        unreachable!("the fiber rank runtime is unsupported on this architecture")
    }

    pub(crate) fn run_pool<R, F>(_world: Arc<World>, _shards: usize, _f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Rank) -> R + Sync,
    {
        unreachable!("the fiber rank runtime is unsupported on this architecture")
    }

    pub(crate) fn run_pool_partial<R, F>(
        _world: Arc<World>,
        _shards: usize,
        _jitter: Option<(u64, u64)>,
        _f: F,
    ) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(&Rank) -> R + Sync,
    {
        unreachable!("the fiber rank runtime is unsupported on this architecture")
    }
}

pub use cost::CostModel;
pub use prng::XorShift64Star;
pub use rank::{OverlapWindow, Phase, Rank, RecvReq, Stats};
pub use world::{run, run_crashable, run_crashable_on, run_jittered, run_on, Backend, World};

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// allgatherv delivers every payload intact for arbitrary sizes.
        #[test]
        fn allgatherv_arbitrary_sizes(sizes in proptest::collection::vec(0usize..200, 2..6)) {
            let p = sizes.len();
            let sizes2 = sizes.clone();
            let out = run(p, CostModel::default(), move |r| {
                let mine: Vec<u8> = (0..sizes2[r.rank()]).map(|i| (r.rank() * 31 + i) as u8).collect();
                r.allgatherv(&mine)
            });
            for v in out {
                for (src, blk) in v.iter().enumerate() {
                    let want: Vec<u8> = (0..sizes[src]).map(|i| (src * 31 + i) as u8).collect();
                    prop_assert_eq!(blk, &want);
                }
            }
        }

        /// Virtual clocks are monotone through arbitrary collective mixes.
        #[test]
        fn clocks_monotone(ops in proptest::collection::vec(0u8..4, 1..12)) {
            let ops2 = ops.clone();
            let out = run(3, CostModel::default(), move |r| {
                let mut last = r.now();
                for op in &ops2 {
                    match op {
                        0 => r.barrier(),
                        1 => { let _ = r.bcast(0, vec![1, 2, 3]); }
                        2 => { let _ = r.allgatherv(&[r.rank() as u8]); }
                        _ => { let _ = r.allreduce_max(r.rank() as u64); }
                    }
                    let now = r.now();
                    assert!(now >= last, "clock went backwards");
                    last = now;
                }
                r.now()
            });
            prop_assert!(out.iter().all(|&t| t > 0));
        }

        /// alltoallv is a permutation-correct exchange for random payloads.
        #[test]
        fn alltoallv_correct(seed in 0u64..1000) {
            let p = 4;
            let out = run(p, CostModel::free(), move |r| {
                let blocks: Vec<Vec<u8>> = (0..p)
                    .map(|d| {
                        let n = ((seed as usize + r.rank() * 7 + d * 13) % 50) + 1;
                        vec![(r.rank() * p + d) as u8; n]
                    })
                    .collect();
                r.alltoallv(blocks)
            });
            for (dst, v) in out.iter().enumerate() {
                for (src, blk) in v.iter().enumerate() {
                    let n = ((seed as usize + src * 7 + dst * 13) % 50) + 1;
                    prop_assert_eq!(blk, &vec![(src * p + dst) as u8; n]);
                }
            }
        }
    }
}
