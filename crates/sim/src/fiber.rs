//! Stackful fibers for the event-loop rank runtime (x86_64).
//!
//! A fiber is a heap-allocated stack plus a saved stack pointer; switching
//! fibers is six callee-saved register pushes, a stack-pointer swap, six
//! pops and a `ret` (System V AMD64). Everything else a resumable rank
//! needs — locals, call frames, pending destructors — already lives on the
//! fiber's own stack, which is what lets the blocking `Rank`/`World` API
//! survive unchanged: a park point is simply a `switch_stacks` back to the
//! scheduler with the rank's whole call chain frozen in place.
//!
//! Scope notes:
//!
//! * x86_64 only (gated in `lib.rs`); other architectures fall back to the
//!   threaded runtime. The switch saves rbx/rbp/r12–r15/rsp — the SysV
//!   callee-saved set. mxcsr and the x87 control word are not saved:
//!   nothing in this workspace (or in code the simulator can call) changes
//!   rounding modes mid-rank.
//! * Stacks are plain heap allocations with a canary word at the low end,
//!   checked on every return to the scheduler. malloc-backed stacks commit
//!   lazily, so thousands of mostly-idle ranks cost virtual address space,
//!   not resident memory. There is no guard page; the canary plus a
//!   generous default size (1 MiB, `FLEXIO_SIM_STACK_KB`) stands in.

use std::alloc::{alloc, dealloc, Layout};

/// Written at the lowest address of every fiber stack; if a deep call
/// chain runs the stack down this far the scheduler panics instead of
/// silently corrupting the neighbouring allocation any further.
const STACK_CANARY: u64 = 0xf1be_c0de_dead_5afe;

/// A saved execution context: just the stack pointer. All register state
/// lives on the stack it points into.
#[repr(C)]
pub(crate) struct Context {
    pub sp: *mut u8,
}

impl Context {
    /// A context that must never be resumed (placeholder before `prepare`).
    pub fn null() -> Context {
        Context { sp: std::ptr::null_mut() }
    }
}

/// What a newly started fiber runs. The scheduler boxes one `Payload` per
/// rank at a stable address and threads the raw pointer through the
/// initial register image (see [`prepare`]).
pub(crate) struct Payload {
    /// The erased rank body; taken exactly once by `fiber_main`.
    pub run: Option<Box<dyn FnOnce()>>,
    /// Where `fiber_main` switches when the body returns: (slot to save
    /// the dying context into, scheduler context to resume).
    pub final_ctx: (*mut Context, *const Context),
}

/// Save the current context into `*save`, then resume `*restore`.
///
/// # Safety
/// `restore` must hold a stack pointer produced by [`prepare`] or by a
/// previous save through this function, on a stack that is still live.
#[unsafe(naked)]
pub(crate) unsafe extern "C" fn switch_stacks(save: *mut Context, restore: *const Context) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First frame of every fiber: the initial register image parks the
/// payload pointer in r12 and this trampoline's address as the `ret`
/// target, so the first `switch_stacks` into the fiber lands here with a
/// 16-byte-aligned stack and the payload in hand.
#[unsafe(naked)]
unsafe extern "C" fn fiber_entry() {
    core::arch::naked_asm!(
        "mov rdi, r12",
        "call {main}",
        // fiber_main never returns; landing here means a completed fiber
        // was resumed, which is a scheduler bug.
        "ud2",
        main = sym fiber_main,
    )
}

/// Body of every fiber. Runs the payload (which catches unwinds and does
/// all scheduler bookkeeping), then switches to the scheduler forever.
unsafe extern "C" fn fiber_main(p: *mut Payload) -> ! {
    {
        let payload = unsafe { &mut *p };
        let run = payload.run.take().expect("fiber started twice");
        // `run` is responsible for catching panics; letting one unwind out
        // of this extern "C" frame would abort the process.
        run();
    }
    let (save, host) = unsafe { (*p).final_ctx };
    unsafe { switch_stacks(save, host) };
    // A completed fiber must never be resumed.
    std::process::abort();
}

/// One fiber's stack: 16-aligned heap block, canary at the low end.
pub(crate) struct FiberStack {
    base: *mut u8,
    layout: Layout,
}

impl FiberStack {
    pub fn new(size: usize) -> FiberStack {
        // Round to 16 so the top is aligned, and leave room for the canary
        // plus the initial register image even under silly env overrides.
        let size = size.max(4096).next_multiple_of(16);
        let layout = Layout::from_size_align(size, 16).expect("fiber stack layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "fiber stack allocation failed ({size} bytes)");
        // SAFETY: base is 16-aligned and at least 4096 bytes.
        unsafe { (base as *mut u64).write(STACK_CANARY) };
        FiberStack { base, layout }
    }

    /// False once a deep call chain has run the stack down to its lowest
    /// word — the best overflow detection available without guard pages.
    pub fn canary_ok(&self) -> bool {
        // SAFETY: base is live and holds the canary written in `new`.
        unsafe { (self.base as *const u64).read() == STACK_CANARY }
    }
}

impl Drop for FiberStack {
    fn drop(&mut self) {
        // SAFETY: base/layout come from the matching alloc in `new`.
        unsafe { dealloc(self.base, self.layout) };
    }
}

/// Build the initial context for a fresh fiber on `stack`: the first
/// switch into it `ret`s to [`fiber_entry`] with `payload` in r12.
pub(crate) fn prepare(stack: &FiberStack, payload: *mut Payload) -> Context {
    unsafe {
        let top = stack.base.add(stack.layout.size());
        debug_assert_eq!(top as usize % 16, 0);
        // Register image, ascending from the saved stack pointer, matching
        // the pop order in `switch_stacks`: r15 r14 r13 r12 rbx rbp ret.
        // The ret slot sits at top-8 so `fiber_entry` starts 16-aligned.
        let sp = top.sub(7 * 8) as *mut u64;
        sp.add(0).write(0); // r15
        sp.add(1).write(0); // r14
        sp.add(2).write(0); // r13
        sp.add(3).write(payload as u64); // r12 -> fiber_entry's rdi
        sp.add(4).write(0); // rbx
        sp.add(5).write(0); // rbp
        sp.add(6).write(fiber_entry as *const () as usize as u64); // ret target
        Context { sp: sp as *mut u8 }
    }
}
