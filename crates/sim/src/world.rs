//! The shared world: mailboxes and rank spawning.

use crate::cost::CostModel;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// A message in flight: payload plus the virtual time it becomes available
/// at the receiver.
#[derive(Debug)]
pub(crate) struct Msg {
    pub data: Vec<u8>,
    pub avail_at: u64,
}

#[derive(Default)]
pub(crate) struct MailboxInner {
    pub queues: HashMap<(usize, u64), VecDeque<Msg>>,
}

/// One rank's incoming-message store.
pub(crate) struct Mailbox {
    pub inner: Mutex<MailboxInner>,
    pub cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox { inner: Mutex::new(MailboxInner::default()), cv: Condvar::new() }
    }
}

/// The shared state of a simulated MPI world.
pub struct World {
    pub(crate) nprocs: usize,
    pub(crate) cost: CostModel,
    pub(crate) mailboxes: Vec<Mailbox>,
}

impl World {
    /// Create a world of `nprocs` ranks with the given cost model.
    pub fn new(nprocs: usize, cost: CostModel) -> Arc<World> {
        assert!(nprocs > 0, "world needs at least one rank");
        Arc::new(World {
            nprocs,
            cost,
            mailboxes: (0..nprocs).map(|_| Mailbox::new()).collect(),
        })
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The world's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    pub(crate) fn deliver(&self, dst: usize, src: usize, tag: u64, msg: Msg) {
        let mb = &self.mailboxes[dst];
        let mut inner = mb.inner.lock().unwrap();
        inner.queues.entry((src, tag)).or_default().push_back(msg);
        mb.cv.notify_all();
    }

    pub(crate) fn take(&self, dst: usize, src: usize, tag: u64) -> Msg {
        let mb = &self.mailboxes[dst];
        let mut inner = mb.inner.lock().unwrap();
        loop {
            if let Some(q) = inner.queues.get_mut(&(src, tag)) {
                if let Some(m) = q.pop_front() {
                    return m;
                }
            }
            inner = mb.cv.wait(inner).unwrap();
        }
    }
}

/// Run `f` on every rank of a fresh world and return the per-rank results
/// in rank order. Panics in any rank propagate.
pub fn run<R, F>(nprocs: usize, cost: CostModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    let world = World::new(nprocs, cost);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nprocs)
            .map(|r| {
                let world = Arc::clone(&world);
                let f = &f;
                s.spawn(move || {
                    let rank = crate::rank::Rank::new(world, r);
                    f(&rank)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_rank_order() {
        let out = run(4, CostModel::free(), |r| r.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::new(0, CostModel::free());
    }
}
