//! The shared world: mailboxes, backend selection, rank dispatch.

use crate::cost::CostModel;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Panic payload raised by [`crate::rank::Rank::maybe_crash`] when a rank
/// reaches its scheduled crash time: the scheduler recognizes it, marks
/// the rank dead (reaping its mailbox), and keeps driving the survivors —
/// the simulation analogue of a crash-stop process failure.
pub(crate) struct CrashStop;

/// Which rank runtime drives a world's ranks. Both are the same fiber
/// scheduler; they differ only in how many host threads drive it, and
/// they produce bit-identical clocks, Stats, and bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One host thread drives every rank as a cooperatively-scheduled
    /// fiber over virtual time, lowest clock first (deterministic by
    /// construction; supports thousands of ranks per process). The
    /// default.
    EventLoop,
    /// A pool of `n` host threads, ranks partitioned by id into
    /// contiguous shards, cross-shard delivery through gate-protected
    /// inboxes, dispatch serialized on the global minimum key
    /// (`FLEXIO_SIM_SHARDS=n`; clamped to `1..=nprocs`). Bit-identical
    /// to [`Backend::EventLoop`] regardless of shard count or host-
    /// thread interleaving; spreads scheduler state across threads at
    /// high rank counts.
    Sharded(usize),
}

impl Backend {
    /// The backend `run` uses: an `n`-shard pool when `FLEXIO_SIM_SHARDS`
    /// is set to `n >= 2`, the sequential event loop otherwise (`0` and
    /// `1` mean sequential too).
    pub fn from_env() -> Backend {
        match std::env::var("FLEXIO_SIM_SHARDS") {
            Ok(v) => {
                let n: usize = v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("FLEXIO_SIM_SHARDS must be a shard count, got {v:?}"));
                if n >= 2 {
                    Backend::Sharded(n)
                } else {
                    Backend::EventLoop
                }
            }
            Err(_) => Backend::EventLoop,
        }
    }

    /// Whether the fiber runtime is available on this build target (the
    /// fiber layer is x86_64-only; since the thread-per-rank runtime's
    /// retirement there is no fallback elsewhere).
    pub fn event_loop_supported() -> bool {
        cfg!(target_arch = "x86_64")
    }
}

/// A message in flight: payload plus the virtual time it becomes available
/// at the receiver.
#[derive(Debug)]
pub(crate) struct Msg {
    pub data: Vec<u8>,
    pub avail_at: u64,
}

/// Multiply-rotate hasher for the mailbox queue map. The keys are small
/// fixed-size `(src, tag)` pairs from trusted (in-process) senders, and
/// every message pays two to three lookups — SipHash was a measurable
/// slice of the per-message cost at host_scale rank counts.
#[derive(Default)]
pub(crate) struct TagHasher(u64);

impl Hasher for TagHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        // Fibonacci-style multiply spreads entropy into the high bits;
        // the rotate brings it back down for the table index.
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(26);
    }
}

type QueueMap = HashMap<(usize, u64), VecDeque<Msg>, BuildHasherDefault<TagHasher>>;

/// One rank's incoming-message store. Only the overflow path — deliveries
/// that found no matching parked receiver — lands here; the mutex also
/// carries cross-shard queue/pop ordering under the sharded pool (only
/// one shard dispatches at a time, so it is never contended on the
/// simulation's critical path).
pub(crate) struct Mailbox {
    pub queues: Mutex<QueueMap>,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox { queues: Mutex::new(QueueMap::default()) }
    }
}

/// The shared state of a simulated MPI world.
pub struct World {
    pub(crate) nprocs: usize,
    pub(crate) cost: CostModel,
    pub(crate) mailboxes: Vec<Mailbox>,
    /// Scheduled crash-stop time per rank, virtual ns (`u64::MAX` =
    /// never). Checked by [`crate::rank::Rank::maybe_crash`].
    pub(crate) crash_at: Vec<u64>,
    /// Ranks that have crash-stopped: deliveries to them are dropped.
    pub(crate) dead: Vec<AtomicBool>,
}

impl World {
    /// Create a world of `nprocs` ranks with the given cost model.
    pub fn new(nprocs: usize, cost: CostModel) -> Arc<World> {
        Self::with_crashes(nprocs, cost, &[])
    }

    /// [`World::new`] plus a crash-stop schedule: each `(rank, at_ns)`
    /// entry kills that rank's fiber at its first [`Rank::maybe_crash`]
    /// check at or past `at_ns` of virtual time.
    ///
    /// [`Rank::maybe_crash`]: crate::rank::Rank::maybe_crash
    pub fn with_crashes(nprocs: usize, cost: CostModel, crashes: &[(usize, u64)]) -> Arc<World> {
        assert!(nprocs > 0, "world needs at least one rank");
        let mut crash_at = vec![u64::MAX; nprocs];
        for &(r, at) in crashes {
            assert!(r < nprocs, "crash rank {r} out of range for {nprocs} ranks");
            crash_at[r] = crash_at[r].min(at);
        }
        Arc::new(World {
            nprocs,
            cost,
            mailboxes: (0..nprocs).map(|_| Mailbox::new()).collect(),
            crash_at,
            dead: (0..nprocs).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// The scheduled crash time of `rank` (`u64::MAX` = never).
    pub(crate) fn crash_time(&self, rank: usize) -> u64 {
        self.crash_at[rank]
    }

    /// Whether `rank` has crash-stopped.
    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::Relaxed)
    }

    /// Mark `rank` dead and drop everything queued in its mailbox, so the
    /// scheduler's deadlock diagnostics and memory footprint never carry
    /// already-dead ranks.
    pub(crate) fn reap_rank(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Relaxed);
        self.mailboxes[rank].queues.lock().unwrap().clear();
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The world's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    pub(crate) fn deliver(&self, dst: usize, src: usize, tag: u64, msg: Msg) {
        // Messages to a crash-stopped rank fall on the floor, exactly like
        // packets to a dead host.
        if self.is_dead(dst) {
            return;
        }
        // Fast path: a receiver already parked on exactly `(src, tag)`
        // gets the message handed to it directly (same-shard: lock-free
        // slot; cross-shard: gate inbox). When it is parked, its queue is
        // provably empty — only its owning shard could have filled it and
        // it drained before parking — so FIFO order holds.
        let Some(msg) = crate::sched::try_handoff(self, dst, src, tag, msg) else {
            return;
        };
        let mut queues = self.mailboxes[dst].queues.lock().unwrap();
        queues.entry((src, tag)).or_default().push_back(msg);
    }

    /// Pop the next message from `(src, tag)` for rank `dst`, parking the
    /// caller until one arrives. `now` is the receiver's virtual clock —
    /// its wake-up priority.
    pub(crate) fn take(&self, dst: usize, src: usize, tag: u64, now: u64) -> Msg {
        assert!(
            crate::sched::scheduler_active_for(self),
            "recv outside the rank runtime (ranks only run inside flexio_sim::run)"
        );
        loop {
            if let Some(m) = Self::pop_queued(&self.mailboxes[dst], src, tag) {
                return m;
            }
            // Parking resumes with the message in hand when the delivery
            // matched (the common case); a spurious resume re-checks the
            // queue.
            match crate::sched::park_for_recv(self, dst, src, tag, now, None) {
                crate::sched::ParkWake::Delivered(m) => return m,
                crate::sched::ParkWake::Spurious => continue,
                crate::sched::ParkWake::TimedOut => {
                    unreachable!("deadline-free park cannot time out")
                }
            }
        }
    }

    /// [`World::take`] with a virtual-time watchdog: returns `None` when
    /// no matching message has been delivered by `deadline` (absolute
    /// virtual ns). The deterministic timer is a scheduler feature, and
    /// crash detection is what needs it.
    pub(crate) fn take_deadline(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        now: u64,
        deadline: u64,
    ) -> Option<Msg> {
        assert!(
            crate::sched::scheduler_active_for(self),
            "recv_timeout outside the rank runtime (ranks only run inside flexio_sim::run)"
        );
        loop {
            if let Some(m) = Self::pop_queued(&self.mailboxes[dst], src, tag) {
                return Some(m);
            }
            match crate::sched::park_for_recv(self, dst, src, tag, now, Some(deadline)) {
                crate::sched::ParkWake::Delivered(m) => return Some(m),
                crate::sched::ParkWake::Spurious => continue,
                // Re-check once: a delivery racing the timer entry would
                // have been queued, not handed off.
                crate::sched::ParkWake::TimedOut => {
                    return Self::pop_queued(&self.mailboxes[dst], src, tag)
                }
            }
        }
    }

    /// Pop the head of `(src, tag)` if present, removing the queue when
    /// that drains it (drained queues are removed so unique collective
    /// tags can't grow the map without bound).
    fn pop_queued(mb: &Mailbox, src: usize, tag: u64) -> Option<Msg> {
        let mut queues = mb.queues.lock().unwrap();
        if let Entry::Occupied(mut e) = queues.entry((src, tag)) {
            let m = e.get_mut().pop_front().expect("empty queue left in mailbox map");
            if e.get().is_empty() {
                e.remove();
            }
            return Some(m);
        }
        None
    }
}

/// Run `f` on every rank of a fresh world and return the per-rank results
/// in rank order. Panics in any rank propagate. Uses
/// [`Backend::from_env`]: the sequential event loop unless
/// `FLEXIO_SIM_SHARDS` requests a pool.
pub fn run<R, F>(nprocs: usize, cost: CostModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    run_on(Backend::from_env(), nprocs, cost, f)
}

/// [`run`] on an explicitly chosen backend.
pub fn run_on<R, F>(backend: Backend, nprocs: usize, cost: CostModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    assert!(
        Backend::event_loop_supported(),
        "the flexio-sim rank runtime requires x86_64 stackful fibers \
         (the thread-per-rank fallback was retired)"
    );
    let world = World::new(nprocs, cost);
    match backend {
        Backend::EventLoop => crate::sched::run_event_loop(world, f),
        Backend::Sharded(k) => crate::sched::run_pool(world, k, f),
    }
}

/// Run `f` on every rank of a fresh world carrying a crash-stop schedule:
/// each `(rank, at_ns)` pair kills that rank at its first
/// [`Rank::maybe_crash`] check at or past `at_ns` of virtual time.
/// Crashed ranks return `None`; survivors return `Some`. Uses
/// [`Backend::from_env`].
///
/// [`Rank::maybe_crash`]: crate::rank::Rank::maybe_crash
pub fn run_crashable<R, F>(
    nprocs: usize,
    cost: CostModel,
    crashes: &[(usize, u64)],
    f: F,
) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    run_crashable_on(Backend::from_env(), nprocs, cost, crashes, f)
}

/// [`run_crashable`] on an explicitly chosen backend.
pub fn run_crashable_on<R, F>(
    backend: Backend,
    nprocs: usize,
    cost: CostModel,
    crashes: &[(usize, u64)],
    f: F,
) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    assert!(
        Backend::event_loop_supported(),
        "crash-stop simulation requires the fiber rank runtime (x86_64)"
    );
    let world = World::with_crashes(nprocs, cost, crashes);
    match backend {
        Backend::EventLoop => crate::sched::run_event_loop_partial(world, f),
        Backend::Sharded(k) => crate::sched::run_pool_partial(world, k, None, f),
    }
}

/// Determinism-harness entry: [`run`] on a `shards`-wide pool whose
/// spawned host threads start with a pseudo-random stagger of up to
/// `max_jitter_us` wall microseconds (derived from `seed`), and whose
/// shard condvars are flooded with unrequested notifies for the whole
/// run (spurious wakeups far denser than any OS produces), deliberately
/// perturbing host scheduling. The result must still be bit-identical to
/// [`Backend::EventLoop`] — that is the pool's whole contract — so this
/// exists for tests to prove it under hostile interleavings.
pub fn run_jittered<R, F>(
    nprocs: usize,
    cost: CostModel,
    shards: usize,
    seed: u64,
    max_jitter_us: u64,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    assert!(
        Backend::event_loop_supported(),
        "the flexio-sim rank runtime requires x86_64 stackful fibers"
    );
    let world = World::new(nprocs, cost);
    crate::sched::run_pool_partial(world, shards, Some((seed, max_jitter_us.saturating_mul(1000))), f)
        .into_iter()
        .map(|r| r.expect("rank finished without a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_rank_order() {
        let out = run(4, CostModel::free(), |r| r.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn sharded_run_returns_rank_order() {
        for k in [1, 2, 3, 7] {
            let out = run_on(Backend::Sharded(k), 4, CostModel::free(), |r| r.rank() * 10);
            assert_eq!(out, vec![0, 10, 20, 30], "k={k}");
        }
    }

    #[test]
    fn jittered_pool_matches_event_loop() {
        let ev = run(5, CostModel::default(), |r| (r.now(), r.allreduce_sum(r.rank() as u64)));
        for seed in 0..3u64 {
            let j = run_jittered(5, CostModel::default(), 3, seed, 200, |r| {
                (r.now(), r.allreduce_sum(r.rank() as u64))
            });
            assert_eq!(ev, j, "seed={seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::new(0, CostModel::free());
    }
}
