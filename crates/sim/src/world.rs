//! The shared world: mailboxes, backend selection, rank dispatch.

use crate::cost::CostModel;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload raised by [`crate::rank::Rank::maybe_crash`] when a rank
/// reaches its scheduled crash time: the event loop recognizes it, marks
/// the rank dead (reaping its mailbox), and keeps driving the survivors —
/// the simulation analogue of a crash-stop process failure.
pub(crate) struct CrashStop;

/// Which rank runtime drives a world's ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One host thread drives every rank as a cooperatively-scheduled
    /// fiber over virtual time, lowest clock first (deterministic by
    /// construction; supports thousands of ranks per process). The
    /// default wherever supported.
    EventLoop,
    /// One OS thread per rank, blocking on `Condvar` mailboxes — the
    /// original runtime, kept as a transitional escape hatch
    /// (`FLEXIO_SIM_THREADS=1`) and as the fallback on architectures
    /// without fiber support.
    Threads,
}

impl Backend {
    /// The backend `run` uses: the event loop, unless `FLEXIO_SIM_THREADS`
    /// is set to `1`/`true` or the architecture lacks fiber support.
    pub fn from_env() -> Backend {
        if !Backend::event_loop_supported() {
            return Backend::Threads;
        }
        match std::env::var("FLEXIO_SIM_THREADS") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Backend::Threads,
            _ => Backend::EventLoop,
        }
    }

    /// Whether the event-loop backend is available on this build target
    /// (the fiber layer is x86_64-only).
    pub fn event_loop_supported() -> bool {
        cfg!(target_arch = "x86_64")
    }
}

/// A message in flight: payload plus the virtual time it becomes available
/// at the receiver.
#[derive(Debug)]
pub(crate) struct Msg {
    pub data: Vec<u8>,
    pub avail_at: u64,
}

/// Multiply-rotate hasher for the mailbox queue map. The keys are small
/// fixed-size `(src, tag)` pairs from trusted (in-process) senders, and
/// every message pays two to three lookups — SipHash was a measurable
/// slice of the per-message cost at host_scale rank counts.
#[derive(Default)]
pub(crate) struct TagHasher(u64);

impl Hasher for TagHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        // Fibonacci-style multiply spreads entropy into the high bits;
        // the rotate brings it back down for the table index.
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(26);
    }
}

type QueueMap = HashMap<(usize, u64), VecDeque<Msg>, BuildHasherDefault<TagHasher>>;

#[derive(Default)]
pub(crate) struct MailboxInner {
    pub queues: QueueMap,
    /// The `(src, tag)` queue the owning rank is blocked on, if any —
    /// lets `deliver` wake exactly the receiver whose queue it filled
    /// (`notify_one`) instead of herding every sleeper with `notify_all`.
    /// Threaded backend only; the event loop tracks parked ranks itself.
    pub waiting_for: Option<(usize, u64)>,
}

/// One rank's incoming-message store.
pub(crate) struct Mailbox {
    pub inner: Mutex<MailboxInner>,
    pub cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox { inner: Mutex::new(MailboxInner::default()), cv: Condvar::new() }
    }
}

/// The shared state of a simulated MPI world.
pub struct World {
    pub(crate) nprocs: usize,
    pub(crate) cost: CostModel,
    pub(crate) mailboxes: Vec<Mailbox>,
    /// Scheduled crash-stop time per rank, virtual ns (`u64::MAX` =
    /// never). Checked by [`crate::rank::Rank::maybe_crash`].
    pub(crate) crash_at: Vec<u64>,
    /// Ranks that have crash-stopped: deliveries to them are dropped.
    pub(crate) dead: Vec<AtomicBool>,
}

impl World {
    /// Create a world of `nprocs` ranks with the given cost model.
    pub fn new(nprocs: usize, cost: CostModel) -> Arc<World> {
        Self::with_crashes(nprocs, cost, &[])
    }

    /// [`World::new`] plus a crash-stop schedule: each `(rank, at_ns)`
    /// entry kills that rank's fiber at its first [`Rank::maybe_crash`]
    /// check at or past `at_ns` of virtual time.
    ///
    /// [`Rank::maybe_crash`]: crate::rank::Rank::maybe_crash
    pub fn with_crashes(nprocs: usize, cost: CostModel, crashes: &[(usize, u64)]) -> Arc<World> {
        assert!(nprocs > 0, "world needs at least one rank");
        let mut crash_at = vec![u64::MAX; nprocs];
        for &(r, at) in crashes {
            assert!(r < nprocs, "crash rank {r} out of range for {nprocs} ranks");
            crash_at[r] = crash_at[r].min(at);
        }
        Arc::new(World {
            nprocs,
            cost,
            mailboxes: (0..nprocs).map(|_| Mailbox::new()).collect(),
            crash_at,
            dead: (0..nprocs).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// The scheduled crash time of `rank` (`u64::MAX` = never).
    pub(crate) fn crash_time(&self, rank: usize) -> u64 {
        self.crash_at[rank]
    }

    /// Whether `rank` has crash-stopped.
    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::Relaxed)
    }

    /// Mark `rank` dead and drop everything queued in its mailbox, so the
    /// scheduler's deadlock diagnostics and memory footprint never carry
    /// already-dead ranks.
    pub(crate) fn reap_rank(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Relaxed);
        let mut inner = self.mailboxes[rank].inner.lock().unwrap();
        inner.queues.clear();
        inner.waiting_for = None;
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The world's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    pub(crate) fn deliver(&self, dst: usize, src: usize, tag: u64, msg: Msg) {
        // Messages to a crash-stopped rank fall on the floor, exactly like
        // packets to a dead host.
        if self.is_dead(dst) {
            return;
        }
        // Event-loop fast path: a receiver already parked on exactly
        // `(src, tag)` gets the message handed to it directly — on the
        // single host thread its queue is provably empty, so FIFO order
        // holds and the map and lock are skipped entirely.
        let Some(msg) = crate::sched::try_handoff(self, dst, src, tag, msg) else {
            return;
        };
        let mb = &self.mailboxes[dst];
        let mut inner = mb.inner.lock().unwrap();
        inner.queues.entry((src, tag)).or_default().push_back(msg);
        if inner.waiting_for == Some((src, tag)) {
            // Threaded backend: wake exactly the rank whose queue this
            // filled. (Each mailbox has one owner, so one sleeper.)
            mb.cv.notify_one();
        }
    }

    /// Pop the next message from `(src, tag)` for rank `dst`, parking the
    /// caller until one arrives. `now` is the receiver's virtual clock —
    /// its wake-up priority under the event-loop backend.
    pub(crate) fn take(&self, dst: usize, src: usize, tag: u64, now: u64) -> Msg {
        if crate::sched::event_loop_active_for(self) {
            loop {
                if let Some(m) = Self::pop_queued(&self.mailboxes[dst], src, tag) {
                    return m;
                }
                // Parking resumes with the message in hand when the
                // delivery matched (the common case); a spurious resume
                // re-checks the queue.
                match crate::sched::park_for_recv(self, dst, src, tag, now, None) {
                    crate::sched::ParkWake::Delivered(m) => return m,
                    crate::sched::ParkWake::Spurious => continue,
                    crate::sched::ParkWake::TimedOut => {
                        unreachable!("deadline-free park cannot time out")
                    }
                }
            }
        }
        let mb = &self.mailboxes[dst];
        let mut inner = mb.inner.lock().unwrap();
        loop {
            if let Entry::Occupied(mut e) = inner.queues.entry((src, tag)) {
                // The queue exists iff it has a message (drained queues
                // are removed so unique collective tags can't grow the
                // map without bound).
                let m = e.get_mut().pop_front().expect("empty queue left in mailbox map");
                if e.get().is_empty() {
                    e.remove();
                }
                inner.waiting_for = None;
                return m;
            }
            // Publish what we're blocked on *before* releasing the lock
            // (cv.wait is atomic), so a concurrent deliver can't miss us.
            inner.waiting_for = Some((src, tag));
            inner = mb.cv.wait(inner).unwrap();
        }
    }

    /// [`World::take`] with a virtual-time watchdog: returns `None` when
    /// no matching message has been delivered by `deadline` (absolute
    /// virtual ns). Event-loop backend only — the deterministic timer is
    /// a scheduler feature, and crash detection is what needs it.
    pub(crate) fn take_deadline(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        now: u64,
        deadline: u64,
    ) -> Option<Msg> {
        assert!(
            crate::sched::event_loop_active_for(self),
            "recv_timeout requires the event-loop backend (unset FLEXIO_SIM_THREADS)"
        );
        loop {
            if let Some(m) = Self::pop_queued(&self.mailboxes[dst], src, tag) {
                return Some(m);
            }
            match crate::sched::park_for_recv(self, dst, src, tag, now, Some(deadline)) {
                crate::sched::ParkWake::Delivered(m) => return Some(m),
                crate::sched::ParkWake::Spurious => continue,
                // Re-check once: a delivery racing the timer entry would
                // have been queued, not handed off.
                crate::sched::ParkWake::TimedOut => {
                    return Self::pop_queued(&self.mailboxes[dst], src, tag)
                }
            }
        }
    }

    /// Pop the head of `(src, tag)` if present, removing the queue when
    /// that drains it.
    fn pop_queued(mb: &Mailbox, src: usize, tag: u64) -> Option<Msg> {
        let mut inner = mb.inner.lock().unwrap();
        if let Entry::Occupied(mut e) = inner.queues.entry((src, tag)) {
            let m = e.get_mut().pop_front().expect("empty queue left in mailbox map");
            if e.get().is_empty() {
                e.remove();
            }
            return Some(m);
        }
        None
    }
}

/// Run `f` on every rank of a fresh world and return the per-rank results
/// in rank order. Panics in any rank propagate. Uses
/// [`Backend::from_env`]: the event loop unless `FLEXIO_SIM_THREADS=1`.
pub fn run<R, F>(nprocs: usize, cost: CostModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    run_on(Backend::from_env(), nprocs, cost, f)
}

/// [`run`] on an explicitly chosen backend. `Backend::EventLoop` falls
/// back to threads where unsupported (see [`Backend::event_loop_supported`]).
pub fn run_on<R, F>(backend: Backend, nprocs: usize, cost: CostModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    let world = World::new(nprocs, cost);
    match backend {
        Backend::EventLoop if Backend::event_loop_supported() => {
            crate::sched::run_event_loop(world, f)
        }
        _ => run_threaded(world, f),
    }
}

/// Run `f` on every rank of a fresh world carrying a crash-stop schedule:
/// each `(rank, at_ns)` pair kills that rank at its first
/// [`Rank::maybe_crash`] check at or past `at_ns` of virtual time.
/// Crashed ranks return `None`; survivors return `Some`. Requires the
/// event-loop backend (the only runtime that can reap a dead fiber and
/// keep the world running); panics where it is unsupported.
///
/// [`Rank::maybe_crash`]: crate::rank::Rank::maybe_crash
pub fn run_crashable<R, F>(
    nprocs: usize,
    cost: CostModel,
    crashes: &[(usize, u64)],
    f: F,
) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    assert!(
        Backend::event_loop_supported(),
        "crash-stop simulation requires the event-loop backend"
    );
    let world = World::with_crashes(nprocs, cost, crashes);
    crate::sched::run_event_loop_partial(world, f)
}

fn run_threaded<R, F>(world: Arc<World>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::rank::Rank) -> R + Sync,
{
    let nprocs = world.nprocs;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nprocs)
            .map(|r| {
                let world = Arc::clone(&world);
                let f = &f;
                s.spawn(move || {
                    let rank = crate::rank::Rank::new(world, r);
                    f(&rank)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_rank_order() {
        let out = run(4, CostModel::free(), |r| r.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::new(0, CostModel::free());
    }
}
