//! A minimal in-repo property-testing harness.
//!
//! The external `proptest` crate is unavailable in offline builds (see the
//! `proptests` feature gate), so suites that must always run use this
//! harness instead: random cases from the deterministic
//! [`XorShift64Star`], a fixed default seed so CI is reproducible, and a
//! proptest-compatible regressions file (`cc <hex-seed>` lines) whose
//! cases replay before any fresh ones.
//!
//! Environment knobs (both optional):
//!
//! * `PROPTEST_CASES` — number of fresh cases per property (default 32;
//!   `scripts/verify.sh --thorough` sets 512);
//! * `FLEXIO_PROP_SEED` — base seed, decimal or `0x`-prefixed hex. The
//!   default is a fixed constant, so runs are reproducible unless a seed
//!   is supplied explicitly.
//!
//! On failure the harness reports the case seed as a ready-to-commit
//! `cc <seed>` regressions line together with the generated value, then
//! greedily *shrinks*: the same seed is replayed at rising shrink levels
//! (every PRNG draw right-shifted, so `base + draw % range` generators
//! yield fewer ranks, fewer regions, smaller sizes), and the deepest
//! still-failing derived case is reported as a `cc <seed> s<level>` line —
//! the regressions format accepts the optional `s<level>` token, so the
//! shrunk case replays verbatim. Finally the panic is re-raised so the
//! test still fails normally.

use crate::prng::{XorShift64Star, MAX_SHRINK};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed used when `FLEXIO_PROP_SEED` is not set: FNV-1a of
/// "flexio-prop" — stable, and obviously arbitrary.
pub const DEFAULT_SEED: u64 = default_seed();

const fn default_seed() -> u64 {
    let name = b"flexio-prop";
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < name.len() {
        h ^= name[i] as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    h
}

/// One property's runner: case count, base seed, and regression cases
/// (`(seed, shrink level)` pairs).
#[derive(Debug, Clone)]
pub struct Runner {
    name: &'static str,
    cases: u64,
    seed: u64,
    regressions: Vec<(u64, u32)>,
}

/// Shrink levels tried on failure, shallowest first: each level right-
/// shifts every PRNG draw by that many bits, so the derived cases get
/// monotonically simpler. The greedy pass keeps the deepest level that
/// still fails.
const SHRINK_LEVELS: [u32; 6] = [16, 32, 48, 56, 60, MAX_SHRINK];

/// Parse one regressions-file line: `cc <hex-seed> [s<level>]`, with
/// proptest-style trailing comments tolerated. Returns `None` for
/// non-`cc` lines (comments, blanks).
fn parse_regression_line(line: &str) -> Option<(u64, u32)> {
    let rest = line.trim().strip_prefix("cc ")?;
    let mut toks = rest.split_whitespace();
    let tok = toks.next().unwrap_or("");
    let seed = u64::from_str_radix(tok.trim_start_matches("0x"), 16)
        .unwrap_or_else(|_| panic!("bad regression seed {tok:?}"));
    let level = match toks.next().and_then(|t| t.strip_prefix('s')) {
        Some(lvl) => lvl
            .parse()
            .unwrap_or_else(|_| panic!("bad regression shrink level in line {line:?}")),
        None => 0,
    };
    Some((seed, level))
}

/// RAII guard that silences the global panic hook while shrink attempts
/// replay the failing property (each attempt panics by design; dozens of
/// backtraces would bury the report). The previous hook is restored on
/// drop. The hook is process-global, so a *concurrently* failing test in
/// the same binary could print nothing during this window — a benign race
/// on an already-failing run.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct QuietPanics(Option<PanicHook>);

impl QuietPanics {
    fn install() -> Self {
        let old = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics(Some(old))
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(old) = self.0.take() {
            std::panic::set_hook(old);
        }
    }
}

/// splitmix64: decorrelates (base seed, property name, case index) into
/// per-case seeds so neighbouring cases share no PRNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    let v = v.trim();
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("{key} must be a decimal or 0x-hex integer, got {v:?}"),
    }
}

impl Runner {
    /// A runner for the property called `name`, honouring
    /// `PROPTEST_CASES` and `FLEXIO_PROP_SEED`.
    pub fn new(name: &'static str) -> Self {
        Runner {
            name,
            cases: env_u64("PROPTEST_CASES").unwrap_or(32),
            seed: env_u64("FLEXIO_PROP_SEED").unwrap_or(DEFAULT_SEED),
            regressions: Vec::new(),
        }
    }

    /// Override the fresh-case count (tests that are expensive per case).
    pub fn cases(mut self, cases: u64) -> Self {
        self.cases = env_u64("PROPTEST_CASES").unwrap_or(cases);
        self
    }

    /// Parse a proptest-style regressions file's *contents* (commit the
    /// file and pass it via `include_str!`): every `cc <seed>` line adds
    /// one case replayed before fresh generation, exactly like proptest's
    /// own `.proptest-regressions` handling. An optional `s<level>` token
    /// after the seed replays the case at that shrink level (the harness
    /// emits such lines when a shrunk derived case still fails).
    pub fn regressions(mut self, file_contents: &str) -> Self {
        self.regressions.extend(file_contents.lines().filter_map(parse_regression_line));
        self
    }

    /// Run the property: generate a case from each seed with `gen`, check
    /// it with `prop` (a panic is a failure). Regression cases run first,
    /// then `cases` fresh ones derived from the base seed and the
    /// property name. On failure, greedily shrink before re-raising.
    pub fn run<T: std::fmt::Debug>(
        &self,
        generate: impl Fn(&mut XorShift64Star) -> T,
        prop: impl Fn(&T),
    ) {
        let name_mix = fnv1a(self.name.as_bytes());
        let fresh = (0..self.cases).map(|i| (splitmix64(self.seed ^ name_mix ^ splitmix64(i)), 0));
        for (kind, (case_seed, level)) in self
            .regressions
            .iter()
            .copied()
            .map(|s| ("regression", s))
            .chain(fresh.map(|s| ("fresh", s)))
        {
            let mut rng = XorShift64Star::with_shrink(case_seed, level);
            let value = generate(&mut rng);
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| prop(&value))) {
                let line = if level == 0 {
                    format!("cc {case_seed:016x}")
                } else {
                    format!("cc {case_seed:016x} s{level}")
                };
                eprintln!(
                    "property '{}' failed on {kind} case seed (add to the \
                     .proptest-regressions file to pin):\n{line}\nvalue: {value:#?}",
                    self.name
                );
                match shrink(&generate, &prop, case_seed, level) {
                    Some((lvl, shrunk_value, shrunk_panic)) => {
                        eprintln!(
                            "shrunk: seed {case_seed:016x} still fails at shrink level {lvl} \
                             (simpler derived case) — pin this line instead:\n\
                             cc {case_seed:016x} s{lvl}\nvalue: {shrunk_value:#?}"
                        );
                        resume_unwind(shrunk_panic);
                    }
                    None => resume_unwind(panic),
                }
            }
        }
    }
}

/// Greedy shrink: replay `seed` at every level deeper than `from_level`
/// and keep the deepest derived case that still fails the property.
/// Generation itself may panic at deep levels (degenerate parameters);
/// such levels are skipped, not reported.
#[allow(clippy::type_complexity)]
fn shrink<T: std::fmt::Debug>(
    generate: &impl Fn(&mut XorShift64Star) -> T,
    prop: &impl Fn(&T),
    seed: u64,
    from_level: u32,
) -> Option<(u32, T, Box<dyn std::any::Any + Send>)> {
    let _quiet = QuietPanics::install();
    let mut best = None;
    for &level in SHRINK_LEVELS.iter().filter(|&&l| l > from_level) {
        let Ok(value) = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = XorShift64Star::with_shrink(seed, level);
            generate(&mut rng)
        })) else {
            continue;
        };
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| prop(&value))) {
            best = Some((level, value, panic));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn regression_lines_parse_with_optional_level() {
        let file = "# comment\ncc 00ff s8\n\ncc 0x0abc\ncc 12 s60 # trailing note\n";
        let r = Runner::new("parse_test").regressions(file);
        assert_eq!(r.regressions, vec![(0xff, 8), (0xabc, 0), (0x12, 60)]);
    }

    #[test]
    #[should_panic(expected = "bad regression shrink level")]
    fn malformed_shrink_level_rejected() {
        parse_regression_line("cc 00ff sdeep");
    }

    #[test]
    fn failing_property_is_shrunk_to_a_simpler_case() {
        // The property always fails; the generator records every derived
        // case, so after the run we can see the greedy pass produced
        // progressively simpler cases from the same seed.
        let _quiet = QuietPanics::install();
        let seen = Mutex::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner { name: "shrink_test", cases: 1, seed: 1234, regressions: Vec::new() }.run(
                |rng| {
                    let v = 2 + rng.next_u64() % 1000;
                    seen.lock().unwrap().push(v);
                    v
                },
                |_| panic!("always fails"),
            );
        }));
        assert!(result.is_err(), "a failing property must still fail");
        let seen = seen.into_inner().unwrap();
        // Original case + one per shrink level; the deepest level bounds
        // the draw to [0, 4), so the final derived case is near-minimal.
        assert_eq!(seen.len(), 1 + SHRINK_LEVELS.len());
        assert!(*seen.last().unwrap() <= 2 + 3, "deepest case must be near-minimal: {seen:?}");
    }

    #[test]
    fn shrunk_regression_line_replays_at_its_level() {
        // A `cc <seed> s<level>` line must regenerate the *shrunk* case.
        let seen = Mutex::new(Vec::new());
        Runner { name: "replay_test", cases: 0, seed: 0, regressions: vec![(1234, 60)] }.run(
            |rng| {
                let v = rng.next_u64() % 1000;
                seen.lock().unwrap().push(v);
                v
            },
            |_| {},
        );
        let direct = XorShift64Star::with_shrink(1234, 60).next_u64() % 1000;
        assert_eq!(*seen.lock().unwrap(), vec![direct]);
    }

    #[test]
    fn passing_property_never_shrinks() {
        let count = Mutex::new(0u64);
        Runner { name: "pass_test", cases: 8, seed: 7, regressions: Vec::new() }.run(
            |rng| rng.next_u64(),
            |_| {
                *count.lock().unwrap() += 1;
            },
        );
        assert_eq!(*count.lock().unwrap(), 8);
    }
}
