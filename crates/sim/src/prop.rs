//! A minimal in-repo property-testing harness.
//!
//! The external `proptest` crate is unavailable in offline builds (see the
//! `proptests` feature gate), so suites that must always run use this
//! harness instead: random cases from the deterministic
//! [`XorShift64Star`], a fixed default seed so CI is reproducible, and a
//! proptest-compatible regressions file (`cc <hex-seed>` lines) whose
//! cases replay before any fresh ones.
//!
//! Environment knobs (both optional):
//!
//! * `PROPTEST_CASES` — number of fresh cases per property (default 32;
//!   `scripts/verify.sh --thorough` sets 512);
//! * `FLEXIO_PROP_SEED` — base seed, decimal or `0x`-prefixed hex. The
//!   default is a fixed constant, so runs are reproducible unless a seed
//!   is supplied explicitly.
//!
//! On failure the harness reports the case seed as a ready-to-commit
//! `cc <seed>` regressions line together with the generated value, then
//! re-raises the panic so the test still fails normally.

use crate::prng::XorShift64Star;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed used when `FLEXIO_PROP_SEED` is not set: FNV-1a of
/// "flexio-prop" — stable, and obviously arbitrary.
pub const DEFAULT_SEED: u64 = default_seed();

const fn default_seed() -> u64 {
    let name = b"flexio-prop";
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < name.len() {
        h ^= name[i] as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    h
}

/// One property's runner: case count, base seed, and regression seeds.
#[derive(Debug, Clone)]
pub struct Runner {
    name: &'static str,
    cases: u64,
    seed: u64,
    regressions: Vec<u64>,
}

/// splitmix64: decorrelates (base seed, property name, case index) into
/// per-case seeds so neighbouring cases share no PRNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    let v = v.trim();
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("{key} must be a decimal or 0x-hex integer, got {v:?}"),
    }
}

impl Runner {
    /// A runner for the property called `name`, honouring
    /// `PROPTEST_CASES` and `FLEXIO_PROP_SEED`.
    pub fn new(name: &'static str) -> Self {
        Runner {
            name,
            cases: env_u64("PROPTEST_CASES").unwrap_or(32),
            seed: env_u64("FLEXIO_PROP_SEED").unwrap_or(DEFAULT_SEED),
            regressions: Vec::new(),
        }
    }

    /// Override the fresh-case count (tests that are expensive per case).
    pub fn cases(mut self, cases: u64) -> Self {
        self.cases = env_u64("PROPTEST_CASES").unwrap_or(cases);
        self
    }

    /// Parse a proptest-style regressions file's *contents* (commit the
    /// file and pass it via `include_str!`): every `cc <seed>` line adds
    /// one case replayed before fresh generation, exactly like proptest's
    /// own `.proptest-regressions` handling.
    pub fn regressions(mut self, file_contents: &str) -> Self {
        for line in file_contents.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("cc ") {
                let tok = rest.split_whitespace().next().unwrap_or("");
                let seed = u64::from_str_radix(tok.trim_start_matches("0x"), 16)
                    .unwrap_or_else(|_| panic!("bad regression seed {tok:?}"));
                self.regressions.push(seed);
            }
        }
        self
    }

    /// Run the property: generate a case from each seed with `gen`, check
    /// it with `prop` (a panic is a failure). Regression cases run first,
    /// then `cases` fresh ones derived from the base seed and the
    /// property name.
    pub fn run<T: std::fmt::Debug>(
        &self,
        generate: impl Fn(&mut XorShift64Star) -> T,
        prop: impl Fn(&T),
    ) {
        let name_mix = fnv1a(self.name.as_bytes());
        let fresh = (0..self.cases).map(|i| splitmix64(self.seed ^ name_mix ^ splitmix64(i)));
        for (kind, case_seed) in self
            .regressions
            .iter()
            .copied()
            .map(|s| ("regression", s))
            .chain(fresh.map(|s| ("fresh", s)))
        {
            let mut rng = XorShift64Star::new(case_seed);
            let value = generate(&mut rng);
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| prop(&value))) {
                eprintln!(
                    "property '{}' failed on {kind} case seed (add to the \
                     .proptest-regressions file to pin):\ncc {case_seed:016x}\nvalue: {value:#?}",
                    self.name
                );
                resume_unwind(panic);
            }
        }
    }
}
