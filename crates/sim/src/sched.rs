//! The fiber rank runtime: every rank of a world runs as a cooperatively-
//! scheduled fiber over virtual time, driven either by one host thread
//! (the sequential event loop) or by a **sharded pool** of host threads
//! that reproduces the sequential execution bit for bit.
//!
//! Ranks are resumable state machines (stackful fibers, [`crate::fiber`])
//! parked on their one blocking primitive — a message receive that found
//! its `(src, tag)` queue empty ([`World::take`]). The scheduler always
//! resumes the runnable rank with the **lowest virtual clock**, rank id as
//! tie-break, so host execution order is a pure function of the workload:
//! no OS wakeup races, no `Condvar` herds, bit-identical clocks and
//! counters on every run.
//!
//! Why lowest-clock-first matters: message payloads and per-rank charges
//! never depend on host order (per-`(src, tag)` queues are single-producer
//! FIFO), but operations against shared stateful resources — PFS OSTs with
//! ratcheting service clocks, seeded fault draws — observe the *order* in
//! which rank segments execute. Lowest-clock-first pins that order down to
//! a pure function of the workload, which is what turns "deterministic
//! except for device-queueing races" into "deterministic".
//!
//! # The sharded pool (`Backend::Sharded`)
//!
//! Ranks are partitioned by id into contiguous blocks, one per shard; each
//! shard owns a host thread, a local lowest-clock-first ready heap, and
//! the fiber slots of its ranks. Because the simulation has **zero
//! lookahead** (a segment resuming at virtual time `t` may issue PFS
//! operations timestamped far past `t`, and OST clocks ratchet on arrival
//! order), no shard may run a segment while any other shard holds a
//! globally smaller `(clock, rank, kind)` key. The pool therefore runs an
//! **epoch barrier degenerate to one segment per epoch**: a shared
//! min-gate (one mutex) where every shard publishes the head of its heap,
//! and only the shard holding the global minimum may dispatch — exactly
//! the key the sequential loop would pop next. Execution is serialized;
//! what the shards parallelize is scheduler state (heaps, park bookkeeping,
//! fiber slots, inbox drains), which is also what bounds per-thread memory
//! at high rank counts. See DESIGN.md "Rank runtime" for the equivalence
//! induction.
//!
//! Cross-shard delivery cannot hand a message directly into a parked
//! fiber — the receiver's park state belongs to another host thread. The
//! sender instead consults a gate-protected **park mirror** (each shard
//! republishes its ranks' park state when it releases the baton), pushes
//! the message into the target shard's **inbox**, and lowers the target's
//! published min so the global argmin sees the wake. The target drains its
//! inbox at its next gate entry, before publishing. Same-shard deliveries
//! keep the sequential loop's lock-free direct-handoff fast path.
//!
//! Error handling: a panic in any rank force-unwinds every other live
//! fiber (their park points re-raise a private `ForcedUnwind` panic, so
//! destructors on fiber stacks run) and then propagates the original
//! payload from `run`. Under the pool, the first payload wins and every
//! shard unwinds its own fibers. A world where every live rank is parked
//! with no matching message in flight is reported as a deadlock with
//! identical diagnostics under both drivers.

use crate::fiber::{prepare, switch_stacks, Context, FiberStack, Payload};
use crate::rank::Rank;
use crate::world::{Msg, World};
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Default fiber stack size: 1 MiB of (lazily committed) address space.
const DEFAULT_STACK_BYTES: usize = 1 << 20;

/// Panic payload used to force parked fibers to unwind (running their
/// destructors) when another rank has panicked or the world deadlocked.
struct ForcedUnwind;

/// Heap-entry discriminant for wake entries (initial starts and handoff
/// resumes). Timer entries carry the park generation instead, which a
/// per-park increment keeps strictly below this.
const WAKE_ENTRY: u64 = u64::MAX;

/// A ready-heap key: `(virtual clock, global rank id, kind)`. Rank ids are
/// globally unique, so keys totally order across shards.
type Key = (u64, usize, u64);

/// How a park ended, as seen by `World::take`/`take_deadline`.
pub(crate) enum ParkWake {
    /// A delivery matching `(src, tag)` was handed directly to the parked
    /// receiver (the common case).
    Delivered(Msg),
    /// Resumed without a message; the caller re-checks its queue.
    Spurious,
    /// The park's virtual-time deadline fired with no delivery.
    TimedOut,
}

/// A rank parked in `World::take`: what it waits for and the virtual
/// clock it parked at (its wake-up priority).
#[derive(Clone, Copy)]
struct ParkedRecv {
    src: usize,
    tag: u64,
    clock: u64,
    /// This park's generation: a stale timer entry (from an earlier park
    /// of the same rank) no longer matches and is skipped on pop.
    gen: u64,
}

struct FiberSlot {
    stack: FiberStack,
    /// Saved context while the fiber is suspended (initially the fresh
    /// image from `fiber::prepare`).
    ctx: Context,
    /// Boxed so its address is stable for the initial register image.
    payload: Box<Payload>,
    done: bool,
}

/// A cross-shard delivery parked in the target shard's inbox: the sender
/// matched the receiver against the park mirror and consumed its entry;
/// the target completes the handoff (clear local park state, stash the
/// message, push the wake) when it next drains at the gate.
struct InboxDelivery {
    dst: usize,
    /// The receiver's park-time clock — its wake-up priority, exactly the
    /// key the sequential loop would have pushed.
    clock: u64,
    msg: Msg,
}

/// State behind the pool's min-gate mutex.
struct Gate {
    /// Head of each shard's ready heap as of its last gate visit. A
    /// running shard's entry stays at the key it is executing until it
    /// returns and republishes — but that alone does not fence the
    /// world, because the runner's own cross-shard deliveries can push
    /// smaller keys under other shards' mins; [`Gate::running`] does.
    mins: Vec<Option<Key>>,
    /// Pending cross-shard deliveries, per target shard.
    inboxes: Vec<Vec<InboxDelivery>>,
    /// The shard currently executing a dispatched segment (gate
    /// released). While `Some`, no other shard may dispatch: a
    /// cross-shard delivery can lower a sleeping shard's published min
    /// *below* the running shard's fenced key (park-time clocks routinely
    /// trail the global min), and `Condvar::wait` permits spurious
    /// wakeups — without this fence, a spuriously woken shard could win
    /// the argmin and race the in-flight segment on shared stateful
    /// resources (OST ratchets, fault draws).
    running: Option<usize>,
    /// Park mirror: every rank's park state as of its shard's last baton
    /// release. Consulted (and consumed) by cross-shard senders.
    parked: Vec<Option<ParkedRecv>>,
    /// Live (not finished, not crashed) ranks across the whole world.
    live: usize,
    /// Crash-stopped ranks across the whole world.
    crashed: usize,
    /// Set once: every shard must force-unwind its fibers and exit.
    unwinding: bool,
    /// Deadlock diagnostics, reported by the shard that detected it.
    deadlock: Option<String>,
    /// First rank panic payload; re-raised by the pool's caller.
    panic_payload: Option<Box<dyn Any + Send>>,
}

/// Shared coordination state of one pool run.
struct ShardShared {
    /// Partition parameters: shard `s` owns `base + (s < extra)` ranks,
    /// contiguous ascending (so `shard_of` is closed-form).
    base: usize,
    extra: usize,
    gate: Mutex<Gate>,
    /// One condvar per shard (all waiting on `gate`): a shard is notified
    /// when some other shard observed it holding the global minimum.
    cvs: Vec<Condvar>,
}

impl ShardShared {
    /// Which shard owns global rank `r`.
    fn shard_of(&self, r: usize) -> usize {
        let cut = self.extra * (self.base + 1);
        if r < cut {
            r / (self.base + 1)
        } else {
            self.extra + (r - cut) / self.base
        }
    }
}

/// Index of the shard holding the globally smallest published key.
fn global_argmin(mins: &[Option<Key>]) -> Option<usize> {
    let mut best: Option<(Key, usize)> = None;
    for (s, m) in mins.iter().enumerate() {
        if let Some(k) = *m {
            if best.is_none_or(|(bk, _)| k < bk) {
                best = Some((k, s));
            }
        }
    }
    best.map(|(_, s)| s)
}

/// Per-shard scheduler state. The sequential event loop is the one-shard
/// special case (`shared: None`, owning ranks `0..nprocs`); the pool runs
/// one of these per host thread over a contiguous rank block. All
/// rank-indexed vectors are local (`global rank - lo`); ready-heap keys
/// carry global rank ids so they order identically to the sequential heap.
struct Sched {
    /// Identity of the world this scheduler drives (nested `run` calls
    /// swap the active scheduler; the pointer check keeps a foreign
    /// world's primitives from parking on the wrong one).
    world: *const World,
    /// Full world size (diagnostics only).
    nprocs: usize,
    /// This shard's id within the pool (0 for the sequential driver).
    shard: usize,
    /// First global rank id this shard owns.
    lo: usize,
    stack_bytes: usize,
    current: usize,
    /// Locally owned ranks still live (the whole world for the solo
    /// driver; the pool tracks the global count in [`Gate::live`]).
    live: usize,
    unwinding: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Runnable ranks and pending park timers, ordered by `(virtual time,
    /// global rank id)` ascending. The third element distinguishes wake
    /// entries (`WAKE_ENTRY`) from timer entries (the park's generation);
    /// at an equal `(time, rank)` the timer pops first and is discarded
    /// as stale if the handoff already cleared the park.
    ready: BinaryHeap<Reverse<Key>>,
    /// Per-rank park state; `Some` while blocked in `World::take`.
    waiting: Vec<Option<ParkedRecv>>,
    /// Per-rank park generation counter (see [`ParkedRecv::gen`]).
    park_seq: Vec<u64>,
    /// Set when a park's deadline fired; consumed by the resumed fiber.
    timed_out: Vec<bool>,
    /// Ranks that crash-stopped ([`crate::world::CrashStop`]); the pool
    /// also accumulates deltas to fold into the gate at baton release.
    crashed: usize,
    crashed_delta: usize,
    finished_delta: usize,
    /// Global rank ids whose park state changed during the segment just
    /// run; their mirror entries are republished at baton release. Unused
    /// (never pushed) by the solo driver.
    dirty: Vec<usize>,
    /// Direct-handoff slot per rank: a delivery matching a parked
    /// receiver's `(src, tag)` lands here, bypassing the mailbox map and
    /// its lock entirely (same host thread, so the queue is provably
    /// empty whenever the receiver is parked).
    handoff: Vec<Option<Msg>>,
    slots: Vec<FiberSlot>,
    host_ctx: Context,
    /// Pool coordination state; `None` for the solo driver.
    shared: Option<Arc<ShardShared>>,
}

std::thread_local! {
    /// The scheduler currently executing on this thread (null outside a
    /// `run_*` frame). Each pool host thread sees only its own shard.
    static ACTIVE: Cell<*mut Sched> = const { Cell::new(std::ptr::null_mut()) };
}

fn stack_bytes_from_env() -> usize {
    std::env::var("FLEXIO_SIM_STACK_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(DEFAULT_STACK_BYTES)
}

/// True when the calling code is a fiber of a scheduler driving `world`.
pub(crate) fn scheduler_active_for(world: &World) -> bool {
    let el = ACTIVE.with(|a| a.get());
    // SAFETY: a non-null ACTIVE points at the Sched owned by the run
    // frame further up this same thread's (host) stack.
    !el.is_null() && std::ptr::eq(unsafe { (*el).world }, world)
}

/// Park the current rank until a message for `(src, tag)` is delivered,
/// or — when `deadline` (absolute virtual ns) is given — until that much
/// virtual time passes with no delivery. Called by `World::take`/
/// `take_deadline` after finding the queue empty; `now` is the rank's
/// virtual clock, which becomes its wake-up priority. The deadline is a
/// heap timer entry ordered with every other wake-up, so timeouts are as
/// deterministic as deliveries.
pub(crate) fn park_for_recv(
    world: &World,
    dst: usize,
    src: usize,
    tag: u64,
    now: u64,
    deadline: Option<u64>,
) -> ParkWake {
    let el = ACTIVE.with(|a| a.get());
    assert!(
        !el.is_null() && std::ptr::eq(unsafe { (*el).world }, world),
        "park_for_recv outside the owning scheduler"
    );
    // SAFETY: the owning host thread; no other code touches this Sched
    // between here and the switch (borrows end before switching).
    let (my, host, li) = unsafe {
        let el = &mut *el;
        if el.unwinding {
            // A destructor receiving during forced unwind: re-raise
            // rather than parking a fiber nobody will ever wake.
            panic_any(ForcedUnwind);
        }
        debug_assert_eq!(el.current, dst, "a rank may only take from its own mailbox");
        let li = dst - el.lo;
        el.park_seq[li] += 1;
        let gen = el.park_seq[li];
        el.waiting[li] = Some(ParkedRecv { src, tag, clock: now, gen });
        if el.shared.is_some() {
            el.dirty.push(dst);
        }
        if let Some(d) = deadline {
            el.ready.push(Reverse((d.max(now), dst, gen)));
        }
        (&mut el.slots[li].ctx as *mut Context, &el.host_ctx as *const Context, li)
    };
    // SAFETY: host_ctx holds the scheduler context that switched us in.
    unsafe { switch_stacks(my, host) };
    // Resumed: a matching message was handed off, the deadline fired, or
    // the world is being torn down and this fiber must unwind.
    // SAFETY: as above; the loop that resumed us is in `switch_stacks`.
    let el = unsafe { &mut *el };
    if el.unwinding {
        panic_any(ForcedUnwind);
    }
    if el.timed_out[li] {
        el.timed_out[li] = false;
        return ParkWake::TimedOut;
    }
    match el.handoff[li].take() {
        Some(m) => ParkWake::Delivered(m),
        None => ParkWake::Spurious,
    }
}

/// Delivery fast path: if `dst` is parked on exactly `(src, tag)`, hand
/// the message straight to it and mark it runnable at its park-time
/// clock. Same-shard receivers take the lock-free direct slot; receivers
/// on other shards go through the gate's park mirror and inbox (their
/// park state belongs to another host thread — the direct slot would be
/// a data race). Returns the message back when no such receiver is
/// parked (or no scheduler drives `world`); the caller then queues it.
pub(crate) fn try_handoff(world: &World, dst: usize, src: usize, tag: u64, msg: Msg) -> Option<Msg> {
    let el = ACTIVE.with(|a| a.get());
    if el.is_null() || !std::ptr::eq(unsafe { (*el).world }, world) {
        return Some(msg);
    }
    // SAFETY: the owning host thread, short borrow, no switch inside.
    let el = unsafe { &mut *el };
    if dst >= el.lo && dst < el.lo + el.slots.len() {
        if let Some(w) = el.waiting[dst - el.lo] {
            if w.src == src && w.tag == tag {
                el.waiting[dst - el.lo] = None;
                el.handoff[dst - el.lo] = Some(msg);
                el.ready.push(Reverse((w.clock, dst, WAKE_ENTRY)));
                if el.shared.is_some() {
                    el.dirty.push(dst);
                }
                return None;
            }
        }
        return Some(msg);
    }
    cross_shard_handoff(el, dst, src, tag, msg)
}

/// The cross-shard half of [`try_handoff`]: match `dst` against the park
/// mirror under the gate; on a hit, consume the mirror entry, queue the
/// delivery in the target shard's inbox, and lower the target's published
/// min so the global argmin already sees the wake (the target's own heap
/// learns of it when it drains the inbox at its next gate entry).
fn cross_shard_handoff(el: &Sched, dst: usize, src: usize, tag: u64, msg: Msg) -> Option<Msg> {
    let sh = el.shared.as_ref().expect("cross-shard delivery without a pool");
    let target = sh.shard_of(dst);
    debug_assert_ne!(target, el.shard, "local rank routed to the cross-shard path");
    let mut g = sh.gate.lock().unwrap();
    if let Some(w) = g.parked[dst] {
        if w.src == src && w.tag == tag {
            g.parked[dst] = None;
            let key = (w.clock, dst, WAKE_ENTRY);
            g.inboxes[target].push(InboxDelivery { dst, clock: w.clock, msg });
            if g.mins[target].is_none_or(|k| key < k) {
                g.mins[target] = Some(key);
            }
            return None;
        }
    }
    Some(msg)
}

/// Resume every live local fiber so it unwinds (running destructors) and
/// marks itself done. Park points re-raise `ForcedUnwind`; never-started
/// fibers skip their body. Requires ACTIVE to still point at `el`.
unsafe fn force_unwind_local(el: *mut Sched) {
    let count = unsafe {
        (*el).unwinding = true;
        (*el).slots.len()
    };
    for li in 0..count {
        // Scoped borrow: must end before the switch hands control to a
        // fiber that will re-borrow the scheduler from its own park point.
        let (host, fctx) = {
            // SAFETY: caller guarantees `el` outlives every fiber.
            let el = unsafe { &mut *el };
            if el.slots[li].done {
                continue;
            }
            el.current = el.lo + li;
            (&mut el.host_ctx as *mut Context, &el.slots[li].ctx as *const Context)
        };
        // SAFETY: fctx is a live suspended fiber (not done).
        unsafe { switch_stacks(host, fctx) };
        // SAFETY: host thread again; the fiber is parked or done.
        debug_assert!(
            unsafe { (&(*el).slots)[li].done },
            "forced unwind left local slot {li} live"
        );
    }
}

/// A per-rank result slot writable from the owning shard's host thread.
struct ResultCell<R>(UnsafeCell<Option<R>>);

// SAFETY: each cell is written by exactly one shard host thread (its
// rank's owner) and read only after the pool joins.
unsafe impl<R: Send> Sync for ResultCell<R> {}

/// Drive all ranks of `world` to completion on the calling thread and
/// return their results in rank order. Panics in any rank propagate.
/// Crash-stopped ranks would come back `None`; use
/// [`run_event_loop_partial`] for worlds that schedule crashes.
pub(crate) fn run_event_loop<R, F>(world: Arc<World>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    run_event_loop_partial(world, f)
        .into_iter()
        .map(|r| r.expect("rank finished without a result"))
        .collect()
}

/// [`run_event_loop`] tolerating crash-stopped ranks: their slots come
/// back `None`, survivors `Some`.
pub(crate) fn run_event_loop_partial<R, F>(world: Arc<World>, f: F) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    let nprocs = world.nprocs();
    let stack_bytes = stack_bytes_from_env();
    let results: Vec<ResultCell<R>> = (0..nprocs).map(|_| ResultCell(UnsafeCell::new(None))).collect();
    // SAFETY: shard_main's contract — `results` outlives the call, and
    // ranks 0..nprocs are driven to completion (or unwound) inside it.
    let leftover = unsafe { shard_main(world, 0, 0, nprocs, None, &f, &results, stack_bytes) };
    if let Some(p) = leftover {
        drop(results);
        resume_unwind(p);
    }
    results.into_iter().map(|c| c.0.into_inner()).collect()
}

/// [`run_pool_partial`] for crash-free worlds.
pub(crate) fn run_pool<R, F>(world: Arc<World>, shards: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    run_pool_partial(world, shards, None, f)
        .into_iter()
        .map(|r| r.expect("rank finished without a result"))
        .collect()
}

/// Drive `world` on a sharded pool of `shards` host threads (clamped to
/// `1..=nprocs`; shard 0 runs on the calling thread) and return per-rank
/// results, `None` for crash-stopped ranks. Bit-identical to the
/// sequential [`run_event_loop_partial`] regardless of shard count or
/// host-thread interleaving. `jitter` — `(seed, max_ns)` — staggers the
/// spawned shard threads' startup pseudo-randomly, a determinism-harness
/// hook that widens the interleavings an OS scheduler would explore.
pub(crate) fn run_pool_partial<R, F>(
    world: Arc<World>,
    shards: usize,
    jitter: Option<(u64, u64)>,
    f: F,
) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    let nprocs = world.nprocs();
    let k = shards.max(1).min(nprocs);
    let stack_bytes = stack_bytes_from_env();
    let base = nprocs / k;
    let extra = nprocs % k;
    let starts: Vec<usize> = (0..=k).map(|s| s * base + s.min(extra)).collect();
    let results: Vec<ResultCell<R>> = (0..nprocs).map(|_| ResultCell(UnsafeCell::new(None))).collect();
    let shared = Arc::new(ShardShared {
        base,
        extra,
        gate: Mutex::new(Gate {
            // Pre-seeded so the argmin is right even before a late-
            // starting shard's first gate entry (jitter must not be able
            // to reorder anything).
            mins: (0..k).map(|s| Some((0, starts[s], WAKE_ENTRY))).collect(),
            inboxes: (0..k).map(|_| Vec::new()).collect(),
            running: None,
            parked: vec![None; nprocs],
            live: nprocs,
            crashed: 0,
            unwinding: false,
            deadlock: None,
            panic_payload: None,
        }),
        cvs: (0..k).map(|_| Condvar::new()).collect(),
    });
    let pool_done = std::sync::atomic::AtomicBool::new(false);
    let join_err = std::thread::scope(|s| {
        if jitter.is_some() {
            // The jitter harness also hammers every shard condvar with
            // unrequested notifies for the whole run: `Condvar::wait`
            // permits spurious wakeups, but the OS produces them too
            // rarely to test against — this makes every wait see them
            // routinely, so a dispatch path that trusts a wakeup (instead
            // of re-checking the gate's running fence) fails in the
            // determinism suite instead of once a year in production.
            let shared = &shared;
            let pool_done = &pool_done;
            s.spawn(move || {
                while !pool_done.load(std::sync::atomic::Ordering::Relaxed) {
                    for c in &shared.cvs {
                        c.notify_all();
                    }
                    std::thread::sleep(std::time::Duration::from_micros(20));
                }
            });
        }
        let handles: Vec<_> = (1..k)
            .map(|shard| {
                let world = Arc::clone(&world);
                let shared = Arc::clone(&shared);
                let f = &f;
                let results = &results[..];
                let (lo, hi) = (starts[shard], starts[shard + 1]);
                s.spawn(move || {
                    if let Some((seed, max_ns)) = jitter {
                        jitter_sleep(seed, shard, max_ns);
                    }
                    // SAFETY: this shard exclusively owns ranks lo..hi and
                    // their result cells; the scope keeps `results`/`f`
                    // alive past every fiber.
                    let p = unsafe {
                        shard_main(world, shard, lo, hi - lo, Some(shared), f, results, stack_bytes)
                    };
                    debug_assert!(p.is_none(), "pool shards surface panics via the gate");
                })
            })
            .collect();
        // Shard 0 runs on the calling thread, like the sequential loop.
        // SAFETY: as above, for ranks 0..starts[1].
        let p = unsafe {
            shard_main(
                Arc::clone(&world),
                0,
                0,
                starts[1],
                Some(Arc::clone(&shared)),
                &f,
                &results,
                stack_bytes,
            )
        };
        debug_assert!(p.is_none(), "pool shards surface panics via the gate");
        // Collect join failures instead of panicking on the first one:
        // a shard thread that died outside the pool protocol (e.g. on a
        // gate poisoned by an earlier panic) must not mask the original
        // rank panic or deadlock diagnostics recorded in the gate.
        let mut join_err: Option<Box<dyn Any + Send>> = None;
        for h in handles {
            if let Err(e) = h.join() {
                join_err.get_or_insert(e);
            }
        }
        pool_done.store(true, std::sync::atomic::Ordering::Relaxed);
        join_err
    });
    // A thread that panicked while holding the gate poisons it; the
    // diagnostics inside are still the best report available.
    let mut g = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(d) = g.deadlock.take() {
        drop(g);
        panic!("flexio-sim event loop deadlock: {d}");
    }
    if let Some(p) = g.panic_payload.take() {
        drop(g);
        drop(results);
        resume_unwind(p);
    }
    drop(g);
    if let Some(e) = join_err {
        drop(results);
        resume_unwind(e);
    }
    results.into_iter().map(|c| c.0.into_inner()).collect()
}

/// Deterministic per-shard startup stagger (splitmix64 of `seed ^ shard`):
/// perturbs host scheduling without perturbing the simulation.
fn jitter_sleep(seed: u64, shard: usize, max_ns: u64) {
    let mut x = seed ^ (shard as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    std::thread::sleep(std::time::Duration::from_nanos(x % max_ns.max(1)));
}

/// Build one shard's scheduler (fiber slots for ranks `lo..lo+count`) at a
/// stable address, run the matching driver, and clean up thread-local
/// state. Returns any leftover panic payload (solo driver only; the pool
/// surfaces panics through the gate).
///
/// # Safety
/// `results` must cover the full world, outlive the call, and have each
/// cell written by at most this shard (ranks `lo..lo+count`). The caller
/// must be prepared for a panic (solo deadlock / stack-canary failure).
#[allow(clippy::too_many_arguments)]
unsafe fn shard_main<R, F>(
    world: Arc<World>,
    shard: usize,
    lo: usize,
    count: usize,
    shared: Option<Arc<ShardShared>>,
    f: &F,
    results: &[ResultCell<R>],
    stack_bytes: usize,
) -> Option<Box<dyn Any + Send>>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    // Fresh per-rank flatten caches, like the fresh host threads the pool
    // spawns (shard 0 and the solo driver reuse the caller's thread, so
    // reset explicitly; per-rank scoping keeps hit/miss counts identical
    // across shard layouts).
    flexio_types::flatten::reset_flatten_cache();
    let mut el = Sched {
        world: Arc::as_ptr(&world),
        nprocs: world.nprocs(),
        shard,
        lo,
        stack_bytes,
        current: lo,
        live: count,
        unwinding: false,
        panic_payload: None,
        ready: BinaryHeap::with_capacity(count),
        waiting: vec![None; count],
        park_seq: vec![0; count],
        timed_out: vec![false; count],
        crashed: 0,
        crashed_delta: 0,
        finished_delta: 0,
        dirty: Vec::new(),
        handoff: (0..count).map(|_| None).collect(),
        slots: Vec::with_capacity(count),
        host_ctx: Context::null(),
        shared,
    };
    for _ in 0..count {
        el.slots.push(FiberSlot {
            stack: FiberStack::new(stack_bytes),
            ctx: Context::null(),
            payload: Box::new(Payload {
                run: None,
                final_ctx: (std::ptr::null_mut(), std::ptr::null()),
            }),
            done: false,
        });
    }
    // From here on `el` must not move: fibers hold raw pointers into it.
    let el_ptr: *mut Sched = &mut el;
    for li in 0..count {
        let r = lo + li;
        let world = Arc::clone(&world);
        let res_ptr = results[r].0.get();
        let body = move || {
            // SAFETY: this closure only ever runs on this shard's host
            // thread, inside the `shard_main` frame that owns `el`.
            let should_run = unsafe { !(*el_ptr).unwinding };
            if should_run {
                let reap_world = Arc::clone(&world);
                let rank = Rank::new(world, r);
                match catch_unwind(AssertUnwindSafe(|| f(&rank))) {
                    // SAFETY: res_ptr is this rank's exclusive slot.
                    Ok(v) => unsafe { *res_ptr = Some(v) },
                    Err(p) => unsafe {
                        let el = &mut *el_ptr;
                        if p.is::<crate::world::CrashStop>() {
                            // Crash-stop: the rank is gone, the world goes
                            // on. Reap its mailbox, park state, and any
                            // pending handoff so no scheduler structure —
                            // deadlock reports included — ever lists it
                            // again. Its result slot stays `None`.
                            el.crashed += 1;
                            el.crashed_delta += 1;
                            el.waiting[li] = None;
                            el.handoff[li] = None;
                            if el.shared.is_some() {
                                el.dirty.push(r);
                            }
                            reap_world.reap_rank(r);
                        } else if !p.is::<ForcedUnwind>() && el.panic_payload.is_none() {
                            el.panic_payload = Some(p);
                        }
                    },
                }
            }
            // SAFETY: exclusive access (owning host thread, no switch).
            unsafe {
                let el = &mut *el_ptr;
                el.slots[li].done = true;
                el.live -= 1;
                el.finished_delta += 1;
            }
        };
        // Erase the borrow of `f`/`results`: the fibers are all driven to
        // completion (or force-unwound) before this frame returns, so the
        // 'static lifetime is never actually relied upon past it.
        let body: Box<dyn FnOnce()> = Box::new(body);
        let body: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(body) };
        let slot = &mut el.slots[li];
        slot.payload.run = Some(body);
        slot.payload.final_ctx = (&mut slot.ctx as *mut Context, &el.host_ctx as *const Context);
        slot.ctx = prepare(&slot.stack, &mut *slot.payload as *mut Payload);
        el.ready.push(Reverse((0, r, WAKE_ENTRY)));
    }

    // Nested `run` calls (a rank driving an inner world) save and restore
    // the outer scheduler around their own.
    let prev_active = ACTIVE.with(|a| a.replace(el_ptr));
    if el.shared.is_some() {
        // SAFETY: el is pinned for the drive; fibers are local.
        unsafe { drive_gated(el_ptr) };
    } else if let Err(diag) = unsafe { drive_solo(el_ptr) } {
        ACTIVE.with(|a| a.set(prev_active));
        flexio_types::flatten::set_flatten_scope(0);
        flexio_types::flatten::reset_flatten_cache();
        panic!("flexio-sim event loop deadlock: {diag}");
    }
    ACTIVE.with(|a| a.set(prev_active));
    // Leave the host thread's flatten cache as cold as we found our own:
    // scope 0 restored for direct (non-simulated) callers.
    flexio_types::flatten::set_flatten_scope(0);
    flexio_types::flatten::reset_flatten_cache();
    el.panic_payload.take()
}

/// The sequential driver: repeatedly pop the lowest key of the one global
/// heap and run that segment. Returns the deadlock diagnostics (fibers
/// already unwound) instead of panicking so `shard_main` can clean up
/// thread-locals first.
unsafe fn drive_solo(el_ptr: *mut Sched) -> Result<(), String> {
    loop {
        // SAFETY (this block and below): all Sched access happens on this
        // thread in scopes that end before any context switch.
        let next = unsafe {
            let el = &mut *el_ptr;
            if el.live == 0 {
                break;
            }
            el.ready.pop()
        };
        let Some(Reverse((_clock, r, kind))) = next else {
            // Live ranks but nothing runnable: every one of them is parked
            // on a receive no one will ever send. Report and unwind.
            let diag = unsafe {
                let el = &*el_ptr;
                deadlock_message(&el.waiting, el.live, el.nprocs, el.crashed)
            };
            unsafe { force_unwind_local(el_ptr) };
            return Err(diag);
        };
        // Scoped borrow; must end before switching into the fiber.
        let (host, fctx) = {
            let el = unsafe { &mut *el_ptr };
            if el.slots[r].done {
                continue;
            }
            if kind != WAKE_ENTRY {
                // A park timer. It fires only if the rank is still in the
                // very park that set it (same generation); a handoff that
                // beat the deadline — or any later park — makes it stale.
                match el.waiting[r] {
                    Some(w) if w.gen == kind => {
                        el.waiting[r] = None;
                        el.timed_out[r] = true;
                    }
                    _ => continue,
                }
            } else {
                debug_assert!(el.waiting[r].is_none(), "wake entry for a parked rank");
            }
            el.current = r;
            (&mut el.host_ctx as *mut Context, &el.slots[r].ctx as *const Context)
        };
        flexio_types::flatten::set_flatten_scope(r as u64);
        // SAFETY: fctx is a live suspended (or fresh) fiber context.
        unsafe { switch_stacks(host, fctx) };
        let need_unwind = unsafe {
            let el = &mut *el_ptr;
            assert!(
                el.slots[r].stack.canary_ok(),
                "rank {r} overflowed its {}-byte fiber stack (raise FLEXIO_SIM_STACK_KB)",
                el.stack_bytes
            );
            el.panic_payload.is_some() && !el.unwinding
        };
        if need_unwind {
            // SAFETY: all fibers are parked; `el` outlives them.
            unsafe { force_unwind_local(el_ptr) };
        }
    }
    Ok(())
}

/// The pool driver for one shard: drain the inbox, publish the local
/// heap's head at the gate, and dispatch only while holding the global
/// minimum — the exact key the sequential loop would pop next. Everything
/// segment-local (park bookkeeping, handoffs, crash reaping) happens
/// lock-free between gate visits and is folded back in at baton release.
unsafe fn drive_gated(el_ptr: *mut Sched) {
    // SAFETY: el_ptr is pinned by shard_main for the whole drive; every
    // deref in here happens on the owning host thread in scopes that end
    // before a context switch or a condvar wait.
    let sh = unsafe { Arc::clone((*el_ptr).shared.as_ref().expect("gated drive without a pool")) };
    let me = unsafe { (*el_ptr).shard };
    let mut g = sh.gate.lock().unwrap();
    loop {
        // Fold the last segment's effects into the gate: republish park
        // mirrors, live/crash counts, and any rank panic.
        {
            let el = unsafe { &mut *el_ptr };
            for &r in &el.dirty {
                g.parked[r] = el.waiting[r - el.lo];
            }
            el.dirty.clear();
            g.live -= el.finished_delta;
            el.finished_delta = 0;
            g.crashed += el.crashed_delta;
            el.crashed_delta = 0;
            if let Some(p) = el.panic_payload.take() {
                if g.panic_payload.is_none() {
                    g.panic_payload = Some(p);
                }
                if !g.unwinding {
                    g.unwinding = true;
                    for c in &sh.cvs {
                        c.notify_all();
                    }
                }
            }
        }
        if g.unwinding {
            // Teardown: every shard unwinds its own fibers (destructors
            // run), then reports any destructor panic and leaves.
            drop(g);
            unsafe { force_unwind_local(el_ptr) };
            let p = unsafe { (*el_ptr).panic_payload.take() };
            if let Some(p) = p {
                let mut g = sh.gate.lock().unwrap();
                if g.panic_payload.is_none() {
                    g.panic_payload = Some(p);
                }
            }
            return;
        }
        // Complete pending cross-shard handoffs: the sender already
        // consumed the park mirror; finish the local half (exactly what
        // the sequential direct handoff would have done) before
        // publishing, so the published min includes the wakes.
        {
            let el = unsafe { &mut *el_ptr };
            for d in g.inboxes[me].drain(..) {
                let li = d.dst - el.lo;
                debug_assert!(el.waiting[li].is_some(), "inbox delivery for an unparked rank");
                el.waiting[li] = None;
                el.handoff[li] = Some(d.msg);
                el.ready.push(Reverse((d.clock, d.dst, WAKE_ENTRY)));
            }
            g.mins[me] = el.ready.peek().map(|&Reverse(k)| k);
        }
        if g.live == 0 {
            for c in &sh.cvs {
                c.notify_all();
            }
            return;
        }
        if let Some(owner) = g.running {
            // A segment is in flight on another shard: we were woken
            // spuriously, or by a cross-shard delivery that lowered our
            // published min below the runner's fenced key. Winning the
            // argmin now would dispatch concurrently with it; wait for
            // the runner to re-lock, clear `running`, and re-elect.
            debug_assert_ne!(owner, me, "gate re-entered while marked running");
            g = sh.cvs[me].wait(g).unwrap();
            continue;
        }
        match global_argmin(&g.mins) {
            None => {
                // Every shard idle with live ranks remaining: global
                // deadlock. All mirrors are synced (every shard publishes
                // before waiting), so the report is complete.
                if g.deadlock.is_none() {
                    let nprocs = unsafe { (*el_ptr).nprocs };
                    g.deadlock = Some(deadlock_message(&g.parked, g.live, nprocs, g.crashed));
                }
                g.unwinding = true;
                for c in &sh.cvs {
                    c.notify_all();
                }
                continue;
            }
            Some(s) if s != me => {
                // Hand the baton towards the holder of the global min and
                // sleep; re-evaluate on every wake (spurious or not).
                sh.cvs[s].notify_one();
                g = sh.cvs[me].wait(g).unwrap();
                continue;
            }
            Some(_) => {}
        }
        // Our turn: the head of our heap is the global minimum — the same
        // key the sequential loop would pop now. `g.running` fences every
        // other shard while the segment is in flight; `g.mins[me]`
        // deliberately keeps the executing key so re-election after the
        // release still sees it if it remains the minimum.
        let Reverse((_clock, r, kind)) = unsafe { (*el_ptr).ready.pop().expect("published min vanished") };
        let (host, fctx) = {
            let el = unsafe { &mut *el_ptr };
            let li = r - el.lo;
            if el.slots[li].done {
                continue; // stale entry; republish and re-elect
            }
            if kind != WAKE_ENTRY {
                match el.waiting[li] {
                    Some(w) if w.gen == kind => {
                        el.waiting[li] = None;
                        el.timed_out[li] = true;
                        el.dirty.push(r);
                    }
                    _ => continue, // stale timer generation
                }
            } else {
                debug_assert!(el.waiting[li].is_none(), "wake entry for a parked rank");
            }
            el.current = r;
            (&mut el.host_ctx as *mut Context, &el.slots[li].ctx as *const Context)
        };
        g.running = Some(me);
        drop(g); // user code must not run under the gate
        flexio_types::flatten::set_flatten_scope(r as u64);
        // SAFETY: fctx is a live suspended (or fresh) fiber context.
        unsafe { switch_stacks(host, fctx) };
        let canary_ok = unsafe { (&(*el_ptr).slots)[r - (*el_ptr).lo].stack.canary_ok() };
        if !canary_ok {
            // Only the overflowed stack is unsafe to unwind. Retire its
            // slot so the forced unwind skips it, surface the failure
            // through the pool protocol, then unwind this shard's other
            // fibers normally (their destructors run, like the peers').
            let msg = unsafe {
                let el = &mut *el_ptr;
                el.slots[r - el.lo].done = true;
                format!(
                    "rank {r} overflowed its {}-byte fiber stack (raise FLEXIO_SIM_STACK_KB)",
                    el.stack_bytes
                )
            };
            {
                let mut g = sh.gate.lock().unwrap();
                g.running = None;
                if g.panic_payload.is_none() {
                    g.panic_payload = Some(Box::new(msg));
                }
                g.unwinding = true;
                for c in &sh.cvs {
                    c.notify_all();
                }
            }
            unsafe { force_unwind_local(el_ptr) };
            if let Some(p) = unsafe { (*el_ptr).panic_payload.take() } {
                let mut g = sh.gate.lock().unwrap();
                if g.panic_payload.is_none() {
                    g.panic_payload = Some(p);
                }
            }
            return;
        }
        g = sh.gate.lock().unwrap();
        g.running = None;
    }
}

/// Human-readable summary of who is stuck waiting on what. `waiting` is
/// indexed by global rank id (the solo driver owns every rank; the pool
/// passes the gate's park mirror).
fn deadlock_message(waiting: &[Option<ParkedRecv>], live: usize, nprocs: usize, crashed: usize) -> String {
    let mut parked: Vec<String> = waiting
        .iter()
        .enumerate()
        .filter_map(|(r, w)| {
            w.map(|w| format!("rank {r} (clock {} ns) <- recv(src={}, tag={})", w.clock, w.src, w.tag))
        })
        .collect();
    let shown = parked.len().min(8);
    let elided = parked.len() - shown;
    parked.truncate(shown);
    let mut s = format!("{live} of {nprocs} ranks parked with no message in flight: ");
    s.push_str(&parked.join("; "));
    if elided > 0 {
        s.push_str(&format!("; … and {elided} more"));
    }
    if crashed > 0 {
        // Dead ranks are reaped at crash time, so they never appear in
        // the parked list above — only this tally mentions them.
        s.push_str(&format!(" ({crashed} rank(s) crash-stopped earlier)"));
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::world::{run_crashable_on, run_on, Backend};
    use crate::Phase;

    /// A workload exercising every park point: p2p, barrier, bcast,
    /// allgatherv, alltoallv, exchange, gatherv/scatterv, overlap windows.
    fn mixed_workload(r: &crate::rank::Rank) -> (u64, crate::rank::Stats, Vec<u8>) {
        let p = r.nprocs();
        let next = (r.rank() + 1) % p;
        let prev = (r.rank() + p - 1) % p;
        r.send(next, 1, &[r.rank() as u8; 32]);
        let got = r.recv(prev, 1);
        r.charge_pairs(got.len() as u64);
        r.barrier();
        let seed = r.bcast(0, if r.rank() == 0 { vec![7; 16] } else { vec![] });
        let all = r.allgatherv(&[r.rank() as u8, seed[0]]);
        let blocks: Vec<Vec<u8>> = (0..p).map(|d| vec![(r.rank() * p + d) as u8; 5]).collect();
        let x = r.alltoallv(blocks);
        let w = r.overlap_begin(r.now() + 10_000, Phase::Io);
        r.charge_memcpy(4096);
        r.overlap_complete(w);
        let g = r.gatherv(0, &x[prev]);
        let s = r.scatterv(0, if r.rank() == 0 { g } else { Vec::new() });
        let mut img: Vec<u8> = s;
        img.extend(all.into_iter().flatten());
        (r.now(), r.stats(), img)
    }

    #[test]
    fn event_loop_matches_sharded_bit_identically() {
        for p in [1, 2, 5, 8] {
            let ev1 = run_on(Backend::EventLoop, p, CostModel::default(), mixed_workload);
            let ev2 = run_on(Backend::EventLoop, p, CostModel::default(), mixed_workload);
            assert_eq!(ev1, ev2, "event loop must be deterministic (p={p})");
            for k in [1, 2, 3] {
                let sh = run_on(Backend::Sharded(k), p, CostModel::default(), mixed_workload);
                assert_eq!(ev1, sh, "sharded pool must match the event loop (p={p}, k={k})");
            }
        }
    }

    #[test]
    fn large_world_completes() {
        // O(p log p) traffic only (dissemination barrier + neighbour ring):
        // the O(p^2) collectives at this scale live in the release-mode
        // scale smoke test, not tier-1.
        let p = 2048;
        let out = run_on(Backend::EventLoop, p, CostModel::default(), |r| {
            r.send((r.rank() + 1) % p, 3, &(r.rank() as u64).to_le_bytes());
            let got = r.recv((r.rank() + p - 1) % p, 3);
            r.barrier();
            u64::from_le_bytes(got.try_into().unwrap())
        });
        for (r, &g) in out.iter().enumerate() {
            assert_eq!(g, ((r + p - 1) % p) as u64);
        }
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let got = std::panic::catch_unwind(|| {
            run_on(Backend::EventLoop, 2, CostModel::free(), |r| {
                // Both ranks receive a message nobody sends.
                let _ = r.recv((r.rank() + 1) % 2, 9);
            })
        });
        let err = got.expect_err("deadlocked world must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("deadlock"), "unexpected message: {msg}");
        assert!(msg.contains("tag=9"), "diagnostics should name the tag: {msg}");
    }

    #[test]
    fn deadlock_reports_match_across_drivers() {
        let report = |backend| {
            let got = std::panic::catch_unwind(|| {
                run_on(backend, 3, CostModel::free(), |r| {
                    let _ = r.recv((r.rank() + 1) % 3, 9);
                })
            });
            let err = got.expect_err("deadlocked world must panic");
            err.downcast_ref::<String>().expect("panic carries a String").clone()
        };
        let solo = report(Backend::EventLoop);
        for k in [1, 2, 3] {
            assert_eq!(solo, report(Backend::Sharded(k)), "deadlock diagnostics diverge at k={k}");
        }
    }

    #[test]
    fn rank_panic_propagates_and_unwinds_peers() {
        for backend in [Backend::EventLoop, Backend::Sharded(2)] {
            let got = std::panic::catch_unwind(|| {
                run_on(backend, 4, CostModel::free(), |r| {
                    if r.rank() == 2 {
                        panic!("boom from rank 2");
                    }
                    // Peers park forever; they must be force-unwound, not leaked.
                    let _ = r.recv((r.rank() + 1) % 4, 1);
                })
            });
            let err = got.expect_err("rank panic must propagate");
            let msg = err.downcast_ref::<&str>().expect("original payload propagates");
            assert_eq!(*msg, "boom from rank 2");
        }
    }

    #[test]
    fn drops_run_on_abandoned_stacks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        for backend in [Backend::EventLoop, Backend::Sharded(2)] {
            DROPS.store(0, Ordering::SeqCst);
            let _ = std::panic::catch_unwind(|| {
                run_on(backend, 3, CostModel::free(), |r| {
                    let _probe = Probe;
                    // Ranks 0 and 1 run first (lower ids at clock 0) and park
                    // with a live Probe on their fiber stacks; then rank 2
                    // panics and the scheduler must unwind the parked two.
                    if r.rank() == 2 {
                        panic!("teardown");
                    }
                    let _ = r.recv(r.rank(), 5); // parks forever
                })
            });
            assert_eq!(
                DROPS.load(Ordering::SeqCst),
                3,
                "every rank's locals must be dropped, including parked fibers ({backend:?})"
            );
        }
    }

    #[test]
    fn nested_worlds_inside_a_fiber() {
        let out = run_on(Backend::EventLoop, 3, CostModel::free(), |r| {
            // Each rank drives its own inner world from fiber context.
            let inner = run_on(Backend::EventLoop, 2, CostModel::free(), |ir| {
                ir.allreduce_sum(ir.rank() as u64 + 1)
            });
            r.allreduce_sum(inner[0])
        });
        assert_eq!(out, vec![9, 9, 9]);
    }

    #[test]
    fn nested_worlds_inside_a_sharded_pool() {
        // Outer pool fibers each drive an inner world — including an inner
        // *pool*, whose shard 0 runs on the outer fiber's stack.
        let out = run_on(Backend::Sharded(2), 3, CostModel::free(), |r| {
            let inner = run_on(Backend::Sharded(2), 2, CostModel::free(), |ir| {
                ir.allreduce_sum(ir.rank() as u64 + 1)
            });
            r.allreduce_sum(inner[0])
        });
        assert_eq!(out, vec![9, 9, 9]);
    }

    #[test]
    fn crash_stop_survivors_complete() {
        // Rank 2 crashes at its first checkpoint; survivors re-form the
        // world as a subgroup and finish a collective. Crashed slot None.
        for backend in [Backend::EventLoop, Backend::Sharded(3)] {
            let out = run_crashable_on(backend, 4, CostModel::free(), &[(2, 0)], |r| {
                r.maybe_crash();
                let comm = r.subgroup(&[0, 1, 3]);
                comm.allreduce_sum(r.rank() as u64)
            });
            assert!(out[2].is_none(), "crashed rank must not produce a result");
            for (i, v) in out.iter().enumerate() {
                if i != 2 {
                    assert_eq!(*v, Some(4), "survivor {i} must complete the collective");
                }
            }
        }
    }

    #[test]
    fn crashed_rank_runs_destructors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let out = crate::world::run_crashable(2, CostModel::free(), &[(1, 0)], |r| {
            let _probe = Probe;
            r.maybe_crash();
            r.rank()
        });
        assert_eq!(out, vec![Some(0), None]);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2, "crash unwind must drop locals");
    }

    #[test]
    fn recv_timeout_is_deterministic() {
        // Nothing ever arrives: the watchdog fires at exactly the
        // deadline, twice in a row — under both drivers.
        for backend in [Backend::EventLoop, Backend::Sharded(2)] {
            for _ in 0..2 {
                let out = run_crashable_on(backend, 2, CostModel::free(), &[(1, 0)], |r| {
                    r.maybe_crash();
                    let got = r.recv_timeout(1, 5, 12_345);
                    (got.is_none(), r.now())
                });
                assert_eq!(out[0], Some((true, 12_345)));
            }
        }
    }

    #[test]
    fn recv_timeout_delivers_before_deadline() {
        let out = crate::world::run_crashable(2, CostModel::free(), &[], |r| {
            if r.rank() == 1 {
                r.send(0, 5, b"hb");
                0
            } else {
                r.recv_timeout(1, 5, 1_000_000).expect("must arrive in time").len()
            }
        });
        assert_eq!(out[0], Some(2));
    }

    #[test]
    fn stale_park_timer_is_skipped() {
        // Rank 0's first timed park is satisfied long before its deadline;
        // the leftover timer entry must not disturb the second, untimed
        // park (generation check). With two shards the satisfying send is
        // a cross-shard inbox delivery.
        for backend in [Backend::EventLoop, Backend::Sharded(2)] {
            let out = run_crashable_on(backend, 2, CostModel::default(), &[], |r| {
                if r.rank() == 1 {
                    r.send(0, 1, b"fast");
                    r.advance(50_000_000); // well past rank 0's first deadline
                    r.send(0, 2, b"late");
                    Vec::new()
                } else {
                    let a = r.recv_timeout(1, 1, r.now() + 10_000_000).expect("fast msg");
                    let b = r.recv(1, 2);
                    [a, b].concat()
                }
            });
            assert_eq!(out[0].as_deref(), Some(b"fastlate".as_slice()));
        }
    }

    #[test]
    fn deadlock_report_never_lists_crashed_ranks() {
        let got = std::panic::catch_unwind(|| {
            crate::world::run_crashable(3, CostModel::free(), &[(1, 0)], |r| {
                r.maybe_crash();
                // Ranks 0 and 2 wait on the dead rank forever: deadlock.
                let _ = r.recv(1, 9);
            })
        });
        let err = got.expect_err("deadlocked world must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("deadlock"), "unexpected message: {msg}");
        assert!(msg.contains("crash-stopped"), "report should tally crashes: {msg}");
        assert!(
            !msg.contains("rank 1 ("),
            "dead ranks must be reaped out of the parked list: {msg}"
        );
    }

    #[test]
    fn messages_to_dead_ranks_are_dropped() {
        // The survivor eagerly sends to the dead rank; nothing leaks, the
        // world still terminates cleanly.
        for backend in [Backend::EventLoop, Backend::Sharded(2)] {
            let out = run_crashable_on(backend, 2, CostModel::free(), &[(1, 0)], |r| {
                if r.rank() == 0 {
                    r.recv_timeout(1, 7, 1_000); // let rank 1 die first
                    for _ in 0..4 {
                        r.send(1, 3, &[0; 64]);
                    }
                } else {
                    r.maybe_crash();
                }
                r.rank()
            });
            assert_eq!(out, vec![Some(0), None]);
        }
    }

    #[test]
    fn shards_env_parse_contract() {
        // from_env honours FLEXIO_SIM_SHARDS; don't mutate the process env
        // here (tests run threaded) — just check the parse contract on
        // whatever the harness set: unset/0/1 mean the sequential loop,
        // n >= 2 means an n-shard pool.
        match Backend::from_env() {
            Backend::EventLoop => {}
            Backend::Sharded(k) => assert!(k >= 2, "from_env only pools at 2+ shards"),
        }
    }

    #[test]
    fn shards_beyond_ranks_clamp() {
        // More shards than ranks: the pool clamps to one rank per shard.
        let out = run_on(Backend::Sharded(16), 3, CostModel::default(), mixed_workload);
        let ev = run_on(Backend::EventLoop, 3, CostModel::default(), mixed_workload);
        assert_eq!(out, ev);
    }
}
