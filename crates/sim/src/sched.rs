//! The event-loop rank runtime: one host thread drives every rank of a
//! world as a cooperatively-scheduled fiber over virtual time.
//!
//! Ranks are resumable state machines (stackful fibers, [`crate::fiber`])
//! parked on their one blocking primitive — a message receive that found
//! its `(src, tag)` queue empty ([`World::take`]). The scheduler always
//! resumes the runnable rank with the **lowest virtual clock**, rank id as
//! tie-break, so host execution order is a pure function of the workload:
//! no OS wakeup races, no `Condvar` herds, bit-identical clocks and
//! counters on every run. A delivery wakes only the parked rank whose
//! `(src, tag)` matches — the event-loop answer to the old
//! `Mailbox::deliver` `notify_all`.
//!
//! Why lowest-clock-first is safe *and* sufficient: message payloads and
//! per-rank charges never depend on host order (per-`(src, tag)` queues
//! are single-producer FIFO), so any fair schedule yields the same bytes.
//! Lowest-clock-first additionally (a) keeps eager senders from racing
//! arbitrarily far ahead of their receivers (bounding mailbox memory), and
//! (b) issues shared-resource operations (PFS OST requests) in virtual-
//! time order, which pins down the one thing the threaded runtime left to
//! the OS scheduler: service order at shared devices. That is what turns
//! "deterministic except for OST queueing races" into "deterministic".
//!
//! Error handling: a panic in any rank force-unwinds every other live
//! fiber (their park points re-raise a private `ForcedUnwind` panic, so
//! destructors on fiber stacks run) and then propagates the original
//! payload from `run`, matching the threaded runtime's "rank panicked"
//! behaviour. A world where every live rank is parked with no matching
//! message in flight is reported as a deadlock — the threaded runtime
//! would hang forever instead.

use crate::fiber::{prepare, switch_stacks, Context, FiberStack, Payload};
use crate::rank::Rank;
use crate::world::{Msg, World};
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Default fiber stack size: 1 MiB of (lazily committed) address space.
const DEFAULT_STACK_BYTES: usize = 1 << 20;

/// Panic payload used to force parked fibers to unwind (running their
/// destructors) when another rank has panicked or the world deadlocked.
struct ForcedUnwind;

/// Heap-entry discriminant for wake entries (initial starts and handoff
/// resumes). Timer entries carry the park generation instead, which a
/// per-park increment keeps strictly below this.
const WAKE_ENTRY: u64 = u64::MAX;

/// How a park ended, as seen by `World::take`/`take_deadline`.
pub(crate) enum ParkWake {
    /// A delivery matching `(src, tag)` was handed directly to the parked
    /// receiver (the common case).
    Delivered(Msg),
    /// Resumed without a message; the caller re-checks its queue.
    Spurious,
    /// The park's virtual-time deadline fired with no delivery.
    TimedOut,
}

/// A rank parked in `World::take`: what it waits for and the virtual
/// clock it parked at (its wake-up priority).
#[derive(Clone, Copy)]
struct ParkedRecv {
    src: usize,
    tag: u64,
    clock: u64,
    /// This park's generation: a stale timer entry (from an earlier park
    /// of the same rank) no longer matches and is skipped on pop.
    gen: u64,
}

struct FiberSlot {
    stack: FiberStack,
    /// Saved context while the fiber is suspended (initially the fresh
    /// image from `fiber::prepare`).
    ctx: Context,
    /// Boxed so its address is stable for the initial register image.
    payload: Box<Payload>,
    done: bool,
}

struct EventLoop {
    /// Identity of the world this loop drives (nested `run` calls swap the
    /// active loop; the pointer check keeps a foreign world's primitives
    /// from parking on the wrong scheduler).
    world: *const World,
    nprocs: usize,
    current: usize,
    live: usize,
    unwinding: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Runnable ranks and pending park timers, ordered by (virtual time,
    /// rank id) ascending. The third element distinguishes wake entries
    /// (`WAKE_ENTRY`) from timer entries (the park's generation); at an
    /// equal `(time, rank)` the timer pops first and is discarded as
    /// stale if the handoff already cleared the park.
    ready: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Per-rank park state; `Some` while blocked in `World::take`.
    waiting: Vec<Option<ParkedRecv>>,
    /// Per-rank park generation counter (see [`ParkedRecv::gen`]).
    park_seq: Vec<u64>,
    /// Set when a park's deadline fired; consumed by the resumed fiber.
    timed_out: Vec<bool>,
    /// Ranks that crash-stopped ([`crate::world::CrashStop`]).
    crashed: usize,
    /// Direct-handoff slot per rank: a delivery matching a parked
    /// receiver's `(src, tag)` lands here, bypassing the mailbox map and
    /// its lock entirely (single host thread, so the queue is provably
    /// empty whenever the receiver is parked).
    handoff: Vec<Option<Msg>>,
    slots: Vec<FiberSlot>,
    host_ctx: Context,
}

std::thread_local! {
    /// The event loop currently executing on this thread (null outside
    /// `run_event_loop`; always null on threaded-runtime rank threads).
    static ACTIVE: Cell<*mut EventLoop> = const { Cell::new(std::ptr::null_mut()) };
}

fn stack_bytes_from_env() -> usize {
    std::env::var("FLEXIO_SIM_STACK_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(DEFAULT_STACK_BYTES)
}

/// True when the calling code is a fiber of an event loop driving `world`.
pub(crate) fn event_loop_active_for(world: &World) -> bool {
    let el = ACTIVE.with(|a| a.get());
    // SAFETY: a non-null ACTIVE points at the EventLoop owned by the
    // `run_event_loop` frame further up this same thread's (host) stack.
    !el.is_null() && std::ptr::eq(unsafe { (*el).world }, world)
}

/// Park the current rank until a message for `(src, tag)` is delivered,
/// or — when `deadline` (absolute virtual ns) is given — until that much
/// virtual time passes with no delivery. Called by `World::take`/
/// `take_deadline` after finding the queue empty; `now` is the rank's
/// virtual clock, which becomes its wake-up priority. The deadline is a
/// heap timer entry ordered with every other wake-up, so timeouts are as
/// deterministic as deliveries.
pub(crate) fn park_for_recv(
    world: &World,
    dst: usize,
    src: usize,
    tag: u64,
    now: u64,
    deadline: Option<u64>,
) -> ParkWake {
    let el = ACTIVE.with(|a| a.get());
    assert!(
        !el.is_null() && std::ptr::eq(unsafe { (*el).world }, world),
        "park_for_recv outside the owning event loop"
    );
    // SAFETY: single host thread; no other code touches the EventLoop
    // between here and the switch (borrows end before switching).
    let (my, host) = unsafe {
        let el = &mut *el;
        if el.unwinding {
            // A destructor receiving during forced unwind: re-raise
            // rather than parking a fiber nobody will ever wake.
            panic_any(ForcedUnwind);
        }
        debug_assert_eq!(el.current, dst, "a rank may only take from its own mailbox");
        el.park_seq[dst] += 1;
        let gen = el.park_seq[dst];
        el.waiting[dst] = Some(ParkedRecv { src, tag, clock: now, gen });
        if let Some(d) = deadline {
            el.ready.push(Reverse((d.max(now), dst, gen)));
        }
        (&mut el.slots[dst].ctx as *mut Context, &el.host_ctx as *const Context)
    };
    // SAFETY: host_ctx holds the scheduler context that switched us in.
    unsafe { switch_stacks(my, host) };
    // Resumed: a matching message was handed off, the deadline fired, or
    // the world is being torn down and this fiber must unwind.
    // SAFETY: as above; the loop that resumed us is in `switch_stacks`.
    let el = unsafe { &mut *el };
    if el.unwinding {
        panic_any(ForcedUnwind);
    }
    if el.timed_out[dst] {
        el.timed_out[dst] = false;
        return ParkWake::TimedOut;
    }
    match el.handoff[dst].take() {
        Some(m) => ParkWake::Delivered(m),
        None => ParkWake::Spurious,
    }
}

/// Delivery fast path: if `dst` is parked on exactly `(src, tag)`, hand
/// the message straight to it (skipping the mailbox map and lock — the
/// event-loop answer to the old `notify_all`) and mark it runnable at its
/// park-time clock. Returns the message back when no such receiver is
/// parked (or no event loop drives `world`); the caller then queues it.
pub(crate) fn try_handoff(world: &World, dst: usize, src: usize, tag: u64, msg: Msg) -> Option<Msg> {
    let el = ACTIVE.with(|a| a.get());
    if el.is_null() || !std::ptr::eq(unsafe { (*el).world }, world) {
        return Some(msg);
    }
    // SAFETY: single host thread, short borrow, no switch inside.
    let el = unsafe { &mut *el };
    if let Some(w) = el.waiting[dst] {
        if w.src == src && w.tag == tag {
            el.waiting[dst] = None;
            el.handoff[dst] = Some(msg);
            el.ready.push(Reverse((w.clock, dst, WAKE_ENTRY)));
            return None;
        }
    }
    Some(msg)
}

/// Resume every live fiber so it unwinds (running destructors) and marks
/// itself done. Park points re-raise `ForcedUnwind`; never-started fibers
/// skip their body. Requires ACTIVE to still point at `el`.
unsafe fn force_unwind_all(el: *mut EventLoop) {
    let nprocs = unsafe {
        (*el).unwinding = true;
        (*el).nprocs
    };
    for r in 0..nprocs {
        // Scoped borrow: must end before the switch hands control to a
        // fiber that will re-borrow the loop from its own park point.
        let (host, fctx) = {
            // SAFETY: caller guarantees `el` outlives every fiber.
            let el = unsafe { &mut *el };
            if el.slots[r].done {
                continue;
            }
            el.current = r;
            (&mut el.host_ctx as *mut Context, &el.slots[r].ctx as *const Context)
        };
        // SAFETY: fctx is a live suspended fiber (not done).
        unsafe { switch_stacks(host, fctx) };
        // SAFETY: host thread again; the fiber is parked or done.
        debug_assert!(
            unsafe { (&*el).slots[r].done },
            "forced unwind left rank {r} live"
        );
    }
}

/// Drive all ranks of `world` to completion on the calling thread and
/// return their results in rank order. Panics in any rank propagate.
/// Crash-stopped ranks would come back `None`; use
/// [`run_event_loop_partial`] for worlds that schedule crashes.
pub(crate) fn run_event_loop<R, F>(world: Arc<World>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    run_event_loop_partial(world, f)
        .into_iter()
        .map(|r| r.expect("rank finished without a result"))
        .collect()
}

/// [`run_event_loop`] tolerating crash-stopped ranks: their slots come
/// back `None`, survivors `Some`.
pub(crate) fn run_event_loop_partial<R, F>(world: Arc<World>, f: F) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    let nprocs = world.nprocs();
    let stack_bytes = stack_bytes_from_env();
    // Fresh per-rank flatten caches, exactly like the fresh threads the
    // threaded runtime would have spawned.
    flexio_types::flatten::reset_flatten_cache();

    let results: Vec<UnsafeCell<Option<R>>> = (0..nprocs).map(|_| UnsafeCell::new(None)).collect();

    let mut el = EventLoop {
        world: Arc::as_ptr(&world),
        nprocs,
        current: 0,
        live: nprocs,
        unwinding: false,
        panic_payload: None,
        ready: BinaryHeap::with_capacity(nprocs),
        waiting: (0..nprocs).map(|_| None).collect(),
        park_seq: vec![0; nprocs],
        timed_out: vec![false; nprocs],
        crashed: 0,
        handoff: (0..nprocs).map(|_| None).collect(),
        slots: Vec::with_capacity(nprocs),
        host_ctx: Context::null(),
    };
    for _ in 0..nprocs {
        el.slots.push(FiberSlot {
            stack: FiberStack::new(stack_bytes),
            ctx: Context::null(),
            payload: Box::new(Payload {
                run: None,
                final_ctx: (std::ptr::null_mut(), std::ptr::null()),
            }),
            done: false,
        });
    }
    // From here on `el` must not move: fibers hold raw pointers into it.
    let el_ptr: *mut EventLoop = &mut el;
    for (r, res) in results.iter().enumerate() {
        let world = Arc::clone(&world);
        let f = &f;
        let res_ptr = res.get();
        let body = move || {
            // SAFETY: this closure only ever runs on the host thread,
            // inside the `run_event_loop` frame that owns `el`.
            let should_run = unsafe { !(*el_ptr).unwinding };
            if should_run {
                let reap_world = Arc::clone(&world);
                let rank = Rank::new(world, r);
                match catch_unwind(AssertUnwindSafe(|| f(&rank))) {
                    // SAFETY: res_ptr is this rank's exclusive slot.
                    Ok(v) => unsafe { *res_ptr = Some(v) },
                    Err(p) => unsafe {
                        let el = &mut *el_ptr;
                        if p.is::<crate::world::CrashStop>() {
                            // Crash-stop: the rank is gone, the world goes
                            // on. Reap its mailbox, park state, and any
                            // pending handoff so no scheduler structure —
                            // deadlock reports included — ever lists it
                            // again. Its result slot stays `None`.
                            el.crashed += 1;
                            el.waiting[r] = None;
                            el.handoff[r] = None;
                            reap_world.reap_rank(r);
                        } else if !p.is::<ForcedUnwind>() && el.panic_payload.is_none() {
                            el.panic_payload = Some(p);
                        }
                    },
                }
            }
            // SAFETY: exclusive access (single host thread, no switch).
            unsafe {
                let el = &mut *el_ptr;
                el.slots[r].done = true;
                el.live -= 1;
            }
        };
        // Erase the borrow of `f`/`results`: the fibers are all driven to
        // completion (or force-unwound) before this frame returns, so the
        // 'static lifetime is never actually relied upon past it.
        let body: Box<dyn FnOnce()> = Box::new(body);
        let body: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(body) };
        let slot = &mut el.slots[r];
        slot.payload.run = Some(body);
        slot.payload.final_ctx =
            (&mut slot.ctx as *mut Context, &el.host_ctx as *const Context);
        slot.ctx = prepare(&slot.stack, &mut *slot.payload as *mut Payload);
        el.ready.push(Reverse((0, r, WAKE_ENTRY)));
    }

    // Nested `run` calls (a rank driving an inner world) save and restore
    // the outer loop around their own.
    let prev_active = ACTIVE.with(|a| a.replace(el_ptr));
    loop {
        // SAFETY (this block and below): all EventLoop access happens on
        // this thread in scopes that end before any context switch.
        let next = unsafe {
            let el = &mut *el_ptr;
            if el.live == 0 {
                break;
            }
            el.ready.pop()
        };
        let Some(Reverse((_clock, r, kind))) = next else {
            // Live ranks but nothing runnable: every one of them is parked
            // on a receive no one will ever send. Report and unwind.
            let diag = unsafe { deadlock_report(el_ptr) };
            unsafe { force_unwind_all(el_ptr) };
            ACTIVE.with(|a| a.set(prev_active));
            flexio_types::flatten::set_flatten_scope(0);
            flexio_types::flatten::reset_flatten_cache();
            panic!("flexio-sim event loop deadlock: {diag}");
        };
        // Scoped borrow; must end before switching into the fiber.
        let (host, fctx) = {
            let el = unsafe { &mut *el_ptr };
            if el.slots[r].done {
                continue;
            }
            if kind != WAKE_ENTRY {
                // A park timer. It fires only if the rank is still in the
                // very park that set it (same generation); a handoff that
                // beat the deadline — or any later park — makes it stale.
                match el.waiting[r] {
                    Some(w) if w.gen == kind => {
                        el.waiting[r] = None;
                        el.timed_out[r] = true;
                    }
                    _ => continue,
                }
            } else {
                debug_assert!(el.waiting[r].is_none(), "wake entry for a parked rank");
            }
            el.current = r;
            (&mut el.host_ctx as *mut Context, &el.slots[r].ctx as *const Context)
        };
        flexio_types::flatten::set_flatten_scope(r as u64);
        // SAFETY: fctx is a live suspended (or fresh) fiber context.
        unsafe { switch_stacks(host, fctx) };
        let need_unwind = unsafe {
            let el = &mut *el_ptr;
            assert!(
                el.slots[r].stack.canary_ok(),
                "rank {r} overflowed its {stack_bytes}-byte fiber stack \
                 (raise FLEXIO_SIM_STACK_KB)"
            );
            el.panic_payload.is_some() && !el.unwinding
        };
        if need_unwind {
            // SAFETY: all fibers are parked; `el` outlives them.
            unsafe { force_unwind_all(el_ptr) };
        }
    }
    ACTIVE.with(|a| a.set(prev_active));
    // Leave the host thread's flatten cache as cold as we found our own:
    // scope 0 restored for direct (non-simulated) callers.
    flexio_types::flatten::set_flatten_scope(0);
    flexio_types::flatten::reset_flatten_cache();

    if let Some(p) = el.panic_payload.take() {
        drop(el);
        resume_unwind(p);
    }
    drop(el);
    results.into_iter().map(|c| c.into_inner()).collect()
}

/// Human-readable summary of who is stuck waiting on what.
unsafe fn deadlock_report(el: *mut EventLoop) -> String {
    let el = unsafe { &*el };
    let mut parked: Vec<String> = el
        .waiting
        .iter()
        .enumerate()
        .filter_map(|(r, w)| {
            w.map(|w| format!("rank {r} (clock {} ns) <- recv(src={}, tag={})", w.clock, w.src, w.tag))
        })
        .collect();
    let shown = parked.len().min(8);
    let elided = parked.len() - shown;
    parked.truncate(shown);
    let mut s = format!("{} of {} ranks parked with no message in flight: ", el.live, el.nprocs);
    s.push_str(&parked.join("; "));
    if elided > 0 {
        s.push_str(&format!("; … and {elided} more"));
    }
    if el.crashed > 0 {
        // Dead ranks are reaped at crash time, so they never appear in
        // the parked list above — only this tally mentions them.
        s.push_str(&format!(" ({} rank(s) crash-stopped earlier)", el.crashed));
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::world::{run_on, Backend};
    use crate::Phase;

    /// A workload exercising every park point: p2p, barrier, bcast,
    /// allgatherv, alltoallv, exchange, gatherv/scatterv, overlap windows.
    fn mixed_workload(r: &crate::rank::Rank) -> (u64, crate::rank::Stats, Vec<u8>) {
        let p = r.nprocs();
        let next = (r.rank() + 1) % p;
        let prev = (r.rank() + p - 1) % p;
        r.send(next, 1, &[r.rank() as u8; 32]);
        let got = r.recv(prev, 1);
        r.charge_pairs(got.len() as u64);
        r.barrier();
        let seed = r.bcast(0, if r.rank() == 0 { vec![7; 16] } else { vec![] });
        let all = r.allgatherv(&[r.rank() as u8, seed[0]]);
        let blocks: Vec<Vec<u8>> = (0..p).map(|d| vec![(r.rank() * p + d) as u8; 5]).collect();
        let x = r.alltoallv(blocks);
        let w = r.overlap_begin(r.now() + 10_000, Phase::Io);
        r.charge_memcpy(4096);
        r.overlap_complete(w);
        let g = r.gatherv(0, &x[prev]);
        let s = r.scatterv(0, if r.rank() == 0 { g } else { Vec::new() });
        let mut img: Vec<u8> = s;
        img.extend(all.into_iter().flatten());
        (r.now(), r.stats(), img)
    }

    #[test]
    fn event_loop_matches_threads_bit_identically() {
        for p in [1, 2, 5, 8] {
            let ev1 = run_on(Backend::EventLoop, p, CostModel::default(), mixed_workload);
            let ev2 = run_on(Backend::EventLoop, p, CostModel::default(), mixed_workload);
            let th = run_on(Backend::Threads, p, CostModel::default(), mixed_workload);
            assert_eq!(ev1, ev2, "event loop must be deterministic (p={p})");
            assert_eq!(ev1, th, "backends must agree on clocks+stats+bytes (p={p})");
        }
    }

    #[test]
    fn large_world_completes() {
        // O(p log p) traffic only (dissemination barrier + neighbour ring):
        // the O(p^2) collectives at this scale live in the release-mode
        // scale smoke test, not tier-1.
        let p = 2048;
        let out = run_on(Backend::EventLoop, p, CostModel::default(), |r| {
            r.send((r.rank() + 1) % p, 3, &(r.rank() as u64).to_le_bytes());
            let got = r.recv((r.rank() + p - 1) % p, 3);
            r.barrier();
            u64::from_le_bytes(got.try_into().unwrap())
        });
        for (r, &g) in out.iter().enumerate() {
            assert_eq!(g, ((r + p - 1) % p) as u64);
        }
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let got = std::panic::catch_unwind(|| {
            run_on(Backend::EventLoop, 2, CostModel::free(), |r| {
                // Both ranks receive a message nobody sends.
                let _ = r.recv((r.rank() + 1) % 2, 9);
            })
        });
        let err = got.expect_err("deadlocked world must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("deadlock"), "unexpected message: {msg}");
        assert!(msg.contains("tag=9"), "diagnostics should name the tag: {msg}");
    }

    #[test]
    fn rank_panic_propagates_and_unwinds_peers() {
        let got = std::panic::catch_unwind(|| {
            run_on(Backend::EventLoop, 4, CostModel::free(), |r| {
                if r.rank() == 2 {
                    panic!("boom from rank 2");
                }
                // Peers park forever; they must be force-unwound, not leaked.
                let _ = r.recv((r.rank() + 1) % 4, 1);
            })
        });
        let err = got.expect_err("rank panic must propagate");
        let msg = err.downcast_ref::<&str>().expect("original payload propagates");
        assert_eq!(*msg, "boom from rank 2");
    }

    #[test]
    fn drops_run_on_abandoned_stacks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let _ = std::panic::catch_unwind(|| {
            run_on(Backend::EventLoop, 3, CostModel::free(), |r| {
                let _probe = Probe;
                // Ranks 0 and 1 run first (lower ids at clock 0) and park
                // with a live Probe on their fiber stacks; then rank 2
                // panics and the scheduler must unwind the parked two.
                if r.rank() == 2 {
                    panic!("teardown");
                }
                let _ = r.recv(r.rank(), 5); // parks forever
            })
        });
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            3,
            "every rank's locals must be dropped, including parked fibers"
        );
    }

    #[test]
    fn nested_worlds_inside_a_fiber() {
        let out = run_on(Backend::EventLoop, 3, CostModel::free(), |r| {
            // Each rank drives its own inner world from fiber context.
            let inner = run_on(Backend::EventLoop, 2, CostModel::free(), |ir| {
                ir.allreduce_sum(ir.rank() as u64 + 1)
            });
            r.allreduce_sum(inner[0])
        });
        assert_eq!(out, vec![9, 9, 9]);
    }

    #[test]
    fn crash_stop_survivors_complete() {
        // Rank 2 crashes at its first checkpoint; survivors re-form the
        // world as a subgroup and finish a collective. Crashed slot None.
        let out = crate::world::run_crashable(4, CostModel::free(), &[(2, 0)], |r| {
            r.maybe_crash();
            let comm = r.subgroup(&[0, 1, 3]);
            comm.allreduce_sum(r.rank() as u64)
        });
        assert!(out[2].is_none(), "crashed rank must not produce a result");
        for (i, v) in out.iter().enumerate() {
            if i != 2 {
                assert_eq!(*v, Some(4), "survivor {i} must complete the collective");
            }
        }
    }

    #[test]
    fn crashed_rank_runs_destructors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let out = crate::world::run_crashable(2, CostModel::free(), &[(1, 0)], |r| {
            let _probe = Probe;
            r.maybe_crash();
            r.rank()
        });
        assert_eq!(out, vec![Some(0), None]);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2, "crash unwind must drop locals");
    }

    #[test]
    fn recv_timeout_is_deterministic() {
        // Nothing ever arrives: the watchdog fires at exactly the
        // deadline, twice in a row.
        for _ in 0..2 {
            let out = crate::world::run_crashable(2, CostModel::free(), &[(1, 0)], |r| {
                r.maybe_crash();
                let got = r.recv_timeout(1, 5, 12_345);
                (got.is_none(), r.now())
            });
            assert_eq!(out[0], Some((true, 12_345)));
        }
    }

    #[test]
    fn recv_timeout_delivers_before_deadline() {
        let out = crate::world::run_crashable(2, CostModel::free(), &[], |r| {
            if r.rank() == 1 {
                r.send(0, 5, b"hb");
                0
            } else {
                r.recv_timeout(1, 5, 1_000_000).expect("must arrive in time").len()
            }
        });
        assert_eq!(out[0], Some(2));
    }

    #[test]
    fn stale_park_timer_is_skipped() {
        // Rank 0's first timed park is satisfied long before its deadline;
        // the leftover timer entry must not disturb the second, untimed
        // park (generation check).
        let out = crate::world::run_crashable(2, CostModel::default(), &[], |r| {
            if r.rank() == 1 {
                r.send(0, 1, b"fast");
                r.advance(50_000_000); // well past rank 0's first deadline
                r.send(0, 2, b"late");
                Vec::new()
            } else {
                let a = r.recv_timeout(1, 1, r.now() + 10_000_000).expect("fast msg");
                let b = r.recv(1, 2);
                [a, b].concat()
            }
        });
        assert_eq!(out[0].as_deref(), Some(b"fastlate".as_slice()));
    }

    #[test]
    fn deadlock_report_never_lists_crashed_ranks() {
        let got = std::panic::catch_unwind(|| {
            crate::world::run_crashable(3, CostModel::free(), &[(1, 0)], |r| {
                r.maybe_crash();
                // Ranks 0 and 2 wait on the dead rank forever: deadlock.
                let _ = r.recv(1, 9);
            })
        });
        let err = got.expect_err("deadlocked world must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("deadlock"), "unexpected message: {msg}");
        assert!(msg.contains("crash-stopped"), "report should tally crashes: {msg}");
        assert!(
            !msg.contains("rank 1 ("),
            "dead ranks must be reaped out of the parked list: {msg}"
        );
    }

    #[test]
    fn messages_to_dead_ranks_are_dropped() {
        // The survivor eagerly sends to the dead rank; nothing leaks, the
        // world still terminates cleanly.
        let out = crate::world::run_crashable(2, CostModel::free(), &[(1, 0)], |r| {
            if r.rank() == 0 {
                r.recv_timeout(1, 7, 1_000); // let rank 1 die first
                for _ in 0..4 {
                    r.send(1, 3, &[0; 64]);
                }
            } else {
                r.maybe_crash();
            }
            r.rank()
        });
        assert_eq!(out, vec![Some(0), None]);
    }

    #[test]
    fn threads_escape_hatch_env() {
        // from_env honours FLEXIO_SIM_THREADS; don't mutate the process
        // env here (tests run threaded) — just check the parse contract.
        assert!(Backend::event_loop_supported() || Backend::from_env() == Backend::Threads);
    }
}
