//! Small seeded PRNG for deterministic workload generation.
//!
//! Replaces the external `rand` crate in tests and benches: an
//! xorshift64* generator is a few lines, has no dependencies, and is
//! deterministic across platforms, which is what reproducible virtual-time
//! experiments need.

/// An xorshift64* pseudo-random generator (Vigna, "An experimental
/// exploration of Marsaglia's xorshift generators, scrambled").
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
    /// Bits shifted off every output (see [`XorShift64Star::with_shrink`]).
    shrink: u32,
}

/// The largest useful shrink level: outputs still span `[0, 4)`, so
/// coin-flip draws keep both faces reachable.
pub const MAX_SHRINK: u32 = 62;

impl XorShift64Star {
    /// Create a generator from a seed. A zero seed (the one fixed point of
    /// the xorshift step) is remapped to a fixed non-zero constant.
    pub fn new(seed: u64) -> Self {
        Self::with_shrink(seed, 0)
    }

    /// A generator whose every output is right-shifted by `level` bits
    /// (clamped to [`MAX_SHRINK`]). Generators built on `base + draw %
    /// range` idioms then produce progressively *simpler* cases as the
    /// level rises — fewer ranks, smaller blocks, shorter runs — while
    /// staying fully determined by `(seed, level)`, which is what the
    /// property harness's greedy case shrinking replays.
    pub fn with_shrink(seed: u64, level: u32) -> Self {
        XorShift64Star {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
            shrink: level.min(MAX_SHRINK),
        }
    }

    /// Next random value: 64 bits at shrink level 0, `64 - level` bits
    /// (biased toward small values by construction) when shrinking.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> self.shrink
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below needs a non-zero bound");
        // Multiply-shift reduction; bias is negligible for the small
        // bounds used in tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = XorShift64Star::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = XorShift64Star::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shrink_level_zero_matches_new() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::with_shrink(42, 0);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shrink_bounds_outputs() {
        for level in [16u32, 32, 48, 56, 60, MAX_SHRINK] {
            let mut r = XorShift64Star::with_shrink(7, level);
            let bound = 1u64 << (64 - level);
            for _ in 0..100 {
                assert!(r.next_u64() < bound, "level {level} output escaped its bound");
            }
        }
        // Levels past MAX_SHRINK clamp rather than zeroing every draw.
        let mut r = XorShift64Star::with_shrink(7, 63);
        assert!((0..100).any(|_| r.next_u64() != 0));
    }
}
