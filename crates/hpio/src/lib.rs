//! # flexio-hpio — the HPIO benchmark and the paper's evaluation workloads
//!
//! HPIO (Ching et al., IPDPS 2006) generates *regular* access patterns
//! characterized by a region size, region count, and region spacing, with
//! independent contiguity choices for memory and file. It doubles as a
//! verification tool: every byte is a deterministic stamp of (rank, index).
//!
//! This crate provides:
//! * [`HpioSpec`] — the Fig. 4/Fig. 5 workload generator, including the
//!   two ways of describing the same file pattern that Fig. 4 compares:
//!   a *succinct* one-region filetype tiled by the view
//!   ([`TypeStyle::Succinct`], the paper's "struct" type) and a filetype
//!   that *enumerates* every region ([`TypeStyle::Enumerated`], the
//!   paper's "vector" type);
//! * [`TimeStepSpec`] — the Fig. 6 time-step pattern driving the
//!   persistent-file-realm experiment (Fig. 7): multi-element data points
//!   with all time slices of a point kept together, one collective write
//!   per time step.

#![warn(missing_docs)]

use flexio_types::{Datatype, Dt};

/// How the filetype describes the (identical) access pattern — the Fig. 4
/// "struct vs vector" axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeStyle {
    /// One region per filetype instance, tiled implicitly by the file
    /// view. `D = 1`: processing can skip whole datatypes.
    Succinct,
    /// A single filetype instance enumerating every region. `D = region
    /// count`: processing must scan every offset/length pair.
    Enumerated,
}

/// An HPIO workload: `region_count` regions of `region_size` bytes per
/// process, separated by `region_spacing`, interleaved across `nprocs`
/// processes round-robin (the classic non-contiguous scientific pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpioSpec {
    /// Bytes per region.
    pub region_size: u64,
    /// Regions per process.
    pub region_count: u64,
    /// Gap between one process's region and the next process's, bytes.
    pub region_spacing: u64,
    /// Non-contiguous in memory? (Adds `region_spacing` gaps between the
    /// regions in the user buffer.)
    pub mem_noncontig: bool,
    /// Non-contiguous in file? (false = each process gets one contiguous
    /// range of the file.)
    pub file_noncontig: bool,
    /// World size.
    pub nprocs: usize,
}

impl HpioSpec {
    /// The paper's Fig. 4 configuration: non-contiguous in memory and
    /// file, 4096 regions, 128-byte spacing, 64 processes.
    pub fn fig4(region_size: u64) -> Self {
        HpioSpec {
            region_size,
            region_count: 4096,
            region_spacing: 128,
            mem_noncontig: true,
            file_noncontig: true,
            nprocs: 64,
        }
    }

    /// Data bytes written per process.
    pub fn bytes_per_proc(&self) -> u64 {
        self.region_size * self.region_count
    }

    /// Aggregate data bytes across all processes.
    pub fn aggregate_bytes(&self) -> u64 {
        self.bytes_per_proc() * self.nprocs as u64
    }

    /// File-space slot size of one (region + spacing) unit.
    pub fn unit(&self) -> u64 {
        self.region_size + self.region_spacing
    }

    /// Per-rank view displacement and filetype. The same access pattern
    /// regardless of `style`; only its description differs.
    pub fn file_view(&self, rank: usize, style: TypeStyle) -> (u64, Dt) {
        assert!(rank < self.nprocs);
        if !self.file_noncontig {
            // Contiguous per-process range.
            let disp = rank as u64 * self.bytes_per_proc();
            return (disp, Datatype::bytes(self.region_size));
        }
        let stride = self.unit() * self.nprocs as u64;
        let disp = rank as u64 * self.unit();
        let region = Datatype::bytes(self.region_size);
        let ftype = match style {
            TypeStyle::Succinct => Datatype::resized(0, stride, region),
            TypeStyle::Enumerated => {
                Datatype::hvector(self.region_count, 1, stride as i64, region)
            }
        };
        (disp, ftype)
    }

    /// Memory type describing one region in the user buffer.
    pub fn mem_type(&self) -> Dt {
        let region = Datatype::bytes(self.region_size);
        if self.mem_noncontig {
            Datatype::resized(0, self.unit(), region)
        } else {
            region
        }
    }

    /// Number of memtype instances for the full access.
    pub fn mem_count(&self) -> u64 {
        self.region_count
    }

    /// Bytes the user buffer must span.
    pub fn buffer_span(&self) -> u64 {
        if self.mem_noncontig {
            (self.region_count - 1) * self.unit() + self.region_size
        } else {
            self.bytes_per_proc()
        }
    }

    /// Deterministic stamp for data byte `idx` of `rank`.
    pub fn stamp(&self, rank: usize, idx: u64) -> u8 {
        ((rank as u64 * 131 + idx * 7 + 13) % 251) as u8
    }

    /// Build the user buffer with stamps at the data positions.
    pub fn make_buffer(&self, rank: usize) -> Vec<u8> {
        let mut buf = vec![0u8; self.buffer_span() as usize];
        for i in 0..self.region_count {
            for b in 0..self.region_size {
                let idx = i * self.region_size + b;
                let pos = if self.mem_noncontig { i * self.unit() + b } else { idx };
                buf[pos as usize] = self.stamp(rank, idx);
            }
        }
        buf
    }

    /// File offset of data byte `idx` of `rank`.
    pub fn file_offset(&self, rank: usize, idx: u64) -> u64 {
        let region = idx / self.region_size;
        let within = idx % self.region_size;
        if self.file_noncontig {
            rank as u64 * self.unit() + region * self.unit() * self.nprocs as u64 + within
        } else {
            rank as u64 * self.bytes_per_proc() + region * self.region_size + within
        }
    }

    /// Verify the full file image against the stamps; returns the first
    /// mismatch as `(rank, idx, expected, got)`.
    pub fn verify(&self, content: &[u8]) -> Result<(), (usize, u64, u8, u8)> {
        for rank in 0..self.nprocs {
            for idx in 0..self.bytes_per_proc() {
                let off = self.file_offset(rank, idx) as usize;
                let want = self.stamp(rank, idx);
                let got = content.get(off).copied().unwrap_or(0);
                if got != want {
                    return Err((rank, idx, want, got));
                }
            }
        }
        Ok(())
    }
}

/// The Fig. 6 pattern: `points` multi-element data points; each point
/// holds `steps` time slices back to back; a slice holds `elems_per_point`
/// elements of `elem_size` bytes. One collective write per time step;
/// element `e` of every slice belongs to process `e mod nprocs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeStepSpec {
    /// Bytes per element (paper: 32).
    pub elem_size: u64,
    /// Elements per data point per time slice (paper: 100).
    pub elems_per_point: u64,
    /// Number of data points (paper: 2048).
    pub points: u64,
    /// Number of time steps (paper: 32).
    pub steps: u64,
    /// World size.
    pub nprocs: usize,
}

impl TimeStepSpec {
    /// The paper's Fig. 7 configuration for a given client count.
    pub fn fig7(nprocs: usize) -> Self {
        TimeStepSpec { elem_size: 32, elems_per_point: 100, points: 2048, steps: 32, nprocs }
    }

    /// Bytes of one time slice of one data point.
    pub fn slice_bytes(&self) -> u64 {
        self.elems_per_point * self.elem_size
    }

    /// Bytes of one whole data point (all time slices).
    pub fn point_bytes(&self) -> u64 {
        self.slice_bytes() * self.steps
    }

    /// Total file size.
    pub fn file_bytes(&self) -> u64 {
        self.point_bytes() * self.points
    }

    /// Aggregate bytes written per collective call (one time step).
    pub fn bytes_per_step(&self) -> u64 {
        self.slice_bytes() * self.points
    }

    /// Elements this rank owns in each slice.
    pub fn elems_of(&self, rank: usize) -> u64 {
        let p = self.nprocs as u64;
        let r = rank as u64;
        if r >= self.elems_per_point {
            0
        } else {
            (self.elems_per_point - r).div_ceil(p)
        }
    }

    /// Per-rank view (displacement, filetype) for time step `t`: this
    /// rank's elements of slice `t` in every data point. Succinct: one
    /// point per filetype instance.
    pub fn file_view(&self, rank: usize, t: u64) -> (u64, Dt) {
        assert!(rank < self.nprocs && t < self.steps);
        let n = self.elems_of(rank);
        let elem = Datatype::bytes(self.elem_size);
        // Elements of this rank within one slice, strided by nprocs.
        let in_slice = Datatype::vector(n.max(1), 1, self.nprocs as i64, elem);
        let per_point = Datatype::resized(0, self.point_bytes(), in_slice);
        let disp = t * self.slice_bytes() + rank as u64 * self.elem_size;
        (disp, per_point)
    }

    /// Bytes this rank writes per time step.
    pub fn bytes_per_rank_step(&self, rank: usize) -> u64 {
        self.elems_of(rank) * self.elem_size * self.points
    }

    /// Deterministic stamp for (rank, step, data byte index).
    pub fn stamp(&self, rank: usize, step: u64, idx: u64) -> u8 {
        ((rank as u64 * 37 + step * 101 + idx * 3 + 7) % 249) as u8
    }

    /// Build this rank's (contiguous) buffer for time step `t`.
    pub fn make_buffer(&self, rank: usize, t: u64) -> Vec<u8> {
        (0..self.bytes_per_rank_step(rank)).map(|i| self.stamp(rank, t, i)).collect()
    }

    /// File offset of data byte `idx` of `rank` at step `t`.
    pub fn file_offset(&self, rank: usize, t: u64, idx: u64) -> u64 {
        let per_elem = self.elem_size;
        let elem_i = idx / per_elem; // which owned element (global ordinal)
        let within = idx % per_elem;
        let n = self.elems_of(rank);
        let point = elem_i / n;
        let k = elem_i % n; // k-th owned element within the slice
        point * self.point_bytes()
            + t * self.slice_bytes()
            + (rank as u64 + k * self.nprocs as u64) * per_elem
            + within
    }

    /// Verify the final file against all steps' stamps.
    pub fn verify(&self, content: &[u8]) -> Result<(), (usize, u64, u64, u8, u8)> {
        for rank in 0..self.nprocs {
            for t in 0..self.steps {
                for idx in 0..self.bytes_per_rank_step(rank) {
                    let off = self.file_offset(rank, t, idx) as usize;
                    let want = self.stamp(rank, t, idx);
                    let got = content.get(off).copied().unwrap_or(0);
                    if got != want {
                        return Err((rank, t, idx, want, got));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexio_types::flatten;

    fn small() -> HpioSpec {
        HpioSpec {
            region_size: 8,
            region_count: 5,
            region_spacing: 4,
            mem_noncontig: true,
            file_noncontig: true,
            nprocs: 3,
        }
    }

    #[test]
    fn sizes() {
        let s = small();
        assert_eq!(s.bytes_per_proc(), 40);
        assert_eq!(s.aggregate_bytes(), 120);
        assert_eq!(s.unit(), 12);
        assert_eq!(s.buffer_span(), 4 * 12 + 8);
    }

    #[test]
    fn styles_describe_same_pattern() {
        let s = small();
        for rank in 0..3 {
            let (d1, t1) = s.file_view(rank, TypeStyle::Succinct);
            let (d2, t2) = s.file_view(rank, TypeStyle::Enumerated);
            assert_eq!(d1, d2);
            // Enumerate both: succinct tiled region_count times must equal
            // the enumerated instance.
            let f1 = flatten(&t1);
            let f2 = flatten(&t2);
            assert_eq!(f1.d(), 1);
            assert_eq!(f2.d(), s.region_count as usize);
            let mut tiled = Vec::new();
            for i in 0..s.region_count {
                for seg in &f1.segs {
                    tiled.push((seg.off + (i * f1.extent) as i64, seg.len));
                }
            }
            let enumerated: Vec<(i64, u64)> = f2.segs.iter().map(|x| (x.off, x.len)).collect();
            assert_eq!(tiled, enumerated, "rank {rank}");
        }
    }

    #[test]
    fn file_offsets_interleave() {
        let s = small();
        // Region 0: rank 0 at 0, rank 1 at 12, rank 2 at 24; region 1 at 36...
        assert_eq!(s.file_offset(0, 0), 0);
        assert_eq!(s.file_offset(1, 0), 12);
        assert_eq!(s.file_offset(2, 0), 24);
        assert_eq!(s.file_offset(0, 8), 36);
        assert_eq!(s.file_offset(0, 7), 7);
    }

    #[test]
    fn file_contig_offsets() {
        let s = HpioSpec { file_noncontig: false, ..small() };
        assert_eq!(s.file_offset(0, 0), 0);
        assert_eq!(s.file_offset(0, 39), 39);
        assert_eq!(s.file_offset(1, 0), 40);
    }

    #[test]
    fn buffer_stamps_where_expected() {
        let s = small();
        let buf = s.make_buffer(1);
        assert_eq!(buf[0], s.stamp(1, 0));
        assert_eq!(buf[7], s.stamp(1, 7));
        assert_eq!(buf[8], 0); // spacing gap
        assert_eq!(buf[12], s.stamp(1, 8));
    }

    #[test]
    fn verify_catches_corruption() {
        let s = small();
        // Build a correct image manually.
        let total = s.unit() * s.nprocs as u64 * s.region_count;
        let mut img = vec![0u8; total as usize];
        for r in 0..s.nprocs {
            for idx in 0..s.bytes_per_proc() {
                img[s.file_offset(r, idx) as usize] = s.stamp(r, idx);
            }
        }
        assert!(s.verify(&img).is_ok());
        img[12] ^= 0xFF;
        let err = s.verify(&img).unwrap_err();
        assert_eq!(err.0, 1); // rank 1's first region starts at 12
    }

    #[test]
    fn timestep_sizes() {
        let t = TimeStepSpec::fig7(16);
        assert_eq!(t.slice_bytes(), 3200);
        assert_eq!(t.point_bytes(), 102_400);
        assert_eq!(t.bytes_per_step(), 6_553_600); // the paper's 6.5 MB
        assert_eq!(t.file_bytes(), 209_715_200);
    }

    #[test]
    fn timestep_element_division() {
        let t = TimeStepSpec::fig7(16);
        let total: u64 = (0..16).map(|r| t.elems_of(r)).sum();
        assert_eq!(total, 100);
        // 100 elems over 16 procs: ranks 0..3 get 7, ranks 4..15 get 6.
        assert_eq!(t.elems_of(0), 7);
        assert_eq!(t.elems_of(3), 7);
        assert_eq!(t.elems_of(4), 6);
        assert_eq!(t.elems_of(15), 6);
    }

    #[test]
    fn timestep_offsets_disjoint_and_in_slice() {
        let t = TimeStepSpec {
            elem_size: 4,
            elems_per_point: 10,
            points: 3,
            steps: 2,
            nprocs: 4,
        };
        let mut seen = std::collections::HashSet::new();
        for rank in 0..4 {
            for step in 0..2 {
                for idx in 0..t.bytes_per_rank_step(rank) {
                    let off = t.file_offset(rank, step, idx);
                    assert!(off < t.file_bytes());
                    assert!(seen.insert(off), "offset {off} written twice");
                    // The offset must lie inside slice `step` of its point.
                    let within_point = off % t.point_bytes();
                    assert_eq!(within_point / t.slice_bytes(), step);
                }
            }
        }
        // Complete coverage: every byte written exactly once.
        assert_eq!(seen.len() as u64, t.file_bytes());
    }

    #[test]
    fn timestep_view_matches_offsets() {
        use flexio_types::FileView;
        use std::sync::Arc;
        let t = TimeStepSpec {
            elem_size: 4,
            elems_per_point: 10,
            points: 3,
            steps: 2,
            nprocs: 4,
        };
        for rank in 0..4 {
            for step in 0..2 {
                let (disp, ft) = t.file_view(rank, step);
                let view = FileView::new(disp, Arc::new(flatten(&ft)), 1).unwrap();
                for idx in 0..t.bytes_per_rank_step(rank) {
                    assert_eq!(
                        view.data_to_file(idx),
                        t.file_offset(rank, step, idx),
                        "rank {rank} step {step} idx {idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_procs_than_elements() {
        let t = TimeStepSpec {
            elem_size: 4,
            elems_per_point: 3,
            points: 2,
            steps: 1,
            nprocs: 5,
        };
        assert_eq!(t.elems_of(3), 0);
        assert_eq!(t.elems_of(4), 0);
        assert_eq!(t.bytes_per_rank_step(4), 0);
        let total: u64 = (0..5).map(|r| t.bytes_per_rank_step(r)).sum();
        assert_eq!(total, t.bytes_per_step());
    }
}
