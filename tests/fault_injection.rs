//! Chaos suite: deterministic fault injection through both engines.
//!
//! The fault model's contract is that faults perturb *time* and
//! *outcomes*, never data, and that collective calls stay collective.
//! Property-tested over random workloads, engines, hint combinations and
//! fault plans (transient OST errors, straggler OSTs, lock stalls):
//!
//! * every rank of a collective call returns the same `Ok`/`Err`
//!   outcome, and any error is a collectively-agreed
//!   [`IoError::Transient`] — never a hang or a split outcome;
//! * the bytes on disk and the bytes read back are identical to a
//!   fault-free oracle run of the same workload, even when retries
//!   exhaust mid-call;
//! * retry accounting is conservative: `sum(io_retries)` across ranks
//!   never exceeds the injector's `faults_injected`;
//! * each rank's phase buckets still sum to its elapsed clock;
//! * with no plan installed, every fault counter stays zero.

use flexio::core::{Engine, ExchangeMode, Hints, IoError, PipelineDepth};
use flexio::pfs::{FaultPlan, Pfs, PfsConfig, PfsCostModel, StragglerSpec};
use flexio::sim::prop::Runner;
use flexio::sim::{Stats, XorShift64Star};
use flexio::workload::{env_zero_copy, read_file, run_tiled, RankOutcome, TiledShape};
use std::sync::Arc;

/// One randomized chaos case: a tiled collective workload, the engine and
/// hints to run it under, and the fault plan to inject.
#[derive(Debug, Clone)]
struct Chaos {
    nprocs: usize,
    /// Bytes per filetype block.
    block: u64,
    /// Filetype repetitions per collective call.
    reps: u64,
    /// Collective writes before the final collective read.
    steps: u64,
    aggs: usize,
    cb: usize,
    engine: Engine,
    exchange: ExchangeMode,
    pfr: bool,
    depth: PipelineDepth,
    io_retries: u32,
    backoff_us: u64,
    locking: bool,
    plan: FaultPlan,
}

fn random_chaos(rng: &mut XorShift64Star) -> Chaos {
    let nprocs = 2 + (rng.next_u64() % 5) as usize; // 2..=6
    let mut plan = FaultPlan::transient(rng.next_u64(), (rng.next_u64() % 251) as f64 / 1000.0);
    if rng.next_u64().is_multiple_of(3) {
        plan.stragglers.push(StragglerSpec {
            ost: (rng.next_u64() % 4) as usize,
            multiplier: 1.0 + (rng.next_u64() % 8) as f64,
            from_ns: 0,
            until_ns: u64::MAX,
        });
    }
    let locking = rng.next_u64().is_multiple_of(4);
    if locking && rng.next_u64().is_multiple_of(2) {
        plan.lock_stall_ns = 100 + rng.next_u64() % 2000;
    }
    Chaos {
        nprocs,
        block: 8 * (1 + rng.next_u64() % 8), // 8..=64
        reps: 4 + rng.next_u64() % 21,       // 4..=24
        steps: 1 + rng.next_u64() % 3,
        aggs: 1 + (rng.next_u64() as usize) % nprocs,
        cb: [128, 256, 512, 1024][(rng.next_u64() % 4) as usize],
        engine: if rng.next_u64().is_multiple_of(2) { Engine::Flexible } else { Engine::Romio },
        exchange: if rng.next_u64().is_multiple_of(2) {
            ExchangeMode::Nonblocking
        } else {
            ExchangeMode::Alltoallw
        },
        pfr: rng.next_u64().is_multiple_of(2),
        depth: match rng.next_u64() % 4 {
            0..=2 => PipelineDepth::Fixed(1 + (rng.next_u64() % 4) as u32),
            _ => PipelineDepth::Auto,
        },
        io_retries: 10 + (rng.next_u64() % 7) as u32, // 10..=16
        backoff_us: rng.next_u64() % 300,
        locking,
        plan,
    }
}

fn chaos_pfs(c: &Chaos, faults: bool) -> Arc<Pfs> {
    let cfg = PfsConfig {
        n_osts: 4,
        stripe_size: 512,
        page_size: 64,
        locking: c.locking,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    };
    if faults {
        Pfs::with_faults(cfg, c.plan.clone())
    } else {
        Pfs::new(cfg)
    }
}

fn chaos_hints(c: &Chaos) -> Hints {
    Hints {
        engine: c.engine,
        cb_nodes: Some(c.aggs),
        cb_buffer_size: c.cb,
        exchange: c.exchange,
        persistent_file_realms: c.pfr,
        pipeline_depth: c.depth,
        io_retries: c.io_retries,
        retry_backoff_us: c.backoff_us,
        zero_copy: env_zero_copy(),
        ..Hints::default()
    }
}

/// `c`'s workload as the shared tiled shape.
fn chaos_shape(c: &Chaos) -> TiledShape {
    TiledShape { nprocs: c.nprocs, block: c.block, reps: c.reps, steps: c.steps }
}

/// Run `c`'s workload (`steps` collective writes, one collective read),
/// with or without the fault plan installed. Returns the file image, the
/// injector's fault count, and every rank's outcome.
fn roundtrip(c: &Chaos, faults: bool) -> (Vec<u8>, u64, Vec<RankOutcome>) {
    let pfs = chaos_pfs(c, faults);
    let out = run_tiled(&pfs, "chaos", chaos_shape(c), &chaos_hints(c), true);
    let img = read_file(&pfs, "chaos");
    (img, pfs.stats().faults_injected, out)
}

/// The tentpole chaos property: under any random plan, outcomes agree on
/// every rank, data matches the fault-free oracle byte for byte, and the
/// retry ledger never exceeds the faults actually injected.
#[test]
fn chaos_collectives_stay_collective() {
    Runner::new("chaos_collectives_stay_collective")
        .cases(24)
        .regressions(include_str!("fault_injection.proptest-regressions"))
        .run(random_chaos, |c| {
            let (img_f, faults, out_f) = roundtrip(c, true);
            let (img_o, oracle_faults, out_o) = roundtrip(c, false);
            assert_eq!(oracle_faults, 0, "oracle must inject nothing");
            assert_eq!(img_f, img_o, "file image must not depend on faults");
            let lead = &out_f[0].2;
            for (r, (now, s, results, back)) in out_f.iter().enumerate() {
                assert_eq!(results, lead, "rank {r} collective outcome differs");
                for res in results {
                    if let Err(e) = res {
                        assert!(
                            matches!(e, IoError::Transient(_)),
                            "rank {r}: collective error must be Transient, got {e:?}"
                        );
                    }
                }
                assert_eq!(back, &out_o[r].3, "rank {r} read-back diverges");
                assert_eq!(s.phase_ns.iter().sum::<u64>(), *now, "rank {r} phase sum");
            }
            let retries: u64 = out_f.iter().map(|o| o.1.io_retries).sum();
            assert!(retries <= faults, "retries {retries} exceed faults {faults}");
            for (r, o) in out_o.iter().enumerate() {
                assert_eq!(o.1.io_retries, 0, "oracle rank {r} retried");
                assert_eq!(o.1.degraded_cycles, 0, "oracle rank {r} degraded");
                assert_eq!(o.1.realms_rebalanced, 0, "oracle rank {r} rebalanced");
            }
        });
}

/// At `transient_rate` 1.0 every retry budget exhausts: each collective
/// call must return the *same* `IoError::Transient` on every rank — the
/// agreement reduction, not luck — while the data still lands.
#[test]
fn exhausted_retries_agree_on_one_error() {
    for engine in [Engine::Flexible, Engine::Romio] {
        let c = Chaos {
            nprocs: 4,
            block: 64,
            reps: 8,
            steps: 2,
            aggs: 2,
            cb: 512,
            engine,
            exchange: ExchangeMode::Nonblocking,
            pfr: false,
            depth: PipelineDepth::Fixed(2),
            io_retries: 2,
            backoff_us: 50,
            locking: false,
            plan: FaultPlan::transient(7, 1.0),
        };
        let (img_f, faults, out_f) = roundtrip(&c, true);
        let (img_o, _, _) = roundtrip(&c, false);
        assert!(faults > 0, "{engine:?}: rate 1.0 must inject faults");
        assert_eq!(img_f, img_o, "{engine:?}: bytes must land despite exhaustion");
        let lead = &out_f[0].2;
        assert!(
            lead.iter().all(|r| matches!(r, Err(IoError::Transient(_)))),
            "{engine:?}: every call must exhaust its retries, got {lead:?}"
        );
        // Retry-count saturation keeps the cause: the surfaced error's
        // `source()` chain must bottom out at the injected PFS fault.
        for r in lead {
            let e = r.as_ref().expect_err("exhaustion checked above");
            let src = std::error::Error::source(e)
                .unwrap_or_else(|| panic!("{engine:?}: exhausted error lost its source: {e}"));
            let pe = src
                .downcast_ref::<flexio::pfs::PfsError>()
                .expect("source must be the underlying PfsError");
            assert_eq!(pe.kind, flexio::pfs::PfsErrorKind::TransientOst);
            assert!(src.source().is_none(), "PfsError is the chain's root");
        }
        for (r, o) in out_f.iter().enumerate() {
            assert_eq!(&o.2, lead, "{engine:?}: rank {r} disagrees on the error");
        }
        let retries: u64 = out_f.iter().map(|o| o.1.io_retries).sum();
        assert!(retries <= faults, "{engine:?}: retries {retries} > faults {faults}");
    }
}

/// No plan installed: the fault path must be invisible — zero retries,
/// zero degradation, zero injected faults, all calls `Ok`.
#[test]
fn disabled_faults_count_nothing() {
    for engine in [Engine::Flexible, Engine::Romio] {
        let c = Chaos {
            nprocs: 4,
            block: 32,
            reps: 16,
            steps: 2,
            aggs: 3,
            cb: 256,
            engine,
            exchange: ExchangeMode::Alltoallw,
            pfr: true,
            depth: PipelineDepth::Auto,
            io_retries: 4,
            backoff_us: 100,
            locking: false,
            plan: FaultPlan::default(),
        };
        let (_, faults, out) = roundtrip(&c, false);
        assert_eq!(faults, 0, "{engine:?}: faults injected without a plan");
        for (r, (_, s, results, _)) in out.iter().enumerate() {
            assert!(results.iter().all(|x| x.is_ok()), "{engine:?}: rank {r} errored");
            assert_eq!(s.io_retries, 0, "{engine:?}: rank {r} retried");
            assert_eq!(s.degraded_cycles, 0, "{engine:?}: rank {r} degraded");
            assert_eq!(s.realms_rebalanced, 0, "{engine:?}: rank {r} rebalanced");
        }
    }
}

/// A persistent straggler OST under the flexible engine with persistent
/// file realms: the EWMA detector must flag degraded cycles and the
/// engine must rebalance realms away from the slow aggregator — without
/// changing a single byte relative to the fault-free oracle.
#[test]
fn straggler_degrades_and_rebalances() {
    // Geometry chosen so each aggregator's realm maps to exactly one
    // OST: 4 ranks x 64 B blocks x 64 reps = 16 KiB span, 2 aggregators
    // -> 8 KiB block-cyclic realms, stripe 8 KiB over 2 OSTs.
    let c = Chaos {
        nprocs: 4,
        block: 64,
        reps: 64,
        steps: 4,
        aggs: 2,
        cb: 2048,
        engine: Engine::Flexible,
        exchange: ExchangeMode::Nonblocking,
        pfr: true,
        depth: PipelineDepth::Fixed(1),
        io_retries: 4,
        backoff_us: 0,
        locking: false,
        plan: FaultPlan::straggler(0, 8.0),
    };
    let pfs_cfg = PfsConfig {
        n_osts: 2,
        stripe_size: 8192,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    };
    let mut hints = chaos_hints(&c);
    hints.fr_alignment = Some(2048);
    let run_once = |pfs: Arc<Pfs>| {
        let out = run_tiled(&pfs, "slow", chaos_shape(&c), &hints, false);
        assert!(out.iter().all(|(_, _, results, _)| results.iter().all(|r| r.is_ok())));
        (read_file(&pfs, "slow"), out)
    };
    let (img_s, out_s) = run_once(Pfs::with_faults(pfs_cfg, c.plan.clone()));
    let (img_o, out_o) = run_once(Pfs::new(pfs_cfg));
    assert_eq!(img_s, img_o, "rebalancing must not change the bytes");
    let degraded: u64 = out_s.iter().map(|(_, s, _, _)| s.degraded_cycles).sum();
    let rebalanced: u64 = out_s.iter().map(|(_, s, _, _)| s.realms_rebalanced).sum();
    assert!(degraded > 0, "straggler OST never flagged as a degraded cycle");
    assert!(rebalanced > 0, "no realm rebalancing despite a persistent straggler");
    for (r, (_, s, _, _)) in out_o.iter().enumerate() {
        assert_eq!(s.degraded_cycles, 0, "oracle rank {r} degraded");
        assert_eq!(s.realms_rebalanced, 0, "oracle rank {r} rebalanced");
    }
}

/// The proportional rebalancer must converge in ONE detection cycle: the
/// straggler's share shrinks straight to what its measured slowdown
/// supports (split across BOTH healthy aggregators), so later collective
/// calls see a balanced load and never trigger a second handoff. The old
/// halving-to-one-helper policy needed several detections to reach the
/// same point, each one dropping the schedule cache again.
#[test]
fn rebalance_converges_in_one_detection() {
    // Geometry: 6 ranks x 64 B blocks x 64 reps = 24 KiB span, 3
    // aggregators -> 8 KiB block-cyclic realms, stripe 8 KiB over 3 OSTs,
    // so each realm maps to exactly one OST and OST 0 (x8 slower) slows
    // exactly aggregator 0.
    let c = Chaos {
        nprocs: 6,
        block: 64,
        reps: 64,
        steps: 4,
        aggs: 3,
        cb: 2048,
        engine: Engine::Flexible,
        exchange: ExchangeMode::Nonblocking,
        pfr: true,
        depth: PipelineDepth::Fixed(1),
        io_retries: 4,
        backoff_us: 0,
        locking: false,
        plan: FaultPlan::straggler(0, 8.0),
    };
    let pfs_cfg = PfsConfig {
        n_osts: 3,
        stripe_size: 8192,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    };
    let mut hints = chaos_hints(&c);
    hints.fr_alignment = Some(2048);
    let run_once = |pfs: Arc<Pfs>| {
        let out = run_tiled(&pfs, "conv", chaos_shape(&c), &hints, false);
        assert!(out.iter().all(|(_, _, results, _)| results.iter().all(|r| r.is_ok())));
        (read_file(&pfs, "conv"), out)
    };
    let (img_s, out_s) = run_once(Pfs::with_faults(pfs_cfg, c.plan.clone()));
    let (img_o, _) = run_once(Pfs::new(pfs_cfg));
    assert_eq!(img_s, img_o, "rebalancing must not change the bytes");
    let degraded: u64 = out_s.iter().map(|(_, s, _, _)| s.degraded_cycles).sum();
    assert!(degraded > 0, "straggler OST never flagged");
    // Exactly one collective rebalance event: every rank notes it once,
    // and no later call detects a residual imbalance.
    let rebalanced: u64 = out_s.iter().map(|(_, s, _, _)| s.realms_rebalanced).sum();
    assert_eq!(
        rebalanced,
        c.nprocs as u64,
        "expected one collective rebalance event (one note per rank), got {rebalanced}"
    );
}

/// A realm rebalance patches the cached exchange schedule in place
/// instead of dropping it: the call after the handoff still probes as a
/// hit, so the whole run derives exactly once — the rebalance is a
/// patch, never a second full miss.
#[test]
fn rebalance_patches_schedule_cache_without_a_miss() {
    // Same geometry as `rebalance_converges_in_one_detection`: OST 0
    // (x8 slower) slows exactly aggregator 0, one collective handoff.
    let c = Chaos {
        nprocs: 6,
        block: 64,
        reps: 64,
        steps: 4,
        aggs: 3,
        cb: 2048,
        engine: Engine::Flexible,
        exchange: ExchangeMode::Nonblocking,
        pfr: true,
        depth: PipelineDepth::Fixed(1),
        io_retries: 4,
        backoff_us: 0,
        locking: false,
        plan: FaultPlan::straggler(0, 8.0),
    };
    let pfs_cfg = PfsConfig {
        n_osts: 3,
        stripe_size: 8192,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    };
    let mut hints = chaos_hints(&c);
    hints.fr_alignment = Some(2048);
    let pfs = Pfs::with_faults(pfs_cfg, c.plan.clone());
    let out: Vec<Stats> = run_tiled(&pfs, "patch", chaos_shape(&c), &hints, false)
        .into_iter()
        .map(|(_, stats, results, _)| {
            assert!(results.iter().all(|r| r.is_ok()), "patch-run op failed");
            stats
        })
        .collect();
    let rebalanced: u64 = out.iter().map(|s| s.realms_rebalanced).sum();
    assert_eq!(rebalanced, c.nprocs as u64, "expected exactly one rebalance event");
    for (r, s) in out.iter().enumerate() {
        assert_eq!(s.schedule_cache_patches, 1, "rank {r}: handoff must patch the schedule");
        assert_eq!(
            s.schedule_cache_misses, 1,
            "rank {r}: a rebalance must not cost a second full derivation"
        );
        assert_eq!(
            s.schedule_cache_hits,
            c.steps - 1,
            "rank {r}: every later call must replay the (patched) schedule"
        );
    }
}

/// Lock-manager stalls move clocks, not bytes: with locking on, a
/// stalled run finishes no earlier than the stall-free run and produces
/// the identical image.
#[test]
fn lock_stalls_only_move_time() {
    let mk = |stall: u64| {
        let cfg = PfsConfig {
            n_osts: 4,
            stripe_size: 512,
            page_size: 64,
            locking: true,
            lock_expansion: false,
            client_cache: false,
            cost: PfsCostModel::default(),
        };
        if stall > 0 {
            Pfs::with_faults(cfg, FaultPlan { lock_stall_ns: stall, ..FaultPlan::default() })
        } else {
            Pfs::new(cfg)
        }
    };
    let work = |pfs: Arc<Pfs>| {
        let shape = TiledShape { nprocs: 4, block: 64, reps: 16, steps: 1 };
        let out: Vec<u64> = run_tiled(&pfs, "dlm", shape, &Hints::default(), false)
            .into_iter()
            .map(|(now, _, results, _)| {
                assert!(results.iter().all(|r| r.is_ok()), "dlm op failed");
                now
            })
            .collect();
        (read_file(&pfs, "dlm"), out)
    };
    let (img_fast, t_fast) = work(mk(0));
    let (img_slow, t_slow) = work(mk(10_000));
    assert_eq!(img_fast, img_slow, "lock stalls changed bytes");
    for r in 0..4 {
        assert!(
            t_slow[r] >= t_fast[r],
            "rank {r}: stalled run finished earlier ({} < {})",
            t_slow[r],
            t_fast[r]
        );
    }
}
