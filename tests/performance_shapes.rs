//! Shape tests: the paper's qualitative performance claims must hold in
//! the simulator (who wins, in which regime) — these are the invariants
//! the figure harnesses rely on, checked at miniature scale so they run
//! in CI time.

use flexio::core::{BalancedLoad, Engine, EvenAar, Hints, MpiFile, RealmAssigner};
use flexio::hpio::{HpioSpec, TimeStepSpec, TypeStyle};
use flexio::io::IoMethod;
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run, CostModel};
use flexio::types::Datatype;
use std::sync::Arc;

/// Run an HPIO write and return the max completion time across ranks (ns).
fn hpio_time(spec: HpioSpec, style: TypeStyle, hints: Hints, pfs: &Arc<Pfs>, path: &str) -> u64 {
    let pfs = Arc::clone(pfs);
    let path = path.to_string();
    let times = run(spec.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, &path, hints.clone()).unwrap();
        let (disp, ftype) = spec.file_view(rank.rank(), style);
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let buf = spec.make_buffer(rank.rank());
        let t0 = rank.now();
        f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
        let t = rank.now() - t0;
        f.close().unwrap();
        rank.allreduce_max(t)
    });
    times[0]
}

fn default_pfs() -> Arc<Pfs> {
    Pfs::new(PfsConfig::default())
}

#[test]
fn fig4_shape_struct_processes_fewer_pairs_than_vector() {
    // §6.2: succinct filetypes let processing skip whole datatypes; the
    // enumerated vector type must be evaluated pair by pair.
    let spec = HpioSpec {
        region_size: 64,
        region_count: 512,
        region_spacing: 128,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs: 8,
    };
    let pairs = |style: TypeStyle| {
        let pfs = default_pfs();
        let out = run(spec.nprocs, CostModel::default(), move |rank| {
            let hints = Hints { cb_nodes: Some(4), ..Hints::default() };
            let mut f = MpiFile::open(rank, &pfs, "f", hints).unwrap();
            let (disp, ftype) = spec.file_view(rank.rank(), style);
            f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
            let buf = spec.make_buffer(rank.rank());
            f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
            f.close().unwrap();
            rank.stats().pairs_processed
        });
        out.iter().sum::<u64>()
    };
    let succinct = pairs(TypeStyle::Succinct);
    let enumerated = pairs(TypeStyle::Enumerated);
    assert!(
        enumerated > succinct * 3,
        "enumerated={enumerated} should be >> succinct={succinct}"
    );
}

#[test]
fn fig4_shape_new_struct_beats_new_vector_at_small_regions() {
    // Small regions => datatype processing dominates => struct wins.
    let spec = HpioSpec {
        region_size: 16,
        region_count: 1024,
        region_spacing: 128,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs: 8,
    };
    let hints = Hints { cb_nodes: Some(4), ..Hints::default() };
    let t_struct = hpio_time(spec, TypeStyle::Succinct, hints.clone(), &default_pfs(), "a");
    let t_vector = hpio_time(spec, TypeStyle::Enumerated, hints, &default_pfs(), "b");
    assert!(
        t_struct < t_vector,
        "struct {t_struct} should beat vector {t_vector}"
    );
}

#[test]
fn fig4_shape_old_metadata_volume_exceeds_new_struct() {
    // §5.3: the old engine ships M offset/length pairs; the new engine
    // ships the D-pair filetype. With a succinct type, bytes on the wire
    // for metadata differ by orders of magnitude.
    let spec = HpioSpec {
        region_size: 16,
        region_count: 2048,
        region_spacing: 64,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs: 4,
    };
    let sent_bytes = |engine: Engine, style: TypeStyle| {
        let pfs = default_pfs();
        let out = run(spec.nprocs, CostModel::default(), move |rank| {
            // Zero-byte payload isolation: measure a *tiny* region so data
            // bytes are negligible next to metadata.
            let hints = Hints { engine, cb_nodes: Some(4), ..Hints::default() };
            let mut f = MpiFile::open(rank, &pfs, "f", hints).unwrap();
            let (disp, ftype) = spec.file_view(rank.rank(), style);
            f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
            let buf = spec.make_buffer(rank.rank());
            f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
            f.close().unwrap();
            rank.stats().bytes_sent
        });
        out.iter().sum::<u64>()
    };
    let old = sent_bytes(Engine::Romio, TypeStyle::Enumerated);
    let new_struct = sent_bytes(Engine::Flexible, TypeStyle::Succinct);
    // Both move the same data; the old engine adds 16 B * M of metadata.
    let data = spec.aggregate_bytes();
    let old_meta = old.saturating_sub(data);
    let new_meta = new_struct.saturating_sub(data);
    assert!(
        old_meta > new_meta * 4,
        "old metadata {old_meta} should dwarf new+struct {new_meta}"
    );
}

#[test]
fn fig5_shape_sieve_wins_small_extent_naive_wins_large() {
    // §6.3: conditional data sieving — the datatype extent decides.
    let mk_spec = |region: u64, extent: u64, nprocs: usize| HpioSpec {
        region_size: region,
        region_count: 64,
        region_spacing: extent - region,
        mem_noncontig: false,
        file_noncontig: true,
        nprocs,
    };
    let time_with = |spec: HpioSpec, method: IoMethod, path: &str| {
        let hints = Hints { io_method: method, cb_nodes: Some(2), ..Hints::default() };
        hpio_time(spec, TypeStyle::Succinct, hints, &default_pfs(), path)
    };
    // 1 KiB extent, 50% useful: sieve should win.
    let spec_small = mk_spec(512, 1024, 4);
    let sieve_small = time_with(spec_small, IoMethod::DataSieve { buffer: 512 << 10 }, "s1");
    let naive_small = time_with(spec_small, IoMethod::Naive, "n1");
    assert!(
        sieve_small < naive_small,
        "1K extent: sieve {sieve_small} should beat naive {naive_small}"
    );
    // 64 KiB extent, 50% useful: naive should win.
    let spec_large = mk_spec(32 << 10, 64 << 10, 4);
    let sieve_large = time_with(spec_large, IoMethod::DataSieve { buffer: 512 << 10 }, "s2");
    let naive_large = time_with(spec_large, IoMethod::Naive, "n2");
    assert!(
        naive_large < sieve_large,
        "64K extent: naive {naive_large} should beat sieve {sieve_large}"
    );
    // The conditional picks the winner in both regimes.
    let cond = IoMethod::Conditional { extent_threshold: 16 << 10, sieve_buffer: 512 << 10 };
    let cond_small = time_with(spec_small, cond, "c1");
    let cond_large = time_with(spec_large, cond, "c2");
    assert!(cond_small <= naive_small);
    assert!(cond_large <= sieve_large);
}

#[test]
fn fig7_shape_pfr_plus_alignment_minimizes_lock_traffic() {
    // §6.4: PFR + aligned realms => locks are acquired once and never
    // revoked; shifting unaligned realms => ping-pong.
    // Data sieving is always on in the paper's PFR experiment (§6.4): the
    // aggregator writes one contiguous sieve span per cycle, so the lock
    // manager sees realm-shaped extents. Realm boundaries shift by one
    // slice per step, so unaligned configurations keep crossing stripes.
    let spec = TimeStepSpec {
        elem_size: 32,
        elems_per_point: 16,
        points: 64,
        steps: 8,
        nprocs: 8,
    };
    let lock_stats = |pfr: bool, align: bool| {
        // Stripe == slice size: each step's realm shift crosses exactly
        // one stripe, so unaligned/shifting configurations must re-lock.
        let pfs = Pfs::new(PfsConfig {
            n_osts: 4,
            stripe_size: 512,
            page_size: 64,
            locking: true,
            lock_expansion: true,
            client_cache: true,
            cost: PfsCostModel::default(),
        });
        let pfs2 = Arc::clone(&pfs);
        run(spec.nprocs, CostModel::default(), move |rank| {
            let hints = Hints {
                persistent_file_realms: pfr,
                fr_alignment: align.then_some(512),
                cb_nodes: Some(4),
                io_method: IoMethod::DataSieve { buffer: 512 << 10 },
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs2, "ts", hints).unwrap();
            for t in 0..spec.steps {
                let (disp, ftype) = spec.file_view(rank.rank(), t);
                f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
                let buf = spec.make_buffer(rank.rank(), t);
                let n = buf.len() as u64;
                f.write_all(&buf, &Datatype::bytes(n.max(1)), (n > 0) as u64).unwrap();
            }
            f.close().unwrap();
        });
        pfs.stats().lock_revocations
    };
    let best = lock_stats(true, true);
    let worst = lock_stats(false, false);
    assert!(worst > 0, "the shifting-unaligned regime must revoke locks");
    assert!(
        best * 4 < worst,
        "pfr+align revocations {best} should be far below none {worst}"
    );
}

#[test]
fn fig7_shape_pfr_alignment_fastest_overall() {
    // Data sieving is always on in the paper's PFR experiment (§6.4): the
    // aggregator writes one contiguous sieve span per cycle, so the lock
    // manager sees realm-shaped extents. Realm boundaries shift by one
    // slice per step, so unaligned configurations keep crossing stripes.
    let spec = TimeStepSpec {
        elem_size: 32,
        elems_per_point: 16,
        points: 64,
        steps: 8,
        nprocs: 8,
    };
    let time_for = |pfr: bool, align: bool| {
        // Stripe == slice size: each step's realm shift crosses exactly
        // one stripe, so unaligned/shifting configurations must re-lock.
        let pfs = Pfs::new(PfsConfig {
            n_osts: 4,
            stripe_size: 512,
            page_size: 64,
            locking: true,
            lock_expansion: true,
            client_cache: true,
            cost: PfsCostModel::default(),
        });
        let out = run(spec.nprocs, CostModel::default(), move |rank| {
            let hints = Hints {
                persistent_file_realms: pfr,
                fr_alignment: align.then_some(512),
                cb_nodes: Some(4),
                io_method: IoMethod::DataSieve { buffer: 512 << 10 },
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "ts", hints).unwrap();
            let t0 = rank.now();
            for t in 0..spec.steps {
                let (disp, ftype) = spec.file_view(rank.rank(), t);
                f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
                let buf = spec.make_buffer(rank.rank(), t);
                let n = buf.len() as u64;
                f.write_all(&buf, &Datatype::bytes(n.max(1)), (n > 0) as u64).unwrap();
            }
            let elapsed = rank.now() - t0;
            f.close().unwrap();
            rank.allreduce_max(elapsed)
        });
        out[0]
    };
    // Best-of-3, like the paper's best-of-5 on a shared file system.
    let both = (0..3).map(|_| time_for(true, true)).min().unwrap();
    let neither = (0..3).map(|_| time_for(false, false)).min().unwrap();
    assert!(
        both < neither,
        "pfr+align {both} should beat neither {neither}"
    );
}

#[test]
fn ablation_balanced_realms_beat_even_on_clustered_access() {
    // §7 future work: sparse clusters make the even AAR split imbalanced.
    // Each rank's data is one stripe-sized cluster near the file start;
    // a single straggler byte at 1 GiB stretches the AAR so the even
    // split leaves all real data in aggregator 0's realm. Locking and
    // client caching are off: the claim under test is aggregator load
    // balance, and DLM revocation timing (±1.5 ms per event, wall-clock
    // service order dependent) would otherwise drown the signal.
    let nprocs = 4;
    let cluster: u64 = 64 << 10; // = one stripe (custom small-stripe fs)
    let time_with = |assigner: Arc<dyn RealmAssigner>| {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 4,
            stripe_size: 64 << 10,
            page_size: 4096,
            locking: false,
            lock_expansion: false,
            client_cache: false,
            ..PfsConfig::default()
        });
        let out = run(nprocs, CostModel::default(), move |rank| {
            let hints = Hints {
                realm_assigner: Some(Arc::clone(&assigner)),
                cb_nodes: Some(4),
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "cl", hints).unwrap();
            let bt = Datatype::bytes(1);
            if rank.rank() == 0 {
                let ft = Datatype::hindexed(
                    vec![(0, cluster), (64 << 20, 1)],
                    Datatype::bytes(1),
                );
                f.set_view(0, &bt, &ft).unwrap();
                let data = vec![7u8; cluster as usize + 1];
                let t0 = rank.now();
                f.write_all(&data, &Datatype::bytes(cluster + 1), 1).unwrap();
                let el = rank.now() - t0;
                f.close().unwrap();
                rank.allreduce_max(el)
            } else {
                let ft = Datatype::bytes(cluster);
                f.set_view(rank.rank() as u64 * cluster, &bt, &ft).unwrap();
                let data = vec![7u8; cluster as usize];
                let t0 = rank.now();
                f.write_all(&data, &Datatype::bytes(cluster), 1).unwrap();
                let el = rank.now() - t0;
                f.close().unwrap();
                rank.allreduce_max(el)
            }
        });
        out[0]
    };
    let even = time_with(Arc::new(EvenAar));
    let balanced = time_with(Arc::new(BalancedLoad));
    assert!(
        balanced < even,
        "balanced {balanced} should beat even {even} on clustered access"
    );
}

#[test]
fn old_engine_single_buffer_copies_less_than_new() {
    // §5.1: integrated sieving saves one buffer copy per byte.
    let spec = HpioSpec {
        region_size: 64,
        region_count: 256,
        region_spacing: 64,
        mem_noncontig: false,
        file_noncontig: true,
        nprocs: 4,
    };
    let copies = |engine: Engine| {
        let pfs = default_pfs();
        let out = run(spec.nprocs, CostModel::default(), move |rank| {
            let hints = Hints {
                engine,
                cb_nodes: Some(2),
                io_method: IoMethod::DataSieve { buffer: 512 << 10 },
                // §5.1 compares the classic packed staging paths; with
                // zero-copy both engines shed these copies entirely.
                zero_copy: false,
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "f", hints).unwrap();
            let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
            f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
            let buf = spec.make_buffer(rank.rank());
            f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
            f.close().unwrap();
            rank.stats().memcpy_bytes
        });
        out.iter().sum::<u64>()
    };
    let old = copies(Engine::Romio);
    let new = copies(Engine::Flexible);
    assert!(new > old, "new engine copies {new} should exceed old {old}");
}
