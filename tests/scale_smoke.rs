//! Scale smoke tests (ISSUE 7 satellite, sharded legs from ISSUE 10):
//! worlds far beyond the paper's 64 processes, runnable in one host
//! process only because of the fiber rank runtime. Byte-identity is
//! checked against an independently computed expected file image, and
//! every rank's phase buckets must still sum to its clock.
//!
//! Tier-1 runs the 512-rank sequential case and a 4096-rank case on the
//! sharded pool (the pool's per-dispatch gate cost is what limits debug
//! wall time, so this doubles as a budget regression). The sequential
//! 4096-rank and sharded 16384-rank cases are `#[ignore]`d (release-mode
//! CI `scale` job and `scripts/verify.sh --thorough` run them with
//! `--release --ignored`).

use flexio::core::{Hints, MpiFile};
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run_on, Backend, CostModel, XorShift64Star};
use flexio::types::Datatype;
use std::sync::Arc;

const BLOCK: u64 = 32;

fn rank_data(rank: usize, len: usize) -> Vec<u8> {
    let mut rng = XorShift64Star::new((rank as u64) << 20 | 1);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Collective write + read-back at `nprocs` ranks with `cb` aggregators,
/// interleaved `BLOCK`-byte blocks, `blocks` filetype instances per rank.
/// The invariants hold on every backend: expected file image, correct
/// read-back, and phase buckets summing to each rank's clock.
fn scale_roundtrip(backend: Backend, nprocs: usize, cb: usize, blocks: u64) {
    assert!(
        Backend::event_loop_supported(),
        "scale smoke requires the fiber rank runtime"
    );
    let pfs = Pfs::new(PfsConfig {
        n_osts: 16,
        stripe_size: 1 << 16,
        page_size: 4096,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    });
    let pfs2 = Arc::clone(&pfs);
    let len = (blocks * BLOCK) as usize;
    let out = run_on(backend, nprocs, CostModel::default(), move |rank| {
        let hints = Hints { cb_nodes: Some(cb), ..Hints::default() };
        let mut f = MpiFile::open(rank, &pfs2, "scale", hints).unwrap();
        let block = Datatype::bytes(BLOCK);
        let ftype = Datatype::resized(0, nprocs as u64 * BLOCK, block);
        f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
        let data = rank_data(rank.rank(), len);
        f.write_all(&data, &Datatype::bytes(len as u64), 1).unwrap();
        let mut back = vec![0u8; len];
        f.read_all(&mut back, &Datatype::bytes(len as u64), 1).unwrap();
        f.close().unwrap();
        (rank.now(), rank.stats(), back)
    });

    // Independently computed expected image: rank r's i-th block lands at
    // byte (i * nprocs + r) * BLOCK.
    let mut expected = vec![0u8; nprocs * len];
    for r in 0..nprocs {
        let data = rank_data(r, len);
        for i in 0..blocks as usize {
            let off = (i * nprocs + r) * BLOCK as usize;
            expected[off..off + BLOCK as usize]
                .copy_from_slice(&data[i * BLOCK as usize..(i + 1) * BLOCK as usize]);
        }
    }
    let h = pfs.open("scale", usize::MAX - 1);
    let mut image = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut image).unwrap();
    assert_eq!(image.len(), expected.len(), "file size wrong at {nprocs} ranks");
    assert_eq!(image, expected, "file image wrong at {nprocs} ranks");

    for (r, (now, s, back)) in out.iter().enumerate() {
        assert_eq!(back, &rank_data(r, len), "rank {r} read-back wrong");
        assert!(*now > 0, "rank {r} clock never advanced");
        assert_eq!(
            s.phase_ns.iter().sum::<u64>(),
            *now,
            "rank {r} phase buckets must sum to its clock"
        );
    }
}

#[test]
fn scale_smoke_512_ranks() {
    scale_roundtrip(Backend::EventLoop, 512, 16, 2);
}

#[test]
fn scale_smoke_4096_ranks_sharded() {
    // Tier-1 leg on the pool: every invariant above, plus (implicitly)
    // the gate protocol surviving 4096 fibers spread over 4 shards. One
    // block per rank keeps the debug wall time at the intrinsic cost of
    // a 4096-rank collective open — measured, the pool is no slower than
    // the sequential loop here despite the gate (the release legs below
    // carry the heavy variants).
    scale_roundtrip(Backend::Sharded(4), 4096, 256, 1);
}

#[test]
#[ignore = "release-scale run; exercised by the CI scale job and verify.sh --thorough"]
fn scale_smoke_4096_ranks() {
    scale_roundtrip(Backend::EventLoop, 4096, 64, 2);
}

#[test]
#[ignore = "release-scale run; exercised by the CI scale job and verify.sh --thorough"]
fn scale_smoke_16384_ranks_sharded() {
    scale_roundtrip(Backend::Sharded(7), 16384, 128, 2);
}
