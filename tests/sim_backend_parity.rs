//! Backend determinism regression suite (ISSUE 7 satellite, extended by
//! ISSUE 10 to the sharded host-thread pool).
//!
//! The sharded pool must be a drop-in replacement for the sequential
//! event loop at **every** shard count:
//!
//! * **Determinism by construction** — two event-loop runs of the same
//!   workload are bit-identical in everything: virtual clocks, the full
//!   `Stats` struct (including `bytes_copied`, `overlap_saved_ns`, phase
//!   buckets), read-back buffers, and the bytes on the PFS.
//! * **Shard parity, unconditionally** — the pool serializes dispatch on
//!   the global minimum `(clock, rank)` key (DESIGN.md "Rank runtime"),
//!   so unlike the retired thread-per-rank backend there is no "racy
//!   workload" carve-out: clocks, full `Stats`, read-back bytes, and file
//!   images must match the sequential loop bit for bit at shard counts
//!   {1, 2, 4, 7}, including the paper-scale configuration with several
//!   aggregators racing a shared OST clock that threads could never pin
//!   down.
//! * Phase buckets always sum to each rank's elapsed clock.

use flexio::core::{Engine, ExchangeMode, Hints, MpiFile};
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run_on, Backend, CostModel, Stats, XorShift64Star};
use flexio::types::Datatype;
use std::sync::Arc;

const BLOCK: u64 = 64;

/// Every pool width the suite exercises against the sequential loop:
/// degenerate (1), even splits (2, 4), and an odd width (7) that leaves
/// unequal shards at every world size used here.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn pfs_with(cost: PfsCostModel) -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost,
    })
}

fn read_file(pfs: &Arc<Pfs>, path: &str) -> Vec<u8> {
    let h = pfs.open(path, usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut out).unwrap();
    out
}

fn step_data(rank: usize, step: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift64Star::new((rank as u64) << 32 | (step + 1));
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Per-rank observation: (final clock, full stats, read-back bytes).
type RankTrace = (u64, Stats, Vec<u8>);

/// One backend run of the parity workload: interleaved-block collective
/// writes then a collective read-back. Returns per-rank traces plus the
/// final file image.
#[allow(clippy::too_many_arguments)]
fn parity_run(
    backend: Backend,
    cost: PfsCostModel,
    engine: Engine,
    nprocs: usize,
    blocks: u64,
    steps: u64,
    cb_nodes: usize,
) -> (Vec<RankTrace>, Vec<u8>) {
    let pfs = pfs_with(cost);
    let pfs2 = Arc::clone(&pfs);
    let out = run_on(backend, nprocs, CostModel::default(), move |rank| {
        let hints = Hints {
            engine,
            cb_nodes: Some(cb_nodes),
            cb_buffer_size: 256, // several cycles per call
            ..Hints::default()
        };
        let mut f = MpiFile::open(rank, &pfs2, "parity", hints).unwrap();
        let block = Datatype::bytes(BLOCK);
        let ftype = Datatype::resized(0, nprocs as u64 * BLOCK, block);
        f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
        let len = (blocks * BLOCK) as usize;
        for s in 0..steps {
            let data = step_data(rank.rank(), s, len);
            f.write_all(&data, &Datatype::bytes(len as u64), 1).unwrap();
        }
        let mut back = vec![0u8; len];
        f.read_all(&mut back, &Datatype::bytes(len as u64), 1).unwrap();
        f.close().unwrap();
        (rank.now(), rank.stats(), back)
    });
    let image = read_file(&pfs, "parity");
    (out, image)
}

fn assert_phase_sums(out: &[(u64, Stats, Vec<u8>)], label: &str) {
    for (r, (now, s, _)) in out.iter().enumerate() {
        assert_eq!(
            s.phase_ns.iter().sum::<u64>(),
            *now,
            "{label}: rank {r} phase buckets must sum to its clock"
        );
    }
}

#[test]
fn pure_collectives_bit_identical_across_shards() {
    if !Backend::event_loop_supported() {
        return;
    }
    // No file system at all: pure point-to-point and collective traffic,
    // including payload-dependent branches, across every shard boundary.
    let workload = |r: &flexio::sim::Rank| {
        let p = r.nprocs();
        r.send((r.rank() + 1) % p, 1, &[r.rank() as u8; 48]);
        let got = r.recv((r.rank() + p - 1) % p, 1);
        r.charge_pairs(got.len() as u64);
        r.barrier();
        let seed = r.bcast(0, if r.rank() == 0 { vec![9; 8] } else { vec![] });
        let all = r.allgatherv(&[r.rank() as u8, seed[0]]);
        let blocks: Vec<Vec<u8>> = (0..p).map(|d| vec![(r.rank() + d) as u8; 7]).collect();
        let x = r.alltoallv(blocks);
        let g = r.gatherv(0, &x[(r.rank() + 1) % p]);
        let s = r.scatterv(0, if r.rank() == 0 { g } else { Vec::new() });
        let mut img = s;
        img.extend(all.into_iter().flatten());
        (r.now(), r.stats(), img)
    };
    for p in [2usize, 16, 64] {
        let ev = run_on(Backend::EventLoop, p, CostModel::default(), workload);
        for k in SHARD_COUNTS {
            let sh = run_on(Backend::Sharded(k), p, CostModel::default(), workload);
            assert_eq!(ev, sh, "p={p} shards={k}: clocks/stats/bytes diverge");
        }
    }
}

#[test]
fn collective_io_bit_identical_across_shards() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Free and timed PFS cost models, single aggregator (cb 1): the
    // smallest I/O-path configuration, both engines.
    let cases = [(PfsCostModel::free(), 8usize), (PfsCostModel::default(), 6)];
    let cb = 1usize;
    for engine in [Engine::Flexible, Engine::Romio] {
        for (cost, nprocs) in cases {
            let (ev, ev_img) = parity_run(Backend::EventLoop, cost, engine, nprocs, 16, 3, cb);
            assert_phase_sums(&ev, "event loop");
            for k in SHARD_COUNTS {
                let (sh, sh_img) =
                    parity_run(Backend::Sharded(k), cost, engine, nprocs, 16, 3, cb);
                assert_eq!(ev_img, sh_img, "{engine:?} cb={cb} shards={k}: images diverge");
                for r in 0..nprocs {
                    assert_eq!(
                        ev[r], sh[r],
                        "{engine:?} cb={cb} shards={k}: rank {r} (clock, full Stats, \
                         read-back) diverge"
                    );
                }
            }
        }
    }
}

#[test]
fn paper_scale_bit_identical_across_shards() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Timed PFS, several racing aggregators, both engines — the
    // configuration where the retired thread-per-rank backend was *not*
    // clock-deterministic and the old suite had to fall back to
    // order-insensitive work counters. The pool has no such carve-out:
    // the min-gate serializes OST service order exactly as the sequential
    // loop would, so full bit-identity holds at every shard count.
    for engine in [Engine::Flexible, Engine::Romio] {
        let (a, a_img) =
            parity_run(Backend::EventLoop, PfsCostModel::default(), engine, 16, 24, 3, 4);
        let (b, b_img) =
            parity_run(Backend::EventLoop, PfsCostModel::default(), engine, 16, 24, 3, 4);
        assert_eq!(a_img, b_img, "{engine:?}: event-loop file images diverge across runs");
        assert_eq!(a, b, "{engine:?}: event loop not bit-identical across runs");
        assert_phase_sums(&a, "event loop");

        for k in SHARD_COUNTS {
            let (sh, sh_img) =
                parity_run(Backend::Sharded(k), PfsCostModel::default(), engine, 16, 24, 3, 4);
            assert_eq!(a_img, sh_img, "{engine:?} shards={k}: file image diverges");
            for r in 0..16 {
                assert_eq!(
                    a[r], sh[r],
                    "{engine:?} shards={k}: rank {r} not bit-identical to the event loop"
                );
            }
            assert_phase_sums(&sh, "sharded pool");
        }
    }
}

#[test]
fn exchange_modes_identical_across_shards() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Both exchange flavours at every shard count: full bit-identity.
    for exchange in [ExchangeMode::Nonblocking, ExchangeMode::Alltoallw] {
        let run_one = |backend: Backend| {
            let pfs = pfs_with(PfsCostModel::free());
            let pfs2 = Arc::clone(&pfs);
            let out = run_on(backend, 8, CostModel::default(), move |rank| {
                let hints = Hints {
                    exchange,
                    cb_nodes: Some(4),
                    cb_buffer_size: 256,
                    ..Hints::default()
                };
                let mut f = MpiFile::open(rank, &pfs2, "xmode", hints).unwrap();
                let block = Datatype::bytes(BLOCK);
                let ftype = Datatype::resized(0, 8 * BLOCK, block);
                f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
                let data = step_data(rank.rank(), 0, (12 * BLOCK) as usize);
                f.write_all(&data, &Datatype::bytes(data.len() as u64), 1).unwrap();
                f.close().unwrap();
                (rank.now(), rank.stats())
            });
            (out, read_file(&pfs, "xmode"))
        };
        let (ev, ev_img) = run_one(Backend::EventLoop);
        for k in SHARD_COUNTS {
            let (sh, sh_img) = run_one(Backend::Sharded(k));
            assert_eq!(ev_img, sh_img, "{exchange:?} shards={k}: images diverge");
            assert_eq!(ev, sh, "{exchange:?} shards={k}: clocks/stats diverge");
        }
    }
}
